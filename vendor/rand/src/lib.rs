//! Offline stand-in for the `rand` crate.
//!
//! The workspace pins its registry to an unreachable mirror, so the real
//! crate cannot be fetched at build time. This vendored replacement
//! implements exactly the surface `simcore::SimRng` consumes — a seedable
//! `SmallRng` (xoshiro256++ seeded by splitmix64, the same generator family
//! the real crate uses) plus `SeedableRng`/`RngExt` with `random::<T>()`
//! and `random_range(..)` for the primitive types the simulators draw.
//!
//! Determinism matters more than statistical perfection here: every
//! simulation run is a pure function of its seed, so the generator must be
//! stable across platforms and releases — which a vendored copy guarantees.

/// Low-level generator interface: a source of `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Types that can be drawn uniformly from a generator (the role of the real
/// crate's `StandardUniform` distribution).
pub trait Standard: Sized {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)`: the top 53 bits scaled by 2^-53.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value can be drawn from (the role of `SampleRange`).
pub trait SampleRange<T> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u128;
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
signed_sample_range!(i32, i64);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::draw(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn draw_in<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        lo + f64::draw(rng) * (hi - lo)
    }
}

/// Convenience methods over any [`RngCore`].
pub trait RngExt: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.draw_in(self)
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// splitmix64: the canonical seeding function for the xoshiro family.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// xoshiro256++ — the generator behind the real crate's `SmallRng` on
    /// 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for w in &mut s {
                *w = splitmix64(&mut sm);
            }
            // All-zero state would be degenerate; splitmix64 cannot produce
            // four zero outputs from any seed, but keep the guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let v: f64 = r.random();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = r.random_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }
}
