//! Offline stand-in for `serde_json`.
//!
//! Serializes via the vendored serde's [`serde::Value`] data model and
//! parses JSON text back into it with a small recursive-descent parser.
//! Covers the surface this workspace uses: `to_string`, `to_string_pretty`,
//! `from_str`, and the `Result`/`Error` types.

use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Error {
        Error::new(e.to_string())
    }
}

pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(v: &serde::Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        serde::Value::Null => out.push_str("null"),
        serde::Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        serde::Value::Int(i) => out.push_str(&i.to_string()),
        serde::Value::UInt(u) => out.push_str(&u.to_string()),
        serde::Value::Float(f) => {
            if f.is_finite() {
                // Match serde_json: always emit a float-looking literal.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // serde_json cannot represent NaN/Inf; emit null like
                // its lossy writers do.
                out.push_str("null");
            }
        }
        serde::Value::Str(s) => write_string(s, out),
        serde::Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        serde::Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(T::from_value(&value)?)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<serde::Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(serde::Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(serde::Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(serde::Value::Bool(false)),
            Some(b'"') => self.parse_string().map(serde::Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at byte {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<serde::Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(serde::Value::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(serde::Value::Seq(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<serde::Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(serde::Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(serde::Value::Map(entries));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            s.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        _ => return Err(Error::new("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_number(&mut self) -> Result<serde::Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(serde::Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(serde::Value::UInt(u))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(serde::Value::Int(i))
        } else {
            text.parse::<f64>()
                .map(serde::Value::Float)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_containers() {
        let data = vec![(1u64, 0.5f64), (2, 1.0)];
        let text = to_string(&data).unwrap();
        let back: Vec<(u64, f64)> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn pretty_output_is_indented() {
        let data = vec![1u64, 2, 3];
        let text = to_string_pretty(&data).unwrap();
        assert!(text.contains("\n  1"));
        let back: Vec<u64> = from_str(&text).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "line\none \"two\" \\ three\ttab".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parse_errors_reported() {
        assert!(from_str::<u64>("{").is_err());
        assert!(from_str::<u64>("1 2").is_err());
        assert!(from_str::<u64>("\"unterminated").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        let v: i64 = from_str("-12").unwrap();
        assert_eq!(v, -12);
        let f: f64 = from_str("2.5e3").unwrap();
        assert_eq!(f, 2500.0);
    }
}
