//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the vendored serde
//! stand-in.
//!
//! The real serde_derive leans on syn/quote; neither is available offline,
//! so this macro parses the item declaration directly from the
//! `proc_macro::TokenStream`. It supports the shapes this workspace
//! derives — non-generic structs (named, tuple/newtype, unit) and enums
//! (unit, tuple and struct variants) — and generates `to_value`/`from_value`
//! conversions matching serde's default externally-tagged representation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    /// Tuple struct/variant with this many fields.
    Tuple(usize),
    /// Named fields, in declaration order.
    Named(Vec<String>),
}

#[derive(Debug)]
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor { tokens: stream.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    /// Skip `#[...]` attribute sequences (includes doc comments).
    fn skip_attributes(&mut self) {
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.pos += 1; // '#'
            match self.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    self.pos += 1;
                }
                _ => panic!("serde_derive: malformed attribute"),
            }
        }
    }

    /// Skip `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.pos += 1;
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.pos += 1;
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected identifier, got {other:?}"),
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kw = c.expect_ident();
    let name = c.expect_ident();
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive (vendored): generic types are not supported; write manual impls for `{name}`");
        }
    }
    match kw.as_str() {
        "struct" => {
            let fields = match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    parse_named_fields(g.stream())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(count_tuple_fields(g.stream()))
                }
                _ => Fields::Unit,
            };
            Item::Struct { name, fields }
        }
        "enum" => {
            let body = match c.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => panic!("serde_derive: expected enum body, got {other:?}"),
            };
            Item::Enum { name, variants: parse_variants(body) }
        }
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Fields {
    let mut c = Cursor::new(stream);
    let mut names = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        c.skip_visibility();
        names.push(c.expect_ident());
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field name, got {other:?}"),
        }
        // Consume the type: everything up to a top-level comma. Generic
        // angle brackets contain no top-level commas in token-tree land
        // (`<` is a lone punct), so track depth by `<`/`>`.
        let mut angle_depth = 0i32;
        loop {
            match c.peek() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                    angle_depth += 1;
                    c.pos += 1;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth -= 1;
                    c.pos += 1;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => {
                    c.pos += 1;
                    break;
                }
                _ => c.pos += 1,
            }
        }
    }
    Fields::Named(names)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in stream {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                if saw_token {
                    fields += 1;
                    saw_token = false;
                }
            }
            _ => saw_token = true,
        }
    }
    if saw_token {
        fields += 1;
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        if c.peek().is_none() {
            break;
        }
        let name = c.expect_ident();
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                c.pos += 1;
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Tuple(count_tuple_fields(g.stream()));
                c.pos += 1;
                f
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        loop {
            match c.next() {
                None => break,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' => break,
                Some(_) => {}
            }
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "serde::Value::Null".to_string(),
                Fields::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("serde::Value::Seq(vec![{}])", items.join(", "))
                }
                Fields::Named(names) => named_to_map(names, "self."),
            };
            format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let inner = if *n == 1 {
                            "serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("serde::Serialize::to_value({b})"))
                                .collect();
                            format!("serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{v}({}) => serde::Value::Map(vec![(\"{v}\".to_string(), {inner})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let binds = fnames.join(", ");
                        let inner = named_to_map(fnames, "");
                        format!(
                            "{name}::{v} {{ {binds} }} => serde::Value::Map(vec![(\"{v}\".to_string(), {inner})]),"
                        )
                    }
                })
                .collect();
            format!(
                "impl serde::Serialize for {name} {{\n  fn to_value(&self) -> serde::Value {{ match self {{\n{}\n  }} }}\n}}",
                arms.join("\n")
            )
        }
    };
    code.parse().expect("serde_derive: generated Serialize impl does not parse")
}

fn named_to_map(names: &[String], accessor: &str) -> String {
    let entries: Vec<String> = names
        .iter()
        .map(|f| {
            format!("(\"{f}\".to_string(), serde::Serialize::to_value(&{accessor}{f}))")
        })
        .collect();
    format!("serde::Value::Map(vec![{}])", entries.join(", "))
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let code = match &item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => format!("{{ let _ = v; Ok({name}) }}"),
                Fields::Tuple(1) => {
                    format!("Ok({name}(serde::Deserialize::from_value(v)?))")
                }
                Fields::Tuple(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                        .collect();
                    format!(
                        "{{ let seq = v.as_seq().ok_or_else(|| serde::Error::expected(\"array\", v))?;\n\
                         if seq.len() != {n} {{ return Err(serde::Error::custom(format!(\"expected {n} elements for {name}, got {{}}\", seq.len()))); }}\n\
                         Ok({name}({})) }}",
                        items.join(", ")
                    )
                }
                Fields::Named(names) => {
                    let items: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!(
                                "{f}: serde::Deserialize::from_value(v.field(\"{name}\", \"{f}\")?)?"
                            )
                        })
                        .collect();
                    format!("Ok({name} {{ {} }})", items.join(", "))
                }
            };
            format!(
                "impl serde::Deserialize for {name} {{\n  fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{ {body} }}\n}}"
            )
        }
        Item::Enum { name, variants } => {
            // Unit variants arrive as strings; data variants as
            // single-entry maps keyed by the variant name.
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(v, _)| format!("\"{v}\" => return Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(n) => {
                        let build = if *n == 1 {
                            format!("{name}::{v}(serde::Deserialize::from_value(inner)?)")
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| format!("serde::Deserialize::from_value(&seq[{i}])?"))
                                .collect();
                            format!(
                                "{{ let seq = inner.as_seq().ok_or_else(|| serde::Error::expected(\"array\", inner))?;\n\
                                 if seq.len() != {n} {{ return Err(serde::Error::custom(\"wrong arity for variant {v}\")); }}\n\
                                 {name}::{v}({}) }}",
                                items.join(", ")
                            )
                        };
                        Some(format!("\"{v}\" => return Ok({build}),"))
                    }
                    Fields::Named(fnames) => {
                        let items: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!(
                                    "{f}: serde::Deserialize::from_value(inner.field(\"{name}::{v}\", \"{f}\")?)?"
                                )
                            })
                            .collect();
                        Some(format!(
                            "\"{v}\" => return Ok({name}::{v} {{ {} }}),",
                            items.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "impl serde::Deserialize for {name} {{\n\
                 fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {{\n\
                   if let Some(s) = v.as_str() {{ match s {{ {unit} _ => {{}} }} }}\n\
                   if let Some(map) = v.as_map() {{\n\
                     if map.len() == 1 {{\n\
                       let (tag, inner) = &map[0];\n\
                       let _ = inner;\n\
                       match tag.as_str() {{ {data} _ => {{}} }}\n\
                     }}\n\
                   }}\n\
                   Err(serde::Error::custom(format!(\"no variant of {name} matches {{}}\", v.kind_name())))\n\
                 }}\n}}",
                unit = unit_arms.join(" "),
                data = data_arms.join(" "),
            )
        }
    };
    code.parse().expect("serde_derive: generated Deserialize impl does not parse")
}
