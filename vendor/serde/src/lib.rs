//! Offline stand-in for `serde`.
//!
//! The registry mirror this workspace points at is unreachable, so the real
//! crate cannot be fetched. This replacement keeps the *spelling* of the
//! serde surface the workspace uses — `#[derive(Serialize, Deserialize)]`
//! and the `Serialize`/`Deserialize` bounds consumed by `serde_json` — but
//! swaps the visitor architecture for a much smaller design: serialization
//! goes through an owned [`Value`] tree (the JSON data model), and the
//! derive macro generates `to_value`/`from_value` conversions.
//!
//! The representation matches serde's defaults for the shapes this
//! workspace derives: structs become maps, newtype structs are transparent,
//! unit enum variants become strings, data-carrying variants become
//! single-entry maps, sequences/tuples become arrays.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// The JSON data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Negative integers.
    Int(i64),
    /// Non-negative integers.
    UInt(u64),
    Float(f64),
    Str(String),
    Seq(Vec<Value>),
    /// Insertion-ordered map (struct fields keep declaration order).
    Map(Vec<(String, Value)>),
}

/// Deserialization error.
#[derive(Clone, Debug, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }

    pub fn expected(what: &str, got: &Value) -> Error {
        Error::custom(format!("expected {what}, got {}", got.kind_name()))
    }

    pub fn missing_field(ty: &str, field: &str) -> Error {
        Error::custom(format!("missing field `{field}` of `{ty}`"))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl Value {
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::UInt(v) => Some(v),
            Value::Int(v) if v >= 0 => Some(v as u64),
            Value::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::Int(v) => Some(v),
            Value::UInt(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::Float(v) if v.fract() == 0.0 && (i64::MIN as f64..=i64::MAX as f64).contains(&v) => {
                Some(v as i64)
            }
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Float(v) => Some(v),
            Value::UInt(v) => Some(v as f64),
            Value::Int(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Struct-field lookup used by derived `Deserialize` impls.
    pub fn field<'a>(&'a self, ty: &str, name: &str) -> Result<&'a Value, Error> {
        let map = self.as_map().ok_or_else(|| Error::expected("object", self))?;
        map.iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::missing_field(ty, name))
    }
}

/// A type that can convert itself into the [`Value`] data model.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// A type that can be rebuilt from the [`Value`] data model.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::expected("unsigned integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(
                    format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 { Value::UInt(v as u64) } else { Value::Int(v) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::expected("integer", v))?;
                <$t>::try_from(raw).map_err(|_| Error::custom(
                    format!("integer {raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|f| f as f32).ok_or_else(|| Error::expected("number", v))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", v))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::expected("string", v))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::expected("array", v))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let n = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {n}")))
    }
}

macro_rules! ser_de_tuple {
    ($(($($t:ident : $idx:tt),+ $(,)?));* $(;)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let seq = v.as_seq().ok_or_else(|| Error::expected("array", v))?;
                let want = [$(stringify!($idx)),+].len();
                if seq.len() != want {
                    return Err(Error::custom(
                        format!("expected tuple of length {want}, got {}", seq.len())));
                }
                Ok(($($t::from_value(&seq[$idx])?,)+))
            }
        }
    )*};
}
ser_de_tuple! {
    (A: 0);
    (A: 0, B: 1);
    (A: 0, B: 1, C: 2);
    (A: 0, B: 1, C: 2, D: 3);
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Map(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::expected("object", v))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(i32::from_value(&(-7i32).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![(1u64, 0.5f64), (2, 0.25)];
        let back: Vec<(u64, f64)> = Deserialize::from_value(&v.to_value()).unwrap();
        assert_eq!(back, v);
        let opt: Option<u32> = None;
        assert_eq!(opt.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn type_errors_are_reported() {
        assert!(u64::from_value(&Value::Str("x".into())).is_err());
        assert!(bool::from_value(&Value::UInt(1)).is_err());
        assert!(<(u8, u8)>::from_value(&Value::Seq(vec![Value::UInt(1)])).is_err());
    }
}
