//! Offline stand-in for `criterion`.
//!
//! Provides the API shape the workspace's benches compile against —
//! `Criterion`, `benchmark_group`/`sample_size`/`finish`,
//! `bench_function`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! wall-clock harness instead of the full statistical machinery:
//! each benchmark is warmed up once, then timed over `sample_size`
//! batches and reported as mean time per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_bench(name.as_ref(), self.sample_size, &mut f);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<S: AsRef<str>, F: FnMut(&mut Bencher)>(
        &mut self,
        name: S,
        mut f: F,
    ) -> &mut Self {
        run_bench(&format!("{}/{}", self.name, name.as_ref()), self.sample_size, &mut f);
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(name: &str, samples: usize, f: &mut F) {
    // Warm-up pass; also sizes the timed batches so short routines are
    // measured over enough iterations to be meaningful.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let iters = (Duration::from_millis(5).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut total = Duration::ZERO;
    let mut total_iters = 0u64;
    for _ in 0..samples {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        total += b.elapsed;
        total_iters += iters;
    }
    let mean_ns = total.as_nanos() as f64 / total_iters.max(1) as f64;
    println!("bench {name:<40} {mean_ns:>12.1} ns/iter ({total_iters} iters)");
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
