//! Offline stand-in for `proptest`.
//!
//! Keeps the spelling of the proptest surface this workspace's property
//! tests use — `proptest!`, `prop_assert!`, `prop_oneof!`, `Just`,
//! `any`, `prop_map`, `prop_shuffle`, `collection::vec`,
//! `ProptestConfig` — but replaces the engine with deterministic random
//! sampling: each test function draws `cases` inputs from a generator
//! seeded by the test's name. No shrinking; a failing case panics with
//! the assertion message like a plain `#[test]`.

pub mod test_runner {
    /// Seeded generator handed to strategies (role of proptest's `TestRng`).
    pub struct TestRng {
        inner: rand::rngs::SmallRng,
    }

    impl TestRng {
        /// Deterministic seed derived from the test name (FNV-1a), so each
        /// test function samples a stable, independent input stream.
        pub fn from_name(name: &str) -> TestRng {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { inner: rand::rngs::SmallRng::seed_from_u64(h) }
        }

        pub fn draw_u64(&mut self) -> u64 {
            rand::RngCore::next_u64(&mut self.inner)
        }

        pub fn draw_usize_below(&mut self, n: usize) -> usize {
            assert!(n > 0);
            (self.draw_u64() % n as u64) as usize
        }

        pub fn draw_range<T, Rg: rand::SampleRange<T>>(&mut self, range: Rg) -> T {
            use rand::RngExt;
            self.inner.random_range(range)
        }

        pub fn draw_f64_unit(&mut self) -> f64 {
            use rand::RngExt;
            self.inner.random::<f64>()
        }

        pub fn shuffle<T>(&mut self, items: &mut [T]) {
            for i in (1..items.len()).rev() {
                let j = self.draw_usize_below(i + 1);
                items.swap(i, j);
            }
        }
    }

    /// Per-block test configuration (role of `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        /// Accepted for API compatibility; this engine does not shrink.
        pub max_shrink_iters: u32,
        /// Accepted for API compatibility; failures are not persisted.
        pub failure_persistence: Option<()>,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 256, max_shrink_iters: 1024, failure_persistence: None }
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for producing values of `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        fn prop_shuffle(self) -> Shuffle<Self>
        where
            Self: Sized,
        {
            Shuffle { inner: self }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct Shuffle<S> {
        inner: S,
    }

    impl<S, T> Strategy for Shuffle<S>
    where
        S: Strategy<Value = Vec<T>>,
    {
        type Value = Vec<T>;

        fn generate(&self, rng: &mut TestRng) -> Vec<T> {
            let mut items = self.inner.generate(rng);
            rng.shuffle(&mut items);
            items
        }
    }

    /// Uniform choice between boxed alternatives (role of `prop_oneof!`'s
    /// `Union`; this stand-in ignores weights — none are used here).
    pub struct Union<T> {
        members: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(members: Vec<Box<dyn Strategy<Value = T>>>) -> Union<T> {
            assert!(!members.is_empty(), "prop_oneof! needs at least one arm");
            Union { members }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.draw_usize_below(self.members.len());
            self.members[idx].generate(rng)
        }
    }

    /// Boxing helper used by `prop_oneof!` so arms of different concrete
    /// strategy types unify without `as` casts at the call site.
    pub fn union_member<T, S>(s: S) -> Box<dyn Strategy<Value = T>>
    where
        S: Strategy<Value = T> + 'static,
    {
        Box::new(s)
    }

    macro_rules! range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.draw_range(self.clone())
                }
            }
        )*};
    }
    range_strategies!(u8, u16, u32, u64, usize, i32, i64, f64);

    macro_rules! range_inclusive_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.draw_range(self.clone())
                }
            }
        )*};
    }
    range_inclusive_strategies!(u8, u16, u32, u64, usize, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident : $idx:tt),+));* $(;)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategies! {
        (A: 0, B: 1);
        (A: 0, B: 1, C: 2);
        (A: 0, B: 1, C: 2, D: 3);
        (A: 0, B: 1, C: 2, D: 3, E: 4)
    }

    /// Types with a canonical full-domain strategy (role of `Arbitrary`).
    pub trait Arbitrary: Sized {
        type Strategy: Strategy<Value = Self>;

        fn arbitrary() -> Self::Strategy;
    }

    pub struct ArbitraryStrategy<T> {
        _marker: core::marker::PhantomData<T>,
    }

    macro_rules! arbitrary_via {
        ($($t:ty => |$rng:ident| $draw:expr);* $(;)?) => {$(
            impl Strategy for ArbitraryStrategy<$t> {
                type Value = $t;

                fn generate(&self, $rng: &mut TestRng) -> $t {
                    $draw
                }
            }

            impl Arbitrary for $t {
                type Strategy = ArbitraryStrategy<$t>;

                fn arbitrary() -> Self::Strategy {
                    ArbitraryStrategy { _marker: core::marker::PhantomData }
                }
            }
        )*};
    }
    arbitrary_via! {
        bool => |rng| rng.draw_u64() & 1 == 1;
        u8 => |rng| rng.draw_u64() as u8;
        u16 => |rng| rng.draw_u64() as u16;
        u32 => |rng| rng.draw_u64() as u32;
        u64 => |rng| rng.draw_u64();
        usize => |rng| rng.draw_u64() as usize;
        i32 => |rng| rng.draw_u64() as i32;
        i64 => |rng| rng.draw_u64() as i64;
        f64 => |rng| rng.draw_f64_unit();
    }

    /// Full-domain strategy for `T` (`any::<bool>()` etc.).
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Lengths accepted by [`vec`]: an exact count or a range of counts.
    pub trait SizeRange {
        fn draw_len(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn draw_len(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.draw_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn draw_len(&self, rng: &mut TestRng) -> usize {
            rng.draw_range(self.clone())
        }
    }

    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.draw_len(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len)`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Runs each contained test function over `cases` sampled inputs.
///
/// The test functions in this workspace already carry their own `#[test]`
/// attribute inside the macro invocation, so attributes are passed through
/// untouched rather than re-added.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for _case in 0..config.cases {
                    let ($($arg,)*) = ($(
                        $crate::strategy::Strategy::generate(&($strat), &mut rng),
                    )*);
                    // Bodies may `return Ok(())` early (real proptest runs
                    // them as `Result`-returning closures), so do the same.
                    #[allow(clippy::redundant_closure_call)]
                    let result: ::core::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            #[allow(unreachable_code)]
                            Ok(())
                        })();
                    if let Err(e) = result {
                        panic!("{e}");
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])*
              fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// Uniform choice among strategy arms yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::union_member($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

        /// Doc comments and `#[test]` pass through the macro unchanged.
        #[test]
        fn ranges_and_vecs(n in 1usize..12,
                           xs in crate::collection::vec(0.0f64..1.0, 1..10)) {
            prop_assert!((1..12).contains(&n));
            prop_assert!(!xs.is_empty() && xs.len() < 10);
            for x in xs {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }

        #[test]
        fn oneof_and_shuffle(pick in prop_oneof![
                                 Just(0usize),
                                 (1usize..4).prop_map(|v| v),
                             ],
                             mut order in Just(vec![0usize, 1, 2, 3]).prop_shuffle()) {
            prop_assert!(pick < 4);
            order.sort_unstable();
            prop_assert_eq!(order, vec![0, 1, 2, 3]);
        }

        #[test]
        fn any_bool_is_reachable(b in any::<bool>(), prio in 4u8..=6) {
            prop_assert!(u8::from(b) <= 1);
            prop_assert!((4..=6).contains(&prio));
        }
    }
}
