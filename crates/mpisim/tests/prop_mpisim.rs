//! Property tests for MPI message matching against a reference model.

use mpisim::{Mpi, MpiConfig};
use proptest::prelude::*;
use schedsim::program::MockApi;
use simcore::{SimDuration, SimTime};

#[derive(Clone, Debug)]
enum Op {
    /// (from, to, tag)
    Send(usize, usize, i32),
    /// (me, src, tag)
    Recv(usize, usize, i32),
}

fn ops(n_ranks: usize) -> impl Strategy<Value = Vec<Op>> {
    let op = prop_oneof![
        (0..n_ranks, 0..n_ranks, 0i32..3).prop_map(|(f, t, tag)| Op::Send(f, t, tag)),
        (0..n_ranks, 0..n_ranks, 0i32..3).prop_map(|(m, s, tag)| Op::Recv(m, s, tag)),
    ];
    proptest::collection::vec(op, 1..60)
}

proptest! {
    /// Every receive completes iff the model says a matching message
    /// exists, and completions respect FIFO per (src, dst, tag).
    #[test]
    fn matching_agrees_with_reference_model(ops in ops(3)) {
        let mpi = Mpi::new(3, MpiConfig::default());
        let mut m = MockApi::new();
        // Reference model: per (dst, src, tag) counters of unmatched sends
        // and pending recvs.
        use std::collections::HashMap;
        let mut unmatched_sends: HashMap<(usize, usize, i32), u32> = HashMap::new();
        let mut pending_recvs: HashMap<(usize, usize, i32), u32> = HashMap::new();
        let mut expected_completions = 0usize;

        for (step, op) in ops.iter().enumerate() {
            m.now = SimTime::ZERO + SimDuration::from_micros(step as u64 * 10);
            match *op {
                Op::Send(f, t, tag) => {
                    mpi.send(&mut m.api(), f, t, tag, 16);
                    let key = (t, f, tag);
                    let pend = pending_recvs.entry(key).or_default();
                    if *pend > 0 {
                        *pend -= 1;
                        expected_completions += 1;
                    } else {
                        *unmatched_sends.entry(key).or_default() += 1;
                    }
                }
                Op::Recv(me, src, tag) => {
                    let req = mpi.irecv(&mut m.api(), me, Some(src), Some(tag));
                    let _tok = mpi.wait(&mut m.api(), req);
                    let key = (me, src, tag);
                    let sends = unmatched_sends.entry(key).or_default();
                    if *sends > 0 {
                        *sends -= 1;
                        expected_completions += 1;
                    } else {
                        *pending_recvs.entry(key).or_default() += 1;
                    }
                }
            }
            // Every completed receive scheduled exactly one signal.
            prop_assert_eq!(m.deferred_signals.len(), expected_completions);
        }
    }

    /// Message arrival times are monotone in payload size and never before
    /// the send.
    #[test]
    fn arrival_times_physical(bytes in 0u64..10_000_000, when_us in 0u64..1_000_000) {
        let mpi = Mpi::new(2, MpiConfig::default());
        let mut m = MockApi::new();
        m.now = SimTime::ZERO + SimDuration::from_micros(when_us);
        mpi.send(&mut m.api(), 0, 1, 0, bytes);
        let tok = mpi.recv(&mut m.api(), 1, Some(0), Some(0));
        let (at, t) = m.deferred_signals[0];
        prop_assert_eq!(t, tok);
        prop_assert!(at > m.now, "arrival strictly after send");
        let expected = m.now + MpiConfig::default().transfer_time(bytes);
        prop_assert_eq!(at, expected);
    }

    /// A barrier over n ranks releases everyone at one instant after the
    /// last arrival, regardless of arrival order.
    #[test]
    fn barrier_release_uniform(mut order in Just(vec![0usize,1,2,3]).prop_shuffle(), gaps in proptest::collection::vec(0u64..5_000, 4)) {
        let mpi = Mpi::new(4, MpiConfig::default());
        let mut m = MockApi::new();
        let mut toks = Vec::new();
        let mut now_us = 0;
        for (i, rank) in order.drain(..).enumerate() {
            now_us += gaps[i];
            m.now = SimTime::ZERO + SimDuration::from_micros(now_us);
            toks.push(mpi.barrier(&mut m.api(), rank));
        }
        let last_arrival = m.now;
        let times: Vec<SimTime> = toks
            .iter()
            .map(|tok| m.deferred_signals.iter().find(|(_, t)| t == tok).expect("released").0)
            .collect();
        for &t in &times {
            prop_assert_eq!(t, times[0], "uniform release");
            prop_assert!(t > last_arrival);
        }
    }
}
