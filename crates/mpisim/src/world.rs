//! Point-to-point messaging, requests and waiting.
//!
//! Matching follows MPI semantics: messages between a (source, destination)
//! pair are non-overtaking, receives match in post order against the
//! earliest compatible message, and `MPI_ANY_SOURCE`/`MPI_ANY_TAG`
//! wildcards are supported.
//!
//! Timing: sends are eager — the sender never blocks — and a message
//! becomes *receivable* at `send time + latency + bytes/bandwidth`. A
//! receive that is matched to a message completes at the message's arrival
//! time; `wait`/`waitall` block the caller until the latest completion among
//! their requests.

use crate::collective::{CollectiveOp, Collectives};
use crate::config::MpiConfig;
use crate::fault::{MpiFaultConfig, MpiFaultState, MpiFaultStats, RankFailurePolicy};
use schedsim::{KernelApi, WaitToken};
use simcore::SimTime;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex, MutexGuard};

/// An MPI process index within the world.
pub type Rank = usize;

/// A non-blocking operation handle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request(usize);

#[derive(Clone, Copy, Debug)]
struct RequestState {
    /// When the operation completes (known once matched). `None` until a
    /// matching send shows up.
    completed: Option<SimTime>,
    /// Waiter registered on this request, if a wait is outstanding.
    waiter: Option<usize>,
    /// Consumed by a successful wait; double-waits are a caller bug.
    consumed: bool,
}

#[derive(Clone, Copy, Debug)]
struct Waiter {
    token: WaitToken,
    remaining: usize,
    latest: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct InFlight {
    src: Rank,
    tag: i32,
    arrival: SimTime,
}

#[derive(Clone, Copy, Debug)]
struct PostedRecv {
    req: usize,
    src: Option<Rank>,
    tag: Option<i32>,
}

#[derive(Default)]
struct Mailbox {
    /// Messages that arrived (logically) with no matching receive yet.
    unexpected: VecDeque<InFlight>,
    /// Receives posted with no matching message yet.
    posted: VecDeque<PostedRecv>,
}

/// Whole-world message-passing state. Shared by every rank's program via
/// the cloneable [`Mpi`] handle.
pub struct MpiWorld {
    size: usize,
    cfg: MpiConfig,
    mailboxes: Vec<Mailbox>,
    requests: Vec<RequestState>,
    waiters: Vec<Waiter>,
    collectives: Collectives,
    messages_sent: u64,
    bytes_sent: u64,
    /// Installed fault state (class 3); `None` in un-faulted worlds, which
    /// then draw no random values and behave bit-for-bit as before.
    fault: Option<MpiFaultState>,
    /// `(rank, completed iterations)` of a fail-stop abort, once one fired.
    aborted_by: Option<(Rank, u32)>,
}

impl MpiWorld {
    pub fn new(size: usize, cfg: MpiConfig) -> Self {
        assert!(size > 0, "empty MPI world");
        MpiWorld {
            size,
            cfg,
            mailboxes: (0..size).map(|_| Mailbox::default()).collect(),
            requests: Vec::new(),
            waiters: Vec::new(),
            collectives: Collectives::new(size),
            messages_sent: 0,
            bytes_sent: 0,
            fault: None,
            aborted_by: None,
        }
    }

    fn new_request(&mut self, completed: Option<SimTime>) -> Request {
        self.requests.push(RequestState { completed, waiter: None, consumed: false });
        Request(self.requests.len() - 1)
    }

    /// A matched receive completes at `arrival`; notify any waiter.
    fn complete_request(&mut self, api: &mut KernelApi<'_>, req: usize, arrival: SimTime) {
        let state = &mut self.requests[req];
        debug_assert!(state.completed.is_none(), "request completed twice");
        state.completed = Some(arrival);
        if let Some(w) = state.waiter {
            let waiter = &mut self.waiters[w];
            if waiter.remaining == 0 {
                // Already force-released by an abort; nothing to notify.
                return;
            }
            waiter.remaining -= 1;
            waiter.latest = waiter.latest.max(arrival);
            if waiter.remaining == 0 {
                api.signal_at(waiter.latest.max(api.now()), waiter.token);
            }
        }
    }

    fn do_send(&mut self, api: &mut KernelApi<'_>, from: Rank, to: Rank, tag: i32, bytes: u64) {
        assert!(from < self.size && to < self.size, "rank out of range");
        let mut arrival = api.now() + self.cfg.transfer_time(bytes);
        // Fault class 3a: delay spike. One draw per message, in the
        // kernel-fixed send order, so spikes are deterministic per seed.
        if let Some(f) = self.fault.as_mut() {
            if f.cfg.delay_prob > 0.0 && f.rng.chance(f.cfg.delay_prob) {
                arrival += f.cfg.delay_extra;
                f.delays_injected += 1;
            }
        }
        self.messages_sent += 1;
        self.bytes_sent += bytes;
        // Match the earliest compatible posted receive (post order).
        let mb = &mut self.mailboxes[to];
        let pos = mb.posted.iter().position(|p| {
            p.src.map(|s| s == from).unwrap_or(true) && p.tag.map(|t| t == tag).unwrap_or(true)
        });
        match pos {
            Some(i) => {
                // INVARIANT: `i` came from position() on this same deque
                // with no mutation in between, so the removal cannot miss.
                let posted = mb.posted.remove(i).expect("index valid");
                self.complete_request(api, posted.req, arrival);
            }
            None => {
                mb.unexpected.push_back(InFlight { src: from, tag, arrival });
            }
        }
    }

    fn do_irecv(
        &mut self,
        me: Rank,
        src: Option<Rank>,
        tag: Option<i32>,
    ) -> (Request, Option<SimTime>) {
        assert!(me < self.size, "rank out of range");
        let mb = &mut self.mailboxes[me];
        let pos = mb.unexpected.iter().position(|m| {
            src.map(|s| s == m.src).unwrap_or(true) && tag.map(|t| t == m.tag).unwrap_or(true)
        });
        match pos {
            Some(i) => {
                // INVARIANT: `i` came from position() on this same deque
                // with no mutation in between, so the removal cannot miss.
                let msg = mb.unexpected.remove(i).expect("index valid");
                let req = self.new_request(Some(msg.arrival));
                (req, Some(msg.arrival))
            }
            None => {
                let req = self.new_request(None);
                self.mailboxes[me].posted.push_back(PostedRecv { req: req.0, src, tag });
                (req, None)
            }
        }
    }

    /// Force-release every blocked rank after an abort: outstanding waiters
    /// are signalled at `now` (or their latest known completion, if later)
    /// and all in-progress collectives are drained. Programs wake, observe
    /// [`Mpi::aborted`] and exit cleanly — nobody hangs, nobody panics.
    fn release_all(&mut self, api: &mut KernelApi<'_>) {
        let now = api.now();
        for waiter in &mut self.waiters {
            if waiter.remaining > 0 {
                waiter.remaining = 0;
                api.signal_at(waiter.latest.max(now), waiter.token);
            }
        }
        self.collectives.release_all(api);
    }
}

/// Cloneable handle to a shared [`MpiWorld`]: what each rank's program
/// holds. All methods take the caller's [`KernelApi`] so blocking waits and
/// timed completions integrate with the kernel.
#[derive(Clone)]
pub struct Mpi {
    inner: Arc<Mutex<MpiWorld>>,
}

impl Mpi {
    /// Create a world of `size` ranks.
    pub fn new(size: usize, cfg: MpiConfig) -> Self {
        Mpi { inner: Arc::new(Mutex::new(MpiWorld::new(size, cfg))) }
    }

    /// Lock the shared world. Every access funnels through here.
    ///
    /// INVARIANT: simulation runs are single-threaded per kernel, and no
    /// code path below panics while holding this lock on a fault-injection
    /// path — so a poisoned mutex can only mean a bug inside this crate,
    /// and propagating the panic (not masking it) is the correct response.
    fn world(&self) -> MutexGuard<'_, MpiWorld> {
        self.inner.lock().expect("mpi world poisoned")
    }

    /// Install a fault configuration (normally compiled from a `faultsim`
    /// plan). Must be called before the first message; replaces any prior
    /// config.
    pub fn install_faults(&self, cfg: MpiFaultConfig) {
        self.world().fault = Some(MpiFaultState::new(cfg));
    }

    /// Whether a fail-stop abort has fired. Programs poll this when they
    /// wake and exit cleanly if set.
    pub fn aborted(&self) -> bool {
        self.world().aborted_by.is_some()
    }

    /// Snapshot of fault accounting (all zero when no faults installed).
    pub fn fault_stats(&self) -> MpiFaultStats {
        let w = self.world();
        let mut stats = MpiFaultStats { aborted_by: w.aborted_by, ..Default::default() };
        if let Some(f) = w.fault.as_ref() {
            stats.delays_injected = f.delays_injected;
            stats.restarts = f.restarts;
        }
        stats
    }

    /// Poll the crash directive at an iteration boundary. Fires (once) when
    /// `rank` matches and has completed at least `at_iteration` iterations;
    /// returns the policy for the caller to enact. Restart polls count as
    /// absorbed restarts.
    pub fn take_crash(&self, rank: Rank, completed_iters: u32) -> Option<RankFailurePolicy> {
        let mut w = self.world();
        let f = w.fault.as_mut()?;
        let crash = f.cfg.crash?;
        if f.crash_consumed || crash.rank != rank || completed_iters < crash.at_iteration {
            return None;
        }
        f.crash_consumed = true;
        if let RankFailurePolicy::RestartFromIteration { .. } = crash.policy {
            f.restarts += 1;
        }
        Some(crash.policy)
    }

    /// Fail-stop abort: record the failing `(rank, iteration)` and release
    /// every blocked rank so the job winds down cleanly.
    pub fn abort(&self, api: &mut KernelApi<'_>, rank: Rank, iteration: u32) {
        let mut w = self.world();
        if w.aborted_by.is_some() {
            return;
        }
        w.aborted_by = Some((rank, iteration));
        w.release_all(api);
    }

    pub fn size(&self) -> usize {
        self.world().size
    }

    /// Total messages sent so far (diagnostics).
    pub fn messages_sent(&self) -> u64 {
        self.world().messages_sent
    }

    /// Total payload bytes sent so far (diagnostics).
    pub fn bytes_sent(&self) -> u64 {
        self.world().bytes_sent
    }

    /// Eager (buffered) send: never blocks the sender.
    pub fn send(&self, api: &mut KernelApi<'_>, from: Rank, to: Rank, tag: i32, bytes: u64) {
        self.world().do_send(api, from, to, tag, bytes);
    }

    /// Non-blocking send. Eager buffering makes the request complete
    /// immediately; it exists so `waitall` code reads like real MPI.
    pub fn isend(
        &self,
        api: &mut KernelApi<'_>,
        from: Rank,
        to: Rank,
        tag: i32,
        bytes: u64,
    ) -> Request {
        let mut w = self.world();
        w.do_send(api, from, to, tag, bytes);
        let now = api.now();
        w.new_request(Some(now))
    }

    /// Non-blocking receive. `src`/`tag` of `None` are the ANY wildcards.
    pub fn irecv(
        &self,
        _api: &mut KernelApi<'_>,
        me: Rank,
        src: Option<Rank>,
        tag: Option<i32>,
    ) -> Request {
        self.world().do_irecv(me, src, tag).0
    }

    /// Wait for one request. Returns a token to `Action::Block` on; it is
    /// pre-signalled when the request already completed.
    pub fn wait(&self, api: &mut KernelApi<'_>, req: Request) -> WaitToken {
        self.waitall(api, &[req])
    }

    /// Wait for all requests (`mpi_waitall`).
    pub fn waitall(&self, api: &mut KernelApi<'_>, reqs: &[Request]) -> WaitToken {
        let token = api.new_token();
        let mut w = self.world();
        if w.aborted_by.is_some() {
            // Post-abort: don't touch request state (the requests may have
            // been force-released); hand back a token that fires now so the
            // caller wakes, sees `aborted()` and exits.
            api.signal_at(api.now(), token);
            return token;
        }
        let mut remaining = 0;
        let mut latest = SimTime::ZERO;
        let waiter_id = w.waiters.len();
        for r in reqs {
            let state = &mut w.requests[r.0];
            assert!(!state.consumed, "request waited twice");
            state.consumed = true;
            match state.completed {
                Some(t) => latest = latest.max(t),
                None => {
                    debug_assert!(state.waiter.is_none(), "request already has a waiter");
                    state.waiter = Some(waiter_id);
                    remaining += 1;
                }
            }
        }
        if remaining == 0 {
            api.signal_at(latest.max(api.now()), token);
        } else {
            w.waiters.push(Waiter { token, remaining, latest });
        }
        token
    }

    /// Blocking receive: `irecv` + `wait` fused.
    pub fn recv(
        &self,
        api: &mut KernelApi<'_>,
        me: Rank,
        src: Option<Rank>,
        tag: Option<i32>,
    ) -> WaitToken {
        let req = self.irecv(api, me, src, tag);
        self.wait(api, req)
    }

    /// Enter a barrier (`mpi_barrier`).
    pub fn barrier(&self, api: &mut KernelApi<'_>, rank: Rank) -> WaitToken {
        self.collective(api, rank, CollectiveOp::Barrier, 0)
    }

    /// Enter a collective operation; returns the completion token for this
    /// rank.
    pub fn collective(
        &self,
        api: &mut KernelApi<'_>,
        rank: Rank,
        op: CollectiveOp,
        bytes: u64,
    ) -> WaitToken {
        let mut w = self.world();
        if w.aborted_by.is_some() {
            // Post-abort: never enter (or create) a collective that can no
            // longer complete — wake immediately instead.
            let token = api.new_token();
            api.signal_at(api.now(), token);
            return token;
        }
        let cfg = w.cfg;
        w.collectives.arrive(api, rank, op, bytes, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::RankCrash;
    use schedsim::program::MockApi;
    use schedsim::TaskId;
    use simcore::SimDuration;

    fn world(n: usize) -> Mpi {
        Mpi::new(n, MpiConfig::default())
    }

    #[test]
    fn send_then_recv_completes_at_arrival() {
        let mpi = world(2);
        let mut m = MockApi::new();
        mpi.send(&mut m.api(), 0, 1, 7, 1000);
        let tok = mpi.recv(&mut m.api(), 1, Some(0), Some(7));
        // Message already "sent": the wait token is scheduled, not pending.
        assert_eq!(m.deferred_signals.len(), 1);
        let (at, t) = m.deferred_signals[0];
        assert_eq!(t, tok);
        let expected = SimTime::ZERO + MpiConfig::default().transfer_time(1000);
        assert_eq!(at, expected);
    }

    #[test]
    fn recv_before_send_blocks_until_send() {
        let mpi = world(2);
        let mut m = MockApi::new();
        let tok = mpi.recv(&mut m.api(), 1, Some(0), None);
        assert!(m.deferred_signals.is_empty(), "nothing to signal yet");
        mpi.send(&mut m.api(), 0, 1, 3, 64);
        assert_eq!(m.deferred_signals.len(), 1);
        assert_eq!(m.deferred_signals[0].1, tok);
    }

    #[test]
    fn tag_matching_is_selective() {
        let mpi = world(2);
        let mut m = MockApi::new();
        mpi.send(&mut m.api(), 0, 1, 1, 0);
        let _tok = mpi.recv(&mut m.api(), 1, Some(0), Some(2));
        assert!(m.deferred_signals.is_empty(), "tag 1 must not match recv tag 2");
        mpi.send(&mut m.api(), 0, 1, 2, 0);
        assert_eq!(m.deferred_signals.len(), 1, "tag 2 matches");
    }

    #[test]
    fn any_source_any_tag_wildcards() {
        let mpi = world(3);
        let mut m = MockApi::new();
        mpi.send(&mut m.api(), 2, 0, 99, 0);
        let _ = mpi.recv(&mut m.api(), 0, None, None);
        assert_eq!(m.deferred_signals.len(), 1);
    }

    #[test]
    fn fifo_matching_order() {
        let mpi = world(2);
        let mut m = MockApi::new();
        // Two messages same (src, tag); two receives: first recv gets the
        // first message.
        mpi.send(&mut m.api(), 0, 1, 5, 0);
        m.now = SimTime::ZERO + SimDuration::from_millis(1);
        mpi.send(&mut m.api(), 0, 1, 5, 0);
        let r1 = mpi.irecv(&mut m.api(), 1, Some(0), Some(5));
        let r2 = mpi.irecv(&mut m.api(), 1, Some(0), Some(5));
        let t1 = mpi.wait(&mut m.api(), r1);
        let t2 = mpi.wait(&mut m.api(), r2);
        let find = |tok| m.deferred_signals.iter().find(|(_, t)| *t == tok).unwrap().0;
        assert!(find(t1) < find(t2), "first posted recv completes first");
    }

    #[test]
    fn waitall_waits_for_latest() {
        let mpi = world(3);
        let mut m = MockApi::new();
        let r1 = mpi.irecv(&mut m.api(), 0, Some(1), None);
        let r2 = mpi.irecv(&mut m.api(), 0, Some(2), None);
        let tok = mpi.waitall(&mut m.api(), &[r1, r2]);
        assert!(m.deferred_signals.is_empty());
        mpi.send(&mut m.api(), 1, 0, 0, 0);
        assert!(m.deferred_signals.is_empty(), "one of two done");
        m.now = SimTime::ZERO + SimDuration::from_millis(5);
        mpi.send(&mut m.api(), 2, 0, 0, 1_000_000);
        assert_eq!(m.deferred_signals.len(), 1);
        let (at, t) = m.deferred_signals[0];
        assert_eq!(t, tok);
        assert_eq!(at, m.now + MpiConfig::default().transfer_time(1_000_000));
    }

    #[test]
    fn waitall_on_completed_requests_signals_immediately() {
        let mpi = world(2);
        let mut m = MockApi::new();
        let s = mpi.isend(&mut m.api(), 0, 1, 0, 128);
        let tok = mpi.waitall(&mut m.api(), &[s]);
        assert_eq!(m.deferred_signals.len(), 1);
        assert_eq!(m.deferred_signals[0].1, tok);
        assert_eq!(m.deferred_signals[0].0, m.now, "no waiting for eager send");
    }

    #[test]
    #[should_panic(expected = "request waited twice")]
    fn double_wait_panics() {
        let mpi = world(2);
        let mut m = MockApi::new();
        let s = mpi.isend(&mut m.api(), 0, 1, 0, 0);
        let _ = mpi.wait(&mut m.api(), s);
        let _ = mpi.wait(&mut m.api(), s);
    }

    #[test]
    fn stats_accumulate() {
        let mpi = world(2);
        let mut m = MockApi::new();
        mpi.send(&mut m.api(), 0, 1, 0, 100);
        mpi.send(&mut m.api(), 1, 0, 0, 200);
        assert_eq!(mpi.messages_sent(), 2);
        assert_eq!(mpi.bytes_sent(), 300);
        assert_eq!(mpi.size(), 2);
    }

    #[test]
    fn delay_spike_with_certain_probability_adds_extra_latency() {
        let mpi = world(2);
        let extra = SimDuration::from_millis(50);
        mpi.install_faults(MpiFaultConfig {
            delay_prob: 1.0,
            delay_extra: extra,
            seed: 7,
            crash: None,
        });
        let mut m = MockApi::new();
        mpi.send(&mut m.api(), 0, 1, 0, 1000);
        let _ = mpi.recv(&mut m.api(), 1, Some(0), None);
        let expected = SimTime::ZERO + MpiConfig::default().transfer_time(1000) + extra;
        assert_eq!(m.deferred_signals[0].0, expected);
        assert_eq!(mpi.fault_stats().delays_injected, 1);
    }

    #[test]
    fn take_crash_fires_once_at_configured_iteration() {
        let mpi = world(2);
        mpi.install_faults(MpiFaultConfig {
            delay_prob: 0.0,
            delay_extra: SimDuration::ZERO,
            seed: 1,
            crash: Some(RankCrash {
                rank: 1,
                at_iteration: 3,
                policy: RankFailurePolicy::FailStop,
            }),
        });
        assert_eq!(mpi.take_crash(1, 2), None, "too early");
        assert_eq!(mpi.take_crash(0, 3), None, "wrong rank");
        assert_eq!(mpi.take_crash(1, 3), Some(RankFailurePolicy::FailStop));
        assert_eq!(mpi.take_crash(1, 4), None, "one-shot");
    }

    #[test]
    fn abort_releases_waiters_and_pre_signals_later_collectives() {
        let mpi = world(2);
        let mut m = MockApi::new();
        // Rank 1 blocks on a recv that will never be matched; rank 0 sits
        // in a barrier rank 1 will never reach.
        let recv_tok = mpi.recv(&mut m.api(), 1, Some(0), None);
        let bar_tok = mpi.barrier(&mut m.api(), 0);
        assert!(m.deferred_signals.is_empty());

        mpi.abort(&mut m.api(), 1, 5);
        assert!(mpi.aborted());
        assert_eq!(mpi.fault_stats().aborted_by, Some((1, 5)));
        let signalled: Vec<_> = m.deferred_signals.iter().map(|(_, t)| *t).collect();
        assert!(signalled.contains(&recv_tok), "blocked recv released");
        assert!(signalled.contains(&bar_tok), "blocked barrier released");

        // Post-abort waits and collectives pre-signal instead of blocking.
        let before = m.deferred_signals.len();
        let _ = mpi.barrier(&mut m.api(), 0);
        let s = mpi.isend(&mut m.api(), 0, 1, 0, 0);
        let _ = mpi.waitall(&mut m.api(), &[s]);
        assert_eq!(m.deferred_signals.len(), before + 2);

        // A second abort is a no-op: the first record wins.
        mpi.abort(&mut m.api(), 0, 9);
        assert_eq!(mpi.fault_stats().aborted_by, Some((1, 5)));
    }

    #[test]
    fn unfaulted_world_reports_zero_fault_stats() {
        let mpi = world(2);
        assert_eq!(mpi.fault_stats(), MpiFaultStats::default());
        assert_eq!(mpi.take_crash(0, 100), None);
        assert!(!mpi.aborted());
    }

    #[test]
    fn barrier_token_pre_signalled_for_last_arriver() {
        let mpi = world(2);
        let mut m = MockApi::at(SimTime::ZERO, TaskId(0));
        let t0 = mpi.barrier(&mut m.api(), 0);
        assert!(m.deferred_signals.is_empty(), "rank 0 waits");
        let t1 = mpi.barrier(&mut m.api(), 1);
        // Both tokens released at the same post-barrier instant.
        let times: Vec<SimTime> = [t0, t1]
            .iter()
            .map(|tok| m.deferred_signals.iter().find(|(_, t)| t == tok).unwrap().0)
            .collect();
        assert_eq!(times[0], times[1]);
        assert!(times[0] > m.now);
    }
}
