//! A simulated MPI layer over the `schedsim` kernel.
//!
//! The paper's workloads are MPI applications (MPICH 1.0.4 on a single
//! node); what the *scheduler* observes of MPI is the alternation of
//! compute phases and blocking waits — `mpi_barrier` in MetBench,
//! `mpi_isend`/`mpi_irecv`/`mpi_waitall` in BT-MZ, fine-grained send/recv
//! in SIESTA. This crate reproduces those semantics:
//!
//! * eager point-to-point messages with a latency + bandwidth cost model
//!   and MPI's non-overtaking FIFO matching by `(source, tag)`;
//! * non-blocking requests (`isend`/`irecv`) and `wait`/`waitall`;
//! * collectives (barrier, bcast, reduce, allreduce, gather, alltoall)
//!   with a logarithmic-tree cost model.
//!
//! Every potentially blocking call returns a [`schedsim::WaitToken`]; the
//! calling program returns `Action::Block(token)` and the kernel puts the
//! task to sleep until the operation completes — which is precisely the
//! "waiting phase" the paper's Load Imbalance Detector measures.

pub mod collective;
pub mod config;
pub mod fault;
pub mod world;

pub use collective::CollectiveOp;
pub use config::MpiConfig;
pub use fault::{MpiFaultConfig, MpiFaultStats, RankCrash, RankFailurePolicy};
pub use world::{Mpi, MpiWorld, Rank, Request};
