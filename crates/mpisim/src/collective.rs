//! Collective operations.
//!
//! Each collective call site is a *generation*: the g-th collective call of
//! rank r joins generation g (MPI requires all ranks to issue the same
//! collective sequence, which is asserted). Completion semantics:
//!
//! * synchronizing ops (barrier, allreduce, alltoall) release every rank a
//!   tree-latency after the **last** arrival;
//! * rooted fan-in ops (reduce, gather) release non-roots as soon as their
//!   contribution is handed off, and the root a tree-latency after the last
//!   arrival;
//! * bcast releases the root immediately and every other rank a
//!   tree-latency after the **root** arrives (or its own arrival, whichever
//!   is later).

use crate::config::MpiConfig;
use crate::world::Rank;
use schedsim::{KernelApi, WaitToken};
use simcore::SimTime;
use std::collections::BTreeMap;

/// The collective operations the substrate models.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CollectiveOp {
    Barrier,
    Bcast { root: Rank },
    Reduce { root: Rank },
    Gather { root: Rank },
    Allreduce,
    Alltoall,
}

impl CollectiveOp {
    /// Does `rank` have to wait for every other rank?
    fn waits_for_all(&self, rank: Rank) -> bool {
        match *self {
            CollectiveOp::Barrier | CollectiveOp::Allreduce | CollectiveOp::Alltoall => true,
            CollectiveOp::Reduce { root } | CollectiveOp::Gather { root } => rank == root,
            CollectiveOp::Bcast { .. } => false,
        }
    }
}

struct GenState {
    op: CollectiveOp,
    arrivals: Vec<Option<SimTime>>,
    /// Ranks whose completion is deferred until a condition resolves.
    pending: Vec<(Rank, WaitToken)>,
    arrived_count: usize,
}

/// Per-world collective bookkeeping.
pub struct Collectives {
    size: usize,
    /// Next generation index per rank.
    next_gen: Vec<u64>,
    states: BTreeMap<u64, GenState>,
}

impl Collectives {
    pub fn new(size: usize) -> Self {
        Collectives { size, next_gen: vec![0; size], states: BTreeMap::new() }
    }

    /// Rank `rank` arrives at its next collective, which must be `op`.
    /// Returns the token the rank should block on.
    pub fn arrive(
        &mut self,
        api: &mut KernelApi<'_>,
        rank: Rank,
        op: CollectiveOp,
        bytes: u64,
        cfg: &MpiConfig,
    ) -> WaitToken {
        assert!(rank < self.size, "rank out of range");
        let gen = self.next_gen[rank];
        self.next_gen[rank] += 1;
        let size = self.size;
        let state = self.states.entry(gen).or_insert_with(|| GenState {
            op,
            arrivals: vec![None; size],
            pending: Vec::new(),
            arrived_count: 0,
        });
        assert_eq!(
            state.op, op,
            "collective mismatch at generation {gen}: rank {rank} issued {op:?}, others {:?}",
            state.op
        );
        debug_assert!(state.arrivals[rank].is_none(), "rank re-entered collective");
        let now = api.now();
        state.arrivals[rank] = Some(now);
        state.arrived_count += 1;

        let token = api.new_token();
        let tree = cfg.collective_time(size) + cfg.transfer_time(bytes) - cfg.latency;

        // Can this rank's completion be resolved right now?
        let resolved_at: Option<SimTime> = match op {
            CollectiveOp::Bcast { root } => {
                if rank == root {
                    // Root hands the data to the tree and proceeds.
                    Some(now + cfg.latency)
                } else {
                    state.arrivals[root].map(|r| (r + tree).max(now))
                }
            }
            CollectiveOp::Reduce { root } | CollectiveOp::Gather { root } if rank != root => {
                Some(now + cfg.latency)
            }
            _ => None, // waits for all; resolved below if we are last
        };

        match resolved_at {
            Some(at) => api.signal_at(at.max(now), token),
            None => state.pending.push((rank, token)),
        }

        // Resolve deferred completions this arrival unlocks.
        if state.arrived_count == size {
            // INVARIANT: arrived_count == size means every slot was filled
            // by the assignment above, so each arrival is Some and the
            // non-empty vec has a max.
            let last = state.arrivals.iter().map(|a| a.expect("all arrived")).max().unwrap();
            let release = last + tree;
            for (r, tok) in state.pending.drain(..) {
                debug_assert!(state.op.waits_for_all(r) || matches!(op, CollectiveOp::Bcast { .. }));
                api.signal_at(release.max(now), tok);
            }
            self.states.remove(&gen);
        } else if let CollectiveOp::Bcast { root } = op {
            if rank == root {
                // Root just arrived: release all waiting receivers.
                let release = now + tree;
                for (_, tok) in state.pending.drain(..) {
                    api.signal_at(release, tok);
                }
            }
        }
        token
    }

    /// Abort support: signal every deferred rank at `now` and drop all
    /// in-progress generations. Ranks wake, observe the abort flag upstream
    /// and exit; no collective can complete normally after this.
    pub(crate) fn release_all(&mut self, api: &mut KernelApi<'_>) {
        let now = api.now();
        for state in self.states.values_mut() {
            for (_, tok) in state.pending.drain(..) {
                api.signal_at(now, tok);
            }
        }
        self.states.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::program::MockApi;
    use simcore::SimDuration;

    fn cfg() -> MpiConfig {
        MpiConfig::default()
    }

    fn signal_time(m: &MockApi, tok: WaitToken) -> Option<SimTime> {
        m.deferred_signals.iter().find(|(_, t)| *t == tok).map(|(at, _)| *at)
    }

    #[test]
    fn barrier_releases_all_after_last() {
        let mut c = Collectives::new(3);
        let mut m = MockApi::new();
        let t0 = c.arrive(&mut m.api(), 0, CollectiveOp::Barrier, 0, &cfg());
        m.now = SimTime::ZERO + SimDuration::from_millis(2);
        let t1 = c.arrive(&mut m.api(), 1, CollectiveOp::Barrier, 0, &cfg());
        assert!(signal_time(&m, t0).is_none());
        assert!(signal_time(&m, t1).is_none());
        m.now = SimTime::ZERO + SimDuration::from_millis(9);
        let t2 = c.arrive(&mut m.api(), 2, CollectiveOp::Barrier, 0, &cfg());
        let r0 = signal_time(&m, t0).unwrap();
        let r1 = signal_time(&m, t1).unwrap();
        let r2 = signal_time(&m, t2).unwrap();
        assert_eq!(r0, r1);
        assert_eq!(r1, r2);
        assert!(r0 > m.now, "release strictly after last arrival");
    }

    #[test]
    fn consecutive_barriers_are_independent_generations() {
        let mut c = Collectives::new(2);
        let mut m = MockApi::new();
        let _ = c.arrive(&mut m.api(), 0, CollectiveOp::Barrier, 0, &cfg());
        let _ = c.arrive(&mut m.api(), 1, CollectiveOp::Barrier, 0, &cfg());
        // Rank 0 proceeds into a second barrier before rank 1's token is
        // even consumed — this must open generation 1, not re-join gen 0.
        let t0b = c.arrive(&mut m.api(), 0, CollectiveOp::Barrier, 0, &cfg());
        assert!(signal_time(&m, t0b).is_none(), "gen 1 incomplete");
        let t1b = c.arrive(&mut m.api(), 1, CollectiveOp::Barrier, 0, &cfg());
        assert!(signal_time(&m, t0b).is_some());
        assert!(signal_time(&m, t1b).is_some());
    }

    #[test]
    #[should_panic(expected = "collective mismatch")]
    fn mismatched_collectives_panic() {
        let mut c = Collectives::new(2);
        let mut m = MockApi::new();
        let _ = c.arrive(&mut m.api(), 0, CollectiveOp::Barrier, 0, &cfg());
        let _ = c.arrive(&mut m.api(), 1, CollectiveOp::Allreduce, 8, &cfg());
    }

    #[test]
    fn reduce_non_roots_leave_early() {
        let mut c = Collectives::new(3);
        let mut m = MockApi::new();
        let t1 = c.arrive(&mut m.api(), 1, CollectiveOp::Reduce { root: 0 }, 8, &cfg());
        let r1 = signal_time(&m, t1).expect("non-root releases immediately");
        assert_eq!(r1, m.now + cfg().latency);
        m.now = SimTime::ZERO + SimDuration::from_millis(1);
        let t0 = c.arrive(&mut m.api(), 0, CollectiveOp::Reduce { root: 0 }, 8, &cfg());
        assert!(signal_time(&m, t0).is_none(), "root waits for rank 2");
        m.now = SimTime::ZERO + SimDuration::from_millis(5);
        let _t2 = c.arrive(&mut m.api(), 2, CollectiveOp::Reduce { root: 0 }, 8, &cfg());
        let r0 = signal_time(&m, t0).expect("root released by last arrival");
        assert!(r0 > m.now);
    }

    #[test]
    fn bcast_receivers_wait_for_root_only() {
        let mut c = Collectives::new(3);
        let mut m = MockApi::new();
        let t1 = c.arrive(&mut m.api(), 1, CollectiveOp::Bcast { root: 0 }, 64, &cfg());
        assert!(signal_time(&m, t1).is_none(), "root not arrived");
        m.now = SimTime::ZERO + SimDuration::from_millis(3);
        let t0 = c.arrive(&mut m.api(), 0, CollectiveOp::Bcast { root: 0 }, 64, &cfg());
        let r0 = signal_time(&m, t0).expect("root proceeds");
        assert_eq!(r0, m.now + cfg().latency);
        let r1 = signal_time(&m, t1).expect("receiver released by root arrival");
        assert!(r1 > r0);
        // A late receiver completes relative to the root, not the stragglers.
        m.now = SimTime::ZERO + SimDuration::from_millis(20);
        let t2 = c.arrive(&mut m.api(), 2, CollectiveOp::Bcast { root: 0 }, 64, &cfg());
        let r2 = signal_time(&m, t2).expect("root already arrived");
        assert!(r2 >= m.now);
    }

    #[test]
    fn allreduce_synchronizes_everyone() {
        let mut c = Collectives::new(2);
        let mut m = MockApi::new();
        let ta = c.arrive(&mut m.api(), 0, CollectiveOp::Allreduce, 1024, &cfg());
        m.now = SimTime::ZERO + SimDuration::from_millis(7);
        let tb = c.arrive(&mut m.api(), 1, CollectiveOp::Allreduce, 1024, &cfg());
        let ra = signal_time(&m, ta).unwrap();
        let rb = signal_time(&m, tb).unwrap();
        assert_eq!(ra, rb);
        // Payload size contributes to the completion time.
        assert!(ra > m.now + cfg().collective_time(2));
    }
}
