//! MPI cost model configuration.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// Latency/bandwidth model for the simulated interconnect.
///
/// The paper's machine runs all four ranks on one node, so messages move
/// through shared memory: microsecond-scale latency, ~GB/s bandwidth.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct MpiConfig {
    /// Per-message base latency.
    pub latency: SimDuration,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
    /// Extra per-hop latency charged per tree level in collectives.
    pub collective_hop: SimDuration,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            latency: SimDuration::from_micros(2),
            bandwidth: 1.0e9,
            collective_hop: SimDuration::from_micros(3),
        }
    }
}

impl MpiConfig {
    /// Transfer time of an eager message of `bytes`.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        self.latency + SimDuration::from_secs_f64(bytes as f64 / self.bandwidth)
    }

    /// Completion delay of a collective over `n` ranks, counted from the
    /// moment the last rank arrives: an up+down tree of hops.
    pub fn collective_time(&self, n: usize) -> SimDuration {
        let levels = (n.max(1) as f64).log2().ceil() as u64;
        self.latency + self.collective_hop * (2 * levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_size() {
        let c = MpiConfig::default();
        let small = c.transfer_time(0);
        assert_eq!(small, c.latency);
        let big = c.transfer_time(1_000_000_000);
        assert!(big >= SimDuration::from_secs(1), "1GB at 1GB/s");
        assert!(c.transfer_time(1024) > small);
    }

    #[test]
    fn collective_time_grows_logarithmically() {
        let c = MpiConfig::default();
        let t2 = c.collective_time(2);
        let t4 = c.collective_time(4);
        let t16 = c.collective_time(16);
        assert!(t4 >= t2);
        assert!(t16 > t4);
        // log2(16) = 4 levels vs log2(4) = 2 levels → difference of 4 hops.
        assert_eq!(t16 - t4, c.collective_hop * 4);
    }

    #[test]
    fn single_rank_collective_is_cheap() {
        let c = MpiConfig::default();
        assert_eq!(c.collective_time(1), c.latency);
    }
}
