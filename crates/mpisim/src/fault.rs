//! MPI-level fault hooks (class 3 of the fault model): message delay
//! spikes and rank stall/crash.
//!
//! As with the kernel hooks, this module is mechanism only. The `faultsim`
//! crate compiles a seeded plan into an [`MpiFaultConfig`], which a runner
//! installs with `Mpi::install_faults`. A world with no fault config draws
//! no random values and behaves bit-for-bit as before.
//!
//! Crash semantics: workload programs poll `Mpi::take_crash` at their
//! iteration boundaries (the last completed barrier — the only place a
//! checkpoint exists). A fired directive returns its [`RankFailurePolicy`]:
//!
//! * [`RankFailurePolicy::FailStop`] — the rank calls `Mpi::abort`, every
//!   blocked rank is released, all ranks observe `Mpi::aborted` and exit;
//!   the job ends cleanly with partial results and a typed error upstream.
//! * [`RankFailurePolicy::RestartFromIteration`] — the rank blocks for the
//!   configured recovery delay and re-executes the iteration it was in,
//!   modelling checkpoint/restart. The rest of the job just observes a
//!   straggler.

use crate::world::Rank;
use simcore::{SimDuration, SimRng};

/// What happens when the configured rank crashes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RankFailurePolicy {
    /// The whole job aborts cleanly (partial results + trace still
    /// returned, tagged with a typed error by the runner).
    FailStop,
    /// Checkpoint/restart: the rank re-enters at the last completed
    /// barrier after `delay` of simulated recovery time.
    RestartFromIteration { delay: SimDuration },
}

/// A rank crash directive: fires once `rank` has completed `at_iteration`
/// iterations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RankCrash {
    pub rank: Rank,
    pub at_iteration: u32,
    pub policy: RankFailurePolicy,
}

/// Fault configuration for one MPI world.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MpiFaultConfig {
    /// Per-message probability of a delay spike, in `[0, 1]`.
    pub delay_prob: f64,
    /// Extra latency a spiked message suffers.
    pub delay_extra: SimDuration,
    /// Seed of the spike stream. Draws happen in message-send order, which
    /// the kernel's deterministic event order fixes, so spikes are
    /// reproducible for a given `(config, seed, plan)`.
    pub seed: u64,
    /// Optional crash directive.
    pub crash: Option<RankCrash>,
}

/// Live fault state inside a world (one per installed config).
pub(crate) struct MpiFaultState {
    pub(crate) cfg: MpiFaultConfig,
    pub(crate) rng: SimRng,
    pub(crate) delays_injected: u64,
    pub(crate) restarts: u64,
    pub(crate) crash_consumed: bool,
}

impl MpiFaultState {
    pub(crate) fn new(cfg: MpiFaultConfig) -> Self {
        MpiFaultState {
            cfg,
            rng: SimRng::seed_from_u64(cfg.seed),
            delays_injected: 0,
            restarts: 0,
            crash_consumed: false,
        }
    }
}

/// Snapshot of per-world fault accounting, for reports and baselines.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize)]
pub struct MpiFaultStats {
    /// Messages that suffered an injected delay spike.
    pub delays_injected: u64,
    /// Checkpoint/restart re-entries the job absorbed.
    pub restarts: u64,
    /// `(rank, completed iterations)` of a fail-stop abort, if one fired.
    pub aborted_by: Option<(usize, u32)>,
}
