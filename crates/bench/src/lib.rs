//! Shared helpers for the benchmark suite.
//!
//! Criterion measures the *simulator's* wall-clock cost; the paper-shape
//! verification (who wins, by what factor) is asserted inside the bench
//! setup so a regression fails loudly rather than silently producing
//! wrong-but-fast numbers. Benchmarks run scaled-down configurations; the
//! full-scale reproduction numbers come from `cargo run --release -p
//! experiments --bin all`.

use experiments::{run, ExperimentMode, WorkloadKind};
use workloads::btmz::BtMzConfig;
use workloads::metbench::MetBenchConfig;
use workloads::metbenchvar::MetBenchVarConfig;
use workloads::siesta::SiestaConfig;

/// A MetBench scaled to a few hundred milliseconds of simulated time.
pub fn small_metbench() -> WorkloadKind {
    WorkloadKind::MetBench(MetBenchConfig {
        loads: vec![0.02, 0.08, 0.02, 0.08],
        iterations: 6,
        ..Default::default()
    })
}

/// A MetBenchVar with one swap per six iterations (three periods): enough
/// balanced iterations per period for the re-balancing to pay off, as in
/// the paper's k = 15 setup.
pub fn small_metbenchvar() -> WorkloadKind {
    WorkloadKind::MetBenchVar(MetBenchVarConfig {
        base: MetBenchConfig {
            loads: vec![0.02, 0.08, 0.02, 0.08],
            iterations: 18,
            ..Default::default()
        },
        k: 6,
    })
}

/// A BT-MZ scaled to ~1s of simulated time.
pub fn small_btmz() -> WorkloadKind {
    WorkloadKind::BtMz(BtMzConfig {
        zone_work: vec![0.007, 0.011, 0.025, 0.038],
        iterations: 20,
        ..Default::default()
    })
}

/// A SIESTA scaled to ~2s of simulated time.
pub fn small_siesta() -> WorkloadKind {
    WorkloadKind::Siesta(SiestaConfig {
        rank_work: vec![0.12, 0.07, 0.036, 0.026],
        iterations: 4,
        rounds: 12,
        ..Default::default()
    })
}

/// Run baseline + the given mode once and assert the improvement lies in
/// `expect` percent — the bench's shape guard.
pub fn assert_improvement(wl: &WorkloadKind, mode: ExperimentMode, expect: std::ops::Range<f64>) {
    let base = run(wl, ExperimentMode::Baseline, 1).exec_secs;
    let ours = run(wl, mode, 1).exec_secs;
    let imp = 100.0 * (base - ours) / base;
    assert!(
        expect.contains(&imp),
        "{} {:?}: improvement {imp:.1}% outside {expect:?}",
        wl.name(),
        mode
    );
}
