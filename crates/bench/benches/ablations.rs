//! Ablation benches for the design choices DESIGN.md calls out. Each group
//! prints the *outcome* of the ablation (execution time under each variant)
//! once during setup, then benches the variants so regressions in either
//! dimension are visible.

use bench::small_metbench;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use experiments::WorkloadKind;
use hpcsched::prelude::*;
use schedsim::builder::PerfModelChoice;
use schedsim::policies::Table1Balancer;
use schedsim::{BalancedClass, HpcSchedConfig};
use workloads::metbench::MetBenchConfig;
use workloads::SchedulerSetup;

fn mb_cfg(wl: &WorkloadKind) -> MetBenchConfig {
    match wl {
        WorkloadKind::MetBench(c) => c.clone(),
        _ => unreachable!(),
    }
}

/// Run MetBench with a fully custom builder.
fn run_custom(cfg: &MetBenchConfig, builder: KernelBuilder, hpc: bool) -> f64 {
    let (mut kernel, setup) = if hpc {
        (builder.build(), SchedulerSetup::Hpc)
    } else {
        (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
    };
    let (workers, master) = workloads::metbench::spawn(&mut kernel, cfg, &setup);
    let mut all = workers;
    all.push(master);
    kernel
        .run_until_exited(&all, SimDuration::from_secs(600))
        .expect("finishes")
        .as_secs_f64()
}

/// Ablation: maximum priority difference ±1 vs ±2 vs ±3 (paper §II limits
/// itself to ±2 because the victim's loss explodes beyond that).
fn ablation_priority_range(c: &mut Criterion) {
    let cfg = mb_cfg(&small_metbench());
    println!("\n[ablation] priority range (MetBench):");
    let mut g = c.benchmark_group("ablation_priority_range");
    g.sample_size(10);
    for (label, max_prio) in [("range_pm1", "5"), ("range_pm2", "6")] {
        let mk = || {
            let mut hpc = HpcSchedConfig::default();
            hpc.tunables.set("max_prio", max_prio).unwrap();
            KernelBuilder::new().hpc_config(hpc)
        };
        let secs = run_custom(&cfg, mk(), true);
        println!("  max diff {label}: {secs:.3}s");
        let cfg2 = cfg.clone();
        g.bench_function(label, move |b| b.iter(|| black_box(run_custom(&cfg2, mk(), true))));
    }
    g.finish();
}

/// Ablation: idle-loop model. With a snoozing idle loop the sibling of a
/// waiting task already owns the core, so prioritization buys much less —
/// the reason the paper's effect depends on the spinning idle loop of the
/// era's kernels.
fn ablation_idle_mode(c: &mut Criterion) {
    use power5::{Chip, IdleMode};
    let cfg = mb_cfg(&small_metbench());
    println!("\n[ablation] idle-loop model (MetBench baseline vs HPC):");
    let mut g = c.benchmark_group("ablation_idle_mode");
    g.sample_size(10);
    for (label, mode) in [("spin", IdleMode::Spin), ("snooze", IdleMode::Snooze)] {
        // Build kernels on chips with the chosen idle mode.
        let run_mode = move |cfg: &MetBenchConfig, hpc: bool| {
            let mut chip = Chip::new(Topology::openpower_710());
            chip.set_idle_mode(mode);
            let mut kernel = Kernel::new(chip, KernelConfig::default());
            let setup = if hpc {
                let tun = std::sync::Arc::new(std::sync::Mutex::new(
                    hpcsched::HpcTunables::default(),
                ));
                let balancer = Table1Balancer::new(
                    Box::new(hpcsched::UniformHeuristic),
                    Box::new(hpcsched::Power5Mechanism),
                    tun,
                );
                kernel.install_class_after_rt(Box::new(BalancedClass::new(
                    HpcPolicyKind::Rr,
                    SimDuration::from_millis(100),
                    Box::new(balancer),
                )));
                SchedulerSetup::Hpc
            } else {
                SchedulerSetup::Baseline
            };
            let (workers, master) = workloads::metbench::spawn(&mut kernel, cfg, &setup);
            let mut all = workers;
            all.push(master);
            kernel
                .run_until_exited(&all, SimDuration::from_secs(600))
                .expect("finishes")
                .as_secs_f64()
        };
        let base = run_mode(&cfg, false);
        let hpc = run_mode(&cfg, true);
        println!("  idle={label}: baseline {base:.3}s  hpc {hpc:.3}s  gain {:+.1}%",
            100.0 * (base - hpc) / base);
        let cfg2 = cfg.clone();
        g.bench_function(label, move |b| b.iter(|| black_box(run_mode(&cfg2, true))));
    }
    g.finish();
}

/// Ablation: table-driven vs analytic SMT performance model.
fn ablation_perf_model(c: &mut Criterion) {
    let cfg = mb_cfg(&small_metbench());
    println!("\n[ablation] SMT performance model (MetBench, Uniform):");
    let mut g = c.benchmark_group("ablation_perf_model");
    g.sample_size(10);
    for (label, model) in
        [("table", PerfModelChoice::Table), ("analytic_k3", PerfModelChoice::Analytic { k: 3.0 })]
    {
        let mk = move || KernelBuilder::new().perf_model(model);
        let base = run_custom(&cfg, mk(), false);
        let hpc = run_custom(&cfg, mk(), true);
        println!("  model={label}: baseline {base:.3}s  hpc {hpc:.3}s  gain {:+.1}%",
            100.0 * (base - hpc) / base);
        let cfg2 = cfg.clone();
        g.bench_function(label, move |b| b.iter(|| black_box(run_custom(&cfg2, mk(), true))));
    }
    g.finish();
}

/// Ablation: FIFO vs RR intra-class policy (paper §IV-A reports no
/// observable difference at one process per CPU).
fn ablation_policy(c: &mut Criterion) {
    let cfg = mb_cfg(&small_metbench());
    println!("\n[ablation] HPC intra-class policy:");
    let mut g = c.benchmark_group("ablation_policy");
    g.sample_size(10);
    let mut outcomes = Vec::new();
    for (label, policy) in [("rr", HpcPolicyKind::Rr), ("fifo", HpcPolicyKind::Fifo)] {
        let mk = move || {
            KernelBuilder::new().hpc_config(HpcSchedConfig { policy, ..Default::default() })
        };
        let secs = run_custom(&cfg, mk(), true);
        println!("  policy={label}: {secs:.3}s");
        outcomes.push(secs);
        let cfg2 = cfg.clone();
        g.bench_function(label, move |b| b.iter(|| black_box(run_custom(&cfg2, mk(), true))));
    }
    // Paper: "essentially no difference between these two policies".
    assert!(
        (outcomes[0] - outcomes[1]).abs() < outcomes[0] * 0.02,
        "FIFO and RR should agree at one task/CPU: {outcomes:?}"
    );
    g.finish();
}

criterion_group!(
    benches,
    ablation_priority_range,
    ablation_idle_mode,
    ablation_perf_model,
    ablation_policy
);
criterion_main!(benches);
