//! One benchmark per evaluation table/figure (paper Tables III–VI,
//! Figures 2–6): each group first *asserts the paper's shape* on a
//! scaled-down configuration (winner and approximate factor), then measures
//! the simulation cost of regenerating that experiment cell.

use bench::{assert_improvement, small_btmz, small_metbench, small_metbenchvar, small_siesta};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use experiments::{run, ExperimentMode, WorkloadKind};
use tracefmt::{render_timeline, AsciiOptions};

fn cell(c: &mut Criterion, group: &str, wl: &WorkloadKind, modes: &[ExperimentMode]) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    for &mode in modes {
        g.bench_function(mode.label(), |b| {
            b.iter(|| black_box(run(wl, mode, 1).exec_secs))
        });
    }
    g.finish();
}

fn table3_metbench(c: &mut Criterion) {
    let wl = small_metbench();
    // Paper: ~12-13% improvement for static and dynamic.
    assert_improvement(&wl, ExperimentMode::Static, 6.0..20.0);
    assert_improvement(&wl, ExperimentMode::Uniform, 6.0..20.0);
    cell(c, "table3_metbench", &wl, &ExperimentMode::ALL);
}

fn table4_metbenchvar(c: &mut Criterion) {
    let wl = small_metbenchvar();
    // Paper: ~11% for the dynamic heuristics on varying behaviour.
    assert_improvement(&wl, ExperimentMode::Adaptive, 3.0..20.0);
    cell(c, "table4_metbenchvar", &wl, &ExperimentMode::ALL);
}

fn table5_btmz(c: &mut Criterion) {
    let wl = small_btmz();
    // Paper: ~16%.
    assert_improvement(&wl, ExperimentMode::Uniform, 8.0..20.0);
    cell(c, "table5_btmz", &wl, &ExperimentMode::ALL);
}

fn table6_siesta(c: &mut Criterion) {
    let wl = small_siesta();
    cell(
        c,
        "table6_siesta",
        &wl,
        &[ExperimentMode::Baseline, ExperimentMode::Uniform, ExperimentMode::Adaptive],
    );
}

fn figures_trace_rendering(c: &mut Criterion) {
    // Figures 2–6 are trace renders; measure collection + rendering.
    let wl = small_metbench();
    let result = run(&wl, ExperimentMode::Uniform, 1);
    let mut g = c.benchmark_group("figures_trace");
    g.bench_function("render_ascii_110cols", |b| {
        b.iter(|| {
            black_box(render_timeline(
                &result.timeline,
                &AsciiOptions { width: 110, ..Default::default() },
            ))
        })
    });
    g.bench_function("collect_and_render", |b| {
        b.iter(|| {
            let r = run(&wl, ExperimentMode::Uniform, 1);
            black_box(render_timeline(&r.timeline, &AsciiOptions::default()))
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    table3_metbench,
    table4_metbenchvar,
    table5_btmz,
    table6_siesta,
    figures_trace_rendering
);
criterion_main!(benches);
