//! Fleet-scale benchmarks: the EASY reservation index against the linear
//! scan it replaced, and the batch event loop end to end.
//!
//! The old engine recomputed every shadow time by sorting a vector of
//! running-job release times and walking it — O(n log n) per scheduling
//! decision. The `ReleaseIndex` keeps `(end, seq)` in a BTreeSet so one
//! decision walks at most `need` entries of an already-ordered set:
//! O(log n + need). These groups pin the gap at 1k/10k/100k running jobs.

use batchsim::{heavy_light_mix, run_batch, BatchConfig, ReleaseIndex};
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use simcore::SimTime;

/// Deterministic pseudo-random release set: `n` running jobs with spread
/// end times and gang widths 1..=32.
fn release_set(n: u64) -> Vec<(u64, SimTime, usize)> {
    (0..n)
        .map(|i| {
            let h = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
            (i, SimTime(1_000_000 + h % 10_000_000), 1 + (h % 32) as usize)
        })
        .collect()
}

/// The pre-index shadow computation: sort the release times, walk until
/// enough nodes have freed up. One full sort per scheduling decision.
fn linear_shadow(entries: &[(u64, SimTime, usize)], mut avail: usize, need: usize) -> Option<SimTime> {
    let mut scratch: Vec<(SimTime, u64, usize)> =
        entries.iter().map(|&(seq, end, w)| (end, seq, w)).collect();
    scratch.sort();
    for (end, _, w) in scratch {
        if avail >= need {
            break;
        }
        avail += w;
        if avail >= need {
            return Some(end);
        }
    }
    None
}

fn bench_reservation_index(c: &mut Criterion) {
    for n in [1_000u64, 10_000, 100_000] {
        let entries = release_set(n);
        let name = format!("reservation_{n}");
        let mut g = c.benchmark_group(&name);

        g.bench_function("linear_sort_walk", |b| {
            b.iter(|| black_box(linear_shadow(&entries, 64, 512)))
        });

        let mut index = ReleaseIndex::new();
        for &(seq, end, w) in &entries {
            index.insert(seq, end, w);
        }
        g.bench_function("release_index_shadow", |b| {
            b.iter(|| black_box(index.shadow(64, 512)))
        });

        g.bench_function("release_index_churn", |b| {
            let mut seq = n;
            b.iter(|| {
                // Steady state: one job finishes, one is admitted, one
                // shadow query — the per-decision pattern of the engine.
                index.remove(seq - n);
                let h = seq.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
                index.insert(seq, SimTime(1_000_000 + h % 10_000_000), 1 + (h % 32) as usize);
                seq += 1;
                black_box(index.shadow(64, 512))
            })
        });
        g.finish();
    }
}

fn bench_batch_event_loop(c: &mut Criterion) {
    let mut g = c.benchmark_group("batch_event_loop");
    g.sample_size(10);

    let jobs = heavy_light_mix(2008, 200);
    g.bench_function("materialized_200_jobs", |b| {
        b.iter(|| black_box(run_batch(&jobs, &BatchConfig::default(), None)))
    });

    let cfg = fleetsim::scaled_config(5_000, 1000, 2008);
    g.bench_function("streaming_5k_jobs_1k_nodes", |b| {
        b.iter(|| black_box(fleetsim::run_fleet(&cfg).trace_hash))
    });
    g.finish();
}

criterion_group!(benches, bench_reservation_index, bench_batch_event_loop);
criterion_main!(benches);
