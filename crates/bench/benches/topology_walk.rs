//! Topology-walk micro-benchmarks: the scheduling-domain tree queries on
//! the balancer's hot path (DESIGN.md §16).
//!
//! `group_range`/`migration_cost` are O(levels) index arithmetic and
//! `domain_cpus` materialises one contiguous range — none of them may
//! degrade to an O(num_cpus) filter as trees deepen, which is what these
//! benches watch across a 2-level reference box, a 4-level NUMA machine,
//! and a deliberately deep 7-level tree.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use power5::{CpuId, DomainLevel, Topology};

/// (label, spec) per tree depth under test.
const TREES: [(&str, &str); 3] = [
    ("openpower_710", "2c2t"),
    ("numa_4level", "2x2n4c2t"),
    ("deep_7level", "2x2x2x2x2c2t"),
];

fn bench_walks(c: &mut Criterion) {
    let mut g = c.benchmark_group("topology_walk");
    for (label, spec) in TREES {
        let topo = Topology::parse(spec).expect("bench specs are valid");
        let n = topo.num_cpus();

        g.bench_function(format!("migration_cost_all_pairs_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for a in 0..n {
                    for bb in 0..n {
                        acc += u64::from(topo.migration_cost(CpuId(a), CpuId(bb)));
                    }
                }
                black_box(acc)
            })
        });

        g.bench_function(format!("group_range_every_level_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for cpu in 0..n {
                    for l in 0..topo.num_levels() {
                        acc += topo.group_range(CpuId(cpu), l).len();
                    }
                }
                black_box(acc)
            })
        });

        g.bench_function(format!("domain_cpus_core_and_chip_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for cpu in 0..n {
                    acc += topo.domain_cpus(CpuId(cpu), DomainLevel::Core).len();
                    acc += topo.domain_cpus(CpuId(cpu), DomainLevel::Chip).len();
                }
                black_box(acc)
            })
        });

        g.bench_function(format!("numa_node_of_{label}"), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for cpu in 0..n {
                    acc += topo.numa_node_of(CpuId(cpu));
                }
                black_box(acc)
            })
        });
    }

    // The parser itself: spec → tree, the CLI/deserialize path.
    g.bench_function("parse_deep_spec", |b| {
        b.iter(|| black_box(Topology::parse(black_box("2x2x2x2x2c2t")).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_walks);
criterion_main!(benches);
