//! Bench for paper Table I: the decode-slot arbitration path.
//!
//! Verifies the Table I ratios during setup, then measures the two
//! implementations the simulator can use: the closed-form share computation
//! (hot path of the performance model) and the slot-accurate reference
//! arbiter.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use power5::decode::{decode_share, SlotArbiter};
use power5::{Chip, HwPriority, PrivilegeLevel, TaskPerfTraits, Topology};

fn prio(v: u8) -> HwPriority {
    HwPriority::new(v).unwrap()
}

fn verify_table1() {
    for (d, r, high, low) in [(0u8, 2u64, 1u64, 1u64), (1, 4, 3, 1), (2, 8, 7, 1)] {
        let mut arb = SlotArbiter::new(prio(4 + d), prio(4));
        assert_eq!(arb.window() as u64, r);
        assert_eq!(arb.run(r), (high, low));
    }
}

fn bench_decode(c: &mut Criterion) {
    verify_table1();

    let mut g = c.benchmark_group("table1_decode");

    g.bench_function("closed_form_share_all_pairs", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for a in 1..=7u8 {
                for bb in 1..=7u8 {
                    acc += decode_share(black_box(prio(a)), black_box(prio(bb))).a;
                }
            }
            acc
        })
    });

    g.bench_function("slot_arbiter_1k_cycles", |b| {
        b.iter(|| {
            let mut arb = SlotArbiter::new(prio(6), prio(4));
            black_box(arb.run(black_box(1_000)))
        })
    });

    g.bench_function("chip_speed_recompute", |b| {
        let mut chip = Chip::new(Topology::openpower_710());
        for cpu in chip.topology().cpus().collect::<Vec<_>>() {
            chip.set_load(cpu, Some(TaskPerfTraits::default()));
        }
        chip.set_priority(power5::CpuId(0), prio(6), PrivilegeLevel::Supervisor).unwrap();
        b.iter(|| black_box(chip.all_speeds()))
    });

    g.finish();
}

criterion_group!(benches, bench_decode);
criterion_main!(benches);
