//! Scheduler micro-benchmarks: the hot data structures and paths of the
//! simulated kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hpcsched::prelude::*;
use schedsim::program::ScriptedProgram;
use schedsim::rbtree::RbTree;
use simcore::EventQueue;

fn bench_rbtree(c: &mut Criterion) {
    let mut g = c.benchmark_group("rbtree");
    for n in [16usize, 256, 4096] {
        g.bench_function(format!("insert_pop_churn_{n}"), |b| {
            b.iter(|| {
                let mut t = RbTree::new();
                for i in 0..n as u64 {
                    t.insert(((i * 2654435761) % 1_000_003, i));
                }
                while let Some(k) = t.pop_min() {
                    black_box(k);
                }
            })
        });
    }
    // Comparison point: std BTreeSet under the same churn.
    g.bench_function("std_btreeset_churn_256", |b| {
        b.iter(|| {
            let mut t = std::collections::BTreeSet::new();
            for i in 0..256u64 {
                t.insert(((i * 2654435761) % 1_000_003, i));
            }
            while let Some(k) = t.pop_first() {
                black_box(k);
            }
        })
    });
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("event_queue");
    g.bench_function("schedule_pop_4k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..4096u64 {
                q.schedule(simcore::SimTime((i * 37) % 10_000), i);
            }
            while let Some(ev) = q.pop() {
                black_box(ev.payload);
            }
        })
    });
    g.bench_function("schedule_cancel_half_4k", |b| {
        b.iter(|| {
            let mut q = EventQueue::new();
            let ids: Vec<_> =
                (0..4096u64).map(|i| q.schedule(simcore::SimTime(i), i)).collect();
            for id in ids.iter().step_by(2) {
                q.cancel(*id);
            }
            while let Some(ev) = q.pop() {
                black_box(ev.payload);
            }
        })
    });
    g.finish();
}

fn bench_kernel_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel");
    g.sample_size(20);

    // Full context-switch cycle: two CPU-bound tasks sharing one CPU under
    // CFS, 100ms of simulated time (≈ tens of switches + ticks).
    g.bench_function("cfs_timeslice_cycle_100ms", |b| {
        b.iter(|| {
            let mut k = KernelBuilder::new()
                .topology(Topology::single_core_st())
                .without_hpc_class()
                .build();
            for i in 0..2 {
                k.spawn(
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(10.0)),
                    SpawnOptions::default(),
                );
            }
            k.run_for(SimDuration::from_millis(100));
            black_box(k.metrics().context_switches)
        })
    });

    // Wakeup → priority decision → dispatch: an HPC ping-pong pair.
    g.bench_function("hpc_iteration_pipeline_64_iters", |b| {
        b.iter(|| {
            let mut k = KernelBuilder::new().build();
            let mpi = mpisim::Mpi::new(2, mpisim::MpiConfig::default());
            let mut ids = Vec::new();
            for rank in 0..2usize {
                let mpi = mpi.clone();
                let mut compute = true;
                let mut left = 64u32;
                let load = if rank == 0 { 0.0002 } else { 0.0008 };
                ids.push(k.spawn(
                    format!("r{rank}"),
                    SchedPolicy::Hpc,
                    Box::new(schedsim::program::FnProgram(move |api: &mut KernelApi<'_>| {
                        if compute {
                            compute = false;
                            Action::Compute(load)
                        } else if left > 0 {
                            left -= 1;
                            compute = true;
                            Action::Block(mpi.barrier(api, rank))
                        } else {
                            Action::Exit
                        }
                    })),
                    SpawnOptions { affinity: Some(vec![CpuId(rank)]), ..Default::default() },
                ));
            }
            black_box(k.run_until_exited(&ids, SimDuration::from_secs(10)))
        })
    });

    g.finish();
}

criterion_group!(benches, bench_rbtree, bench_event_queue, bench_kernel_paths);
criterion_main!(benches);
