//! Serial-vs-parallel byte-identity property.
//!
//! `run_batch` must be a pure function of `(stream, config, fault)` with
//! [`BatchConfig::threads`] changing nothing but wall-clock time: the
//! rendered event trace, the metrics snapshot, and every per-job record
//! must match the serial run exactly — across random seeds, all three
//! disciplines, thread counts 2–8, and with a node-failure plan active.

use batchsim::{heavy_light_mix, run_batch, BatchConfig, BatchFault, Discipline};
use cluster::LocalSched;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn parallel_batch_runs_are_byte_identical(
        seed in any::<u64>(),
        njobs in 6usize..10,
        disc in 0usize..3,
        threads in 2usize..=8,
        with_fault in any::<bool>(),
        fail_node in 0usize..4,
        fail_after in 0u32..4,
    ) {
        let jobs = heavy_light_mix(seed, njobs);
        let fault = with_fault.then_some(BatchFault {
            node: fail_node,
            after_completions: fail_after,
            max_retries: 1,
            restart_secs: 0.05,
        });
        let cfg = BatchConfig {
            discipline: Discipline::ALL[disc],
            sched: LocalSched::Cfs,
            threads: 1,
            ..Default::default()
        };
        let serial = run_batch(&jobs, &cfg, fault.as_ref());
        let par = run_batch(&jobs, &BatchConfig { threads, ..cfg }, fault.as_ref());

        prop_assert_eq!(
            serial.render_trace(), par.render_trace(),
            "trace diverged at threads={}", threads
        );
        prop_assert_eq!(&serial.metrics, &par.metrics, "metrics diverged");
        prop_assert_eq!(serial.makespan, par.makespan);
        prop_assert_eq!(serial.failed_nodes.clone(), par.failed_nodes.clone());
        prop_assert_eq!(serial.jobs.len(), par.jobs.len());
        for (a, b) in serial.jobs.iter().zip(&par.jobs) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.wait, b.wait, "job {} wait", a.id);
            prop_assert_eq!(a.turnaround, b.turnaround, "job {} turnaround", a.id);
            prop_assert_eq!(a.slowdown, b.slowdown, "job {} slowdown", a.id);
            prop_assert_eq!(a.node_secs_held, b.node_secs_held, "job {} held", a.id);
            prop_assert_eq!(
                &a.outcome.result.node_secs, &b.outcome.result.node_secs,
                "job {} node_secs", a.id
            );
        }
    }
}
