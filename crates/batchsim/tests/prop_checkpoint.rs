//! Crash/resume byte-identity property.
//!
//! Checkpoint a run at a random event index — across random seeds, all
//! three disciplines, every local scheduler, optional node-failure plans,
//! and differing resume thread counts — push the image through the wire
//! format, resume it, and require the continued trace, metrics, and every
//! per-job record to match the uninterrupted run exactly. Plus the
//! durability half: a corrupted latest image must fall back to the
//! previous generation and still resume byte-identically.

use batchsim::{
    heavy_light_mix, resume_batch, run_batch, run_batch_until, BatchCheckpoint, BatchConfig,
    BatchFault, CheckpointStore, Discipline,
};
use cluster::LocalSched;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 5, ..ProptestConfig::default() })]

    #[test]
    fn resumed_runs_are_byte_identical(
        seed in any::<u64>(),
        njobs in 6usize..10,
        disc in 0usize..3,
        sched in 0usize..3,
        cut in 1usize..40,
        threads in 1usize..=8,
        with_fault in any::<bool>(),
        fail_node in 0usize..4,
        fail_after in 0u32..4,
    ) {
        let jobs = heavy_light_mix(seed, njobs);
        let fault = with_fault.then_some(BatchFault {
            node: fail_node,
            after_completions: fail_after,
            max_retries: 1,
            restart_secs: 0.05,
        });
        let cfg = BatchConfig {
            discipline: Discipline::ALL[disc],
            sched: [LocalSched::Hpc, LocalSched::Cfs, LocalSched::Static][sched],
            threads: 1,
            ..Default::default()
        };
        let full = run_batch(&jobs, &cfg, fault.as_ref());

        let Some(ckpt) = run_batch_until(&jobs, &cfg, fault.as_ref(), cut) else {
            // Stream drained before the cut: nothing to resume.
            return Ok(());
        };
        // Round-trip the wire format before resuming — what a real restart
        // after a crash would read off disk.
        let bytes = ckpt.encode();
        let decoded = BatchCheckpoint::decode(&bytes);
        prop_assert!(decoded.is_ok(), "decode failed: {:?}", decoded.err());
        // INVARIANT: checked ok on the line above.
        let mut ckpt = decoded.expect("checked ok");
        prop_assert_eq!(ckpt.encode(), bytes, "decode → encode is the identity");
        ckpt.set_threads(threads);
        let resumed = resume_batch(&ckpt);

        prop_assert_eq!(
            full.render_trace(), resumed.render_trace(),
            "trace diverged: cut={} resume threads={}", cut, threads
        );
        prop_assert_eq!(&full.metrics, &resumed.metrics, "metrics diverged");
        prop_assert_eq!(full.makespan, resumed.makespan);
        prop_assert_eq!(full.failed_nodes.clone(), resumed.failed_nodes.clone());
        prop_assert_eq!(full.jobs.len(), resumed.jobs.len());
        for (a, b) in full.jobs.iter().zip(&resumed.jobs) {
            prop_assert_eq!(a.id, b.id);
            prop_assert_eq!(a.wait, b.wait, "job {} wait", a.id);
            prop_assert_eq!(a.turnaround, b.turnaround, "job {} turnaround", a.id);
            prop_assert_eq!(a.slowdown, b.slowdown, "job {} slowdown", a.id);
            prop_assert_eq!(a.requeues, b.requeues, "job {} requeues", a.id);
            prop_assert_eq!(a.node_secs_held, b.node_secs_held, "job {} held", a.id);
            prop_assert_eq!(
                &a.outcome.result.node_secs, &b.outcome.result.node_secs,
                "job {} node_secs", a.id
            );
        }
    }
}

#[test]
fn corrupted_latest_checkpoint_recovers_from_the_previous_generation() {
    let dir = std::env::temp_dir()
        .join(format!("batchsim-prop-ckpt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let jobs = heavy_light_mix(42, 16);
    let cfg = BatchConfig { discipline: Discipline::Easy, ..Default::default() };
    let full = run_batch(&jobs, &cfg, None);

    let early = run_batch_until(&jobs, &cfg, None, 4).expect("early cut exists");
    let late = run_batch_until(&jobs, &cfg, None, 20).expect("late cut exists");
    let mut store = CheckpointStore::new(&dir).corrupt_nth_save(2);
    store.save(&early).expect("save early");
    store.save(&late).expect("save late (then corrupted)");

    let (recovered, fell_back) = CheckpointStore::load_latest(&dir).expect("fallback");
    assert!(fell_back, "the torn latest image must be skipped");
    assert_eq!(recovered.encode(), early.encode(), "fallback is the previous good image");
    assert_eq!(
        resume_batch(&recovered).render_trace(),
        full.render_trace(),
        "resume from the fallback still reproduces the uninterrupted trace"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
