//! End-to-end batch runs: determinism, discipline behaviour, fault
//! degradation, and per-job kernel conformance.

use batchsim::{
    heavy_light_mix, run_batch, BatchConfig, BatchEvent, BatchFault, BatchJob, Discipline,
    FleetStats,
};
use cluster::{JobSpec, LocalSched};
use faultsim::TaskAbortSpec;

fn cfg(discipline: Discipline) -> BatchConfig {
    BatchConfig { discipline, ..Default::default() }
}

fn start_order(out: &batchsim::BatchOutcome) -> Vec<u64> {
    out.events
        .iter()
        .filter_map(|e| match e {
            BatchEvent::Start { job, .. } => Some(*job),
            _ => None,
        })
        .collect()
}

#[test]
fn fcfs_stream_completes_and_is_deterministic() {
    let jobs = heavy_light_mix(2008, 24);
    let a = run_batch(&jobs, &cfg(Discipline::Fcfs), None);
    let b = run_batch(&jobs, &cfg(Discipline::Fcfs), None);
    assert_eq!(a.jobs.len(), 24);
    assert!(a.jobs.iter().all(|j| !j.outcome.degraded));
    assert_eq!(a.render_trace(), b.render_trace(), "byte-identical traces");
    let stats = FleetStats::from_outcome(&a);
    assert_eq!(stats.completed, 24);
    assert!(stats.makespan > 0.0 && stats.utilization > 0.0);
    assert_eq!(a.metrics.counter("batch.jobs.submitted"), 24);
    assert_eq!(a.metrics.counter("batch.jobs.completed"), 24);
    assert_eq!(a.metrics.counter("batch.jobs.degraded"), 0);
}

#[test]
fn fcfs_starts_in_arrival_order() {
    let jobs = heavy_light_mix(5, 16);
    let out = run_batch(&jobs, &cfg(Discipline::Fcfs), None);
    let order = start_order(&out);
    let mut sorted = order.clone();
    sorted.sort_unstable();
    assert_eq!(order, sorted, "FCFS never reorders: {order:?}");
}

#[test]
fn sjf_runs_the_shortest_queued_job_first() {
    // One node; three jobs queue up behind the first while it runs.
    let mk = |id: u64, iters: u32, arrival: f64| {
        BatchJob::new(id, JobSpec::new(format!("j{id}"), vec![0.05; 4], iters), arrival)
    };
    let jobs = vec![mk(0, 2, 0.01), mk(1, 6, 0.02), mk(2, 1, 0.03), mk(3, 3, 0.04)];
    let one_node = BatchConfig { num_nodes: 1, discipline: Discipline::Sjf, ..Default::default() };
    let out = run_batch(&jobs, &one_node, None);
    assert_eq!(start_order(&out), vec![0, 2, 3, 1], "shortest first after the head");
}

#[test]
fn easy_backfills_and_lowers_mean_wait_vs_fcfs() {
    let jobs = heavy_light_mix(2008, 40);
    let fcfs = FleetStats::from_outcome(&run_batch(&jobs, &cfg(Discipline::Fcfs), None));
    let easy_out = run_batch(&jobs, &cfg(Discipline::Easy), None);
    let easy = FleetStats::from_outcome(&easy_out);
    assert!(easy.backfilled > 0, "mix must exercise backfill");
    assert!(
        easy.mean_wait < fcfs.mean_wait,
        "EASY wait {:.4}s must beat FCFS {:.4}s",
        easy.mean_wait,
        fcfs.mean_wait
    );
    assert_eq!(
        easy_out.metrics.counter("batch.jobs.backfilled"),
        easy.backfilled as u64
    );
}

#[test]
fn node_failure_mid_queue_degrades_cleanly() {
    let jobs = heavy_light_mix(11, 20);
    let fault = BatchFault { node: 1, after_completions: 3, max_retries: 2, restart_secs: 0.2 };
    for discipline in Discipline::ALL {
        let out = run_batch(&jobs, &cfg(discipline), Some(&fault));
        assert_eq!(out.failed_nodes, vec![1], "{discipline:?}");
        assert_eq!(out.jobs.len(), 20, "{discipline:?}: every job accounted");
        // Wide (3-node) jobs still fit the 3 survivors; everything that
        // degrades must say so in its ClusterOutcome, never panic.
        for j in &out.jobs {
            if j.outcome.degraded {
                assert!(j.outcome.failure.is_some() || j.first_start.is_none());
            }
        }
        assert_eq!(out.metrics.counter("batch.nodes.failed"), 1);
    }
}

#[test]
fn fleet_shrunk_below_widest_job_drops_it_degraded() {
    // 2-node fleet, wide job needs 2 nodes; after the failure it can
    // never be placed and must degrade instead of deadlocking.
    let jobs = vec![
        BatchJob::new(0, JobSpec::new("narrow", vec![0.05; 4], 2), 0.01),
        BatchJob::new(1, JobSpec::new("wide", vec![0.05; 8], 2), 0.02),
        BatchJob::new(2, JobSpec::new("tail", vec![0.05; 2], 1), 0.03),
    ];
    let two = BatchConfig { num_nodes: 2, ..Default::default() };
    let fault = BatchFault { node: 0, after_completions: 1, max_retries: 1, restart_secs: 0.1 };
    let out = run_batch(&jobs, &two, Some(&fault));
    let wide = &out.jobs[1];
    assert!(wide.outcome.degraded, "wide job cannot fit one survivor");
    let tail = &out.jobs[2];
    assert!(!tail.outcome.degraded, "narrow tail still completes");
}

#[test]
fn requeued_job_pays_restart_and_finishes_absorbed() {
    // Single long job running when its node dies; it requeues onto the
    // survivor and completes with an absorbed NodeFailureRecord.
    let jobs = vec![
        BatchJob::new(0, JobSpec::new("a", vec![0.05; 4], 1), 0.01),
        BatchJob::new(1, JobSpec::new("b", vec![0.05; 4], 6), 0.02),
    ];
    let two = BatchConfig { num_nodes: 2, ..Default::default() };
    let fault = BatchFault { node: 1, after_completions: 1, max_retries: 2, restart_secs: 0.3 };
    let out = run_batch(&jobs, &two, Some(&fault));
    let b = &out.jobs[1];
    if b.requeues > 0 {
        assert!(!b.outcome.degraded, "survivor absorbs the requeue");
        let rec = b.outcome.failure.expect("failure recorded");
        assert!(rec.absorbed);
        assert_eq!(rec.node, 1);
        assert_eq!(out.metrics.counter("batch.jobs.requeues"), 1);
    }
}

#[test]
fn per_job_kernels_are_conformance_clean() {
    let jobs = heavy_light_mix(3, 8);
    for sched in LocalSched::ALL {
        let c = BatchConfig { verify_jobs: true, sched, ..Default::default() };
        let out = run_batch(&jobs, &c, None);
        assert!(!out.conformance.is_empty(), "{sched:?}: traces collected");
        for (id, rep) in &out.conformance {
            assert!(rep.is_clean(), "{sched:?} job {id}:\n{}", rep.render());
        }
    }
}

#[test]
fn transient_task_abort_is_absorbed_byte_identically() {
    // Aborts within the retry budget: the supervisor retries the pure
    // kernel, so the whole run is byte-identical to an unfaulted one.
    let jobs = heavy_light_mix(2008, 12);
    let clean = run_batch(&jobs, &cfg(Discipline::Easy), None);
    let abort = TaskAbortSpec { job: 5, node: 0, aborts: 2, hang: false };
    let c = BatchConfig { abort: Some(abort), discipline: Discipline::Easy, ..Default::default() };
    assert!(abort.aborts <= c.retry_limit, "fault sized to be absorbable");
    let faulted = run_batch(&jobs, &c, None);
    assert_eq!(faulted.render_trace(), clean.render_trace());
    assert_eq!(faulted.metrics, clean.metrics);
    // Absorption is thread-count-invariant too.
    let wide = run_batch(&jobs, &BatchConfig { threads: 4, ..c }, None);
    assert_eq!(wide.render_trace(), clean.render_trace());
}

#[test]
fn exhausted_task_abort_quarantines_the_job() {
    let jobs = heavy_light_mix(2008, 12);
    let abort = TaskAbortSpec { job: 5, node: 0, aborts: 9, hang: false };
    let c = BatchConfig { abort: Some(abort), ..Default::default() };
    assert!(abort.aborts > c.retry_limit, "fault sized to exhaust the budget");
    let out = run_batch(&jobs, &c, None);
    let victim = out.jobs.iter().find(|j| j.id == 5).expect("job 5 accounted");
    assert!(victim.outcome.degraded, "quarantined, not panicked");
    assert!(out
        .events
        .iter()
        .any(|e| matches!(e, BatchEvent::Degraded { job: 5, reason: "task-quarantined", .. })));
    assert_eq!(out.metrics.counter("batch.jobs.degraded"), 1);
    assert!(out.jobs.iter().filter(|j| j.id != 5).all(|j| !j.outcome.degraded));
    // Deterministic at any width: the quarantine lands identically.
    let wide = run_batch(&jobs, &BatchConfig { threads: 4, ..c }, None);
    assert_eq!(wide.render_trace(), out.render_trace());
}

#[test]
fn hung_task_times_out_under_the_watchdog() {
    let jobs = heavy_light_mix(2008, 6);
    let abort = TaskAbortSpec { job: 2, node: 0, aborts: 1, hang: true };
    let c = BatchConfig {
        abort: Some(abort),
        watchdog_secs: Some(0.05),
        ..Default::default()
    };
    let out = run_batch(&jobs, &c, None);
    assert!(out
        .events
        .iter()
        .any(|e| matches!(e, BatchEvent::Degraded { job: 2, reason: "task-timeout", .. })));
    let victim = out.jobs.iter().find(|j| j.id == 2).expect("job 2 accounted");
    assert!(victim.outcome.degraded);
    assert!(out.jobs.iter().filter(|j| j.id != 2).all(|j| !j.outcome.degraded));
}

#[test]
fn telemetry_wait_histogram_reconciles_with_records() {
    let jobs = heavy_light_mix(17, 15);
    let out = run_batch(&jobs, &cfg(Discipline::Easy), None);
    let hist = out.metrics.histogram("batch.wait_us").expect("wait histogram present");
    assert_eq!(hist.count as usize, out.jobs.len(), "one wait sample per completed job");
}

#[test]
fn heterogeneous_shapes_change_service_but_stay_deterministic() {
    use batchsim::FleetShape;
    let jobs = heavy_light_mix(2008, 12);
    let uniform = run_batch(&jobs, &cfg(Discipline::Fcfs), None);
    for shape in [FleetShape::parse("2-socket").unwrap(), FleetShape::Mixed] {
        let c = BatchConfig { shape, ..cfg(Discipline::Fcfs) };
        let a = run_batch(&jobs, &c, None);
        let b = run_batch(&jobs, &BatchConfig { threads: 4, ..c }, None);
        assert_eq!(a.jobs.len(), 12, "{shape:?}");
        assert!(a.jobs.iter().all(|j| !j.outcome.degraded), "{shape:?}");
        assert_eq!(a.render_trace(), b.render_trace(), "{shape:?}: thread-count invariant");
        assert_ne!(
            a.render_trace(),
            uniform.render_trace(),
            "{shape:?}: different hardware must change service times"
        );
    }
}

#[test]
fn uniform_shape_is_the_legacy_engine() {
    // `FleetShape::Uniform` must be byte-identical to the default config —
    // the seed-trace compatibility gate at unit-test granularity.
    let jobs = heavy_light_mix(7, 10);
    let legacy = run_batch(&jobs, &cfg(Discipline::Easy), None);
    let explicit = run_batch(
        &jobs,
        &BatchConfig { shape: batchsim::FleetShape::Uniform, ..cfg(Discipline::Easy) },
        None,
    );
    assert_eq!(legacy.render_trace(), explicit.render_trace());
    assert_eq!(legacy.metrics, explicit.metrics);
}

#[test]
fn mixed_fleet_checkpoint_resumes_byte_identically() {
    use batchsim::{resume_batch, run_batch_until, BatchCheckpoint, FleetShape};
    let jobs = heavy_light_mix(11, 16);
    let c = BatchConfig {
        shape: FleetShape::Mixed,
        discipline: Discipline::Easy,
        ..Default::default()
    };
    let full = run_batch(&jobs, &c, None);
    let ckpt = run_batch_until(&jobs, &c, None, 9).expect("cut exists");
    let ckpt = BatchCheckpoint::decode(&ckpt.encode()).expect("shape survives the wire");
    let resumed = resume_batch(&ckpt);
    assert_eq!(resumed.render_trace(), full.render_trace());
    assert_eq!(resumed.metrics, full.metrics);
}
