//! Property tests for the streaming arrival generators and the fleet
//! engine's equivalence to the materialised path:
//!
//! * every lazy generator is prefix-equivalent to its materialising
//!   twin — `take(k)` of the iterator equals the first `k` jobs of the
//!   collected stream, for any `k`, seed, and shape;
//! * `FleetJobs::replay(cfg, k)` resumes the stream exactly where a
//!   fresh generator left off after `k` jobs (the checkpoint contract);
//! * running the batch engine over the *materialised* fleet stream
//!   produces, byte for byte, the trace whose fingerprint the streaming
//!   fleet engine folds up — the two paths are the same simulation.

use batchsim::{
    heavy_light_jobs, heavy_light_mix, poisson_jobs, poisson_stream, run_batch, run_fleet,
    text_fnv1a, BatchConfig, Discipline, FleetConfig, FleetJobs, FleetStreamConfig, StreamConfig,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// `poisson_jobs` is the lazy twin of `poisson_stream`: identical
    /// jobs, in order, at every prefix length.
    #[test]
    fn poisson_iterator_is_prefix_equivalent(
        seed in any::<u64>(),
        jobs in 1usize..60,
        heavy in 0.0f64..1.0,
        k in 0usize..60,
    ) {
        let cfg = StreamConfig { seed, jobs, heavy_fraction: heavy, ..Default::default() };
        let all = poisson_stream(&cfg);
        let k = k.min(all.len());
        let prefix: Vec<_> = poisson_jobs(&cfg).take(k).collect();
        prop_assert_eq!(format!("{prefix:?}"), format!("{:?}", &all[..k]));
        let whole: Vec<_> = poisson_jobs(&cfg).collect();
        prop_assert_eq!(format!("{whole:?}"), format!("{all:?}"));
    }

    /// Same contract for the bundled heavy/light acceptance mix.
    #[test]
    fn heavy_light_iterator_is_prefix_equivalent(
        seed in any::<u64>(),
        jobs in 1usize..60,
        k in 0usize..60,
    ) {
        let all = heavy_light_mix(seed, jobs);
        let k = k.min(all.len());
        let prefix: Vec<_> = heavy_light_jobs(seed, jobs).take(k).collect();
        prop_assert_eq!(format!("{prefix:?}"), format!("{:?}", &all[..k]));
    }

    /// A replayed fleet generator continues exactly where a fresh one
    /// stopped: `replay(cfg, k)` yields the same suffix a fresh generator
    /// yields after `k` next() calls — the checkpoint image contract.
    #[test]
    fn fleet_replay_resumes_the_stream_exactly(
        seed in any::<u64>(),
        jobs in 1u64..200,
        k in 0u64..200,
    ) {
        let cfg = FleetStreamConfig { seed, jobs, ..Default::default() };
        let k = k.min(jobs);
        let mut fresh = FleetJobs::new(&cfg);
        for _ in 0..k {
            fresh.next();
        }
        prop_assert_eq!(fresh.emitted(), k);
        let replayed = FleetJobs::replay(&cfg, k);
        let rest_fresh: Vec<_> = fresh.collect();
        let rest_replayed: Vec<_> = replayed.collect();
        prop_assert_eq!(format!("{rest_fresh:?}"), format!("{rest_replayed:?}"));
    }

    /// The streaming fleet engine and the materialising batch engine are
    /// the same simulation: run the batch path over the collected fleet
    /// stream and the folded fingerprint must equal the hash of its
    /// rendered trace, with matching aggregate statistics (exact counts
    /// and maxima; means equal up to summation-order reassociation).
    #[test]
    fn fleet_hash_equals_materialised_batch_trace(
        seed in any::<u64>(),
        jobs in 20u64..120,
        disc in 0usize..3,
    ) {
        let cfg = FleetConfig {
            stream: FleetStreamConfig { seed, jobs, classes: 6, mean_interarrival: 0.01 },
            batch: BatchConfig {
                num_nodes: 48,
                discipline: Discipline::ALL[disc],
                ..Default::default()
            },
        };
        let fleet = run_fleet(&cfg);

        let stream: Vec<_> = FleetJobs::new(&cfg.stream).collect();
        let batch = run_batch(&stream, &cfg.batch, None);

        prop_assert_eq!(fleet.trace_hash, text_fnv1a(&batch.render_trace()));
        prop_assert_eq!(fleet.trace_events, batch.events.len() as u64);
        prop_assert_eq!(fleet.accum.jobs, batch.jobs.len() as u64);

        // Counts and maxima are exact; the sums behind the means fold in
        // completion order on the streaming path and id order on the
        // materialised one, so they agree only up to float reassociation.
        let b = batchsim::FleetStats::from_outcome(&batch);
        let f = fleet.stats;
        prop_assert_eq!(
            (f.jobs, f.completed, f.degraded, f.backfilled, f.requeued),
            (b.jobs, b.completed, b.degraded, b.backfilled, b.requeued)
        );
        prop_assert_eq!(f.max_wait, b.max_wait);
        prop_assert_eq!(f.makespan, b.makespan);
        let close = |x: f64, y: f64| (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0);
        prop_assert!(close(f.mean_wait, b.mean_wait), "mean_wait {} vs {}", f.mean_wait, b.mean_wait);
        prop_assert!(close(f.mean_turnaround, b.mean_turnaround));
        prop_assert!(close(f.mean_slowdown, b.mean_slowdown));
        prop_assert!(close(f.utilization, b.utilization));
        prop_assert!(close(f.throughput, b.throughput));
    }
}
