//! Property tests for placement under churn (the batch-level invariants):
//!
//! * fleet capacity is never exceeded and no node is double-booked;
//! * no gang is ever placed on a failed node;
//! * EASY backfill never delays the head-of-queue reservation (the
//!   classic backfill invariant).
//!
//! All three are checked by *replaying the event trace*, independently of
//! the engine's internal bookkeeping.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use batchsim::{heavy_light_mix, run_batch, BatchConfig, BatchEvent, BatchFault, Discipline};
use cluster::LocalSched;
use proptest::prelude::*;

fn small_cfg(discipline: Discipline) -> BatchConfig {
    BatchConfig { discipline, sched: LocalSched::Cfs, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 6, ..ProptestConfig::default() })]

    /// Under any discipline, with a node failure injected mid-queue, the
    /// replayed trace never books a busy or failed node, never exceeds
    /// the fleet, and accounts for every submitted job exactly once.
    #[test]
    fn capacity_and_failed_node_invariants(
        seed in any::<u64>(),
        njobs in 6usize..12,
        disc in 0usize..3,
        fail_node in 0usize..4,
        fail_after in 0u32..5,
    ) {
        let jobs = heavy_light_mix(seed, njobs);
        let cfg = small_cfg(Discipline::ALL[disc]);
        let fault = BatchFault {
            node: fail_node,
            after_completions: fail_after,
            max_retries: 1,
            restart_secs: 0.05,
        };
        let out = run_batch(&jobs, &cfg, Some(&fault));

        let mut busy: BTreeMap<usize, u64> = BTreeMap::new();
        let mut failed: BTreeSet<usize> = BTreeSet::new();
        for e in &out.events {
            match e {
                BatchEvent::Start { job, nodes, .. } => {
                    for &n in nodes {
                        prop_assert!(n < cfg.num_nodes, "node {n} out of range");
                        prop_assert!(!failed.contains(&n), "job {job} placed on failed node {n}");
                        prop_assert!(
                            busy.insert(n, *job).is_none(),
                            "node {n} double-booked by job {job}"
                        );
                    }
                    prop_assert!(busy.len() <= cfg.num_nodes, "capacity exceeded");
                }
                BatchEvent::Finish { job, .. } => {
                    busy.retain(|_, j| j != job);
                }
                BatchEvent::NodeFail { node, .. } => {
                    failed.insert(*node);
                    // The victim job (if any) releases all its nodes.
                    if let Some(victim) = busy.get(node).copied() {
                        busy.retain(|_, j| *j != victim);
                    }
                }
                _ => {}
            }
        }
        prop_assert_eq!(out.jobs.len(), jobs.len(), "every job accounted exactly once");
        let done = out.jobs.iter().filter(|j| !j.outcome.degraded).count();
        let degraded = out.jobs.iter().filter(|j| j.outcome.degraded).count();
        prop_assert_eq!(done + degraded, jobs.len());
        prop_assert_eq!(out.failed_nodes, vec![fail_node]);
    }

    /// The EASY no-delay invariant: the head of queue starts no later
    /// than the shadow time of its first reservation.
    #[test]
    fn easy_never_delays_the_reserved_head(seed in any::<u64>()) {
        let jobs = heavy_light_mix(seed, 12);
        let out = run_batch(&jobs, &small_cfg(Discipline::Easy), None);
        for r in &out.reservations {
            let start = out.events.iter().find_map(|e| match e {
                BatchEvent::Start { t, job, .. } if *job == r.job => Some(*t),
                _ => None,
            });
            // Without faults a reserved head always starts. Timestamps are
            // exact nanoseconds now, so the invariant needs no slack.
            prop_assert!(start.is_some(), "reserved job {} never started", r.job);
            let start = start.unwrap_or(simcore::SimTime::MAX);
            prop_assert!(
                start <= r.shadow,
                "job {} reserved at {} for shadow {} but started {}",
                r.job, r.at, r.shadow, start
            );
        }
    }

    /// Backfilled jobs genuinely jump the queue (start before an
    /// earlier-arrived job) yet the run completes everything.
    #[test]
    fn easy_trace_is_internally_consistent(seed in any::<u64>()) {
        let jobs = heavy_light_mix(seed ^ 0xb00c, 10);
        let out = run_batch(&jobs, &small_cfg(Discipline::Easy), None);
        prop_assert!(out.jobs.iter().all(|j| !j.outcome.degraded));
        // Monotone event times (the batch-level C002 analogue) — exact.
        let times: Vec<simcore::SimTime> = out.events.iter().map(|e| match e {
            BatchEvent::Submit { t, .. } | BatchEvent::Start { t, .. }
            | BatchEvent::Finish { t, .. } | BatchEvent::NodeFail { t, .. }
            | BatchEvent::Requeue { t, .. } | BatchEvent::Degraded { t, .. } => *t,
        }).collect();
        for w in times.windows(2) {
            prop_assert!(w[1] >= w[0], "event time went backwards");
        }
    }
}
