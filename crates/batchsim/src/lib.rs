//! Two-level batch scheduling over HPCSched clusters.
//!
//! The paper balances threads *within* one MPI job; a real machine runs
//! that local scheduler underneath a batch system that decides which jobs
//! occupy the nodes at all (cf. Eleliemy et al. and Mohammed et al. on
//! two-level scheduling). This crate is that missing layer:
//!
//! * [`job`] — a [`cluster::JobSpec`] gang plus queue metadata;
//! * [`arrivals`] — deterministic streams: seeded Poisson-like synthetic
//!   generators over the calibrated workload shapes, and the bundled
//!   heavy/light mix used by the EASY-vs-FCFS acceptance comparison;
//! * [`discipline`] — FCFS, SJF, and EASY backfill with reservation
//!   correctness;
//! * [`sim`] — the event-driven engine: admitted gangs are placed through
//!   [`cluster::place`] and executed on per-job `schedsim` kernels (HPC,
//!   Linux-like CFS, or static-priority mode); node failures hit the
//!   *queued* system, so re-placement competes with pending jobs;
//! * [`stats`] — fleet-wide wait/turnaround/slowdown/utilization/backfill
//!   figures.
//!
//! Everything is a pure function of `(stream, config, fault)` — see the
//! determinism argument in [`sim`].

pub mod arrivals;
pub mod discipline;
pub mod job;
pub mod sim;
pub mod stats;

pub use arrivals::{heavy_light_mix, poisson_stream, JobTemplate, StreamConfig};
pub use discipline::Discipline;
pub use job::BatchJob;
pub use sim::{
    run_batch, BatchConfig, BatchEvent, BatchFault, BatchOutcome, JobRecord, ReservationRecord,
};
pub use stats::FleetStats;
