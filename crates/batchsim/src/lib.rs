//! Two-level batch scheduling over HPCSched clusters.
//!
//! The paper balances threads *within* one MPI job; a real machine runs
//! that local scheduler underneath a batch system that decides which jobs
//! occupy the nodes at all (cf. Eleliemy et al. and Mohammed et al. on
//! two-level scheduling). This crate is that missing layer:
//!
//! * [`job`] — a [`cluster::JobSpec`] gang plus queue metadata;
//! * [`arrivals`] — deterministic streams: seeded Poisson-like synthetic
//!   generators over the calibrated workload shapes, and the bundled
//!   heavy/light mix used by the EASY-vs-FCFS acceptance comparison;
//! * [`discipline`] — FCFS, SJF, and EASY backfill with reservation
//!   correctness;
//! * [`sim`] — the event-driven engine: admitted gangs are placed through
//!   [`cluster::place`] and executed on per-job `schedsim` kernels (HPC,
//!   Linux-like CFS, or static-priority mode); node failures hit the
//!   *queued* system, so re-placement competes with pending jobs;
//! * [`stats`] — fleet-wide wait/turnaround/slowdown/utilization/backfill
//!   figures;
//! * [`checkpoint`] — crash-consistent checkpoint/restore: versioned,
//!   checksummed images of the engine state with atomic on-disk rotation;
//!   [`resume_batch`] continues one to a trace byte-identical to the
//!   uninterrupted run.
//!
//! Everything is a pure function of `(stream, config, fault)` — see the
//! determinism argument in [`sim`].

pub mod arrivals;
pub mod checkpoint;
pub mod discipline;
pub mod fleet;
pub mod index;
pub mod job;
pub mod pending;
pub mod sim;
pub mod stats;

pub use arrivals::{
    class_catalog, heavy_light_jobs, heavy_light_mix, poisson_jobs, poisson_stream, ClassSpec,
    FleetJobs, FleetStreamConfig, HeavyLightJobs, JobTemplate, PoissonJobs, StreamConfig,
};
pub use checkpoint::{
    BatchCheckpoint, CheckpointPolicy, CheckpointStore, FleetExtra, StoreError,
    BATCH_CHECKPOINT_VERSION,
};
pub use discipline::Discipline;
pub use fleet::{FleetAccum, FleetConfig, FleetOutcome};
pub use index::ReleaseIndex;
pub use job::BatchJob;
pub use pending::PendingQueue;
pub use sim::{
    resume_batch, resume_fleet, run_batch, run_batch_checkpointed, run_batch_until, run_fleet,
    run_fleet_until, text_fnv1a, BatchConfig, BatchEvent, BatchFault, BatchOutcome, FleetShape,
    JobRecord, ReservationRecord,
};
pub use stats::FleetStats;

// The heterogeneous-fleet vocabulary types, re-exported so fleet callers
// can build shapes without a direct `cluster` dependency.
pub use cluster::{NodeShape, TopoPreset};
