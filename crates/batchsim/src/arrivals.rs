//! Deterministic job arrival streams.
//!
//! Two sources, both pure functions of a seed:
//!
//! * synthetic Poisson-like streams — exponential interarrivals driven by
//!   faultsim's [`SplitMix64`], with job shapes drawn from the calibrated
//!   workload templates ([`workloads::templates`]);
//! * the bundled heavy/light mix — the reference stream for the EASY-vs-FCFS
//!   comparison: wide long jobs that block the queue head interleaved with
//!   narrow short jobs that can backfill around the reservation.
//!
//! Trace-driven streams are just `Vec<BatchJob>` built by the caller.

use crate::job::BatchJob;
use cluster::JobSpec;
use faultsim::SplitMix64;
use workloads::templates;

/// Which workload's imbalance profile a synthetic job borrows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobTemplate {
    MetBench,
    MetBenchVar,
    BtMz,
    Siesta,
    /// Uniform-random loads — the irregular catch-all.
    Irregular,
}

impl JobTemplate {
    pub const ALL: [JobTemplate; 5] = [
        JobTemplate::MetBench,
        JobTemplate::MetBenchVar,
        JobTemplate::BtMz,
        JobTemplate::Siesta,
        JobTemplate::Irregular,
    ];

    pub fn label(self) -> &'static str {
        match self {
            JobTemplate::MetBench => "metbench",
            JobTemplate::MetBenchVar => "metbenchvar",
            JobTemplate::BtMz => "btmz",
            JobTemplate::Siesta => "siesta",
            JobTemplate::Irregular => "irregular",
        }
    }

    /// Per-rank loads for one job instance: the template's normalized
    /// shape scaled by `peak` work units per iteration.
    pub fn rank_loads(self, peak: f64, ranks: usize, rng: &mut SplitMix64) -> Vec<f64> {
        let shape = match self {
            JobTemplate::MetBench => stretch(&templates::metbench_shape(), ranks),
            JobTemplate::MetBenchVar => stretch(&templates::metbenchvar_shape(), ranks),
            JobTemplate::BtMz => stretch(&templates::btmz_shape(), ranks),
            JobTemplate::Siesta => templates::siesta_shape(ranks),
            JobTemplate::Irregular => {
                (0..ranks).map(|_| 0.25 + 0.75 * rng.unit()).collect()
            }
        };
        shape.into_iter().map(|s| s * peak).collect()
    }
}

/// Repeat a shape cyclically to `ranks` entries.
fn stretch(shape: &[f64], ranks: usize) -> Vec<f64> {
    (0..ranks).map(|r| shape[r % shape.len()]).collect()
}

/// Synthetic Poisson-like stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    pub seed: u64,
    pub jobs: usize,
    /// Mean exponential interarrival gap, seconds.
    pub mean_interarrival: f64,
    /// Probability a job is a *wide* one (12 ranks, more iterations);
    /// the rest are narrow 2–4 rank jobs.
    pub heavy_fraction: f64,
    /// Peak per-iteration work units for heavy jobs (light jobs use a
    /// third of it).
    pub peak_load: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 2008,
            jobs: 200,
            mean_interarrival: 0.15,
            heavy_fraction: 0.25,
            peak_load: 0.12,
        }
    }
}

/// Exponential variate via inversion; `unit()` is in `[0, 1)` so the
/// argument of `ln` stays strictly positive.
fn exp_gap(mean: f64, rng: &mut SplitMix64) -> f64 {
    -mean * (1.0 - rng.unit()).ln()
}

/// Generate a synthetic Poisson-like stream: shapes cycle through the five
/// workload templates, widths and lengths drawn from the seeded generator.
pub fn poisson_stream(cfg: &StreamConfig) -> Vec<BatchJob> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut arrivals = rng.fork(0x0a11);
    let mut shapes = rng.fork(0x5a9e);
    let mut t = 0.0;
    (0..cfg.jobs as u64)
        .map(|id| {
            t += exp_gap(cfg.mean_interarrival, &mut arrivals);
            let template = JobTemplate::ALL[(shapes.next_u64() % 5) as usize];
            let heavy = shapes.unit() < cfg.heavy_fraction;
            let (ranks, iterations, peak) = if heavy {
                (12, 3 + (shapes.next_u64() % 3) as u32, cfg.peak_load)
            } else {
                (2 + (shapes.next_u64() % 3) as usize, 2, cfg.peak_load / 3.0)
            };
            let loads = template.rank_loads(peak, ranks, &mut shapes);
            let name = format!("{}-{id}", template.label());
            BatchJob::new(id, JobSpec::new(name, loads, iterations), t)
        })
        .collect()
}

/// The bundled heavy/light mix (the acceptance stream): one wide long job
/// in four, narrow short fillers otherwise, bursty enough that a queue
/// forms behind every wide job. Sized for a 4-node fleet: wide jobs take 3
/// nodes, so exactly one node is left for backfill when a wide job runs.
pub fn heavy_light_mix(seed: u64, jobs: usize) -> Vec<BatchJob> {
    let mut rng = SplitMix64::new(seed);
    let mut t = 0.0;
    (0..jobs as u64)
        .map(|id| {
            t += exp_gap(0.15, &mut rng);
            let heavy = rng.unit() < 0.25;
            let (template, spec) = if heavy {
                let template = JobTemplate::ALL[(rng.next_u64() % 4) as usize];
                let loads = template.rank_loads(0.12, 12, &mut rng);
                (template, (loads, 4))
            } else {
                let template = JobTemplate::Irregular;
                let loads = template.rank_loads(0.04, 2 + (rng.next_u64() % 3) as usize, &mut rng);
                (template, (loads, 2))
            };
            let kind = if heavy { "heavy" } else { "light" };
            let name = format!("{kind}-{}-{id}", template.label());
            BatchJob::new(id, JobSpec::new(name, spec.0, spec.1), t)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = poisson_stream(&StreamConfig::default());
        let b = poisson_stream(&StreamConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.spec.rank_loads, y.spec.rank_loads);
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let s = heavy_light_mix(7, 100);
        for w in s.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
            assert!(w[1].id == w[0].id + 1);
        }
    }

    #[test]
    fn heavy_light_mix_has_both_kinds() {
        let s = heavy_light_mix(2008, 200);
        let wide = s.iter().filter(|j| j.nodes_needed() == 3).count();
        let narrow = s.iter().filter(|j| j.nodes_needed() == 1).count();
        assert_eq!(wide + narrow, 200);
        assert!(wide >= 25 && narrow >= 100, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn templates_produce_positive_loads() {
        let mut rng = SplitMix64::new(1);
        for t in JobTemplate::ALL {
            let loads = t.rank_loads(0.1, 8, &mut rng);
            assert_eq!(loads.len(), 8);
            assert!(loads.iter().all(|&l| l > 0.0), "{t:?}: {loads:?}");
        }
    }
}
