//! Deterministic job arrival streams.
//!
//! Two sources, both pure functions of a seed:
//!
//! * synthetic Poisson-like streams — exponential interarrivals driven by
//!   faultsim's [`SplitMix64`], with job shapes drawn from the calibrated
//!   workload templates ([`workloads::templates`]);
//! * the bundled heavy/light mix — the reference stream for the EASY-vs-FCFS
//!   comparison: wide long jobs that block the queue head interleaved with
//!   narrow short jobs that can backfill around the reservation.
//!
//! Trace-driven streams are just `Vec<BatchJob>` built by the caller.

use crate::job::BatchJob;
use cluster::JobSpec;
use faultsim::SplitMix64;
use workloads::templates;

/// Which workload's imbalance profile a synthetic job borrows.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobTemplate {
    MetBench,
    MetBenchVar,
    BtMz,
    Siesta,
    /// Uniform-random loads — the irregular catch-all.
    Irregular,
}

impl JobTemplate {
    pub const ALL: [JobTemplate; 5] = [
        JobTemplate::MetBench,
        JobTemplate::MetBenchVar,
        JobTemplate::BtMz,
        JobTemplate::Siesta,
        JobTemplate::Irregular,
    ];

    pub fn label(self) -> &'static str {
        match self {
            JobTemplate::MetBench => "metbench",
            JobTemplate::MetBenchVar => "metbenchvar",
            JobTemplate::BtMz => "btmz",
            JobTemplate::Siesta => "siesta",
            JobTemplate::Irregular => "irregular",
        }
    }

    /// Per-rank loads for one job instance: the template's normalized
    /// shape scaled by `peak` work units per iteration.
    pub fn rank_loads(self, peak: f64, ranks: usize, rng: &mut SplitMix64) -> Vec<f64> {
        let shape = match self {
            JobTemplate::MetBench => stretch(&templates::metbench_shape(), ranks),
            JobTemplate::MetBenchVar => stretch(&templates::metbenchvar_shape(), ranks),
            JobTemplate::BtMz => stretch(&templates::btmz_shape(), ranks),
            JobTemplate::Siesta => templates::siesta_shape(ranks),
            JobTemplate::Irregular => {
                (0..ranks).map(|_| 0.25 + 0.75 * rng.unit()).collect()
            }
        };
        shape.into_iter().map(|s| s * peak).collect()
    }
}

/// Repeat a shape cyclically to `ranks` entries.
fn stretch(shape: &[f64], ranks: usize) -> Vec<f64> {
    (0..ranks).map(|r| shape[r % shape.len()]).collect()
}

/// Synthetic Poisson-like stream parameters.
#[derive(Clone, Copy, Debug)]
pub struct StreamConfig {
    pub seed: u64,
    pub jobs: usize,
    /// Mean exponential interarrival gap, seconds.
    pub mean_interarrival: f64,
    /// Probability a job is a *wide* one (12 ranks, more iterations);
    /// the rest are narrow 2–4 rank jobs.
    pub heavy_fraction: f64,
    /// Peak per-iteration work units for heavy jobs (light jobs use a
    /// third of it).
    pub peak_load: f64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            seed: 2008,
            jobs: 200,
            mean_interarrival: 0.15,
            heavy_fraction: 0.25,
            peak_load: 0.12,
        }
    }
}

/// Exponential variate via inversion; `unit()` is in `[0, 1)` so the
/// argument of `ln` stays strictly positive.
fn exp_gap(mean: f64, rng: &mut SplitMix64) -> f64 {
    -mean * (1.0 - rng.unit()).ln()
}

/// Lazy Poisson-like stream: each `next()` draws exactly the variates
/// the materialised path drew for that index, so any prefix of the
/// stream is identical to [`poisson_stream`] of the same seed —
/// million-job streams cost O(1) memory instead of a job list.
pub struct PoissonJobs {
    cfg: StreamConfig,
    arrivals: SplitMix64,
    shapes: SplitMix64,
    t: f64,
    next_id: u64,
}

impl Iterator for PoissonJobs {
    type Item = BatchJob;

    fn next(&mut self) -> Option<BatchJob> {
        if self.next_id >= self.cfg.jobs as u64 {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.t += exp_gap(self.cfg.mean_interarrival, &mut self.arrivals);
        let template = JobTemplate::ALL[(self.shapes.next_u64() % 5) as usize];
        let heavy = self.shapes.unit() < self.cfg.heavy_fraction;
        let (ranks, iterations, peak) = if heavy {
            (12, 3 + (self.shapes.next_u64() % 3) as u32, self.cfg.peak_load)
        } else {
            (2 + (self.shapes.next_u64() % 3) as usize, 2, self.cfg.peak_load / 3.0)
        };
        let loads = template.rank_loads(peak, ranks, &mut self.shapes);
        let name = format!("{}-{id}", template.label());
        Some(BatchJob::new(id, JobSpec::new(name, loads, iterations), self.t))
    }
}

/// Streaming generator behind [`poisson_stream`]: yields the same jobs
/// lazily from `(seed, index)`.
pub fn poisson_jobs(cfg: &StreamConfig) -> PoissonJobs {
    let mut rng = SplitMix64::new(cfg.seed);
    let arrivals = rng.fork(0x0a11);
    let shapes = rng.fork(0x5a9e);
    PoissonJobs { cfg: *cfg, arrivals, shapes, t: 0.0, next_id: 0 }
}

/// Generate a synthetic Poisson-like stream: shapes cycle through the five
/// workload templates, widths and lengths drawn from the seeded generator.
/// Materialises [`poisson_jobs`]; the streaming form is the source of
/// truth, which is what makes prefix equivalence hold by construction.
pub fn poisson_stream(cfg: &StreamConfig) -> Vec<BatchJob> {
    poisson_jobs(cfg).collect()
}

/// Lazy form of the bundled heavy/light mix — same per-index draws as
/// [`heavy_light_mix`], yielded on demand.
pub struct HeavyLightJobs {
    rng: SplitMix64,
    t: f64,
    next_id: u64,
    total: u64,
}

impl Iterator for HeavyLightJobs {
    type Item = BatchJob;

    fn next(&mut self) -> Option<BatchJob> {
        if self.next_id >= self.total {
            return None;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.t += exp_gap(0.15, &mut self.rng);
        let heavy = self.rng.unit() < 0.25;
        let (template, spec) = if heavy {
            let template = JobTemplate::ALL[(self.rng.next_u64() % 4) as usize];
            let loads = template.rank_loads(0.12, 12, &mut self.rng);
            (template, (loads, 4))
        } else {
            let template = JobTemplate::Irregular;
            let loads =
                template.rank_loads(0.04, 2 + (self.rng.next_u64() % 3) as usize, &mut self.rng);
            (template, (loads, 2))
        };
        let kind = if heavy { "heavy" } else { "light" };
        let name = format!("{kind}-{}-{id}", template.label());
        Some(BatchJob::new(id, JobSpec::new(name, spec.0, spec.1), self.t))
    }
}

/// Streaming generator behind [`heavy_light_mix`].
pub fn heavy_light_jobs(seed: u64, jobs: usize) -> HeavyLightJobs {
    HeavyLightJobs { rng: SplitMix64::new(seed), t: 0.0, next_id: 0, total: jobs as u64 }
}

/// The bundled heavy/light mix (the acceptance stream): one wide long job
/// in four, narrow short fillers otherwise, bursty enough that a queue
/// forms behind every wide job. Sized for a 4-node fleet: wide jobs take 3
/// nodes, so exactly one node is left for backfill when a wide job runs.
/// Materialises [`heavy_light_jobs`].
pub fn heavy_light_mix(seed: u64, jobs: usize) -> Vec<BatchJob> {
    heavy_light_jobs(seed, jobs).collect()
}

// ---------------------------------------------------------------------------
// Fleet-scale class-catalog streams.
// ---------------------------------------------------------------------------

/// Parameters of a fleet-scale streaming mix: jobs are drawn from a small
/// catalog of *classes*, each with a fixed shape and length, so the
/// service-time oracle measures one kernel per `(class, iterations)`
/// instead of one per job — the property that makes 10^6-job streams
/// affordable (see [`crate::fleet`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetStreamConfig {
    pub seed: u64,
    pub jobs: u64,
    /// Catalog size: number of distinct job classes.
    pub classes: u32,
    /// Mean exponential interarrival gap, seconds.
    pub mean_interarrival: f64,
}

impl Default for FleetStreamConfig {
    fn default() -> Self {
        FleetStreamConfig { seed: 2008, jobs: 10_000, classes: 24, mean_interarrival: 0.05 }
    }
}

/// One catalog entry: the spec every job of the class runs.
#[derive(Clone, Debug)]
pub struct ClassSpec {
    pub loads: Vec<f64>,
    pub iterations: u32,
}

/// Build the class catalog for a fleet stream: each class draws its
/// template, width, and length from its own seeded generator, so the
/// catalog is a pure function of `(seed, classes)`. Roughly one class in
/// four is a wide heavy one (up to 36 ranks), the rest are narrow
/// fillers — the same shape economy as the heavy/light mix, scaled up.
pub fn class_catalog(cfg: &FleetStreamConfig) -> Vec<ClassSpec> {
    (0..u64::from(cfg.classes.max(1)))
        .map(|c| {
            let mut rng = SplitMix64::new(cfg.seed ^ (c + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let template = JobTemplate::ALL[(rng.next_u64() % 5) as usize];
            let heavy = rng.unit() < 0.25;
            let (ranks, iterations, peak) = if heavy {
                (8 + 4 * (rng.next_u64() % 8) as usize, 2 + (rng.next_u64() % 3) as u32, 0.12)
            } else {
                (2 + (rng.next_u64() % 3) as usize, 2, 0.04)
            };
            ClassSpec { loads: template.rank_loads(peak, ranks, &mut rng), iterations }
        })
        .collect()
}

/// Lazy fleet-scale stream: exponential interarrivals, classes drawn
/// uniformly from the catalog. Pure in `(cfg, index)`; any prefix is
/// independent of `cfg.jobs`, which is what lets checkpoints image the
/// generator as `(cfg, emitted)` and replay it on resume.
pub struct FleetJobs {
    cfg: FleetStreamConfig,
    catalog: Vec<ClassSpec>,
    arrivals: SplitMix64,
    classes: SplitMix64,
    t: f64,
    emitted: u64,
}

impl FleetJobs {
    pub fn new(cfg: &FleetStreamConfig) -> FleetJobs {
        let mut rng = SplitMix64::new(cfg.seed);
        let arrivals = rng.fork(0xf1ee);
        let classes = rng.fork(0xc1a5);
        FleetJobs {
            cfg: *cfg,
            catalog: class_catalog(cfg),
            arrivals,
            classes,
            t: 0.0,
            emitted: 0,
        }
    }

    /// Jobs generated so far — the checkpointable progress mark.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    pub fn config(&self) -> &FleetStreamConfig {
        &self.cfg
    }

    /// Rebuild a generator positioned after `emitted` jobs by replaying
    /// the (cheap, kernel-free) draws from the start — generation is pure
    /// in `(cfg, index)`, so the replayed state is exact.
    pub fn replay(cfg: &FleetStreamConfig, emitted: u64) -> FleetJobs {
        let mut gen = FleetJobs::new(cfg);
        for _ in 0..emitted.min(cfg.jobs) {
            let _ = gen.next();
        }
        gen
    }
}

impl Iterator for FleetJobs {
    type Item = BatchJob;

    fn next(&mut self) -> Option<BatchJob> {
        if self.emitted >= self.cfg.jobs {
            return None;
        }
        let id = self.emitted;
        self.emitted += 1;
        self.t += exp_gap(self.cfg.mean_interarrival, &mut self.arrivals);
        let class = self.classes.next_u64() % self.catalog.len() as u64;
        let entry = &self.catalog[class as usize];
        let spec =
            JobSpec::new(format!("c{class}-{id}"), entry.loads.clone(), entry.iterations);
        let mut job = BatchJob::new(id, spec, self.t);
        job.class = Some(class);
        Some(job)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let a = poisson_stream(&StreamConfig::default());
        let b = poisson_stream(&StreamConfig::default());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.arrival, y.arrival);
            assert_eq!(x.spec.rank_loads, y.spec.rank_loads);
        }
    }

    #[test]
    fn arrivals_are_strictly_increasing() {
        let s = heavy_light_mix(7, 100);
        for w in s.windows(2) {
            assert!(w[1].arrival > w[0].arrival);
            assert!(w[1].id == w[0].id + 1);
        }
    }

    #[test]
    fn heavy_light_mix_has_both_kinds() {
        let s = heavy_light_mix(2008, 200);
        let wide = s.iter().filter(|j| j.nodes_needed() == 3).count();
        let narrow = s.iter().filter(|j| j.nodes_needed() == 1).count();
        assert_eq!(wide + narrow, 200);
        assert!(wide >= 25 && narrow >= 100, "wide {wide} narrow {narrow}");
    }

    #[test]
    fn templates_produce_positive_loads() {
        let mut rng = SplitMix64::new(1);
        for t in JobTemplate::ALL {
            let loads = t.rank_loads(0.1, 8, &mut rng);
            assert_eq!(loads.len(), 8);
            assert!(loads.iter().all(|&l| l > 0.0), "{t:?}: {loads:?}");
        }
    }
}
