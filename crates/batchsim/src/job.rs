//! Batch jobs: a [`cluster::JobSpec`] gang plus queue metadata.

use cluster::placement::NODE_SLOTS;
use cluster::JobSpec;

/// One job submitted to the batch scheduler.
#[derive(Clone, Debug)]
pub struct BatchJob {
    /// Submission order, unique within a stream. Ties on every queue
    /// decision break by id, which is what makes the simulation a pure
    /// function of (stream, config).
    pub id: u64,
    pub spec: JobSpec,
    /// Submission time, seconds from stream start.
    pub arrival: f64,
    /// Service-time class. Jobs sharing a class have identical specs (up
    /// to the name), so the oracle memoizes one kernel measurement per
    /// `(class, iterations)` instead of one per job — what makes
    /// million-job fleet streams affordable. `None` keys the oracle by
    /// job id, the classic per-job behaviour.
    pub class: Option<u64>,
}

impl BatchJob {
    pub fn new(id: u64, spec: JobSpec, arrival: f64) -> BatchJob {
        BatchJob { id, spec, arrival, class: None }
    }

    /// The oracle memoization key: the class when present, else the id.
    pub fn service_key(&self) -> u64 {
        self.class.unwrap_or(self.id)
    }

    /// Nodes this gang occupies: allocation is node-exclusive, so a job
    /// takes whole nodes even when its last node is partially filled.
    pub fn nodes_needed(&self) -> usize {
        self.spec.ranks().div_ceil(NODE_SLOTS)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_needed_rounds_up() {
        let j = |ranks: usize| {
            BatchJob::new(0, JobSpec::new("j", vec![0.1; ranks], 1), 0.0)
        };
        assert_eq!(j(1).nodes_needed(), 1);
        assert_eq!(j(4).nodes_needed(), 1);
        assert_eq!(j(5).nodes_needed(), 2);
        assert_eq!(j(12).nodes_needed(), 3);
    }
}
