//! Fleet-wide outcome statistics.
//!
//! Derivation is O(1) in memory: records fold into a [`FleetAccum`]
//! (scalar sums, counts, maxima — enforced by simverify rule SV014), and
//! the stats are closed-form functions of the accumulator. Folding in id
//! order reproduces bit-for-bit the sums the old per-job-vector
//! implementation computed.

use serde::Serialize;

use crate::fleet::FleetAccum;
use crate::sim::BatchOutcome;

/// Aggregated queue metrics over one batch run. Wait/turnaround/slowdown
/// means cover *completed* jobs; utilization and throughput are fleet-wide.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FleetStats {
    pub jobs: usize,
    pub completed: usize,
    pub degraded: usize,
    pub backfilled: usize,
    pub requeued: usize,
    /// Mean queue wait (first start − arrival), seconds.
    pub mean_wait: f64,
    pub max_wait: f64,
    pub mean_turnaround: f64,
    /// Mean bounded slowdown: turnaround over clean service time.
    pub mean_slowdown: f64,
    /// Last event timestamp, seconds.
    pub makespan: f64,
    /// Node·seconds held by jobs over fleet capacity × makespan.
    pub utilization: f64,
    /// Backfilled share of completed jobs.
    pub backfill_rate: f64,
    /// Jobs completed per simulated second — the bench trajectory figure.
    pub throughput: f64,
}

impl FleetStats {
    pub fn from_outcome(out: &BatchOutcome) -> FleetStats {
        FleetStats::from_accum(
            &FleetAccum::from_records(&out.jobs),
            out.config_nodes,
            out.makespan,
        )
    }

    /// Close the streaming accumulator into reported figures.
    pub fn from_accum(a: &FleetAccum, config_nodes: usize, makespan: f64) -> FleetStats {
        let n = a.completed;
        let mean = |sum: f64| if n == 0 { 0.0 } else { sum / n as f64 };
        let capacity = config_nodes as f64 * makespan;
        FleetStats {
            jobs: a.jobs as usize,
            completed: n as usize,
            degraded: a.degraded as usize,
            backfilled: a.backfilled as usize,
            requeued: a.requeued as usize,
            mean_wait: mean(a.wait_sum),
            max_wait: a.wait_max,
            mean_turnaround: mean(a.turnaround_sum),
            mean_slowdown: mean(a.slowdown_sum),
            makespan,
            utilization: if capacity > 0.0 { a.node_secs / capacity } else { 0.0 },
            backfill_rate: if n > 0 { a.backfilled as f64 / n as f64 } else { 0.0 },
            throughput: if makespan > 0.0 { n as f64 / makespan } else { 0.0 },
        }
    }

    /// One fixed-width summary line for experiment output.
    pub fn render_row(&self, label: &str) -> String {
        format!(
            "{label:<18} jobs {:>4} done {:>4} degr {:>2} | wait {:>8.3}s turn {:>8.3}s slow {:>6.2} | makespan {:>8.2}s util {:>5.1}% bf {:>5.1}% thru {:>6.2}/s",
            self.jobs,
            self.completed,
            self.degraded,
            self.mean_wait,
            self.mean_turnaround,
            self.mean_slowdown,
            self.makespan,
            self.utilization * 100.0,
            self.backfill_rate * 100.0,
            self.throughput,
        )
    }
}
