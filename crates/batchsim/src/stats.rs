//! Fleet-wide outcome statistics.

use serde::Serialize;

use crate::sim::BatchOutcome;

/// Aggregated queue metrics over one batch run. Wait/turnaround/slowdown
/// means cover *completed* jobs; utilization and throughput are fleet-wide.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct FleetStats {
    pub jobs: usize,
    pub completed: usize,
    pub degraded: usize,
    pub backfilled: usize,
    pub requeued: usize,
    /// Mean queue wait (first start − arrival), seconds.
    pub mean_wait: f64,
    pub max_wait: f64,
    pub mean_turnaround: f64,
    /// Mean bounded slowdown: turnaround over clean service time.
    pub mean_slowdown: f64,
    /// Last event timestamp, seconds.
    pub makespan: f64,
    /// Node·seconds held by jobs over fleet capacity × makespan.
    pub utilization: f64,
    /// Backfilled share of completed jobs.
    pub backfill_rate: f64,
    /// Jobs completed per simulated second — the bench trajectory figure.
    pub throughput: f64,
}

impl FleetStats {
    pub fn from_outcome(out: &BatchOutcome) -> FleetStats {
        let completed: Vec<_> = out.jobs.iter().filter(|j| !j.outcome.degraded).collect();
        let n = completed.len();
        let degraded = out.jobs.len() - n;
        let mean = |f: &dyn Fn(&&crate::sim::JobRecord) -> f64| -> f64 {
            if n == 0 {
                return 0.0;
            }
            completed.iter().map(f).sum::<f64>() / n as f64
        };
        let held: f64 = out.jobs.iter().map(|j| j.node_secs_held).sum();
        let capacity = out.config_nodes as f64 * out.makespan;
        FleetStats {
            jobs: out.jobs.len(),
            completed: n,
            degraded,
            backfilled: completed.iter().filter(|j| j.backfilled).count(),
            requeued: out.jobs.iter().filter(|j| j.requeues > 0).count(),
            mean_wait: mean(&|j| j.wait),
            max_wait: completed.iter().map(|j| j.wait).fold(0.0, f64::max),
            mean_turnaround: mean(&|j| j.turnaround),
            mean_slowdown: mean(&|j| j.slowdown),
            makespan: out.makespan,
            utilization: if capacity > 0.0 { held / capacity } else { 0.0 },
            backfill_rate: if n > 0 {
                completed.iter().filter(|j| j.backfilled).count() as f64 / n as f64
            } else {
                0.0
            },
            throughput: if out.makespan > 0.0 { n as f64 / out.makespan } else { 0.0 },
        }
    }

    /// One fixed-width summary line for experiment output.
    pub fn render_row(&self, label: &str) -> String {
        format!(
            "{label:<18} jobs {:>4} done {:>4} degr {:>2} | wait {:>8.3}s turn {:>8.3}s slow {:>6.2} | makespan {:>8.2}s util {:>5.1}% bf {:>5.1}% thru {:>6.2}/s",
            self.jobs,
            self.completed,
            self.degraded,
            self.mean_wait,
            self.mean_turnaround,
            self.mean_slowdown,
            self.makespan,
            self.utilization * 100.0,
            self.backfill_rate * 100.0,
            self.throughput,
        )
    }
}
