//! Queue disciplines: which pending job may take free nodes next.

/// The admission discipline of the batch queue.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Discipline {
    /// First come, first served: strict arrival order, head blocks.
    Fcfs,
    /// Shortest job first: the queue is kept sorted by exact service time
    /// (ties by submission id); like FCFS, the new head blocks — SJF here
    /// reorders, it does not bypass.
    Sjf,
    /// EASY backfilling (Lifka): FCFS order, but when the head cannot
    /// start it gets a *reservation* at the earliest time enough nodes
    /// free up (the shadow time), and later jobs may jump ahead iff they
    /// finish by the shadow time or fit into the nodes the head will not
    /// use — so backfill never delays the head.
    Easy,
}

impl Discipline {
    pub const ALL: [Discipline; 3] = [Discipline::Fcfs, Discipline::Sjf, Discipline::Easy];

    pub fn label(self) -> &'static str {
        match self {
            Discipline::Fcfs => "fcfs",
            Discipline::Sjf => "sjf",
            Discipline::Easy => "easy",
        }
    }

    pub fn parse(s: &str) -> Option<Discipline> {
        match s {
            "fcfs" => Some(Discipline::Fcfs),
            "sjf" => Some(Discipline::Sjf),
            "easy" | "backfill" => Some(Discipline::Easy),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_round_trip() {
        for d in Discipline::ALL {
            assert_eq!(Discipline::parse(d.label()), Some(d));
        }
        assert_eq!(Discipline::parse("backfill"), Some(Discipline::Easy));
        assert_eq!(Discipline::parse("lifo"), None);
    }
}
