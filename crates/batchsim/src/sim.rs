//! The event-driven batch engine: arrivals → queue → admission →
//! per-job cluster runs on real `schedsim` kernels.
//!
//! # Determinism argument
//!
//! The whole simulation is a pure function of `(stream, config, fault)`,
//! including [`BatchConfig::threads`]:
//!
//! * arrivals are a sorted input, ties broken by submission id;
//! * every queue decision iterates jobs in a total order (discipline
//!   order, then id) over ordered-set state — no hash iteration; the
//!   pending queue ([`crate::pending::PendingQueue`]) and the release
//!   index ([`crate::index::ReleaseIndex`]) keep exactly the orders the
//!   old linear structures exposed, in O(log n) per operation;
//! * a job's *service time* is computed by seeded kernel runs whose seeds
//!   mix only `(config seed, service key, local node index)` — never the
//!   start time or the global node ids — so the oracle used for SJF
//!   ordering and EASY shadow arithmetic returns exactly the duration the
//!   job will take when it actually runs, whenever that is. The service
//!   key is the job id, or the job's class when the stream assigns one
//!   ([`BatchJob::service_key`]) — class catalogs are what make
//!   million-job fleet streams affordable (one measurement per class);
//! * event timestamps are exact [`SimTime`] nanoseconds — equality and
//!   ordering of completions, arrivals, and EASY shadow deadlines are
//!   integer comparisons, with no float slack;
//! * simulated time advances only to event timestamps (completions before
//!   arrivals at equal times, both in id order);
//! * per-node kernel runs go through a [`simcore::Pool`]: each run is a
//!   pure function of `(loads, iterations, sched, seed)` (see
//!   [`cluster::node`]), per-node seeds are derived *serially* in node
//!   order before anything is submitted, and the pool returns results in
//!   submission order — so every reduction folds in node order and the
//!   outcome is byte-identical at any thread count.
//!
//! The seed and timestamp points make the EASY no-delay invariant *exact*
//! rather than estimate-based: the reservation (shadow time) computed when
//! the queue head blocks is the time the head actually starts, unless an
//! earlier completion improves it.
//!
//! # Fleet mode
//!
//! [`run_fleet`] drives the same engine with streaming replacements for
//! every O(jobs) structure: arrivals come from a lazy generator, the
//! trace folds into an FNV-1a fingerprint as it is emitted, and records
//! fold into a [`FleetAccum`] — see [`crate::fleet`]. Because the engine
//! is shared, a fleet run over a materialised copy of the same stream
//! through [`run_batch`] produces a trace whose fingerprint equals the
//! fleet run's `trace_hash`.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use cluster::{
    place_on, run_node_on, run_node_traced_on, ClusterOutcome, ClusterResult, JobSpec,
    LocalSched, NodeFailureRecord, NodeShape, Placement, PlacementStrategy, TopoPreset,
};
use faultsim::{NodeFailSpec, SplitMix64, TaskAbortSpec};
use simcore::{Pool, PoolCounters, SimDuration, SimTime, SupervisePolicy, TaskFailure};
use simverify::conformance::{check_with_metrics, CheckConfig, Report};
use telemetry::{MetricsRegistry, MetricsSnapshot};

use crate::arrivals::FleetJobs;
use crate::checkpoint::{BatchCheckpoint, CheckpointPolicy, FleetExtra};
use crate::discipline::Discipline;
use crate::fleet::{FleetAccum, FleetConfig, FleetOutcome};
use crate::index::ReleaseIndex;
use crate::job::BatchJob;
use crate::pending::PendingQueue;
use crate::stats::FleetStats;

/// FNV-1a 64-bit offset basis — the trace fingerprint seed.
pub const FNV_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a fingerprint of a rendered text blob. Hashing a full rendered
/// trace with this equals the incremental per-line fold a fleet run keeps.
pub fn text_fnv1a(text: &str) -> u64 {
    let mut h = FNV_BASIS;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Batch scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    pub num_nodes: usize,
    pub discipline: Discipline,
    /// Node-local scheduler every admitted job runs under.
    pub sched: LocalSched,
    pub placement: PlacementStrategy,
    /// Inter-node allreduce latency per gang iteration, seconds.
    pub internode_latency: f64,
    pub seed: u64,
    /// Trace every per-job kernel and conformance-check it (C001–C005);
    /// reports land in [`BatchOutcome::conformance`].
    pub verify_jobs: bool,
    /// Worker threads for per-node kernel runs (1 = serial). Any value
    /// produces byte-identical output; >1 only changes wall-clock time.
    pub threads: usize,
    /// Supervisor retry budget: a per-node kernel measurement that panics
    /// is retried up to this many times before the job is quarantined into
    /// a typed `task-quarantined` degradation.
    pub retry_limit: u32,
    /// Host wall-clock watchdog per measurement attempt; a hung attempt
    /// becomes a typed `task-timeout` degradation instead of wedging the
    /// fleet. `None` disables the watchdog (attempts run inline).
    pub watchdog_secs: Option<f64>,
    /// Injected transient task-abort fault (faultsim `taskabort:` class),
    /// exercised by the supervisor's retry/quarantine path.
    pub abort: Option<TaskAbortSpec>,
    /// EASY backfill candidate budget per scheduling pass (the
    /// `bf_max_job_test` analogue): only the first N queued jobs behind
    /// the head are considered. `None` examines the whole queue — the
    /// classic behaviour, byte-identical to the pre-window engine.
    pub backfill_window: Option<usize>,
    /// Hardware shape of the fleet's nodes; [`FleetShape::Uniform`] is the
    /// legacy all-reference-node fleet, byte-identical to the pre-shape
    /// engine.
    pub shape: FleetShape,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            num_nodes: 4,
            discipline: Discipline::Fcfs,
            sched: LocalSched::Hpc,
            placement: PlacementStrategy::SmtAware,
            internode_latency: 20e-6,
            seed: 2008,
            verify_jobs: false,
            threads: 1,
            retry_limit: 2,
            watchdog_secs: None,
            abort: None,
            backfill_window: None,
            shape: FleetShape::Uniform,
        }
    }
}

/// Hardware shape of the fleet's nodes — the heterogeneous-fleet axis.
///
/// Gang sizing stays at the reference 4-slot granularity
/// ([`crate::job::BatchJob::nodes_needed`]): every preset offers at least
/// [`cluster::placement::NODE_SLOTS`] slots, so a reference-sized
/// allocation always fits the catalog and wider nodes simply absorb more
/// ranks (or leave slots idle). Shapes attach to *gang-local* node
/// positions — the allocator hands each gang the catalog in canonical
/// order — which keeps the service oracle pure in
/// `(service key, iterations)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FleetShape {
    /// Every node is the reference OpenPower 710: the legacy engine,
    /// byte-identical to the pre-shape code.
    #[default]
    Uniform,
    /// Every node is the named topology preset at speed 1.0.
    Preset(TopoPreset),
    /// A deterministic heterogeneous catalog: gang-local node `i` cycles
    /// through (2-NUMA box, 1.0×), (wide-SMT core, 1.25×), (reference
    /// OpenPower 710, 0.5×) — mixed SMT widths, a NUMA tree, and fast and
    /// slow nodes in one fleet.
    Mixed,
}

impl FleetShape {
    pub fn label(self) -> &'static str {
        match self {
            FleetShape::Uniform => "uniform",
            FleetShape::Preset(p) => p.label(),
            FleetShape::Mixed => "mixed",
        }
    }

    /// Parse a CLI label: `uniform`, `mixed`, or a topology preset name.
    pub fn parse(s: &str) -> Option<FleetShape> {
        match s {
            "uniform" => Some(FleetShape::Uniform),
            "mixed" => Some(FleetShape::Mixed),
            other => TopoPreset::parse(other).map(FleetShape::Preset),
        }
    }

    /// Shape of gang-local node `i`.
    pub fn node_shape(self, i: usize) -> NodeShape {
        match self {
            FleetShape::Uniform => NodeShape::default(),
            FleetShape::Preset(p) => p.shape(1.0),
            FleetShape::Mixed => match i % 3 {
                0 => TopoPreset::Numa.shape(1.0),
                1 => TopoPreset::WideSmt.shape(1.25),
                _ => TopoPreset::Openpower710.shape(0.5),
            },
        }
    }

    /// The node catalog a gang of `n` nodes sees.
    pub fn catalog(self, n: usize) -> Vec<NodeShape> {
        (0..n).map(|i| self.node_shape(i)).collect()
    }
}

/// A node failure aimed at the *queued* system: fires once the fleet has
/// completed `after_completions` jobs, killing `node` permanently. A job
/// running there re-enters the queue with its remaining iterations (and
/// competes with pending jobs for survivors), paying `restart_secs` per
/// attempt, up to `max_retries` requeues before degrading.
#[derive(Clone, Copy, Debug)]
pub struct BatchFault {
    pub node: usize,
    pub after_completions: u32,
    pub max_retries: u32,
    pub restart_secs: f64,
}

impl BatchFault {
    /// Reuse faultsim's `nodefail:` spec: `iter` counts completed *jobs*
    /// here rather than gang iterations.
    pub fn from_spec(s: &NodeFailSpec) -> BatchFault {
        BatchFault {
            node: s.node,
            after_completions: s.iteration,
            max_retries: s.retries,
            restart_secs: s.restart_secs,
        }
    }
}

/// One entry of the deterministic batch-level event trace. Timestamps are
/// exact simulated nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEvent {
    Submit { t: SimTime, job: u64, ranks: usize, nodes: usize },
    Start { t: SimTime, job: u64, nodes: Vec<usize>, backfilled: bool },
    Finish { t: SimTime, job: u64 },
    NodeFail { t: SimTime, node: usize },
    Requeue { t: SimTime, job: u64, remaining_iters: u32 },
    Degraded { t: SimTime, job: u64, reason: &'static str },
}

/// Exact seconds.nanoseconds rendering of an event timestamp — integer
/// arithmetic only, so the text is a faithful image of the `SimTime`.
fn render_t(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

impl BatchEvent {
    fn render(&self) -> String {
        match self {
            BatchEvent::Submit { t, job, ranks, nodes } => {
                format!("{} submit job={job} ranks={ranks} nodes={nodes}", render_t(*t))
            }
            BatchEvent::Start { t, job, nodes, backfilled } => {
                format!("{} start job={job} nodes={nodes:?} backfilled={backfilled}", render_t(*t))
            }
            BatchEvent::Finish { t, job } => format!("{} finish job={job}", render_t(*t)),
            BatchEvent::NodeFail { t, node } => format!("{} nodefail node={node}", render_t(*t)),
            BatchEvent::Requeue { t, job, remaining_iters } => {
                format!("{} requeue job={job} remaining={remaining_iters}", render_t(*t))
            }
            BatchEvent::Degraded { t, job, reason } => {
                format!("{} degraded job={job} reason={reason}", render_t(*t))
            }
        }
    }
}

fn event_time(e: &BatchEvent) -> SimTime {
    match e {
        BatchEvent::Submit { t, .. }
        | BatchEvent::Start { t, .. }
        | BatchEvent::Finish { t, .. }
        | BatchEvent::NodeFail { t, .. }
        | BatchEvent::Requeue { t, .. }
        | BatchEvent::Degraded { t, .. } => *t,
    }
}

/// The event log: classic runs keep every event; fleet runs fold each
/// rendered line (plus its newline) into an FNV-1a fingerprint the moment
/// it is emitted, so the hash equals [`text_fnv1a`] of the full rendered
/// trace while holding O(1) memory.
pub(crate) enum TraceLog {
    Full(Vec<BatchEvent>),
    Hashing { hash: u64, count: u64, max_t: SimTime },
}

impl TraceLog {
    fn push(&mut self, e: BatchEvent) {
        match self {
            TraceLog::Full(v) => v.push(e),
            TraceLog::Hashing { hash, count, max_t } => {
                let line = e.render();
                let mut h = *hash;
                for b in line.bytes() {
                    h ^= u64::from(b);
                    h = h.wrapping_mul(FNV_PRIME);
                }
                h ^= u64::from(b'\n');
                *hash = h.wrapping_mul(FNV_PRIME);
                *count += 1;
                let t = event_time(&e);
                if t > *max_t {
                    *max_t = t;
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            TraceLog::Full(v) => v.len(),
            TraceLog::Hashing { count, .. } => *count as usize,
        }
    }
}

/// The head-of-queue reservation EASY computed when the head first
/// blocked: the head is guaranteed to start no later than `shadow`.
#[derive(Clone, Copy, Debug)]
pub struct ReservationRecord {
    pub job: u64,
    /// When the reservation was made.
    pub at: SimTime,
    /// The shadow time: earliest instant enough nodes free up.
    pub shadow: SimTime,
}

/// Reservation bookkeeping: classic runs keep the first reservation per
/// head job; fleet runs keep only a count, deduplicated per blocked-head
/// stretch (a head re-reserves every pass while it stays blocked).
pub(crate) enum ReservationLog {
    Full(BTreeMap<u64, ReservationRecord>),
    Count { count: u64, last: Option<u64> },
}

impl ReservationLog {
    fn note(&mut self, job: u64, at: SimTime, shadow: SimTime) {
        match self {
            ReservationLog::Full(m) => {
                m.entry(job).or_insert(ReservationRecord { job, at, shadow });
            }
            ReservationLog::Count { count, last } => {
                if *last != Some(job) {
                    *count += 1;
                    *last = Some(job);
                }
            }
        }
    }
}

/// Final per-job accounting. Times here are derived *reporting* floats;
/// the exact event clock lives in [`BatchEvent`].
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub name: String,
    pub ranks: usize,
    pub arrival: f64,
    /// `None` when the job degraded before ever starting.
    pub first_start: Option<f64>,
    /// Completion (or drop) time.
    pub end: f64,
    /// Queue wait: first start − arrival (completed jobs only).
    pub wait: f64,
    pub turnaround: f64,
    /// Turnaround over the job's clean full-stream service time.
    pub slowdown: f64,
    pub backfilled: bool,
    pub requeues: u32,
    /// Node·seconds of fleet capacity this job held.
    pub node_secs_held: f64,
    /// The per-job cluster outcome — degraded-but-clean under faults, in
    /// the same shape single-job cluster runs produce.
    pub outcome: ClusterOutcome,
}

/// Where finished job records go: classic runs keep them all; fleet runs
/// fold each into the O(1) accumulator and drop it.
pub(crate) enum RecordSink {
    Full(BTreeMap<u64, JobRecord>),
    Streaming(FleetAccum),
}

impl RecordSink {
    fn put(&mut self, r: JobRecord) {
        match self {
            RecordSink::Full(m) => {
                m.insert(r.id, r);
            }
            RecordSink::Streaming(a) => a.fold(&r),
        }
    }
}

/// Everything a batch run produces.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    pub config_nodes: usize,
    /// Per-job records, sorted by submission id.
    pub jobs: Vec<JobRecord>,
    /// The deterministic batch-level event trace.
    pub events: Vec<BatchEvent>,
    /// First EASY reservation per head-of-queue job.
    pub reservations: Vec<ReservationRecord>,
    /// Nodes lost to injected failures.
    pub failed_nodes: Vec<usize>,
    /// Last event timestamp.
    pub makespan: f64,
    pub metrics: MetricsSnapshot,
    /// Executor-pool telemetry (batches, tasks, worker busy nanoseconds).
    /// Busy time is *host* wall-clock: never fold this snapshot into
    /// determinism or byte-identity comparisons — everything else in the
    /// outcome is thread-count-invariant, this is not.
    pub pool_metrics: MetricsSnapshot,
    /// Per-job kernel conformance reports (one per node segment), present
    /// when [`BatchConfig::verify_jobs`] is set.
    pub conformance: Vec<(u64, Report)>,
}

impl BatchOutcome {
    /// Render the event trace to text — the byte-identity artifact for
    /// determinism checks.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    pub fn conformance_clean(&self) -> bool {
        self.conformance.iter().all(|(_, r)| r.is_clean())
    }
}

/// One per-(service key, iterations) kernel measurement, cached by the
/// oracle.
#[derive(Clone, Debug)]
struct SegmentRun {
    placement: Placement,
    node_secs: Vec<f64>,
    service: f64,
    reports: Vec<Report>,
    /// Set when the supervisor gave up on at least one node of this
    /// segment (`task-quarantined` / `task-timeout`, first failing node in
    /// node order wins). A failed segment has no usable service time: the
    /// job degrades with this reason instead of starting.
    failed: Option<&'static str>,
}

/// The service-time oracle: runs each distinct (service key, remaining
/// iterations) segment once on real kernels and memoizes. Because seeds
/// never involve time or global node ids, SJF ordering and EASY shadow
/// arithmetic read the *exact* durations later admissions will take. Keys
/// are [`BatchJob::service_key`]: the job id classically, the job class in
/// fleet streams — which collapses a million-job stream to one
/// measurement per (class, iterations).
///
/// Node runs within a segment are independent and go through the pool;
/// seeds are forked serially in node order first, so the fork sequence —
/// part of the determinism contract — never depends on thread scheduling.
struct Oracle {
    cache: BTreeMap<(u64, u32), SegmentRun>,
    sched: LocalSched,
    placement: PlacementStrategy,
    shape: FleetShape,
    internode_latency: f64,
    seed: u64,
    verify_jobs: bool,
    /// Supervisor policy for every node measurement: bounded deterministic
    /// retry on panic, optional wall-clock watchdog per attempt.
    policy: SupervisePolicy,
    /// Injected transient abort (faultsim `taskabort:`), keyed on (service
    /// key, local node, attempt) so outcomes are thread-count-invariant.
    abort: Option<TaskAbortSpec>,
    pool: Pool,
}

impl Oracle {
    fn measure(&mut self, key: u64, spec: &JobSpec) -> SegmentRun {
        if let Some(hit) = self.cache.get(&(key, spec.iterations)) {
            return hit.clone();
        }
        let nodes_needed = spec.ranks().div_ceil(cluster::placement::NODE_SLOTS);
        // INVARIANT: nodes_needed = ceil(ranks / NODE_SLOTS) always yields
        // enough slots for every rank — every fleet shape offers at least
        // NODE_SLOTS slots per node — so placement cannot fail here.
        let catalog = self.shape.catalog(nodes_needed);
        let placement =
            place_on(spec, &catalog, self.placement).expect("sized allocation always fits");
        // Fork per-node seeds serially, in node order, exactly as the
        // serial loop did: empty slots draw nothing. Only then fan out.
        let mut rng = SplitMix64::new(self.seed ^ key.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seeds: Vec<Option<u64>> = placement
            .nodes
            .iter()
            .enumerate()
            .map(|(local, slots)| {
                if slots.is_empty() {
                    None
                } else {
                    Some(rng.fork(local as u64 + 1).next_u64())
                }
            })
            .collect();
        let sched = self.sched;
        let fleet_shape = self.shape;
        let verify = self.verify_jobs;
        let iterations = spec.iterations;
        let abort = self.abort.filter(|a| a.job == key);
        let watchdog = self.policy.timeout.is_some();
        let tasks: Vec<_> = placement
            .nodes
            .iter()
            .zip(&seeds)
            .enumerate()
            .map(|(local, (slots, &seed))| {
                let loads: Vec<f64> = slots.iter().map(|&r| spec.rank_loads[r]).collect();
                let shape = fleet_shape.node_shape(local);
                let abort_here = abort.filter(|a| a.node == local);
                move |attempt: u32| {
                    if let Some(a) = abort_here {
                        if attempt < a.aborts {
                            if a.hang && watchdog {
                                // Wedge: the watchdog — not the unwind
                                // path — must turn this attempt into a
                                // typed timeout. Without a watchdog the
                                // fault falls through to a plain panic so
                                // an unguarded run can never deadlock.
                                std::thread::sleep(Duration::from_secs(3600));
                            }
                            panic!("faultsim: injected task abort (attempt {attempt})");
                        }
                    }
                    match seed {
                        None => (0.0, None),
                        Some(seed) if verify => {
                            let traced = run_node_traced_on(&loads, iterations, sched, seed, &shape);
                            let report = check_with_metrics(
                                &traced.records,
                                &traced.metrics,
                                &CheckConfig::default(),
                            );
                            (traced.run.exec_secs, Some(report))
                        }
                        Some(seed) => {
                            (run_node_on(&loads, iterations, sched, seed, &shape).exec_secs, None)
                        }
                    }
                }
            })
            .collect();
        // Submission order == node order, so the merge below folds node
        // results exactly as the serial loop would. The supervisor absorbs
        // transient aborts (retries are keyed on the attempt index, so a
        // retried node computes the same pure value a clean run would) and
        // converts persistent failures into typed per-node outcomes.
        let mut node_secs = Vec::with_capacity(placement.nodes.len());
        let mut reports = Vec::new();
        let mut failed: Option<&'static str> = None;
        for outcome in self.pool.run_supervised(tasks, self.policy) {
            match outcome {
                Ok((secs, report)) => {
                    node_secs.push(secs);
                    if let Some(r) = report {
                        reports.push(r);
                    }
                }
                Err(TaskFailure::Quarantined { .. }) => {
                    node_secs.push(0.0);
                    failed.get_or_insert("task-quarantined");
                }
                Err(TaskFailure::TaskTimeout { .. }) => {
                    node_secs.push(0.0);
                    failed.get_or_insert("task-timeout");
                }
            }
        }
        let slowest = node_secs.iter().cloned().fold(0.0, f64::max);
        let service = slowest + self.internode_latency * spec.iterations as f64;
        let run = SegmentRun { placement, node_secs, service, reports, failed };
        self.cache.insert((key, spec.iterations), run.clone());
        run
    }

    fn service(&mut self, key: u64, spec: &JobSpec) -> f64 {
        if let Some(hit) = self.cache.get(&(key, spec.iterations)) {
            return hit.service;
        }
        self.measure(key, spec).service
    }
}

/// Queue-side state of one submitted job. `pub(crate)` (with its fields)
/// because the checkpoint wire format images this struct directly.
#[derive(Clone, Debug)]
pub(crate) struct Tracker {
    pub(crate) job: BatchJob,
    /// The spec of the next (or currently running) segment; iterations
    /// shrink when a node failure forces a requeue.
    pub(crate) remaining: JobSpec,
    pub(crate) first_start: Option<SimTime>,
    pub(crate) node_secs_held: f64,
    pub(crate) run_secs: f64,
    pub(crate) iters_done: u32,
    pub(crate) requeues: u32,
    pub(crate) backfilled: bool,
    /// Restart overhead owed on the next admission (set by a requeue).
    pub(crate) restart_due: f64,
    pub(crate) failure: Option<(usize, u32)>,
}

/// One admitted segment occupying nodes. Checkpoints store only
/// `(id, nodes, start, end)`: the attached [`SegmentRun`] re-derives from
/// the pure, memoized oracle on resume.
struct Running {
    id: u64,
    nodes: Vec<usize>,
    start: SimTime,
    end: SimTime,
    run: SegmentRun,
}

/// The node fleet. `up`/`busy` are the checkpoint image; the free set and
/// alive count are derived views kept in lockstep so allocation is
/// O(width · log n) instead of an O(n) scan per decision.
pub(crate) struct Fleet {
    pub(crate) up: Vec<bool>,
    pub(crate) busy: Vec<bool>,
    free: std::collections::BTreeSet<usize>,
    alive: usize,
}

impl Fleet {
    fn new(n: usize) -> Fleet {
        Fleet {
            up: vec![true; n],
            busy: vec![false; n],
            free: (0..n).collect(),
            alive: n,
        }
    }

    /// Rebuild the derived views from checkpoint images.
    fn from_images(up: Vec<bool>, busy: Vec<bool>) -> Fleet {
        let free = (0..up.len()).filter(|&n| up[n] && !busy[n]).collect();
        let alive = up.iter().filter(|&&u| u).count();
        Fleet { up, busy, free, alive }
    }

    fn alive(&self) -> usize {
        self.alive
    }

    fn free_count(&self) -> usize {
        self.free.len()
    }

    /// The first `need` free node ids, in node-id order — the same ids a
    /// full scan used to return.
    fn first_free(&self, need: usize) -> Vec<usize> {
        self.free.iter().copied().take(need).collect()
    }

    fn occupy(&mut self, n: usize) {
        self.busy[n] = true;
        self.free.remove(&n);
    }

    fn release(&mut self, n: usize) {
        self.busy[n] = false;
        if self.up[n] {
            self.free.insert(n);
        }
    }

    fn kill(&mut self, n: usize) {
        if self.up[n] {
            self.up[n] = false;
            self.alive -= 1;
            self.free.remove(&n);
        }
    }
}

/// Where jobs come from: a materialised sorted list (classic) or a lazy
/// generator plus one job of lookahead (fleet). The generator yields in
/// nondecreasing arrival order, so one job of lookahead is enough to
/// answer "when is the next arrival".
pub(crate) enum JobSource {
    Materialized(VecDeque<BatchJob>),
    Stream { gen: FleetJobs, next: Option<BatchJob>, popped: u64 },
}

impl JobSource {
    fn peek_arrival(&self) -> Option<SimTime> {
        match self {
            JobSource::Materialized(q) => q.front().map(arrival_time),
            JobSource::Stream { next, .. } => next.as_ref().map(arrival_time),
        }
    }

    fn pop(&mut self) -> Option<BatchJob> {
        match self {
            JobSource::Materialized(q) => q.pop_front(),
            JobSource::Stream { gen, next, popped } => {
                let out = next.take();
                if out.is_some() {
                    *popped += 1;
                    *next = gen.next();
                }
                out
            }
        }
    }
}

struct Counters {
    submitted: telemetry::Counter,
    completed: telemetry::Counter,
    degraded: telemetry::Counter,
    backfilled: telemetry::Counter,
    requeues: telemetry::Counter,
    nodes_failed: telemetry::Counter,
    wait_us: telemetry::HistogramHandle,
    turnaround_us: telemetry::HistogramHandle,
    /// Bounded slowdown ×1000 — log2-bucketed distribution, O(1) memory.
    slowdown_milli: telemetry::HistogramHandle,
    /// Node·seconds held per completed job ×1000, log2-bucketed.
    node_secs_ms: telemetry::HistogramHandle,
    queue_peak: telemetry::Gauge,
}

impl Counters {
    fn new(reg: &MetricsRegistry) -> Counters {
        Counters {
            submitted: reg.counter("batch.jobs.submitted"),
            completed: reg.counter("batch.jobs.completed"),
            degraded: reg.counter("batch.jobs.degraded"),
            backfilled: reg.counter("batch.jobs.backfilled"),
            requeues: reg.counter("batch.jobs.requeues"),
            nodes_failed: reg.counter("batch.nodes.failed"),
            wait_us: reg.histogram("batch.wait_us"),
            turnaround_us: reg.histogram("batch.turnaround_us"),
            slowdown_milli: reg.histogram("batch.slowdown_milli"),
            node_secs_ms: reg.histogram("batch.node_secs_ms"),
            queue_peak: reg.gauge("batch.queue_depth_peak"),
        }
    }
}

/// A job's submission instant on the exact event clock.
fn arrival_time(job: &BatchJob) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(job.arrival)
}

/// The complete mutable state of one batch run between loop iterations —
/// exactly what a checkpoint captures. Every field is either plain data
/// or re-derivable from plain data plus the pure oracle.
pub(crate) struct EngineState {
    pub(crate) source: JobSource,
    pub(crate) fleet: Fleet,
    pub(crate) trackers: BTreeMap<u64, Tracker>,
    pub(crate) pending: PendingQueue,
    /// Admission sequence → running segment; iteration order is admission
    /// order, which the release index's tie-break mirrors.
    running: BTreeMap<u64, Running>,
    release: ReleaseIndex,
    next_seq: u64,
    pub(crate) trace: TraceLog,
    pub(crate) reservations: ReservationLog,
    pub(crate) sink: RecordSink,
    /// Jobs (service key, in admit order) whose kernel conformance must be
    /// reported; reports re-derive from the memoized oracle at outcome
    /// build.
    pub(crate) conformance_src: Vec<(u64, JobSpec)>,
    pub(crate) completions: u32,
    pub(crate) fault_armed: Option<BatchFault>,
    pub(crate) now: SimTime,
}

fn make_oracle(cfg: &BatchConfig, pool_registry: &MetricsRegistry) -> Oracle {
    // Pool telemetry includes host wall-clock busy time, so it lives on
    // its own registry, snapshotted into the (non-deterministic)
    // `pool_metrics` field rather than the byte-compared `metrics`.
    let pool =
        Pool::with_counters(cfg.threads, PoolCounters::register(pool_registry, "exec.pool"));
    Oracle {
        cache: BTreeMap::new(),
        sched: cfg.sched,
        placement: cfg.placement,
        shape: cfg.shape,
        internode_latency: cfg.internode_latency,
        seed: cfg.seed,
        verify_jobs: cfg.verify_jobs,
        policy: SupervisePolicy {
            max_attempts: cfg.retry_limit.saturating_add(1),
            timeout: cfg.watchdog_secs.map(Duration::from_secs_f64),
        },
        abort: cfg.abort,
        pool,
    }
}

fn init_state(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    oracle: &mut Oracle,
    ctr: &Counters,
) -> EngineState {
    let arrivals: VecDeque<BatchJob> = {
        let mut v: Vec<BatchJob> = stream.to_vec();
        v.sort_by_key(|j| (arrival_time(j), j.id));
        v.into()
    };
    let mut st = EngineState {
        source: JobSource::Materialized(arrivals),
        fleet: Fleet::new(cfg.num_nodes),
        trackers: BTreeMap::new(),
        pending: PendingQueue::new(),
        running: BTreeMap::new(),
        release: ReleaseIndex::new(),
        next_seq: 0,
        trace: TraceLog::Full(Vec::new()),
        reservations: ReservationLog::Full(BTreeMap::new()),
        sink: RecordSink::Full(BTreeMap::new()),
        conformance_src: Vec::new(),
        completions: 0,
        fault_armed: fault.filter(|f| f.node < cfg.num_nodes).copied(),
        now: SimTime::ZERO,
    };
    // A fault at zero completions hits an idle fleet before any admission.
    // This fires exactly once at init, so a checkpoint (always captured
    // after init) never replays it.
    maybe_fire_fault(cfg, oracle, ctr, &mut st);
    st
}

fn init_fleet_state(cfg: &FleetConfig, _ctr: &Counters) -> EngineState {
    let mut gen = FleetJobs::new(&cfg.stream);
    let next = gen.next();
    EngineState {
        source: JobSource::Stream { gen, next, popped: 0 },
        fleet: Fleet::new(cfg.batch.num_nodes),
        trackers: BTreeMap::new(),
        pending: PendingQueue::new(),
        running: BTreeMap::new(),
        release: ReleaseIndex::new(),
        next_seq: 0,
        trace: TraceLog::Hashing { hash: FNV_BASIS, count: 0, max_t: SimTime::ZERO },
        reservations: ReservationLog::Count { count: 0, last: None },
        sink: RecordSink::Streaming(FleetAccum::default()),
        conformance_src: Vec::new(),
        completions: 0,
        fault_armed: None,
        now: SimTime::ZERO,
    }
}

/// Drive the event loop until the stream drains (returns `false`) or
/// `stop` says to halt at a loop boundary (returns `true`). The loop
/// boundary — before `schedule` — is the one point where the state is
/// closed over plain data, which is what makes it the capture point: both
/// the interrupted and the resumed run re-enter `schedule` with identical
/// state, so their continuations are byte-identical.
fn run_engine(
    cfg: &BatchConfig,
    oracle: &mut Oracle,
    ctr: &Counters,
    st: &mut EngineState,
    mut stop: impl FnMut(&EngineState) -> bool,
) -> bool {
    loop {
        if stop(st) {
            return true;
        }
        schedule(cfg, oracle, ctr, st);

        let next_finish = st.release.next_release().unwrap_or(SimTime::MAX);
        let next_arrival = st.source.peek_arrival().unwrap_or(SimTime::MAX);
        if next_finish == SimTime::MAX && next_arrival == SimTime::MAX {
            return false;
        }
        st.now = next_finish.min(next_arrival);

        // Completions first (freeing nodes for same-instant arrivals), in
        // id order for determinism. Timestamps are exact nanoseconds, so
        // "same instant" is integer equality.
        let released = st.release.pop_released(st.now);
        let mut finished: Vec<Running> =
            released.iter().filter_map(|seq| st.running.remove(seq)).collect();
        finished.sort_by_key(|r| r.id);
        for seg in finished {
            complete(seg, oracle, ctr, st);
            st.completions += 1;
            maybe_fire_fault(cfg, oracle, ctr, st);
        }

        while st.source.peek_arrival().is_some_and(|t| t <= st.now) {
            // INVARIANT: guarded by the is_some_and above.
            let job = st.source.pop().expect("peeked arrival present");
            ctr.submitted.inc();
            st.trace.push(BatchEvent::Submit {
                t: st.now,
                job: job.id,
                ranks: job.spec.ranks(),
                nodes: job.nodes_needed(),
            });
            let id = job.id;
            let need = job.nodes_needed();
            let remaining = job.spec.clone();
            st.trackers.insert(
                id,
                Tracker {
                    job,
                    remaining,
                    first_start: None,
                    node_secs_held: 0.0,
                    run_secs: 0.0,
                    iters_done: 0,
                    requeues: 0,
                    backfilled: false,
                    restart_due: 0.0,
                    failure: None,
                },
            );
            if cfg.discipline == Discipline::Sjf {
                let rank = queued_service(oracle, &st.trackers, id).to_bits();
                st.pending.push_ranked(id, rank, need);
            } else {
                st.pending.push_back(id, need);
            }
        }
        let depth = st.pending.len() as i64;
        if depth > ctr.queue_peak.get() {
            ctr.queue_peak.set(depth);
        }
    }
}

fn finish_outcome(
    cfg: &BatchConfig,
    st: EngineState,
    oracle: &mut Oracle,
    registry: &MetricsRegistry,
    pool_registry: &MetricsRegistry,
) -> BatchOutcome {
    // Conformance reports re-derive from the pure oracle: for jobs
    // measured before a checkpoint this is a fresh (memoized) kernel run,
    // for everything else a cache hit — identical reports either way.
    let mut conformance: Vec<(u64, Report)> = Vec::new();
    if cfg.verify_jobs {
        for (key, spec) in &st.conformance_src {
            let run = oracle.measure(*key, spec);
            for rep in run.reports {
                conformance.push((*key, rep));
            }
        }
    }
    let events = match st.trace {
        TraceLog::Full(v) => v,
        // INVARIANT: classic runs always carry a Full trace; an empty
        // trace is a safe degenerate for a mismatched caller.
        TraceLog::Hashing { .. } => Vec::new(),
    };
    let makespan = events.iter().map(event_time).max().map_or(0.0, |t| t.as_secs_f64());
    let jobs: Vec<JobRecord> = match st.sink {
        RecordSink::Full(m) => m.into_values().collect(),
        RecordSink::Streaming(_) => Vec::new(),
    };
    let reservations = match st.reservations {
        ReservationLog::Full(m) => m.into_values().collect(),
        ReservationLog::Count { .. } => Vec::new(),
    };
    BatchOutcome {
        config_nodes: cfg.num_nodes,
        jobs,
        events,
        reservations,
        failed_nodes: (0..cfg.num_nodes).filter(|&n| !st.fleet.up[n]).collect(),
        makespan,
        metrics: registry.snapshot(),
        pool_metrics: pool_registry.snapshot(),
        conformance,
    }
}

fn finish_fleet(
    cfg: &FleetConfig,
    st: EngineState,
    registry: &MetricsRegistry,
    pool_registry: &MetricsRegistry,
    ctr: &Counters,
) -> FleetOutcome {
    let (trace_hash, trace_events, max_t) = match st.trace {
        TraceLog::Hashing { hash, count, max_t } => (hash, count, max_t),
        // INVARIANT: fleet runs always hash their trace; fall back to the
        // empty-trace fingerprint for a mismatched caller.
        TraceLog::Full(_) => (FNV_BASIS, 0, SimTime::ZERO),
    };
    let reservations = match st.reservations {
        ReservationLog::Count { count, .. } => count,
        ReservationLog::Full(m) => m.len() as u64,
    };
    let accum = match st.sink {
        RecordSink::Streaming(a) => a,
        RecordSink::Full(m) => {
            let mut a = FleetAccum::default();
            for r in m.values() {
                a.fold(r);
            }
            a
        }
    };
    let makespan = max_t.as_secs_f64();
    FleetOutcome {
        config_nodes: cfg.batch.num_nodes,
        trace_hash,
        trace_events,
        makespan,
        reservations,
        queue_peak: ctr.queue_peak.get(),
        accum,
        stats: FleetStats::from_accum(&accum, cfg.batch.num_nodes, makespan),
        metrics: registry.snapshot(),
        pool_metrics: pool_registry.snapshot(),
    }
}

/// Run a batch stream to completion. Never panics on the fault path: jobs
/// that cannot be (re)placed degrade with partial accounting instead.
// PURITY-ROOT: per-job node kernels fan out from here; the outcome must be
// a pure function of (stream, cfg, fault) regardless of cfg.threads.
pub fn run_batch(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
) -> BatchOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &mut oracle, &ctr);
    run_engine(cfg, &mut oracle, &ctr, &mut st, |_| false);
    finish_outcome(cfg, st, &mut oracle, &registry, &pool_registry)
}

/// [`run_batch`] with periodic crash-consistent checkpoints: whenever the
/// run crosses `policy`'s event/completion cadence (checked at the loop
/// boundary), a [`BatchCheckpoint`] is captured and handed to `sink`.
/// The run itself is unaffected — its trace is byte-identical to
/// [`run_batch`]'s.
pub fn run_batch_checkpointed(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    policy: &CheckpointPolicy,
    mut sink: impl FnMut(&BatchCheckpoint),
) -> BatchOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &mut oracle, &ctr);
    let mut last_events = 0usize;
    let mut last_jobs = 0u32;
    run_engine(cfg, &mut oracle, &ctr, &mut st, |s| {
        let due_events =
            policy.every_events.is_some_and(|k| s.trace.len() - last_events >= k);
        let due_jobs = policy.every_jobs.is_some_and(|j| s.completions - last_jobs >= j);
        if due_events || due_jobs {
            last_events = s.trace.len();
            last_jobs = s.completions;
            sink(&capture(cfg, s, ctr.queue_peak.get()));
        }
        false
    });
    finish_outcome(cfg, st, &mut oracle, &registry, &pool_registry)
}

/// Run until the trace holds at least `stop_after_events` events (checked
/// at the loop boundary) and capture a checkpoint there; `None` when the
/// stream drained first. This is the kill-at-event primitive the recovery
/// tests and the `--ckpt-smoke` harness are built on.
pub fn run_batch_until(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    stop_after_events: usize,
) -> Option<BatchCheckpoint> {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &mut oracle, &ctr);
    let stopped =
        run_engine(cfg, &mut oracle, &ctr, &mut st, |s| s.trace.len() >= stop_after_events);
    stopped.then(|| capture(cfg, &st, ctr.queue_peak.get()))
}

/// Continue a checkpointed run to completion. The resumed trace (which
/// includes the pre-checkpoint prefix) is byte-identical to the
/// uninterrupted run's: state is restored exactly, kernel results
/// re-derive from the pure oracle, and metrics replay from the restored
/// records and events.
// PURITY-ROOT: resumed runs fan node kernels out exactly like run_batch.
pub fn resume_batch(ckpt: &BatchCheckpoint) -> BatchOutcome {
    let cfg = ckpt.cfg;
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(&cfg, &pool_registry);
    replay_metrics(&ctr, ckpt);
    let mut st = restore_engine(
        ckpt,
        &mut oracle,
        JobSource::Materialized(ckpt.arrivals.clone()),
        TraceLog::Full(ckpt.events.clone()),
        ReservationLog::Full(ckpt.reservations.clone()),
        RecordSink::Full(ckpt.records.clone()),
    );
    run_engine(&cfg, &mut oracle, &ctr, &mut st, |_| false);
    finish_outcome(&cfg, st, &mut oracle, &registry, &pool_registry)
}

/// Run a fleet-scale streaming batch to completion: lazy arrivals, hashed
/// trace, O(1)-memory statistics. See [`crate::fleet`].
// PURITY-ROOT: fleet runs fan per-node kernels out exactly like run_batch;
// the outcome must be a pure function of (stream cfg, batch cfg) at any
// thread count.
pub fn run_fleet(cfg: &FleetConfig) -> FleetOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(&cfg.batch, &pool_registry);
    let mut st = init_fleet_state(cfg, &ctr);
    run_engine(&cfg.batch, &mut oracle, &ctr, &mut st, |_| false);
    finish_fleet(cfg, st, &registry, &pool_registry, &ctr)
}

/// Run a fleet stream until the trace holds at least `stop_after_events`
/// events and capture a (fleet-extended) checkpoint there; `None` when
/// the stream drained first.
pub fn run_fleet_until(cfg: &FleetConfig, stop_after_events: usize) -> Option<BatchCheckpoint> {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(&cfg.batch, &pool_registry);
    let mut st = init_fleet_state(cfg, &ctr);
    let stopped =
        run_engine(&cfg.batch, &mut oracle, &ctr, &mut st, |s| s.trace.len() >= stop_after_events);
    stopped.then(|| capture_fleet(cfg, &st, &registry, ctr.queue_peak.get()))
}

/// Continue a checkpointed fleet run to completion. The resumed trace
/// fingerprint (which folds the pre-checkpoint prefix) equals the
/// uninterrupted run's, as do the accumulator and metrics: the generator
/// replays to its imaged position (generation is pure in `(cfg, index)`),
/// the trace hash continues from the imaged fold, and metric state is
/// restored from the imaged snapshot.
// PURITY-ROOT: resumed fleet runs fan node kernels out exactly like
// run_fleet.
pub fn resume_fleet(ckpt: &BatchCheckpoint) -> FleetOutcome {
    let Some(extra) = ckpt.fleet.clone() else {
        // INVARIANT: callers resume fleet checkpoints with fleet images; a
        // classic image has no generator to continue, so return the empty
        // outcome rather than panicking.
        let accum = FleetAccum::default();
        return FleetOutcome {
            config_nodes: ckpt.cfg.num_nodes,
            trace_hash: FNV_BASIS,
            trace_events: 0,
            makespan: 0.0,
            reservations: 0,
            queue_peak: 0,
            accum,
            stats: FleetStats::from_accum(&accum, ckpt.cfg.num_nodes, 0.0),
            metrics: MetricsRegistry::new().snapshot(),
            pool_metrics: MetricsRegistry::new().snapshot(),
        };
    };
    let cfg = FleetConfig { stream: extra.stream, batch: ckpt.cfg };
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    registry.restore(&extra.metrics);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(&cfg.batch, &pool_registry);
    // Replay the generator to its imaged position: `popped` jobs were
    // handed to the engine, and the lookahead slot refills from there.
    let mut gen = FleetJobs::replay(&extra.stream, extra.popped);
    let next = gen.next();
    let mut st = restore_engine(
        ckpt,
        &mut oracle,
        JobSource::Stream { gen, next, popped: extra.popped },
        TraceLog::Hashing {
            hash: extra.trace_hash,
            count: extra.trace_len,
            max_t: extra.trace_max_t,
        },
        ReservationLog::Count {
            count: extra.reservation_count,
            last: extra.reservation_last,
        },
        RecordSink::Streaming(extra.accum),
    );
    run_engine(&cfg.batch, &mut oracle, &ctr, &mut st, |_| false);
    finish_fleet(&cfg, st, &registry, &pool_registry, &ctr)
}

/// Image the engine state into a checkpoint (plain data only).
fn capture(cfg: &BatchConfig, st: &EngineState, queue_peak: i64) -> BatchCheckpoint {
    BatchCheckpoint {
        cfg: *cfg,
        fault_armed: st.fault_armed,
        now: st.now,
        completions: st.completions,
        fleet_up: st.fleet.up.clone(),
        fleet_busy: st.fleet.busy.clone(),
        arrivals: match &st.source {
            JobSource::Materialized(q) => q.clone(),
            JobSource::Stream { .. } => VecDeque::new(),
        },
        queue: st.pending.iter().collect(),
        trackers: st.trackers.clone(),
        running: st
            .running
            .values()
            .map(|r| (r.id, r.nodes.clone(), r.start, r.end))
            .collect(),
        events: match &st.trace {
            TraceLog::Full(v) => v.clone(),
            TraceLog::Hashing { .. } => Vec::new(),
        },
        reservations: match &st.reservations {
            ReservationLog::Full(m) => m.clone(),
            ReservationLog::Count { .. } => BTreeMap::new(),
        },
        records: match &st.sink {
            RecordSink::Full(m) => m.clone(),
            RecordSink::Streaming(_) => BTreeMap::new(),
        },
        conformance_src: st.conformance_src.clone(),
        queue_peak,
        fleet: None,
    }
}

/// [`capture`] plus the fleet extension: generator position, trace-hash
/// fold, reservation tally, accumulator, and a full metrics image (fleet
/// resumes cannot replay metrics from records — there are none).
fn capture_fleet(
    cfg: &FleetConfig,
    st: &EngineState,
    registry: &MetricsRegistry,
    queue_peak: i64,
) -> BatchCheckpoint {
    let mut ckpt = capture(&cfg.batch, st, queue_peak);
    let popped = match &st.source {
        JobSource::Stream { popped, .. } => *popped,
        JobSource::Materialized(_) => 0,
    };
    let (trace_hash, trace_len, trace_max_t) = match &st.trace {
        TraceLog::Hashing { hash, count, max_t } => (*hash, *count, *max_t),
        TraceLog::Full(_) => (FNV_BASIS, 0, SimTime::ZERO),
    };
    let (reservation_count, reservation_last) = match &st.reservations {
        ReservationLog::Count { count, last } => (*count, *last),
        ReservationLog::Full(_) => (0, None),
    };
    let accum = match &st.sink {
        RecordSink::Streaming(a) => *a,
        RecordSink::Full(_) => FleetAccum::default(),
    };
    ckpt.fleet = Some(FleetExtra {
        stream: cfg.stream,
        popped,
        trace_hash,
        trace_len,
        trace_max_t,
        reservation_count,
        reservation_last,
        accum,
        metrics: registry.snapshot(),
    });
    ckpt
}

/// Rebuild engine state from a checkpoint's plain data: re-attach kernel
/// measurements to in-flight segments (the oracle is pure, so this
/// recomputes exactly the `SegmentRun` the interrupted run held),
/// re-derive admission sequences in imaged order, and rebuild the pending
/// queue in its imaged order — sequence-ranked for FCFS/EASY, service-
/// ranked for SJF.
fn restore_engine(
    ckpt: &BatchCheckpoint,
    oracle: &mut Oracle,
    source: JobSource,
    trace: TraceLog,
    reservations: ReservationLog,
    sink: RecordSink,
) -> EngineState {
    let trackers = ckpt.trackers.clone();
    let mut running: BTreeMap<u64, Running> = BTreeMap::new();
    let mut release = ReleaseIndex::new();
    let mut next_seq = 0u64;
    // Segments without a tracker cannot exist in a checksummed
    // checkpoint; they are skipped rather than unwrapped.
    for (id, nodes, start, end) in &ckpt.running {
        if let Some(tr) = trackers.get(id) {
            let run = oracle.measure(tr.job.service_key(), &tr.remaining);
            let seq = next_seq;
            next_seq += 1;
            release.insert(seq, *end, nodes.len());
            running.insert(
                seq,
                Running { id: *id, nodes: nodes.clone(), start: *start, end: *end, run },
            );
        }
    }
    let mut pending = PendingQueue::new();
    for &id in &ckpt.queue {
        let need = trackers.get(&id).map_or(0, |t| t.job.nodes_needed());
        if ckpt.cfg.discipline == Discipline::Sjf {
            let rank = queued_service(oracle, &trackers, id).to_bits();
            pending.push_ranked(id, rank, need);
        } else {
            pending.push_back(id, need);
        }
    }
    EngineState {
        source,
        fleet: Fleet::from_images(ckpt.fleet_up.clone(), ckpt.fleet_busy.clone()),
        trackers,
        pending,
        running,
        release,
        next_seq,
        trace,
        reservations,
        sink,
        conformance_src: ckpt.conformance_src.clone(),
        completions: ckpt.completions,
        fault_armed: ckpt.fault_armed,
        now: ckpt.now,
    }
}

/// Rebuild the deterministic metric values an uninterrupted run would
/// hold at the checkpoint instant, from the restored state alone. (Pool
/// counters are host wall-clock and excluded from determinism, so they
/// start fresh.)
fn replay_metrics(ctr: &Counters, ckpt: &BatchCheckpoint) {
    let count = |f: fn(&BatchEvent) -> bool| ckpt.events.iter().filter(|e| f(e)).count() as u64;
    ctr.submitted.add(count(|e| matches!(e, BatchEvent::Submit { .. })));
    ctr.completed.add(count(|e| matches!(e, BatchEvent::Finish { .. })));
    ctr.degraded.add(count(|e| matches!(e, BatchEvent::Degraded { .. })));
    ctr.nodes_failed.add(count(|e| matches!(e, BatchEvent::NodeFail { .. })));
    // Requeue counts live on trackers/records, not events: the requeue
    // that exhausts the retry budget increments the counter but emits a
    // Degraded event instead of a Requeue event.
    let requeues = ckpt.records.values().map(|r| u64::from(r.requeues)).sum::<u64>()
        + ckpt.trackers.values().map(|t| u64::from(t.requeues)).sum::<u64>();
    ctr.requeues.add(requeues);
    for r in ckpt.records.values().filter(|r| !r.outcome.degraded) {
        if r.backfilled {
            ctr.backfilled.inc();
        }
        ctr.wait_us.record((r.wait * 1e6) as u64);
        ctr.turnaround_us.record((r.turnaround * 1e6) as u64);
        ctr.slowdown_milli.record((r.slowdown * 1e3) as u64);
        ctr.node_secs_ms.record((r.node_secs_held * 1e3) as u64);
    }
    ctr.queue_peak.set(ckpt.queue_peak);
}

fn complete(seg: Running, oracle: &mut Oracle, ctr: &Counters, st: &mut EngineState) {
    let now = st.now;
    for &n in &seg.nodes {
        st.fleet.release(n);
    }
    st.trace.push(BatchEvent::Finish { t: now, job: seg.id });
    ctr.completed.inc();
    let Some(mut tr) = st.trackers.remove(&seg.id) else {
        // INVARIANT: every running segment has a tracker; nothing to do
        // if the map was corrupted, and degrading silently beats a panic.
        return;
    };
    let ran = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += ran * seg.nodes.len() as f64;
    tr.run_secs += ran;
    tr.iters_done += tr.remaining.iterations;
    let full_service = oracle.service(tr.job.service_key(), &tr.job.spec);
    let first_start = tr.first_start.unwrap_or(seg.start);
    let wait = first_start.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    let turnaround = now.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    let slowdown = if full_service > 0.0 { turnaround / full_service } else { 1.0 };
    ctr.wait_us.record((wait * 1e6) as u64);
    ctr.turnaround_us.record((turnaround * 1e6) as u64);
    ctr.slowdown_milli.record((slowdown * 1e3) as u64);
    ctr.node_secs_ms.record((tr.node_secs_held * 1e3) as u64);
    if tr.backfilled {
        ctr.backfilled.inc();
    }
    st.sink.put(JobRecord {
        id: seg.id,
        name: tr.job.spec.name.clone(),
        ranks: tr.job.spec.ranks(),
        arrival: arrival_time(&tr.job).as_secs_f64(),
        first_start: Some(first_start.as_secs_f64()),
        end: now.as_secs_f64(),
        wait,
        turnaround,
        slowdown,
        backfilled: tr.backfilled,
        requeues: tr.requeues,
        node_secs_held: tr.node_secs_held,
        outcome: ClusterOutcome {
            result: ClusterResult {
                placement: seg.run.placement,
                node_secs: seg.run.node_secs,
                makespan: tr.run_secs,
            },
            failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                node,
                at_iteration: at,
                retries_used: tr.requeues,
                absorbed: true,
            }),
            degraded: false,
        },
    });
}

fn maybe_fire_fault(cfg: &BatchConfig, oracle: &mut Oracle, ctr: &Counters, st: &mut EngineState) {
    let fires = st.fault_armed.is_some_and(|f| st.completions >= f.after_completions);
    if !fires {
        return;
    }
    let Some(f) = st.fault_armed.take() else {
        // INVARIANT: is_some_and above guarantees presence.
        return;
    };
    if !st.fleet.up[f.node] {
        return;
    }
    st.fleet.kill(f.node);
    ctr.nodes_failed.inc();
    st.trace.push(BatchEvent::NodeFail { t: st.now, node: f.node });

    // First victim in admission order — the same segment the old linear
    // scan over the admission-ordered running list found.
    let hit = st
        .running
        .iter()
        .find(|(_, r)| r.nodes.contains(&f.node))
        .map(|(&seq, _)| seq);
    let Some(seq) = hit else {
        return;
    };
    let Some(seg) = st.running.remove(&seq) else {
        // INVARIANT: seq was just found in the map.
        return;
    };
    st.release.remove(seq);
    for &n in &seg.nodes {
        st.fleet.release(n);
    }
    let now = st.now;
    let Some(tr) = st.trackers.get_mut(&seg.id) else {
        // INVARIANT: every running segment has a tracker (see `complete`).
        return;
    };
    let elapsed = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += elapsed * seg.nodes.len() as f64;
    tr.run_secs += elapsed;
    let iters = tr.remaining.iterations;
    let span = seg.end.saturating_since(seg.start).as_secs_f64();
    let frac = if span > 0.0 { elapsed / span } else { 0.0 };
    let iters_done = ((frac * iters as f64) as u32).min(iters.saturating_sub(1));
    tr.iters_done += iters_done;
    let remaining_iters = iters - iters_done;
    tr.failure = Some((f.node, tr.iters_done));
    tr.requeues += 1;
    ctr.requeues.inc();

    if tr.requeues > f.max_retries {
        degrade(seg.id, "retries-exhausted", ctr, st);
        return;
    }
    tr.remaining = JobSpec::new(
        tr.job.spec.name.clone(),
        tr.job.spec.rank_loads.clone(),
        remaining_iters,
    );
    tr.restart_due = f.restart_secs;
    let need = tr.job.nodes_needed();
    if cfg.discipline == Discipline::Sjf {
        // Re-rank under the new remaining segment + restart overhead —
        // the position the old full re-sort would have given it.
        let rank = queued_service(oracle, &st.trackers, seg.id).to_bits();
        st.pending.push_ranked(seg.id, rank, need);
    } else {
        st.pending.push_front(seg.id, need);
    }
    st.trace.push(BatchEvent::Requeue { t: now, job: seg.id, remaining_iters });
}

fn degrade(id: u64, reason: &'static str, ctr: &Counters, st: &mut EngineState) {
    let Some(tr) = st.trackers.remove(&id) else {
        // INVARIANT: callers only degrade ids they hold in the map.
        return;
    };
    ctr.degraded.inc();
    st.trace.push(BatchEvent::Degraded { t: st.now, job: id, reason });
    let n = tr.job.nodes_needed().min(st.fleet.up.len().max(1));
    st.sink.put(JobRecord {
        id,
        name: tr.job.spec.name.clone(),
        ranks: tr.job.spec.ranks(),
        arrival: arrival_time(&tr.job).as_secs_f64(),
        first_start: tr.first_start.map(SimTime::as_secs_f64),
        end: st.now.as_secs_f64(),
        wait: 0.0,
        turnaround: st.now.saturating_since(arrival_time(&tr.job)).as_secs_f64(),
        slowdown: 0.0,
        backfilled: tr.backfilled,
        requeues: tr.requeues,
        node_secs_held: tr.node_secs_held,
        outcome: ClusterOutcome {
            result: ClusterResult {
                placement: Placement {
                    strategy: PlacementStrategy::RoundRobin,
                    nodes: vec![Vec::new(); n],
                },
                node_secs: vec![0.0; n],
                makespan: tr.run_secs,
            },
            failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                node,
                at_iteration: at,
                retries_used: tr.requeues,
                absorbed: false,
            }),
            degraded: true,
        },
    });
}

fn schedule(cfg: &BatchConfig, oracle: &mut Oracle, ctr: &Counters, st: &mut EngineState) {
    // Jobs wider than the surviving fleet can never start: degrade them
    // instead of deadlocking the queue. The width index answers this as a
    // range query, in queue order.
    let alive = st.fleet.alive();
    for id in st.pending.wider_than(alive) {
        st.pending.remove(id);
        degrade(id, "unplaceable", ctr, st);
    }

    // Admit from the head while it fits. The pending queue iterates in
    // discipline order (insertion sequence for FCFS/EASY, service rank
    // for SJF), so no per-pass re-sort is needed.
    loop {
        let Some(head) = st.pending.first() else { return };
        let need = st.trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
        if need > st.fleet.free_count() {
            break;
        }
        st.pending.remove(head);
        let alloc = st.fleet.first_free(need);
        admit(head, &alloc, false, cfg, oracle, ctr, st);
    }

    if cfg.discipline != Discipline::Easy || st.pending.is_empty() {
        return;
    }

    // EASY backfill: reserve the head, let later jobs jump ahead iff they
    // cannot delay it. The shadow walk visits releases in end order and
    // stops once the head fits — O(head_need · log r), not a sort.
    let Some(head) = st.pending.first() else { return };
    let head_need = st.trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
    let mut free = st.fleet.free_count();
    let Some((shadow, avail)) = st.release.shadow(free, head_need) else {
        // Head cannot be satisfied even when everything drains — it would
        // have been dropped as unplaceable above; leave the queue alone.
        return;
    };
    st.reservations.note(head, st.now, shadow);
    // Nodes free at the shadow instant beyond what the head will take.
    let mut spare = avail - head_need;

    let window = cfg.backfill_window.unwrap_or(usize::MAX);
    let candidates: Vec<u64> = st.pending.iter().skip(1).take(window).collect();
    let mut admitted: Vec<u64> = Vec::new();
    for id in candidates {
        let Some(tr) = st.trackers.get(&id) else { continue };
        let need = tr.job.nodes_needed();
        if need > free {
            continue;
        }
        let svc = queued_service(oracle, &st.trackers, id);
        // Exact nanosecond comparison: the candidate's completion instant
        // is computed the same way `admit` will compute it.
        let fits_before_shadow = st.now + SimDuration::from_secs_f64(svc) <= shadow;
        let fits_in_spare = need <= spare;
        if !fits_before_shadow && !fits_in_spare {
            continue;
        }
        if !fits_before_shadow {
            spare -= need;
        }
        free -= need;
        admitted.push(id);
    }
    for id in admitted {
        st.pending.remove(id);
        let need = st.trackers.get(&id).map_or(0, |t| t.job.nodes_needed());
        let alloc = st.fleet.first_free(need);
        admit(id, &alloc, true, cfg, oracle, ctr, st);
    }
}

/// Effective service of a queued job: measured segment time plus any
/// restart overhead owed from a requeue.
fn queued_service(oracle: &mut Oracle, trackers: &BTreeMap<u64, Tracker>, id: u64) -> f64 {
    trackers
        .get(&id)
        .map_or(0.0, |t| oracle.service(t.job.service_key(), &t.remaining) + t.restart_due)
}

fn admit(
    id: u64,
    alloc: &[usize],
    backfilled: bool,
    cfg: &BatchConfig,
    oracle: &mut Oracle,
    ctr: &Counters,
    st: &mut EngineState,
) {
    let run = {
        let Some(tr) = st.trackers.get(&id) else {
            // INVARIANT: admit is only called with queued ids, which
            // always have trackers.
            return;
        };
        oracle.measure(tr.job.service_key(), &tr.remaining)
    };
    if let Some(reason) = run.failed {
        // The supervisor gave up on this job's kernel measurement
        // (quarantined panic loop or watchdog timeout): there is no
        // service time to schedule with, so the job degrades with the
        // typed reason instead of starting.
        degrade(id, reason, ctr, st);
        return;
    }
    let now = st.now;
    let Some(tr) = st.trackers.get_mut(&id) else {
        return;
    };
    if cfg.verify_jobs && tr.requeues == 0 {
        // Record the *source* of the conformance check, not the reports:
        // the oracle is pure and memoized, so reports re-derive at outcome
        // build — which keeps checkpoints free of report payloads.
        st.conformance_src.push((tr.job.service_key(), tr.remaining.clone()));
    }
    let service = run.service + tr.restart_due;
    tr.restart_due = 0.0;
    if tr.first_start.is_none() {
        tr.first_start = Some(now);
    }
    if backfilled {
        tr.backfilled = true;
    }
    for &n in alloc {
        st.fleet.occupy(n);
    }
    st.trace.push(BatchEvent::Start { t: now, job: id, nodes: alloc.to_vec(), backfilled });
    let end = now + SimDuration::from_secs_f64(service);
    let seq = st.next_seq;
    st.next_seq += 1;
    st.release.insert(seq, end, alloc.len());
    st.running.insert(seq, Running { id, nodes: alloc.to_vec(), start: now, end, run });
}
