//! The event-driven batch engine: arrivals → queue → admission →
//! per-job cluster runs on real `schedsim` kernels.
//!
//! # Determinism argument
//!
//! The whole simulation is a pure function of `(stream, config, fault)`,
//! including [`BatchConfig::threads`]:
//!
//! * arrivals are a sorted input, ties broken by submission id;
//! * every queue decision iterates jobs in a total order (discipline
//!   order, then id) over `BTreeMap`/`Vec` state — no hash iteration;
//! * a job's *service time* is computed by seeded kernel runs whose seeds
//!   mix only `(config seed, job id, local node index)` — never the start
//!   time or the global node ids — so the oracle used for SJF ordering and
//!   EASY shadow arithmetic returns exactly the duration the job will
//!   take when it actually runs, whenever that is;
//! * event timestamps are exact [`SimTime`] nanoseconds — equality and
//!   ordering of completions, arrivals, and EASY shadow deadlines are
//!   integer comparisons, with no float slack;
//! * simulated time advances only to event timestamps (completions before
//!   arrivals at equal times, both in id order);
//! * per-node kernel runs go through a [`simcore::Pool`]: each run is a
//!   pure function of `(loads, iterations, sched, seed)` (see
//!   [`cluster::node`]), per-node seeds are derived *serially* in node
//!   order before anything is submitted, and the pool returns results in
//!   submission order — so every reduction folds in node order and the
//!   outcome is byte-identical at any thread count.
//!
//! The seed and timestamp points make the EASY no-delay invariant *exact*
//! rather than estimate-based: the reservation (shadow time) computed when
//! the queue head blocks is the time the head actually starts, unless an
//! earlier completion improves it.

use std::collections::{BTreeMap, VecDeque};
use std::time::Duration;

use cluster::{
    place, run_node_sched, run_node_traced, ClusterOutcome, ClusterResult, JobSpec, LocalSched,
    NodeFailureRecord, Placement, PlacementStrategy,
};
use faultsim::{NodeFailSpec, SplitMix64, TaskAbortSpec};
use simcore::{Pool, PoolCounters, SimDuration, SimTime, SupervisePolicy, TaskFailure};
use simverify::conformance::{check_with_metrics, CheckConfig, Report};
use telemetry::{MetricsRegistry, MetricsSnapshot};

use crate::checkpoint::{BatchCheckpoint, CheckpointPolicy};
use crate::discipline::Discipline;
use crate::job::BatchJob;

/// Batch scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    pub num_nodes: usize,
    pub discipline: Discipline,
    /// Node-local scheduler every admitted job runs under.
    pub sched: LocalSched,
    pub placement: PlacementStrategy,
    /// Inter-node allreduce latency per gang iteration, seconds.
    pub internode_latency: f64,
    pub seed: u64,
    /// Trace every per-job kernel and conformance-check it (C001–C005);
    /// reports land in [`BatchOutcome::conformance`].
    pub verify_jobs: bool,
    /// Worker threads for per-node kernel runs (1 = serial). Any value
    /// produces byte-identical output; >1 only changes wall-clock time.
    pub threads: usize,
    /// Supervisor retry budget: a per-node kernel measurement that panics
    /// is retried up to this many times before the job is quarantined into
    /// a typed `task-quarantined` degradation.
    pub retry_limit: u32,
    /// Host wall-clock watchdog per measurement attempt; a hung attempt
    /// becomes a typed `task-timeout` degradation instead of wedging the
    /// fleet. `None` disables the watchdog (attempts run inline).
    pub watchdog_secs: Option<f64>,
    /// Injected transient task-abort fault (faultsim `taskabort:` class),
    /// exercised by the supervisor's retry/quarantine path.
    pub abort: Option<TaskAbortSpec>,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            num_nodes: 4,
            discipline: Discipline::Fcfs,
            sched: LocalSched::Hpc,
            placement: PlacementStrategy::SmtAware,
            internode_latency: 20e-6,
            seed: 2008,
            verify_jobs: false,
            threads: 1,
            retry_limit: 2,
            watchdog_secs: None,
            abort: None,
        }
    }
}

/// A node failure aimed at the *queued* system: fires once the fleet has
/// completed `after_completions` jobs, killing `node` permanently. A job
/// running there re-enters the queue with its remaining iterations (and
/// competes with pending jobs for survivors), paying `restart_secs` per
/// attempt, up to `max_retries` requeues before degrading.
#[derive(Clone, Copy, Debug)]
pub struct BatchFault {
    pub node: usize,
    pub after_completions: u32,
    pub max_retries: u32,
    pub restart_secs: f64,
}

impl BatchFault {
    /// Reuse faultsim's `nodefail:` spec: `iter` counts completed *jobs*
    /// here rather than gang iterations.
    pub fn from_spec(s: &NodeFailSpec) -> BatchFault {
        BatchFault {
            node: s.node,
            after_completions: s.iteration,
            max_retries: s.retries,
            restart_secs: s.restart_secs,
        }
    }
}

/// One entry of the deterministic batch-level event trace. Timestamps are
/// exact simulated nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEvent {
    Submit { t: SimTime, job: u64, ranks: usize, nodes: usize },
    Start { t: SimTime, job: u64, nodes: Vec<usize>, backfilled: bool },
    Finish { t: SimTime, job: u64 },
    NodeFail { t: SimTime, node: usize },
    Requeue { t: SimTime, job: u64, remaining_iters: u32 },
    Degraded { t: SimTime, job: u64, reason: &'static str },
}

/// Exact seconds.nanoseconds rendering of an event timestamp — integer
/// arithmetic only, so the text is a faithful image of the `SimTime`.
fn render_t(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

impl BatchEvent {
    fn render(&self) -> String {
        match self {
            BatchEvent::Submit { t, job, ranks, nodes } => {
                format!("{} submit job={job} ranks={ranks} nodes={nodes}", render_t(*t))
            }
            BatchEvent::Start { t, job, nodes, backfilled } => {
                format!("{} start job={job} nodes={nodes:?} backfilled={backfilled}", render_t(*t))
            }
            BatchEvent::Finish { t, job } => format!("{} finish job={job}", render_t(*t)),
            BatchEvent::NodeFail { t, node } => format!("{} nodefail node={node}", render_t(*t)),
            BatchEvent::Requeue { t, job, remaining_iters } => {
                format!("{} requeue job={job} remaining={remaining_iters}", render_t(*t))
            }
            BatchEvent::Degraded { t, job, reason } => {
                format!("{} degraded job={job} reason={reason}", render_t(*t))
            }
        }
    }
}

/// The head-of-queue reservation EASY computed when the head first
/// blocked: the head is guaranteed to start no later than `shadow`.
#[derive(Clone, Copy, Debug)]
pub struct ReservationRecord {
    pub job: u64,
    /// When the reservation was made.
    pub at: SimTime,
    /// The shadow time: earliest instant enough nodes free up.
    pub shadow: SimTime,
}

/// Final per-job accounting. Times here are derived *reporting* floats;
/// the exact event clock lives in [`BatchEvent`].
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub name: String,
    pub ranks: usize,
    pub arrival: f64,
    /// `None` when the job degraded before ever starting.
    pub first_start: Option<f64>,
    /// Completion (or drop) time.
    pub end: f64,
    /// Queue wait: first start − arrival (completed jobs only).
    pub wait: f64,
    pub turnaround: f64,
    /// Turnaround over the job's clean full-stream service time.
    pub slowdown: f64,
    pub backfilled: bool,
    pub requeues: u32,
    /// Node·seconds of fleet capacity this job held.
    pub node_secs_held: f64,
    /// The per-job cluster outcome — degraded-but-clean under faults, in
    /// the same shape single-job cluster runs produce.
    pub outcome: ClusterOutcome,
}

/// Everything a batch run produces.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    pub config_nodes: usize,
    /// Per-job records, sorted by submission id.
    pub jobs: Vec<JobRecord>,
    /// The deterministic batch-level event trace.
    pub events: Vec<BatchEvent>,
    /// First EASY reservation per head-of-queue job.
    pub reservations: Vec<ReservationRecord>,
    /// Nodes lost to injected failures.
    pub failed_nodes: Vec<usize>,
    /// Last event timestamp.
    pub makespan: f64,
    pub metrics: MetricsSnapshot,
    /// Executor-pool telemetry (batches, tasks, worker busy nanoseconds).
    /// Busy time is *host* wall-clock: never fold this snapshot into
    /// determinism or byte-identity comparisons — everything else in the
    /// outcome is thread-count-invariant, this is not.
    pub pool_metrics: MetricsSnapshot,
    /// Per-job kernel conformance reports (one per node segment), present
    /// when [`BatchConfig::verify_jobs`] is set.
    pub conformance: Vec<(u64, Report)>,
}

impl BatchOutcome {
    /// Render the event trace to text — the byte-identity artifact for
    /// determinism checks.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    pub fn conformance_clean(&self) -> bool {
        self.conformance.iter().all(|(_, r)| r.is_clean())
    }
}

/// One per-(job, iterations) kernel measurement, cached by the oracle.
#[derive(Clone, Debug)]
struct SegmentRun {
    placement: Placement,
    node_secs: Vec<f64>,
    service: f64,
    reports: Vec<Report>,
    /// Set when the supervisor gave up on at least one node of this
    /// segment (`task-quarantined` / `task-timeout`, first failing node in
    /// node order wins). A failed segment has no usable service time: the
    /// job degrades with this reason instead of starting.
    failed: Option<&'static str>,
}

/// The service-time oracle: runs each distinct (job, remaining
/// iterations) segment once on real kernels and memoizes. Because seeds
/// never involve time or global node ids, SJF ordering and EASY shadow
/// arithmetic read the *exact* durations later admissions will take.
///
/// Node runs within a segment are independent and go through the pool;
/// seeds are forked serially in node order first, so the fork sequence —
/// part of the determinism contract — never depends on thread scheduling.
struct Oracle {
    cache: BTreeMap<(u64, u32), SegmentRun>,
    sched: LocalSched,
    placement: PlacementStrategy,
    internode_latency: f64,
    seed: u64,
    verify_jobs: bool,
    /// Supervisor policy for every node measurement: bounded deterministic
    /// retry on panic, optional wall-clock watchdog per attempt.
    policy: SupervisePolicy,
    /// Injected transient abort (faultsim `taskabort:`), keyed on (job,
    /// local node, attempt) so outcomes are thread-count-invariant.
    abort: Option<TaskAbortSpec>,
    pool: Pool,
}

impl Oracle {
    fn measure(&mut self, id: u64, spec: &JobSpec) -> SegmentRun {
        if let Some(hit) = self.cache.get(&(id, spec.iterations)) {
            return hit.clone();
        }
        let nodes_needed = spec.ranks().div_ceil(cluster::placement::NODE_SLOTS);
        // INVARIANT: nodes_needed = ceil(ranks / NODE_SLOTS) always yields
        // enough slots for every rank, so placement cannot fail here.
        let placement =
            place(spec, nodes_needed, self.placement).expect("sized allocation always fits");
        // Fork per-node seeds serially, in node order, exactly as the
        // serial loop did: empty slots draw nothing. Only then fan out.
        let mut rng = SplitMix64::new(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seeds: Vec<Option<u64>> = placement
            .nodes
            .iter()
            .enumerate()
            .map(|(local, slots)| {
                if slots.is_empty() {
                    None
                } else {
                    Some(rng.fork(local as u64 + 1).next_u64())
                }
            })
            .collect();
        let sched = self.sched;
        let verify = self.verify_jobs;
        let iterations = spec.iterations;
        let abort = self.abort.filter(|a| a.job == id);
        let watchdog = self.policy.timeout.is_some();
        let tasks: Vec<_> = placement
            .nodes
            .iter()
            .zip(&seeds)
            .enumerate()
            .map(|(local, (slots, &seed))| {
                let loads: Vec<f64> = slots.iter().map(|&r| spec.rank_loads[r]).collect();
                let abort_here = abort.filter(|a| a.node == local);
                move |attempt: u32| {
                    if let Some(a) = abort_here {
                        if attempt < a.aborts {
                            if a.hang && watchdog {
                                // Wedge: the watchdog — not the unwind
                                // path — must turn this attempt into a
                                // typed timeout. Without a watchdog the
                                // fault falls through to a plain panic so
                                // an unguarded run can never deadlock.
                                std::thread::sleep(Duration::from_secs(3600));
                            }
                            panic!("faultsim: injected task abort (attempt {attempt})");
                        }
                    }
                    match seed {
                        None => (0.0, None),
                        Some(seed) if verify => {
                            let traced = run_node_traced(&loads, iterations, sched, seed);
                            let report = check_with_metrics(
                                &traced.records,
                                &traced.metrics,
                                &CheckConfig::default(),
                            );
                            (traced.run.exec_secs, Some(report))
                        }
                        Some(seed) => {
                            (run_node_sched(&loads, iterations, sched, seed).exec_secs, None)
                        }
                    }
                }
            })
            .collect();
        // Submission order == node order, so the merge below folds node
        // results exactly as the serial loop would. The supervisor absorbs
        // transient aborts (retries are keyed on the attempt index, so a
        // retried node computes the same pure value a clean run would) and
        // converts persistent failures into typed per-node outcomes.
        let mut node_secs = Vec::with_capacity(placement.nodes.len());
        let mut reports = Vec::new();
        let mut failed: Option<&'static str> = None;
        for outcome in self.pool.run_supervised(tasks, self.policy) {
            match outcome {
                Ok((secs, report)) => {
                    node_secs.push(secs);
                    if let Some(r) = report {
                        reports.push(r);
                    }
                }
                Err(TaskFailure::Quarantined { .. }) => {
                    node_secs.push(0.0);
                    failed.get_or_insert("task-quarantined");
                }
                Err(TaskFailure::TaskTimeout { .. }) => {
                    node_secs.push(0.0);
                    failed.get_or_insert("task-timeout");
                }
            }
        }
        let slowest = node_secs.iter().cloned().fold(0.0, f64::max);
        let service = slowest + self.internode_latency * spec.iterations as f64;
        let run = SegmentRun { placement, node_secs, service, reports, failed };
        self.cache.insert((id, spec.iterations), run.clone());
        run
    }

    fn service(&mut self, id: u64, spec: &JobSpec) -> f64 {
        if let Some(hit) = self.cache.get(&(id, spec.iterations)) {
            return hit.service;
        }
        self.measure(id, spec).service
    }
}

/// Queue-side state of one submitted job. `pub(crate)` (with its fields)
/// because the checkpoint wire format images this struct directly.
#[derive(Clone, Debug)]
pub(crate) struct Tracker {
    pub(crate) job: BatchJob,
    /// The spec of the next (or currently running) segment; iterations
    /// shrink when a node failure forces a requeue.
    pub(crate) remaining: JobSpec,
    pub(crate) first_start: Option<SimTime>,
    pub(crate) node_secs_held: f64,
    pub(crate) run_secs: f64,
    pub(crate) iters_done: u32,
    pub(crate) requeues: u32,
    pub(crate) backfilled: bool,
    /// Restart overhead owed on the next admission (set by a requeue).
    pub(crate) restart_due: f64,
    pub(crate) failure: Option<(usize, u32)>,
}

/// One admitted segment occupying nodes. Checkpoints store only
/// `(id, nodes, start, end)`: the attached [`SegmentRun`] re-derives from
/// the pure, memoized oracle on resume.
struct Running {
    id: u64,
    nodes: Vec<usize>,
    start: SimTime,
    end: SimTime,
    run: SegmentRun,
}

pub(crate) struct Fleet {
    pub(crate) up: Vec<bool>,
    pub(crate) busy: Vec<bool>,
}

impl Fleet {
    fn free_ids(&self) -> Vec<usize> {
        (0..self.up.len()).filter(|&n| self.up[n] && !self.busy[n]).collect()
    }
    fn alive(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }
}

struct Counters {
    submitted: telemetry::Counter,
    completed: telemetry::Counter,
    degraded: telemetry::Counter,
    backfilled: telemetry::Counter,
    requeues: telemetry::Counter,
    nodes_failed: telemetry::Counter,
    wait_us: telemetry::HistogramHandle,
    turnaround_us: telemetry::HistogramHandle,
    queue_peak: telemetry::Gauge,
}

impl Counters {
    fn new(reg: &MetricsRegistry) -> Counters {
        Counters {
            submitted: reg.counter("batch.jobs.submitted"),
            completed: reg.counter("batch.jobs.completed"),
            degraded: reg.counter("batch.jobs.degraded"),
            backfilled: reg.counter("batch.jobs.backfilled"),
            requeues: reg.counter("batch.jobs.requeues"),
            nodes_failed: reg.counter("batch.nodes.failed"),
            wait_us: reg.histogram("batch.wait_us"),
            turnaround_us: reg.histogram("batch.turnaround_us"),
            queue_peak: reg.gauge("batch.queue_depth_peak"),
        }
    }
}

/// A job's submission instant on the exact event clock.
fn arrival_time(job: &BatchJob) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(job.arrival)
}

/// The complete mutable state of one batch run between loop iterations —
/// exactly what a checkpoint captures. Every field is either plain data
/// or re-derivable from plain data plus the pure oracle.
pub(crate) struct EngineState {
    pub(crate) arrivals: VecDeque<BatchJob>,
    pub(crate) fleet: Fleet,
    pub(crate) trackers: BTreeMap<u64, Tracker>,
    pub(crate) queue: VecDeque<u64>,
    running: Vec<Running>,
    pub(crate) events: Vec<BatchEvent>,
    pub(crate) reservations: BTreeMap<u64, ReservationRecord>,
    pub(crate) records: BTreeMap<u64, JobRecord>,
    /// Jobs (in admit order) whose kernel conformance must be reported;
    /// reports re-derive from the memoized oracle at outcome build.
    pub(crate) conformance_src: Vec<(u64, JobSpec)>,
    pub(crate) completions: u32,
    pub(crate) fault_armed: Option<BatchFault>,
    pub(crate) now: SimTime,
}

fn make_oracle(cfg: &BatchConfig, pool_registry: &MetricsRegistry) -> Oracle {
    // Pool telemetry includes host wall-clock busy time, so it lives on
    // its own registry, snapshotted into the (non-deterministic)
    // `pool_metrics` field rather than the byte-compared `metrics`.
    let pool =
        Pool::with_counters(cfg.threads, PoolCounters::register(pool_registry, "exec.pool"));
    Oracle {
        cache: BTreeMap::new(),
        sched: cfg.sched,
        placement: cfg.placement,
        internode_latency: cfg.internode_latency,
        seed: cfg.seed,
        verify_jobs: cfg.verify_jobs,
        policy: SupervisePolicy {
            max_attempts: cfg.retry_limit.saturating_add(1),
            timeout: cfg.watchdog_secs.map(Duration::from_secs_f64),
        },
        abort: cfg.abort,
        pool,
    }
}

fn init_state(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    ctr: &Counters,
) -> EngineState {
    let arrivals: VecDeque<BatchJob> = {
        let mut v: Vec<BatchJob> = stream.to_vec();
        v.sort_by_key(|j| (arrival_time(j), j.id));
        v.into()
    };
    let mut st = EngineState {
        arrivals,
        fleet: Fleet { up: vec![true; cfg.num_nodes], busy: vec![false; cfg.num_nodes] },
        trackers: BTreeMap::new(),
        queue: VecDeque::new(),
        running: Vec::new(),
        events: Vec::new(),
        reservations: BTreeMap::new(),
        records: BTreeMap::new(),
        conformance_src: Vec::new(),
        completions: 0,
        fault_armed: fault.filter(|f| f.node < cfg.num_nodes).copied(),
        now: SimTime::ZERO,
    };
    // A fault at zero completions hits an idle fleet before any admission.
    // This fires exactly once at init, so a checkpoint (always captured
    // after init) never replays it.
    maybe_fire_fault(
        &mut st.fault_armed,
        st.completions,
        st.now,
        &mut st.fleet,
        &mut st.running,
        &mut st.trackers,
        &mut st.queue,
        &mut st.records,
        &mut st.events,
        ctr,
    );
    st
}

/// Drive the event loop until the stream drains (returns `false`) or
/// `stop` says to halt at a loop boundary (returns `true`). The loop
/// boundary — before `schedule` — is the one point where the state is
/// closed over plain data, which is what makes it the capture point: both
/// the interrupted and the resumed run re-enter `schedule` with identical
/// state, so their continuations are byte-identical.
fn run_engine(
    cfg: &BatchConfig,
    oracle: &mut Oracle,
    ctr: &Counters,
    st: &mut EngineState,
    mut stop: impl FnMut(&EngineState) -> bool,
) -> bool {
    loop {
        if stop(st) {
            return true;
        }
        schedule(
            cfg,
            st.now,
            oracle,
            &mut st.fleet,
            &mut st.trackers,
            &mut st.queue,
            &mut st.running,
            &mut st.records,
            &mut st.reservations,
            &mut st.conformance_src,
            &mut st.events,
            ctr,
        );

        let next_finish = st.running.iter().map(|r| r.end).min().unwrap_or(SimTime::MAX);
        let next_arrival = st.arrivals.front().map_or(SimTime::MAX, arrival_time);
        if next_finish == SimTime::MAX && next_arrival == SimTime::MAX {
            return false;
        }
        st.now = next_finish.min(next_arrival);

        // Completions first (freeing nodes for same-instant arrivals), in
        // id order for determinism. Timestamps are exact nanoseconds, so
        // "same instant" is integer equality.
        let mut finished: Vec<Running> = Vec::new();
        let mut keep: Vec<Running> = Vec::new();
        for r in st.running.drain(..) {
            if r.end <= st.now {
                finished.push(r);
            } else {
                keep.push(r);
            }
        }
        st.running = keep;
        finished.sort_by_key(|r| r.id);
        for seg in finished {
            complete(seg, st.now, &mut st.fleet, &mut st.trackers, &mut st.records, &mut st.events, ctr, oracle);
            st.completions += 1;
            maybe_fire_fault(
                &mut st.fault_armed,
                st.completions,
                st.now,
                &mut st.fleet,
                &mut st.running,
                &mut st.trackers,
                &mut st.queue,
                &mut st.records,
                &mut st.events,
                ctr,
            );
        }

        while st.arrivals.front().is_some_and(|j| arrival_time(j) <= st.now) {
            // INVARIANT: guarded by the is_some_and above.
            let job = st.arrivals.pop_front().expect("front checked");
            ctr.submitted.inc();
            st.events.push(BatchEvent::Submit {
                t: st.now,
                job: job.id,
                ranks: job.spec.ranks(),
                nodes: job.nodes_needed(),
            });
            let remaining = job.spec.clone();
            st.queue.push_back(job.id);
            st.trackers.insert(
                job.id,
                Tracker {
                    job,
                    remaining,
                    first_start: None,
                    node_secs_held: 0.0,
                    run_secs: 0.0,
                    iters_done: 0,
                    requeues: 0,
                    backfilled: false,
                    restart_due: 0.0,
                    failure: None,
                },
            );
        }
        let depth = st.queue.len() as i64;
        if depth > ctr.queue_peak.get() {
            ctr.queue_peak.set(depth);
        }
    }
}

fn finish_outcome(
    cfg: &BatchConfig,
    st: EngineState,
    oracle: &mut Oracle,
    registry: &MetricsRegistry,
    pool_registry: &MetricsRegistry,
) -> BatchOutcome {
    // Conformance reports re-derive from the pure oracle: for jobs
    // measured before a checkpoint this is a fresh (memoized) kernel run,
    // for everything else a cache hit — identical reports either way.
    let mut conformance: Vec<(u64, Report)> = Vec::new();
    if cfg.verify_jobs {
        for (id, spec) in &st.conformance_src {
            let run = oracle.measure(*id, spec);
            for rep in run.reports {
                conformance.push((*id, rep));
            }
        }
    }
    let makespan =
        st.events.iter().map(event_time).max().map_or(0.0, |t| t.as_secs_f64());
    let mut jobs: Vec<JobRecord> = st.records.into_values().collect();
    jobs.sort_by_key(|r| r.id);
    BatchOutcome {
        config_nodes: cfg.num_nodes,
        jobs,
        events: st.events,
        reservations: st.reservations.into_values().collect(),
        failed_nodes: (0..cfg.num_nodes).filter(|&n| !st.fleet.up[n]).collect(),
        makespan,
        metrics: registry.snapshot(),
        pool_metrics: pool_registry.snapshot(),
        conformance,
    }
}

/// Run a batch stream to completion. Never panics on the fault path: jobs
/// that cannot be (re)placed degrade with partial accounting instead.
// PURITY-ROOT: per-job node kernels fan out from here; the outcome must be
// a pure function of (stream, cfg, fault) regardless of cfg.threads.
pub fn run_batch(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
) -> BatchOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &ctr);
    run_engine(cfg, &mut oracle, &ctr, &mut st, |_| false);
    finish_outcome(cfg, st, &mut oracle, &registry, &pool_registry)
}

/// [`run_batch`] with periodic crash-consistent checkpoints: whenever the
/// run crosses `policy`'s event/completion cadence (checked at the loop
/// boundary), a [`BatchCheckpoint`] is captured and handed to `sink`.
/// The run itself is unaffected — its trace is byte-identical to
/// [`run_batch`]'s.
pub fn run_batch_checkpointed(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    policy: &CheckpointPolicy,
    mut sink: impl FnMut(&BatchCheckpoint),
) -> BatchOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &ctr);
    let mut last_events = 0usize;
    let mut last_jobs = 0u32;
    run_engine(cfg, &mut oracle, &ctr, &mut st, |s| {
        let due_events =
            policy.every_events.is_some_and(|k| s.events.len() - last_events >= k);
        let due_jobs = policy.every_jobs.is_some_and(|j| s.completions - last_jobs >= j);
        if due_events || due_jobs {
            last_events = s.events.len();
            last_jobs = s.completions;
            sink(&capture(cfg, s, ctr.queue_peak.get()));
        }
        false
    });
    finish_outcome(cfg, st, &mut oracle, &registry, &pool_registry)
}

/// Run until the trace holds at least `stop_after_events` events (checked
/// at the loop boundary) and capture a checkpoint there; `None` when the
/// stream drained first. This is the kill-at-event primitive the recovery
/// tests and the `--ckpt-smoke` harness are built on.
pub fn run_batch_until(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
    stop_after_events: usize,
) -> Option<BatchCheckpoint> {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(cfg, &pool_registry);
    let mut st = init_state(stream, cfg, fault, &ctr);
    let stopped =
        run_engine(cfg, &mut oracle, &ctr, &mut st, |s| s.events.len() >= stop_after_events);
    stopped.then(|| capture(cfg, &st, ctr.queue_peak.get()))
}

/// Continue a checkpointed run to completion. The resumed trace (which
/// includes the pre-checkpoint prefix) is byte-identical to the
/// uninterrupted run's: state is restored exactly, kernel results
/// re-derive from the pure oracle, and metrics replay from the restored
/// records and events.
// PURITY-ROOT: resumed runs fan node kernels out exactly like run_batch.
pub fn resume_batch(ckpt: &BatchCheckpoint) -> BatchOutcome {
    let cfg = ckpt.cfg;
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    let pool_registry = MetricsRegistry::new();
    let mut oracle = make_oracle(&cfg, &pool_registry);
    replay_metrics(&ctr, ckpt);

    let trackers = ckpt.trackers.clone();
    // Re-attach kernel measurements to in-flight segments: the oracle is
    // pure in (seed, job, spec), so this recomputes exactly the SegmentRun
    // the interrupted run held. Segments without a tracker cannot exist in
    // a checksummed checkpoint; they are skipped rather than unwrapped.
    let mut running: Vec<Running> = Vec::new();
    for (id, nodes, start, end) in &ckpt.running {
        if let Some(tr) = trackers.get(id) {
            let run = oracle.measure(*id, &tr.remaining);
            running.push(Running {
                id: *id,
                nodes: nodes.clone(),
                start: *start,
                end: *end,
                run,
            });
        }
    }
    let mut st = EngineState {
        arrivals: ckpt.arrivals.clone(),
        fleet: Fleet { up: ckpt.fleet_up.clone(), busy: ckpt.fleet_busy.clone() },
        trackers,
        queue: ckpt.queue.clone(),
        running,
        events: ckpt.events.clone(),
        reservations: ckpt.reservations.clone(),
        records: ckpt.records.clone(),
        conformance_src: ckpt.conformance_src.clone(),
        completions: ckpt.completions,
        fault_armed: ckpt.fault_armed,
        now: ckpt.now,
    };
    run_engine(&cfg, &mut oracle, &ctr, &mut st, |_| false);
    finish_outcome(&cfg, st, &mut oracle, &registry, &pool_registry)
}

/// Image the engine state into a checkpoint (plain data only).
fn capture(cfg: &BatchConfig, st: &EngineState, queue_peak: i64) -> BatchCheckpoint {
    BatchCheckpoint {
        cfg: *cfg,
        fault_armed: st.fault_armed,
        now: st.now,
        completions: st.completions,
        fleet_up: st.fleet.up.clone(),
        fleet_busy: st.fleet.busy.clone(),
        arrivals: st.arrivals.clone(),
        queue: st.queue.clone(),
        trackers: st.trackers.clone(),
        running: st
            .running
            .iter()
            .map(|r| (r.id, r.nodes.clone(), r.start, r.end))
            .collect(),
        events: st.events.clone(),
        reservations: st.reservations.clone(),
        records: st.records.clone(),
        conformance_src: st.conformance_src.clone(),
        queue_peak,
    }
}

/// Rebuild the deterministic metric values an uninterrupted run would
/// hold at the checkpoint instant, from the restored state alone. (Pool
/// counters are host wall-clock and excluded from determinism, so they
/// start fresh.)
fn replay_metrics(ctr: &Counters, ckpt: &BatchCheckpoint) {
    let count = |f: fn(&BatchEvent) -> bool| ckpt.events.iter().filter(|e| f(e)).count() as u64;
    ctr.submitted.add(count(|e| matches!(e, BatchEvent::Submit { .. })));
    ctr.completed.add(count(|e| matches!(e, BatchEvent::Finish { .. })));
    ctr.degraded.add(count(|e| matches!(e, BatchEvent::Degraded { .. })));
    ctr.nodes_failed.add(count(|e| matches!(e, BatchEvent::NodeFail { .. })));
    // Requeue counts live on trackers/records, not events: the requeue
    // that exhausts the retry budget increments the counter but emits a
    // Degraded event instead of a Requeue event.
    let requeues = ckpt.records.values().map(|r| u64::from(r.requeues)).sum::<u64>()
        + ckpt.trackers.values().map(|t| u64::from(t.requeues)).sum::<u64>();
    ctr.requeues.add(requeues);
    for r in ckpt.records.values().filter(|r| !r.outcome.degraded) {
        if r.backfilled {
            ctr.backfilled.inc();
        }
        ctr.wait_us.record((r.wait * 1e6) as u64);
        ctr.turnaround_us.record((r.turnaround * 1e6) as u64);
    }
    ctr.queue_peak.set(ckpt.queue_peak);
}

fn event_time(e: &BatchEvent) -> SimTime {
    match e {
        BatchEvent::Submit { t, .. }
        | BatchEvent::Start { t, .. }
        | BatchEvent::Finish { t, .. }
        | BatchEvent::NodeFail { t, .. }
        | BatchEvent::Requeue { t, .. }
        | BatchEvent::Degraded { t, .. } => *t,
    }
}

#[allow(clippy::too_many_arguments)]
fn complete(
    seg: Running,
    now: SimTime,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
    oracle: &mut Oracle,
) {
    for &n in &seg.nodes {
        fleet.busy[n] = false;
    }
    events.push(BatchEvent::Finish { t: now, job: seg.id });
    ctr.completed.inc();
    let Some(mut tr) = trackers.remove(&seg.id) else {
        // INVARIANT: every running segment has a tracker; nothing to do
        // if the map was corrupted, and degrading silently beats a panic.
        return;
    };
    let ran = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += ran * seg.nodes.len() as f64;
    tr.run_secs += ran;
    tr.iters_done += tr.remaining.iterations;
    let full_service = oracle.service(tr.job.id, &tr.job.spec);
    let first_start = tr.first_start.unwrap_or(seg.start);
    let wait = first_start.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    let turnaround = now.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    ctr.wait_us.record((wait * 1e6) as u64);
    ctr.turnaround_us.record((turnaround * 1e6) as u64);
    if tr.backfilled {
        ctr.backfilled.inc();
    }
    records.insert(
        seg.id,
        JobRecord {
            id: seg.id,
            name: tr.job.spec.name.clone(),
            ranks: tr.job.spec.ranks(),
            arrival: arrival_time(&tr.job).as_secs_f64(),
            first_start: Some(first_start.as_secs_f64()),
            end: now.as_secs_f64(),
            wait,
            turnaround,
            slowdown: if full_service > 0.0 { turnaround / full_service } else { 1.0 },
            backfilled: tr.backfilled,
            requeues: tr.requeues,
            node_secs_held: tr.node_secs_held,
            outcome: ClusterOutcome {
                result: ClusterResult {
                    placement: seg.run.placement,
                    node_secs: seg.run.node_secs,
                    makespan: tr.run_secs,
                },
                failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                    node,
                    at_iteration: at,
                    retries_used: tr.requeues,
                    absorbed: true,
                }),
                degraded: false,
            },
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn maybe_fire_fault(
    fault: &mut Option<BatchFault>,
    completions: u32,
    now: SimTime,
    fleet: &mut Fleet,
    running: &mut Vec<Running>,
    trackers: &mut BTreeMap<u64, Tracker>,
    queue: &mut VecDeque<u64>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    let fires = fault.is_some_and(|f| completions >= f.after_completions);
    if !fires {
        return;
    }
    let Some(f) = fault.take() else {
        // INVARIANT: is_some_and above guarantees presence.
        return;
    };
    if !fleet.up[f.node] {
        return;
    }
    fleet.up[f.node] = false;
    ctr.nodes_failed.inc();
    events.push(BatchEvent::NodeFail { t: now, node: f.node });

    let hit = running.iter().position(|r| r.nodes.contains(&f.node));
    let Some(idx) = hit else {
        return;
    };
    let seg = running.remove(idx);
    for &n in &seg.nodes {
        fleet.busy[n] = false;
    }
    let Some(tr) = trackers.get_mut(&seg.id) else {
        // INVARIANT: every running segment has a tracker (see `complete`).
        return;
    };
    let elapsed = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += elapsed * seg.nodes.len() as f64;
    tr.run_secs += elapsed;
    let iters = tr.remaining.iterations;
    let span = seg.end.saturating_since(seg.start).as_secs_f64();
    let frac = if span > 0.0 { elapsed / span } else { 0.0 };
    let iters_done = ((frac * iters as f64) as u32).min(iters.saturating_sub(1));
    tr.iters_done += iters_done;
    let remaining_iters = iters - iters_done;
    tr.failure = Some((f.node, tr.iters_done));
    tr.requeues += 1;
    ctr.requeues.inc();

    if tr.requeues > f.max_retries {
        degrade(seg.id, now, "retries-exhausted", fleet, trackers, records, events, ctr);
        return;
    }
    tr.remaining = JobSpec::new(
        tr.job.spec.name.clone(),
        tr.job.spec.rank_loads.clone(),
        remaining_iters,
    );
    tr.restart_due = f.restart_secs;
    queue.push_front(seg.id);
    events.push(BatchEvent::Requeue { t: now, job: seg.id, remaining_iters });
}

#[allow(clippy::too_many_arguments)]
fn degrade(
    id: u64,
    now: SimTime,
    reason: &'static str,
    fleet: &Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    let Some(tr) = trackers.remove(&id) else {
        // INVARIANT: callers only degrade ids they hold in the map.
        return;
    };
    ctr.degraded.inc();
    events.push(BatchEvent::Degraded { t: now, job: id, reason });
    let n = tr.job.nodes_needed().min(fleet.up.len().max(1));
    records.insert(
        id,
        JobRecord {
            id,
            name: tr.job.spec.name.clone(),
            ranks: tr.job.spec.ranks(),
            arrival: arrival_time(&tr.job).as_secs_f64(),
            first_start: tr.first_start.map(SimTime::as_secs_f64),
            end: now.as_secs_f64(),
            wait: 0.0,
            turnaround: now.saturating_since(arrival_time(&tr.job)).as_secs_f64(),
            slowdown: 0.0,
            backfilled: tr.backfilled,
            requeues: tr.requeues,
            node_secs_held: tr.node_secs_held,
            outcome: ClusterOutcome {
                result: ClusterResult {
                    placement: Placement { strategy: PlacementStrategy::RoundRobin, nodes: vec![Vec::new(); n] },
                    node_secs: vec![0.0; n],
                    makespan: tr.run_secs,
                },
                failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                    node,
                    at_iteration: at,
                    retries_used: tr.requeues,
                    absorbed: false,
                }),
                degraded: true,
            },
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn schedule(
    cfg: &BatchConfig,
    now: SimTime,
    oracle: &mut Oracle,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    queue: &mut VecDeque<u64>,
    running: &mut Vec<Running>,
    records: &mut BTreeMap<u64, JobRecord>,
    reservations: &mut BTreeMap<u64, ReservationRecord>,
    conformance_src: &mut Vec<(u64, JobSpec)>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    // Jobs wider than the surviving fleet can never start: degrade them
    // instead of deadlocking the queue.
    let alive = fleet.alive();
    let unplaceable: Vec<u64> = queue
        .iter()
        .copied()
        .filter(|id| trackers.get(id).is_some_and(|t| t.job.nodes_needed() > alive))
        .collect();
    if !unplaceable.is_empty() {
        queue.retain(|id| !unplaceable.contains(id));
        for id in unplaceable {
            degrade(id, now, "unplaceable", fleet, trackers, records, events, ctr);
        }
    }

    if cfg.discipline == Discipline::Sjf {
        let mut v: Vec<u64> = queue.iter().copied().collect();
        v.sort_by(|&a, &b| {
            let (sa, sb) = (queued_service(oracle, trackers, a), queued_service(oracle, trackers, b));
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        *queue = v.into();
    }

    // Admit from the head while it fits.
    loop {
        let Some(&head) = queue.front() else { return };
        let need = trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
        let free = fleet.free_ids();
        if need > free.len() {
            break;
        }
        queue.pop_front();
        admit(head, &free[..need], now, false, cfg, oracle, fleet, trackers, running, records, conformance_src, events, ctr);
    }

    if cfg.discipline != Discipline::Easy || queue.is_empty() {
        return;
    }

    // EASY backfill: reserve the head, let later jobs jump ahead iff they
    // cannot delay it.
    let Some(&head) = queue.front() else { return };
    let head_need = trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
    let mut free = fleet.free_ids().len();
    let mut ends: Vec<(SimTime, usize)> = running.iter().map(|r| (r.end, r.nodes.len())).collect();
    ends.sort_by_key(|&(end, _)| end);
    let mut avail = free;
    let mut shadow: Option<SimTime> = None;
    for (end, n) in ends {
        avail += n;
        if avail >= head_need {
            shadow = Some(end);
            break;
        }
    }
    let Some(shadow) = shadow else {
        // Head cannot be satisfied even when everything drains — it would
        // have been dropped as unplaceable above; leave the queue alone.
        return;
    };
    reservations
        .entry(head)
        .or_insert(ReservationRecord { job: head, at: now, shadow });
    // Nodes free at the shadow instant beyond what the head will take.
    let mut spare = avail - head_need;

    let candidates: Vec<u64> = queue.iter().copied().skip(1).collect();
    let mut admitted: Vec<u64> = Vec::new();
    for id in candidates {
        let Some(tr) = trackers.get(&id) else { continue };
        let need = tr.job.nodes_needed();
        if need > free {
            continue;
        }
        let svc = queued_service(oracle, trackers, id);
        // Exact nanosecond comparison: the candidate's completion instant
        // is computed the same way `admit` will compute it.
        let fits_before_shadow = now + SimDuration::from_secs_f64(svc) <= shadow;
        let fits_in_spare = need <= spare;
        if !fits_before_shadow && !fits_in_spare {
            continue;
        }
        if !fits_before_shadow {
            spare -= need;
        }
        free -= need;
        admitted.push(id);
    }
    for id in admitted {
        queue.retain(|&q| q != id);
        let free_ids = fleet.free_ids();
        let need = trackers.get(&id).map_or(0, |t| t.job.nodes_needed());
        admit(id, &free_ids[..need], now, true, cfg, oracle, fleet, trackers, running, records, conformance_src, events, ctr);
    }
}

/// Effective service of a queued job: measured segment time plus any
/// restart overhead owed from a requeue.
fn queued_service(oracle: &mut Oracle, trackers: &BTreeMap<u64, Tracker>, id: u64) -> f64 {
    trackers
        .get(&id)
        .map_or(0.0, |t| oracle.service(id, &t.remaining) + t.restart_due)
}

#[allow(clippy::too_many_arguments)]
fn admit(
    id: u64,
    alloc: &[usize],
    now: SimTime,
    backfilled: bool,
    cfg: &BatchConfig,
    oracle: &mut Oracle,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    running: &mut Vec<Running>,
    records: &mut BTreeMap<u64, JobRecord>,
    conformance_src: &mut Vec<(u64, JobSpec)>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    let run = {
        let Some(tr) = trackers.get(&id) else {
            // INVARIANT: admit is only called with queued ids, which
            // always have trackers.
            return;
        };
        oracle.measure(id, &tr.remaining)
    };
    if let Some(reason) = run.failed {
        // The supervisor gave up on this job's kernel measurement
        // (quarantined panic loop or watchdog timeout): there is no
        // service time to schedule with, so the job degrades with the
        // typed reason instead of starting.
        degrade(id, now, reason, fleet, trackers, records, events, ctr);
        return;
    }
    let Some(tr) = trackers.get_mut(&id) else {
        return;
    };
    if cfg.verify_jobs && tr.requeues == 0 {
        // Record the *source* of the conformance check, not the reports:
        // the oracle is pure and memoized, so reports re-derive at outcome
        // build — which keeps checkpoints free of report payloads.
        conformance_src.push((id, tr.remaining.clone()));
    }
    let service = run.service + tr.restart_due;
    tr.restart_due = 0.0;
    if tr.first_start.is_none() {
        tr.first_start = Some(now);
    }
    if backfilled {
        tr.backfilled = true;
    }
    for &n in alloc {
        fleet.busy[n] = true;
    }
    events.push(BatchEvent::Start {
        t: now,
        job: id,
        nodes: alloc.to_vec(),
        backfilled,
    });
    running.push(Running {
        id,
        nodes: alloc.to_vec(),
        start: now,
        end: now + SimDuration::from_secs_f64(service),
        run,
    });
}
