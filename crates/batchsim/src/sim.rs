//! The event-driven batch engine: arrivals → queue → admission →
//! per-job cluster runs on real `schedsim` kernels.
//!
//! # Determinism argument
//!
//! The whole simulation is a pure function of `(stream, config, fault)`,
//! including [`BatchConfig::threads`]:
//!
//! * arrivals are a sorted input, ties broken by submission id;
//! * every queue decision iterates jobs in a total order (discipline
//!   order, then id) over `BTreeMap`/`Vec` state — no hash iteration;
//! * a job's *service time* is computed by seeded kernel runs whose seeds
//!   mix only `(config seed, job id, local node index)` — never the start
//!   time or the global node ids — so the oracle used for SJF ordering and
//!   EASY shadow arithmetic returns exactly the duration the job will
//!   take when it actually runs, whenever that is;
//! * event timestamps are exact [`SimTime`] nanoseconds — equality and
//!   ordering of completions, arrivals, and EASY shadow deadlines are
//!   integer comparisons, with no float slack;
//! * simulated time advances only to event timestamps (completions before
//!   arrivals at equal times, both in id order);
//! * per-node kernel runs go through a [`simcore::Pool`]: each run is a
//!   pure function of `(loads, iterations, sched, seed)` (see
//!   [`cluster::node`]), per-node seeds are derived *serially* in node
//!   order before anything is submitted, and the pool returns results in
//!   submission order — so every reduction folds in node order and the
//!   outcome is byte-identical at any thread count.
//!
//! The seed and timestamp points make the EASY no-delay invariant *exact*
//! rather than estimate-based: the reservation (shadow time) computed when
//! the queue head blocks is the time the head actually starts, unless an
//! earlier completion improves it.

use std::collections::{BTreeMap, VecDeque};

use cluster::{
    place, run_node_sched, run_node_traced, ClusterOutcome, ClusterResult, JobSpec, LocalSched,
    NodeFailureRecord, Placement, PlacementStrategy,
};
use faultsim::{NodeFailSpec, SplitMix64};
use simcore::{Pool, PoolCounters, SimDuration, SimTime};
use simverify::conformance::{check_with_metrics, CheckConfig, Report};
use telemetry::{MetricsRegistry, MetricsSnapshot};

use crate::discipline::Discipline;
use crate::job::BatchJob;

/// Batch scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct BatchConfig {
    pub num_nodes: usize,
    pub discipline: Discipline,
    /// Node-local scheduler every admitted job runs under.
    pub sched: LocalSched,
    pub placement: PlacementStrategy,
    /// Inter-node allreduce latency per gang iteration, seconds.
    pub internode_latency: f64,
    pub seed: u64,
    /// Trace every per-job kernel and conformance-check it (C001–C005);
    /// reports land in [`BatchOutcome::conformance`].
    pub verify_jobs: bool,
    /// Worker threads for per-node kernel runs (1 = serial). Any value
    /// produces byte-identical output; >1 only changes wall-clock time.
    pub threads: usize,
}

impl Default for BatchConfig {
    fn default() -> Self {
        BatchConfig {
            num_nodes: 4,
            discipline: Discipline::Fcfs,
            sched: LocalSched::Hpc,
            placement: PlacementStrategy::SmtAware,
            internode_latency: 20e-6,
            seed: 2008,
            verify_jobs: false,
            threads: 1,
        }
    }
}

/// A node failure aimed at the *queued* system: fires once the fleet has
/// completed `after_completions` jobs, killing `node` permanently. A job
/// running there re-enters the queue with its remaining iterations (and
/// competes with pending jobs for survivors), paying `restart_secs` per
/// attempt, up to `max_retries` requeues before degrading.
#[derive(Clone, Copy, Debug)]
pub struct BatchFault {
    pub node: usize,
    pub after_completions: u32,
    pub max_retries: u32,
    pub restart_secs: f64,
}

impl BatchFault {
    /// Reuse faultsim's `nodefail:` spec: `iter` counts completed *jobs*
    /// here rather than gang iterations.
    pub fn from_spec(s: &NodeFailSpec) -> BatchFault {
        BatchFault {
            node: s.node,
            after_completions: s.iteration,
            max_retries: s.retries,
            restart_secs: s.restart_secs,
        }
    }
}

/// One entry of the deterministic batch-level event trace. Timestamps are
/// exact simulated nanoseconds.
#[derive(Clone, Debug, PartialEq)]
pub enum BatchEvent {
    Submit { t: SimTime, job: u64, ranks: usize, nodes: usize },
    Start { t: SimTime, job: u64, nodes: Vec<usize>, backfilled: bool },
    Finish { t: SimTime, job: u64 },
    NodeFail { t: SimTime, node: usize },
    Requeue { t: SimTime, job: u64, remaining_iters: u32 },
    Degraded { t: SimTime, job: u64, reason: &'static str },
}

/// Exact seconds.nanoseconds rendering of an event timestamp — integer
/// arithmetic only, so the text is a faithful image of the `SimTime`.
fn render_t(t: SimTime) -> String {
    let ns = t.as_nanos();
    format!("{}.{:09}", ns / 1_000_000_000, ns % 1_000_000_000)
}

impl BatchEvent {
    fn render(&self) -> String {
        match self {
            BatchEvent::Submit { t, job, ranks, nodes } => {
                format!("{} submit job={job} ranks={ranks} nodes={nodes}", render_t(*t))
            }
            BatchEvent::Start { t, job, nodes, backfilled } => {
                format!("{} start job={job} nodes={nodes:?} backfilled={backfilled}", render_t(*t))
            }
            BatchEvent::Finish { t, job } => format!("{} finish job={job}", render_t(*t)),
            BatchEvent::NodeFail { t, node } => format!("{} nodefail node={node}", render_t(*t)),
            BatchEvent::Requeue { t, job, remaining_iters } => {
                format!("{} requeue job={job} remaining={remaining_iters}", render_t(*t))
            }
            BatchEvent::Degraded { t, job, reason } => {
                format!("{} degraded job={job} reason={reason}", render_t(*t))
            }
        }
    }
}

/// The head-of-queue reservation EASY computed when the head first
/// blocked: the head is guaranteed to start no later than `shadow`.
#[derive(Clone, Copy, Debug)]
pub struct ReservationRecord {
    pub job: u64,
    /// When the reservation was made.
    pub at: SimTime,
    /// The shadow time: earliest instant enough nodes free up.
    pub shadow: SimTime,
}

/// Final per-job accounting. Times here are derived *reporting* floats;
/// the exact event clock lives in [`BatchEvent`].
#[derive(Clone, Debug)]
pub struct JobRecord {
    pub id: u64,
    pub name: String,
    pub ranks: usize,
    pub arrival: f64,
    /// `None` when the job degraded before ever starting.
    pub first_start: Option<f64>,
    /// Completion (or drop) time.
    pub end: f64,
    /// Queue wait: first start − arrival (completed jobs only).
    pub wait: f64,
    pub turnaround: f64,
    /// Turnaround over the job's clean full-stream service time.
    pub slowdown: f64,
    pub backfilled: bool,
    pub requeues: u32,
    /// Node·seconds of fleet capacity this job held.
    pub node_secs_held: f64,
    /// The per-job cluster outcome — degraded-but-clean under faults, in
    /// the same shape single-job cluster runs produce.
    pub outcome: ClusterOutcome,
}

/// Everything a batch run produces.
#[derive(Clone, Debug)]
pub struct BatchOutcome {
    pub config_nodes: usize,
    /// Per-job records, sorted by submission id.
    pub jobs: Vec<JobRecord>,
    /// The deterministic batch-level event trace.
    pub events: Vec<BatchEvent>,
    /// First EASY reservation per head-of-queue job.
    pub reservations: Vec<ReservationRecord>,
    /// Nodes lost to injected failures.
    pub failed_nodes: Vec<usize>,
    /// Last event timestamp.
    pub makespan: f64,
    pub metrics: MetricsSnapshot,
    /// Executor-pool telemetry (batches, tasks, worker busy nanoseconds).
    /// Busy time is *host* wall-clock: never fold this snapshot into
    /// determinism or byte-identity comparisons — everything else in the
    /// outcome is thread-count-invariant, this is not.
    pub pool_metrics: MetricsSnapshot,
    /// Per-job kernel conformance reports (one per node segment), present
    /// when [`BatchConfig::verify_jobs`] is set.
    pub conformance: Vec<(u64, Report)>,
}

impl BatchOutcome {
    /// Render the event trace to text — the byte-identity artifact for
    /// determinism checks.
    pub fn render_trace(&self) -> String {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    pub fn conformance_clean(&self) -> bool {
        self.conformance.iter().all(|(_, r)| r.is_clean())
    }
}

/// One per-(job, iterations) kernel measurement, cached by the oracle.
#[derive(Clone, Debug)]
struct SegmentRun {
    placement: Placement,
    node_secs: Vec<f64>,
    service: f64,
    reports: Vec<Report>,
}

/// The service-time oracle: runs each distinct (job, remaining
/// iterations) segment once on real kernels and memoizes. Because seeds
/// never involve time or global node ids, SJF ordering and EASY shadow
/// arithmetic read the *exact* durations later admissions will take.
///
/// Node runs within a segment are independent and go through the pool;
/// seeds are forked serially in node order first, so the fork sequence —
/// part of the determinism contract — never depends on thread scheduling.
struct Oracle {
    cache: BTreeMap<(u64, u32), SegmentRun>,
    sched: LocalSched,
    placement: PlacementStrategy,
    internode_latency: f64,
    seed: u64,
    verify_jobs: bool,
    pool: Pool,
}

impl Oracle {
    fn measure(&mut self, id: u64, spec: &JobSpec) -> SegmentRun {
        if let Some(hit) = self.cache.get(&(id, spec.iterations)) {
            return hit.clone();
        }
        let nodes_needed = spec.ranks().div_ceil(cluster::placement::NODE_SLOTS);
        // INVARIANT: nodes_needed = ceil(ranks / NODE_SLOTS) always yields
        // enough slots for every rank, so placement cannot fail here.
        let placement =
            place(spec, nodes_needed, self.placement).expect("sized allocation always fits");
        // Fork per-node seeds serially, in node order, exactly as the
        // serial loop did: empty slots draw nothing. Only then fan out.
        let mut rng = SplitMix64::new(self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let seeds: Vec<Option<u64>> = placement
            .nodes
            .iter()
            .enumerate()
            .map(|(local, slots)| {
                if slots.is_empty() {
                    None
                } else {
                    Some(rng.fork(local as u64 + 1).next_u64())
                }
            })
            .collect();
        let sched = self.sched;
        let verify = self.verify_jobs;
        let iterations = spec.iterations;
        let tasks: Vec<_> = placement
            .nodes
            .iter()
            .zip(&seeds)
            .map(|(slots, &seed)| {
                let loads: Vec<f64> = slots.iter().map(|&r| spec.rank_loads[r]).collect();
                move || match seed {
                    None => (0.0, None),
                    Some(seed) if verify => {
                        let traced = run_node_traced(&loads, iterations, sched, seed);
                        let report = check_with_metrics(
                            &traced.records,
                            &traced.metrics,
                            &CheckConfig::default(),
                        );
                        (traced.run.exec_secs, Some(report))
                    }
                    Some(seed) => {
                        (run_node_sched(&loads, iterations, sched, seed).exec_secs, None)
                    }
                }
            })
            .collect();
        // Submission order == node order, so the merge below folds node
        // results exactly as the serial loop would.
        let mut node_secs = Vec::with_capacity(placement.nodes.len());
        let mut reports = Vec::new();
        for (secs, report) in self.pool.run(tasks) {
            node_secs.push(secs);
            if let Some(r) = report {
                reports.push(r);
            }
        }
        let slowest = node_secs.iter().cloned().fold(0.0, f64::max);
        let service = slowest + self.internode_latency * spec.iterations as f64;
        let run = SegmentRun { placement, node_secs, service, reports };
        self.cache.insert((id, spec.iterations), run.clone());
        run
    }

    fn service(&mut self, id: u64, spec: &JobSpec) -> f64 {
        if let Some(hit) = self.cache.get(&(id, spec.iterations)) {
            return hit.service;
        }
        self.measure(id, spec).service
    }
}

/// Queue-side state of one submitted job.
struct Tracker {
    job: BatchJob,
    /// The spec of the next (or currently running) segment; iterations
    /// shrink when a node failure forces a requeue.
    remaining: JobSpec,
    first_start: Option<SimTime>,
    node_secs_held: f64,
    run_secs: f64,
    iters_done: u32,
    requeues: u32,
    backfilled: bool,
    /// Restart overhead owed on the next admission (set by a requeue).
    restart_due: f64,
    failure: Option<(usize, u32)>,
}

/// One admitted segment occupying nodes.
struct Running {
    id: u64,
    nodes: Vec<usize>,
    start: SimTime,
    end: SimTime,
    run: SegmentRun,
}

struct Fleet {
    up: Vec<bool>,
    busy: Vec<bool>,
}

impl Fleet {
    fn free_ids(&self) -> Vec<usize> {
        (0..self.up.len()).filter(|&n| self.up[n] && !self.busy[n]).collect()
    }
    fn alive(&self) -> usize {
        self.up.iter().filter(|&&u| u).count()
    }
}

struct Counters {
    submitted: telemetry::Counter,
    completed: telemetry::Counter,
    degraded: telemetry::Counter,
    backfilled: telemetry::Counter,
    requeues: telemetry::Counter,
    nodes_failed: telemetry::Counter,
    wait_us: telemetry::HistogramHandle,
    turnaround_us: telemetry::HistogramHandle,
    queue_peak: telemetry::Gauge,
}

impl Counters {
    fn new(reg: &MetricsRegistry) -> Counters {
        Counters {
            submitted: reg.counter("batch.jobs.submitted"),
            completed: reg.counter("batch.jobs.completed"),
            degraded: reg.counter("batch.jobs.degraded"),
            backfilled: reg.counter("batch.jobs.backfilled"),
            requeues: reg.counter("batch.jobs.requeues"),
            nodes_failed: reg.counter("batch.nodes.failed"),
            wait_us: reg.histogram("batch.wait_us"),
            turnaround_us: reg.histogram("batch.turnaround_us"),
            queue_peak: reg.gauge("batch.queue_depth_peak"),
        }
    }
}

/// A job's submission instant on the exact event clock.
fn arrival_time(job: &BatchJob) -> SimTime {
    SimTime::ZERO + SimDuration::from_secs_f64(job.arrival)
}

/// Run a batch stream to completion. Never panics on the fault path: jobs
/// that cannot be (re)placed degrade with partial accounting instead.
// PURITY-ROOT: per-job node kernels fan out from here; the outcome must be
// a pure function of (stream, cfg, fault) regardless of cfg.threads.
pub fn run_batch(
    stream: &[BatchJob],
    cfg: &BatchConfig,
    fault: Option<&BatchFault>,
) -> BatchOutcome {
    let registry = MetricsRegistry::new();
    let ctr = Counters::new(&registry);
    // Pool telemetry includes host wall-clock busy time, so it lives on
    // its own registry, snapshotted into the (non-deterministic)
    // `pool_metrics` field rather than the byte-compared `metrics`.
    let pool_registry = MetricsRegistry::new();
    let pool =
        Pool::with_counters(cfg.threads, PoolCounters::register(&pool_registry, "exec.pool"));

    let mut arrivals: VecDeque<BatchJob> = {
        let mut v: Vec<BatchJob> = stream.to_vec();
        v.sort_by_key(|j| (arrival_time(j), j.id));
        v.into()
    };

    let mut oracle = Oracle {
        cache: BTreeMap::new(),
        sched: cfg.sched,
        placement: cfg.placement,
        internode_latency: cfg.internode_latency,
        seed: cfg.seed,
        verify_jobs: cfg.verify_jobs,
        pool,
    };
    let mut fleet = Fleet { up: vec![true; cfg.num_nodes], busy: vec![false; cfg.num_nodes] };
    let mut trackers: BTreeMap<u64, Tracker> = BTreeMap::new();
    let mut queue: VecDeque<u64> = VecDeque::new();
    let mut running: Vec<Running> = Vec::new();
    let mut events: Vec<BatchEvent> = Vec::new();
    let mut reservations: BTreeMap<u64, ReservationRecord> = BTreeMap::new();
    let mut records: BTreeMap<u64, JobRecord> = BTreeMap::new();
    let mut conformance: Vec<(u64, Report)> = Vec::new();
    let mut completions: u32 = 0;
    let mut fault_armed = fault.filter(|f| f.node < cfg.num_nodes).copied();
    let mut now = SimTime::ZERO;

    // A fault at zero completions hits an idle fleet before any admission.
    maybe_fire_fault(
        &mut fault_armed,
        completions,
        now,
        &mut fleet,
        &mut running,
        &mut trackers,
        &mut queue,
        &mut records,
        &mut events,
        &ctr,
    );

    loop {
        schedule(
            cfg,
            now,
            &mut oracle,
            &mut fleet,
            &mut trackers,
            &mut queue,
            &mut running,
            &mut records,
            &mut reservations,
            &mut conformance,
            &mut events,
            &ctr,
        );

        let next_finish = running.iter().map(|r| r.end).min().unwrap_or(SimTime::MAX);
        let next_arrival = arrivals.front().map_or(SimTime::MAX, arrival_time);
        if next_finish == SimTime::MAX && next_arrival == SimTime::MAX {
            break;
        }
        now = next_finish.min(next_arrival);

        // Completions first (freeing nodes for same-instant arrivals), in
        // id order for determinism. Timestamps are exact nanoseconds, so
        // "same instant" is integer equality.
        let mut finished: Vec<Running> = Vec::new();
        let mut keep: Vec<Running> = Vec::new();
        for r in running.drain(..) {
            if r.end <= now {
                finished.push(r);
            } else {
                keep.push(r);
            }
        }
        running = keep;
        finished.sort_by_key(|r| r.id);
        for seg in finished {
            complete(seg, now, &mut fleet, &mut trackers, &mut records, &mut events, &ctr, &mut oracle);
            completions += 1;
            maybe_fire_fault(
                &mut fault_armed,
                completions,
                now,
                &mut fleet,
                &mut running,
                &mut trackers,
                &mut queue,
                &mut records,
                &mut events,
                &ctr,
            );
        }

        while arrivals.front().is_some_and(|j| arrival_time(j) <= now) {
            // INVARIANT: guarded by the is_some_and above.
            let job = arrivals.pop_front().expect("front checked");
            ctr.submitted.inc();
            events.push(BatchEvent::Submit {
                t: now,
                job: job.id,
                ranks: job.spec.ranks(),
                nodes: job.nodes_needed(),
            });
            let remaining = job.spec.clone();
            queue.push_back(job.id);
            trackers.insert(
                job.id,
                Tracker {
                    job,
                    remaining,
                    first_start: None,
                    node_secs_held: 0.0,
                    run_secs: 0.0,
                    iters_done: 0,
                    requeues: 0,
                    backfilled: false,
                    restart_due: 0.0,
                    failure: None,
                },
            );
        }
        let depth = queue.len() as i64;
        if depth > ctr.queue_peak.get() {
            ctr.queue_peak.set(depth);
        }
    }

    let makespan =
        events.iter().map(event_time).max().map_or(0.0, |t| t.as_secs_f64());
    let mut jobs: Vec<JobRecord> = records.into_values().collect();
    jobs.sort_by_key(|r| r.id);
    BatchOutcome {
        config_nodes: cfg.num_nodes,
        jobs,
        events,
        reservations: reservations.into_values().collect(),
        failed_nodes: (0..cfg.num_nodes).filter(|&n| !fleet.up[n]).collect(),
        makespan,
        metrics: registry.snapshot(),
        pool_metrics: pool_registry.snapshot(),
        conformance,
    }
}

fn event_time(e: &BatchEvent) -> SimTime {
    match e {
        BatchEvent::Submit { t, .. }
        | BatchEvent::Start { t, .. }
        | BatchEvent::Finish { t, .. }
        | BatchEvent::NodeFail { t, .. }
        | BatchEvent::Requeue { t, .. }
        | BatchEvent::Degraded { t, .. } => *t,
    }
}

#[allow(clippy::too_many_arguments)]
fn complete(
    seg: Running,
    now: SimTime,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
    oracle: &mut Oracle,
) {
    for &n in &seg.nodes {
        fleet.busy[n] = false;
    }
    events.push(BatchEvent::Finish { t: now, job: seg.id });
    ctr.completed.inc();
    let Some(mut tr) = trackers.remove(&seg.id) else {
        // INVARIANT: every running segment has a tracker; nothing to do
        // if the map was corrupted, and degrading silently beats a panic.
        return;
    };
    let ran = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += ran * seg.nodes.len() as f64;
    tr.run_secs += ran;
    tr.iters_done += tr.remaining.iterations;
    let full_service = oracle.service(tr.job.id, &tr.job.spec);
    let first_start = tr.first_start.unwrap_or(seg.start);
    let wait = first_start.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    let turnaround = now.saturating_since(arrival_time(&tr.job)).as_secs_f64();
    ctr.wait_us.record((wait * 1e6) as u64);
    ctr.turnaround_us.record((turnaround * 1e6) as u64);
    if tr.backfilled {
        ctr.backfilled.inc();
    }
    records.insert(
        seg.id,
        JobRecord {
            id: seg.id,
            name: tr.job.spec.name.clone(),
            ranks: tr.job.spec.ranks(),
            arrival: arrival_time(&tr.job).as_secs_f64(),
            first_start: Some(first_start.as_secs_f64()),
            end: now.as_secs_f64(),
            wait,
            turnaround,
            slowdown: if full_service > 0.0 { turnaround / full_service } else { 1.0 },
            backfilled: tr.backfilled,
            requeues: tr.requeues,
            node_secs_held: tr.node_secs_held,
            outcome: ClusterOutcome {
                result: ClusterResult {
                    placement: seg.run.placement,
                    node_secs: seg.run.node_secs,
                    makespan: tr.run_secs,
                },
                failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                    node,
                    at_iteration: at,
                    retries_used: tr.requeues,
                    absorbed: true,
                }),
                degraded: false,
            },
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn maybe_fire_fault(
    fault: &mut Option<BatchFault>,
    completions: u32,
    now: SimTime,
    fleet: &mut Fleet,
    running: &mut Vec<Running>,
    trackers: &mut BTreeMap<u64, Tracker>,
    queue: &mut VecDeque<u64>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    let fires = fault.is_some_and(|f| completions >= f.after_completions);
    if !fires {
        return;
    }
    let Some(f) = fault.take() else {
        // INVARIANT: is_some_and above guarantees presence.
        return;
    };
    if !fleet.up[f.node] {
        return;
    }
    fleet.up[f.node] = false;
    ctr.nodes_failed.inc();
    events.push(BatchEvent::NodeFail { t: now, node: f.node });

    let hit = running.iter().position(|r| r.nodes.contains(&f.node));
    let Some(idx) = hit else {
        return;
    };
    let seg = running.remove(idx);
    for &n in &seg.nodes {
        fleet.busy[n] = false;
    }
    let Some(tr) = trackers.get_mut(&seg.id) else {
        // INVARIANT: every running segment has a tracker (see `complete`).
        return;
    };
    let elapsed = now.saturating_since(seg.start).as_secs_f64();
    tr.node_secs_held += elapsed * seg.nodes.len() as f64;
    tr.run_secs += elapsed;
    let iters = tr.remaining.iterations;
    let span = seg.end.saturating_since(seg.start).as_secs_f64();
    let frac = if span > 0.0 { elapsed / span } else { 0.0 };
    let iters_done = ((frac * iters as f64) as u32).min(iters.saturating_sub(1));
    tr.iters_done += iters_done;
    let remaining_iters = iters - iters_done;
    tr.failure = Some((f.node, tr.iters_done));
    tr.requeues += 1;
    ctr.requeues.inc();

    if tr.requeues > f.max_retries {
        degrade(seg.id, now, "retries-exhausted", fleet, trackers, records, events, ctr);
        return;
    }
    tr.remaining = JobSpec::new(
        tr.job.spec.name.clone(),
        tr.job.spec.rank_loads.clone(),
        remaining_iters,
    );
    tr.restart_due = f.restart_secs;
    queue.push_front(seg.id);
    events.push(BatchEvent::Requeue { t: now, job: seg.id, remaining_iters });
}

#[allow(clippy::too_many_arguments)]
fn degrade(
    id: u64,
    now: SimTime,
    reason: &'static str,
    fleet: &Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    records: &mut BTreeMap<u64, JobRecord>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    let Some(tr) = trackers.remove(&id) else {
        // INVARIANT: callers only degrade ids they hold in the map.
        return;
    };
    ctr.degraded.inc();
    events.push(BatchEvent::Degraded { t: now, job: id, reason });
    let n = tr.job.nodes_needed().min(fleet.up.len().max(1));
    records.insert(
        id,
        JobRecord {
            id,
            name: tr.job.spec.name.clone(),
            ranks: tr.job.spec.ranks(),
            arrival: arrival_time(&tr.job).as_secs_f64(),
            first_start: tr.first_start.map(SimTime::as_secs_f64),
            end: now.as_secs_f64(),
            wait: 0.0,
            turnaround: now.saturating_since(arrival_time(&tr.job)).as_secs_f64(),
            slowdown: 0.0,
            backfilled: tr.backfilled,
            requeues: tr.requeues,
            node_secs_held: tr.node_secs_held,
            outcome: ClusterOutcome {
                result: ClusterResult {
                    placement: Placement { strategy: PlacementStrategy::RoundRobin, nodes: vec![Vec::new(); n] },
                    node_secs: vec![0.0; n],
                    makespan: tr.run_secs,
                },
                failure: tr.failure.map(|(node, at)| NodeFailureRecord {
                    node,
                    at_iteration: at,
                    retries_used: tr.requeues,
                    absorbed: false,
                }),
                degraded: true,
            },
        },
    );
}

#[allow(clippy::too_many_arguments)]
fn schedule(
    cfg: &BatchConfig,
    now: SimTime,
    oracle: &mut Oracle,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    queue: &mut VecDeque<u64>,
    running: &mut Vec<Running>,
    records: &mut BTreeMap<u64, JobRecord>,
    reservations: &mut BTreeMap<u64, ReservationRecord>,
    conformance: &mut Vec<(u64, Report)>,
    events: &mut Vec<BatchEvent>,
    ctr: &Counters,
) {
    // Jobs wider than the surviving fleet can never start: degrade them
    // instead of deadlocking the queue.
    let alive = fleet.alive();
    let unplaceable: Vec<u64> = queue
        .iter()
        .copied()
        .filter(|id| trackers.get(id).is_some_and(|t| t.job.nodes_needed() > alive))
        .collect();
    if !unplaceable.is_empty() {
        queue.retain(|id| !unplaceable.contains(id));
        for id in unplaceable {
            degrade(id, now, "unplaceable", fleet, trackers, records, events, ctr);
        }
    }

    if cfg.discipline == Discipline::Sjf {
        let mut v: Vec<u64> = queue.iter().copied().collect();
        v.sort_by(|&a, &b| {
            let (sa, sb) = (queued_service(oracle, trackers, a), queued_service(oracle, trackers, b));
            sa.partial_cmp(&sb).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
        });
        *queue = v.into();
    }

    // Admit from the head while it fits.
    loop {
        let Some(&head) = queue.front() else { return };
        let need = trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
        let free = fleet.free_ids();
        if need > free.len() {
            break;
        }
        queue.pop_front();
        admit(head, &free[..need], now, false, cfg, oracle, fleet, trackers, running, conformance, events);
    }

    if cfg.discipline != Discipline::Easy || queue.is_empty() {
        return;
    }

    // EASY backfill: reserve the head, let later jobs jump ahead iff they
    // cannot delay it.
    let Some(&head) = queue.front() else { return };
    let head_need = trackers.get(&head).map_or(0, |t| t.job.nodes_needed());
    let mut free = fleet.free_ids().len();
    let mut ends: Vec<(SimTime, usize)> = running.iter().map(|r| (r.end, r.nodes.len())).collect();
    ends.sort_by_key(|&(end, _)| end);
    let mut avail = free;
    let mut shadow: Option<SimTime> = None;
    for (end, n) in ends {
        avail += n;
        if avail >= head_need {
            shadow = Some(end);
            break;
        }
    }
    let Some(shadow) = shadow else {
        // Head cannot be satisfied even when everything drains — it would
        // have been dropped as unplaceable above; leave the queue alone.
        return;
    };
    reservations
        .entry(head)
        .or_insert(ReservationRecord { job: head, at: now, shadow });
    // Nodes free at the shadow instant beyond what the head will take.
    let mut spare = avail - head_need;

    let candidates: Vec<u64> = queue.iter().copied().skip(1).collect();
    let mut admitted: Vec<u64> = Vec::new();
    for id in candidates {
        let Some(tr) = trackers.get(&id) else { continue };
        let need = tr.job.nodes_needed();
        if need > free {
            continue;
        }
        let svc = queued_service(oracle, trackers, id);
        // Exact nanosecond comparison: the candidate's completion instant
        // is computed the same way `admit` will compute it.
        let fits_before_shadow = now + SimDuration::from_secs_f64(svc) <= shadow;
        let fits_in_spare = need <= spare;
        if !fits_before_shadow && !fits_in_spare {
            continue;
        }
        if !fits_before_shadow {
            spare -= need;
        }
        free -= need;
        admitted.push(id);
    }
    for id in admitted {
        queue.retain(|&q| q != id);
        let free_ids = fleet.free_ids();
        let need = trackers.get(&id).map_or(0, |t| t.job.nodes_needed());
        admit(id, &free_ids[..need], now, true, cfg, oracle, fleet, trackers, running, conformance, events);
    }
}

/// Effective service of a queued job: measured segment time plus any
/// restart overhead owed from a requeue.
fn queued_service(oracle: &mut Oracle, trackers: &BTreeMap<u64, Tracker>, id: u64) -> f64 {
    trackers
        .get(&id)
        .map_or(0.0, |t| oracle.service(id, &t.remaining) + t.restart_due)
}

#[allow(clippy::too_many_arguments)]
fn admit(
    id: u64,
    alloc: &[usize],
    now: SimTime,
    backfilled: bool,
    cfg: &BatchConfig,
    oracle: &mut Oracle,
    fleet: &mut Fleet,
    trackers: &mut BTreeMap<u64, Tracker>,
    running: &mut Vec<Running>,
    conformance: &mut Vec<(u64, Report)>,
    events: &mut Vec<BatchEvent>,
) {
    let Some(tr) = trackers.get_mut(&id) else {
        // INVARIANT: admit is only called with queued ids, which always
        // have trackers.
        return;
    };
    let run = oracle.measure(id, &tr.remaining);
    if cfg.verify_jobs && tr.requeues == 0 {
        for rep in &run.reports {
            conformance.push((id, rep.clone()));
        }
    }
    let service = run.service + tr.restart_due;
    tr.restart_due = 0.0;
    if tr.first_start.is_none() {
        tr.first_start = Some(now);
    }
    if backfilled {
        tr.backfilled = true;
    }
    for &n in alloc {
        fleet.busy[n] = true;
    }
    events.push(BatchEvent::Start {
        t: now,
        job: id,
        nodes: alloc.to_vec(),
        backfilled,
    });
    running.push(Running {
        id,
        nodes: alloc.to_vec(),
        start: now,
        end: now + SimDuration::from_secs_f64(service),
        run,
    });
}
