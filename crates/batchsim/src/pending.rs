//! The discipline-ordered pending-job queue.
//!
//! The engine used to keep pending job ids in a `VecDeque`, which made
//! head requeues and candidate removal O(n) and SJF a full re-sort every
//! scheduling pass. [`PendingQueue`] keeps the same observable orders in
//! ordered sets, so every operation the engine needs — front insert on
//! requeue, discipline-ordered insert, removal by id, widest-first
//! unplaceable scans — is O(log n):
//!
//! * FCFS/EASY order is an insertion sequence number: `push_back` counts
//!   up from the origin, `push_front` counts down, so a requeued victim
//!   lands ahead of everything queued — exactly the old
//!   `VecDeque::push_front` order.
//! * SJF order is the service time as a sort key: non-negative finite
//!   `f64` bit patterns order identically to the floats, so
//!   `(service.to_bits(), id)` reproduces the old
//!   `partial_cmp`-then-id sort without re-sorting.
//! * A parallel `(nodes_needed, id)` set answers "which queued jobs are
//!   wider than the surviving fleet" as a range query instead of a full
//!   scan.
//!
//! One queue instance is always driven by a single discipline: sequence
//! ranks and service-bit ranks are never mixed.

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Bound::{Excluded, Unbounded};

/// Rank space origin for sequence-ordered (FCFS/EASY) insertion: back
/// inserts count up from here, front inserts count down. Service-bit
/// ranks (SJF) are positive-`f64` bit patterns, which stay below `1 << 63`
/// and never mix with sequence ranks in one queue anyway.
const SEQ_ORIGIN: u64 = 1 << 62;

/// Ordered pending queue over job ids. Iteration order is the queue
/// order; all mutations are O(log n).
#[derive(Clone, Debug, Default)]
pub struct PendingQueue {
    /// `(rank, id)` — the queue order.
    by_rank: BTreeSet<(u64, u64)>,
    /// id → `(rank, nodes_needed)`, for O(log n) removal and re-ranking.
    meta: BTreeMap<u64, (u64, usize)>,
    /// `(nodes_needed, id)` — widest-first range scans for unplaceable
    /// detection.
    by_need: BTreeSet<(usize, u64)>,
    back_seq: u64,
    front_seq: u64,
}

impl PendingQueue {
    pub fn new() -> PendingQueue {
        PendingQueue {
            by_rank: BTreeSet::new(),
            meta: BTreeMap::new(),
            by_need: BTreeSet::new(),
            back_seq: SEQ_ORIGIN,
            front_seq: SEQ_ORIGIN - 1,
        }
    }

    pub fn len(&self) -> usize {
        self.by_rank.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_rank.is_empty()
    }

    pub fn contains(&self, id: u64) -> bool {
        self.meta.contains_key(&id)
    }

    /// Head of the queue in discipline order.
    pub fn first(&self) -> Option<u64> {
        self.by_rank.first().map(|&(_, id)| id)
    }

    /// Ids in queue order.
    pub fn iter(&self) -> impl Iterator<Item = u64> + '_ {
        self.by_rank.iter().map(|&(_, id)| id)
    }

    /// Append in arrival order (FCFS/EASY).
    pub fn push_back(&mut self, id: u64, need: usize) {
        let rank = self.back_seq;
        self.back_seq += 1;
        self.insert(id, rank, need);
    }

    /// Insert ahead of everything queued — the requeue-victim path. Each
    /// later front insert lands ahead of earlier ones, matching repeated
    /// `VecDeque::push_front`.
    pub fn push_front(&mut self, id: u64, need: usize) {
        let rank = self.front_seq;
        self.front_seq -= 1;
        self.insert(id, rank, need);
    }

    /// Insert at an explicit rank (SJF: `service.to_bits()`); ties break
    /// by id.
    pub fn push_ranked(&mut self, id: u64, rank: u64, need: usize) {
        self.insert(id, rank, need);
    }

    fn insert(&mut self, id: u64, rank: u64, need: usize) {
        self.remove(id);
        self.by_rank.insert((rank, id));
        self.by_need.insert((need, id));
        self.meta.insert(id, (rank, need));
    }

    /// Remove a job by id; `false` when it was not queued.
    pub fn remove(&mut self, id: u64) -> bool {
        match self.meta.remove(&id) {
            Some((rank, need)) => {
                self.by_rank.remove(&(rank, id));
                self.by_need.remove(&(need, id));
                true
            }
            None => false,
        }
    }

    /// Jobs needing more than `limit` nodes, in queue order. A range
    /// query over the width set — O(matches · log n), not O(n).
    pub fn wider_than(&self, limit: usize) -> Vec<u64> {
        let mut hits: Vec<(u64, u64)> = self
            .by_need
            .range((Excluded((limit, u64::MAX)), Unbounded))
            .map(|&(_, id)| (self.meta.get(&id).map_or(0, |&(rank, _)| rank), id))
            .collect();
        hits.sort_unstable();
        hits.into_iter().map(|(_, id)| id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_and_front_orders_match_a_deque() {
        let mut q = PendingQueue::new();
        q.push_back(1, 1);
        q.push_back(2, 1);
        q.push_front(7, 2);
        q.push_back(3, 1);
        q.push_front(9, 2);
        // Deque image: push_back 1,2 / push_front 7 / push_back 3 /
        // push_front 9 → [9, 7, 1, 2, 3].
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![9, 7, 1, 2, 3]);
        assert_eq!(q.first(), Some(9));
        assert!(q.remove(7));
        assert!(!q.remove(7));
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![9, 1, 2, 3]);
    }

    #[test]
    fn ranked_order_matches_float_sort() {
        let mut q = PendingQueue::new();
        let services = [(10u64, 3.5f64), (11, 0.25), (12, 3.5), (13, 0.0)];
        for (id, svc) in services {
            q.push_ranked(id, svc.to_bits(), 1);
        }
        // Sorted by (service, id): 0.0 → 13, 0.25 → 11, 3.5 → 10, 12.
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![13, 11, 10, 12]);
    }

    #[test]
    fn wider_than_returns_queue_order() {
        let mut q = PendingQueue::new();
        q.push_back(1, 4);
        q.push_back(2, 1);
        q.push_front(3, 6);
        q.push_back(4, 5);
        assert_eq!(q.wider_than(3), vec![3, 1, 4]);
        assert_eq!(q.wider_than(6), Vec::<u64>::new());
        assert_eq!(q.wider_than(0).len(), 4);
    }

    #[test]
    fn reinsert_replaces_the_old_position() {
        let mut q = PendingQueue::new();
        q.push_back(5, 2);
        q.push_back(6, 2);
        q.push_front(5, 3);
        assert_eq!(q.iter().collect::<Vec<_>>(), vec![5, 6]);
        assert_eq!(q.wider_than(2), vec![5]);
        assert_eq!(q.len(), 2);
    }
}
