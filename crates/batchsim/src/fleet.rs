//! Fleet-scale batch runs: streaming arrivals, O(1)-memory statistics.
//!
//! The classic [`crate::run_batch`] path materialises the whole stream,
//! the whole event trace, and a per-job record map — O(jobs) memory three
//! times over, which is fine at 200 jobs and fatal at 10^6. The fleet
//! layer swaps each of those for a streaming equivalent while running the
//! *same* engine:
//!
//! * arrivals come from a lazy [`crate::arrivals::FleetJobs`] generator
//!   (pure in `(config, index)`, so checkpoints image it as a count);
//! * the event trace folds into an FNV-1a fingerprint as events are
//!   emitted — the hash of the rendered trace, never the trace itself;
//! * per-job records fold into a [`FleetAccum`] the moment they are
//!   produced, then drop.
//!
//! This module is covered by simverify rule SV014: statistics here must
//! accumulate into scalars, never into per-job growable containers.

use serde::Serialize;
use telemetry::MetricsSnapshot;

use crate::arrivals::FleetStreamConfig;
use crate::sim::{BatchConfig, JobRecord};
use crate::stats::FleetStats;

/// Configuration of one fleet-scale run: the streaming workload plus the
/// batch engine parameters it drives.
#[derive(Clone, Copy, Debug, Default)]
pub struct FleetConfig {
    pub stream: FleetStreamConfig,
    pub batch: BatchConfig,
}

/// O(1)-memory running statistics over job records: scalar sums, counts,
/// and maxima only. Folding records in id order reproduces, bit for bit,
/// the sums the materialised [`FleetStats::from_outcome`] used to take
/// over per-job vectors — same additions in the same order.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct FleetAccum {
    pub jobs: u64,
    pub completed: u64,
    pub degraded: u64,
    pub backfilled: u64,
    pub requeued: u64,
    /// Sums and maxima over *completed* jobs, seconds.
    pub wait_sum: f64,
    pub wait_max: f64,
    pub turnaround_sum: f64,
    pub turnaround_max: f64,
    pub slowdown_sum: f64,
    pub slowdown_max: f64,
    /// Node·seconds held, over all jobs (degraded included).
    pub node_secs: f64,
}

impl FleetAccum {
    /// Fold one finished job into the accumulator. Records arrive exactly
    /// once per job (the engine retires a tracker exactly once), so every
    /// count below is a per-job count.
    pub fn fold(&mut self, r: &JobRecord) {
        self.jobs += 1;
        self.node_secs += r.node_secs_held;
        if r.requeues > 0 {
            self.requeued += 1;
        }
        if r.outcome.degraded {
            self.degraded += 1;
            return;
        }
        self.completed += 1;
        if r.backfilled {
            self.backfilled += 1;
        }
        self.wait_sum += r.wait;
        if r.wait > self.wait_max {
            self.wait_max = r.wait;
        }
        self.turnaround_sum += r.turnaround;
        if r.turnaround > self.turnaround_max {
            self.turnaround_max = r.turnaround;
        }
        self.slowdown_sum += r.slowdown;
        if r.slowdown > self.slowdown_max {
            self.slowdown_max = r.slowdown;
        }
    }

    /// Fold every record of a materialised outcome, in id order — the
    /// bridge the classic [`FleetStats::from_outcome`] path uses.
    pub fn from_records(records: &[JobRecord]) -> FleetAccum {
        let mut acc = FleetAccum::default();
        for r in records {
            acc.fold(r);
        }
        acc
    }
}

/// Everything a fleet-scale run produces. Deliberately O(1) in the job
/// count: the trace exists only as its fingerprint, jobs only as the
/// accumulator.
#[derive(Clone, Debug)]
pub struct FleetOutcome {
    pub config_nodes: usize,
    /// FNV-1a fingerprint of the rendered event trace — equal to hashing
    /// [`crate::BatchOutcome::render_trace`] of the same run, and the
    /// byte-identity artifact for serial-vs-parallel checks.
    pub trace_hash: u64,
    pub trace_events: u64,
    /// Last event timestamp, seconds.
    pub makespan: f64,
    /// Head-of-queue reservations taken (EASY), deduplicated per blocked
    /// head stretch.
    pub reservations: u64,
    pub queue_peak: i64,
    pub accum: FleetAccum,
    pub stats: FleetStats,
    pub metrics: MetricsSnapshot,
    /// Host wall-clock pool telemetry — excluded from determinism, see
    /// [`crate::BatchOutcome::pool_metrics`].
    pub pool_metrics: MetricsSnapshot,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::heavy_light_mix;
    use crate::sim::run_batch;

    #[test]
    fn accum_fold_matches_materialised_stats() {
        let out = run_batch(&heavy_light_mix(7, 40), &BatchConfig::default(), None);
        let acc = FleetAccum::from_records(&out.jobs);
        let from_acc = FleetStats::from_accum(&acc, out.config_nodes, out.makespan);
        let classic = FleetStats::from_outcome(&out);
        assert_eq!(format!("{classic:?}"), format!("{from_acc:?}"));
        assert_eq!(acc.jobs, out.jobs.len() as u64);
    }
}
