//! Crash-consistent checkpoint/restore for batch runs.
//!
//! A [`BatchCheckpoint`] images the engine state at a loop boundary (see
//! `sim::run_engine`) into plain data, encoded with `simcore::snapshot`'s
//! versioned, checksummed wire format. [`crate::resume_batch`] rebuilds the
//! engine from it and produces a trace byte-identical to the uninterrupted
//! run — that identity is the subsystem's testable contract.
//!
//! [`CheckpointStore`] adds the durability half: atomic write-then-rename
//! with one generation of history, so a crash mid-write (or a corrupted
//! latest image, exercised by faultsim's `ckptcorrupt:` class) falls back
//! to the previous good checkpoint instead of wedging recovery.

use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::path::{Path, PathBuf};

use cluster::JobSpec;
use faultsim::TaskAbortSpec;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimTime;
use telemetry::MetricsSnapshot;

use crate::arrivals::FleetStreamConfig;
use crate::discipline::Discipline;
use crate::fleet::FleetAccum;
use crate::job::BatchJob;
use crate::sim::{
    BatchConfig, BatchEvent, BatchFault, FleetShape, JobRecord, ReservationRecord, Tracker,
};

/// Version of the batch checkpoint payload layout. Bumped to 2 when the
/// fleet extension, `BatchConfig::backfill_window`, and `BatchJob::class`
/// entered the format, and to 3 when `BatchConfig::shape` (the
/// heterogeneous-fleet axis) did; decode rejects other versions rather
/// than misinterpreting old images.
pub const BATCH_CHECKPOINT_VERSION: u32 = 3;

/// When a checkpointing run captures images (checked at the engine loop
/// boundary; both cadences may be set, either firing captures).
#[derive(Clone, Copy, Debug, Default)]
pub struct CheckpointPolicy {
    /// Capture once at least this many new trace events accumulated.
    pub every_events: Option<usize>,
    /// Capture once at least this many new jobs completed.
    pub every_jobs: Option<u32>,
}

/// A crash-consistent image of a batch run at an engine loop boundary.
/// Encode/decode round-trips byte-exactly; resuming replays a trace
/// byte-identical to the uninterrupted run.
#[derive(Clone, Debug)]
pub struct BatchCheckpoint {
    pub(crate) cfg: BatchConfig,
    pub(crate) fault_armed: Option<BatchFault>,
    pub(crate) now: SimTime,
    pub(crate) completions: u32,
    pub(crate) fleet_up: Vec<bool>,
    pub(crate) fleet_busy: Vec<bool>,
    pub(crate) arrivals: VecDeque<BatchJob>,
    pub(crate) queue: VecDeque<u64>,
    pub(crate) trackers: BTreeMap<u64, Tracker>,
    /// In-flight segments as `(id, nodes, start, end)`; the kernel
    /// measurement re-derives from the pure oracle on resume.
    pub(crate) running: Vec<(u64, Vec<usize>, SimTime, SimTime)>,
    pub(crate) events: Vec<BatchEvent>,
    pub(crate) reservations: BTreeMap<u64, ReservationRecord>,
    pub(crate) records: BTreeMap<u64, JobRecord>,
    pub(crate) conformance_src: Vec<(u64, JobSpec)>,
    pub(crate) queue_peak: i64,
    /// Present when the image belongs to a fleet-scale streaming run.
    pub(crate) fleet: Option<FleetExtra>,
}

/// The fleet-mode extension of a checkpoint: everything the streaming
/// structures hold that the classic plain-data fields cannot express. The
/// generator images as `(config, popped)` because generation is pure in
/// `(config, index)`; the trace as its running FNV fold; statistics as the
/// scalar accumulator; and the metric registry as a full value snapshot
/// (fleet resumes cannot replay metrics from records — none are kept).
#[derive(Clone, Debug)]
pub struct FleetExtra {
    pub(crate) stream: FleetStreamConfig,
    /// Jobs the engine has consumed from the generator.
    pub(crate) popped: u64,
    pub(crate) trace_hash: u64,
    pub(crate) trace_len: u64,
    pub(crate) trace_max_t: SimTime,
    pub(crate) reservation_count: u64,
    pub(crate) reservation_last: Option<u64>,
    pub(crate) accum: FleetAccum,
    pub(crate) metrics: MetricsSnapshot,
}

impl Snapshot for FleetStreamConfig {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.seed);
        w.put_u64(self.jobs);
        w.put_u32(self.classes);
        w.put_f64(self.mean_interarrival);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FleetStreamConfig {
            seed: r.get_u64()?,
            jobs: r.get_u64()?,
            classes: r.get_u32()?,
            mean_interarrival: r.get_f64()?,
        })
    }
}

impl Snapshot for FleetAccum {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.jobs);
        w.put_u64(self.completed);
        w.put_u64(self.degraded);
        w.put_u64(self.backfilled);
        w.put_u64(self.requeued);
        w.put_f64(self.wait_sum);
        w.put_f64(self.wait_max);
        w.put_f64(self.turnaround_sum);
        w.put_f64(self.turnaround_max);
        w.put_f64(self.slowdown_sum);
        w.put_f64(self.slowdown_max);
        w.put_f64(self.node_secs);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FleetAccum {
            jobs: r.get_u64()?,
            completed: r.get_u64()?,
            degraded: r.get_u64()?,
            backfilled: r.get_u64()?,
            requeued: r.get_u64()?,
            wait_sum: r.get_f64()?,
            wait_max: r.get_f64()?,
            turnaround_sum: r.get_f64()?,
            turnaround_max: r.get_f64()?,
            slowdown_sum: r.get_f64()?,
            slowdown_max: r.get_f64()?,
            node_secs: r.get_f64()?,
        })
    }
}

impl Snapshot for FleetExtra {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.stream.snapshot(w);
        w.put_u64(self.popped);
        w.put_u64(self.trace_hash);
        w.put_u64(self.trace_len);
        w.put(&self.trace_max_t);
        w.put_u64(self.reservation_count);
        w.put(&self.reservation_last);
        self.accum.snapshot(w);
        w.put(&self.metrics);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(FleetExtra {
            stream: r.get()?,
            popped: r.get_u64()?,
            trace_hash: r.get_u64()?,
            trace_len: r.get_u64()?,
            trace_max_t: r.get()?,
            reservation_count: r.get_u64()?,
            reservation_last: r.get()?,
            accum: r.get()?,
            metrics: r.get()?,
        })
    }
}

impl BatchCheckpoint {
    /// Serialize to the framed `simcore::snapshot` wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        self.snapshot(&mut w);
        w.finish()
    }

    /// Decode a checkpoint, verifying frame, version, and checksum, and
    /// rejecting trailing garbage.
    pub fn decode(bytes: &[u8]) -> Result<BatchCheckpoint, SnapshotError> {
        let mut r = SnapshotReader::new(bytes)?;
        let ckpt = BatchCheckpoint::restore(&mut r)?;
        r.finish()?;
        Ok(ckpt)
    }

    /// Override the worker-thread count for the resumed run. Thread count
    /// is outside the determinism contract, so resuming at a different
    /// width must still reproduce the trace byte-for-byte — this is the
    /// hook the invariance tests use.
    pub fn set_threads(&mut self, threads: usize) {
        self.cfg.threads = threads;
    }

    /// Simulated instant the image was captured at.
    pub fn captured_at(&self) -> SimTime {
        self.now
    }

    /// Trace events accumulated before the capture. Classic images count
    /// their stored events; fleet images count the hashed-trace fold.
    pub fn events_len(&self) -> usize {
        match &self.fleet {
            Some(extra) => extra.trace_len as usize,
            None => self.events.len(),
        }
    }

    /// Whether this image belongs to a fleet-scale streaming run (resume
    /// it with [`crate::resume_fleet`] rather than [`crate::resume_batch`]).
    pub fn is_fleet(&self) -> bool {
        self.fleet.is_some()
    }
}

impl Snapshot for BatchCheckpoint {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u32(BATCH_CHECKPOINT_VERSION);
        self.cfg.snapshot(w);
        w.put(&self.fault_armed);
        w.put(&self.now);
        w.put_u32(self.completions);
        w.put(&self.fleet_up);
        w.put(&self.fleet_busy);
        w.put(&self.arrivals);
        w.put(&self.queue);
        w.put(&self.trackers);
        w.put(&self.running);
        w.put(&self.events);
        w.put(&self.reservations);
        w.put(&self.records);
        w.put(&self.conformance_src);
        w.put_i64(self.queue_peak);
        w.put(&self.fleet);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        if r.get_u32()? != BATCH_CHECKPOINT_VERSION {
            return Err(SnapshotError::Malformed("unsupported batch checkpoint version"));
        }
        Ok(BatchCheckpoint {
            cfg: r.get()?,
            fault_armed: r.get()?,
            now: r.get()?,
            completions: r.get_u32()?,
            fleet_up: r.get()?,
            fleet_busy: r.get()?,
            arrivals: r.get()?,
            queue: r.get()?,
            trackers: r.get()?,
            running: r.get()?,
            events: r.get()?,
            reservations: r.get()?,
            records: r.get()?,
            conformance_src: r.get()?,
            queue_peak: r.get_i64()?,
            fleet: r.get()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Wire encodings for batchsim types. Enum tags and field order are part of
// the format; version-bump `simcore::snapshot` when changing them.
// ---------------------------------------------------------------------------

impl Snapshot for Discipline {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_str(self.label());
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        let label = r.get_str()?;
        Discipline::parse(&label).ok_or(SnapshotError::Malformed("unknown Discipline label"))
    }
}

impl Snapshot for BatchConfig {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.num_nodes);
        self.discipline.snapshot(w);
        self.sched.snapshot(w);
        self.placement.snapshot(w);
        w.put_f64(self.internode_latency);
        w.put_u64(self.seed);
        w.put_bool(self.verify_jobs);
        w.put_len(self.threads);
        w.put_u32(self.retry_limit);
        w.put(&self.watchdog_secs);
        // `TaskAbortSpec` is a faultsim type (orphan rule), so its fields
        // are framed inline here.
        match self.abort {
            None => w.put_bool(false),
            Some(a) => {
                w.put_bool(true);
                w.put_u64(a.job);
                w.put_len(a.node);
                w.put_u32(a.aborts);
                w.put_bool(a.hang);
            }
        }
        w.put(&self.backfill_window);
        w.put(&self.shape);
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BatchConfig {
            num_nodes: r.get_len()?,
            discipline: r.get()?,
            sched: r.get()?,
            placement: r.get()?,
            internode_latency: r.get_f64()?,
            seed: r.get_u64()?,
            verify_jobs: r.get_bool()?,
            threads: r.get_len()?,
            retry_limit: r.get_u32()?,
            watchdog_secs: r.get()?,
            abort: if r.get_bool()? {
                Some(TaskAbortSpec {
                    job: r.get_u64()?,
                    node: r.get_len()?,
                    aborts: r.get_u32()?,
                    hang: r.get_bool()?,
                })
            } else {
                None
            },
            backfill_window: r.get()?,
            shape: r.get()?,
        })
    }
}

impl Snapshot for FleetShape {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        match self {
            FleetShape::Uniform => w.put_u8(0),
            FleetShape::Preset(p) => {
                w.put_u8(1);
                w.put(p);
            }
            FleetShape::Mixed => w.put_u8(2),
        }
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(FleetShape::Uniform),
            1 => Ok(FleetShape::Preset(r.get()?)),
            2 => Ok(FleetShape::Mixed),
            _ => Err(SnapshotError::Malformed("bad FleetShape tag")),
        }
    }
}

impl Snapshot for BatchFault {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_len(self.node);
        w.put_u32(self.after_completions);
        w.put_u32(self.max_retries);
        w.put_f64(self.restart_secs);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BatchFault {
            node: r.get_len()?,
            after_completions: r.get_u32()?,
            max_retries: r.get_u32()?,
            restart_secs: r.get_f64()?,
        })
    }
}

impl Snapshot for BatchJob {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.id);
        self.spec.snapshot(w);
        w.put_f64(self.arrival);
        w.put(&self.class);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(BatchJob {
            id: r.get_u64()?,
            spec: r.get()?,
            arrival: r.get_f64()?,
            class: r.get()?,
        })
    }
}

/// Degradation reasons are `&'static str` in the event type; decoding
/// re-interns against this closed set so restore stays allocation-free in
/// the event and rejects unknown reasons as malformed rather than leaking.
fn intern_reason(s: &str) -> Option<&'static str> {
    ["retries-exhausted", "unplaceable", "task-quarantined", "task-timeout"]
        .into_iter()
        .find(|&k| k == s)
}

impl Snapshot for BatchEvent {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        match self {
            BatchEvent::Submit { t, job, ranks, nodes } => {
                w.put_u8(0);
                w.put(t);
                w.put_u64(*job);
                w.put_len(*ranks);
                w.put_len(*nodes);
            }
            BatchEvent::Start { t, job, nodes, backfilled } => {
                w.put_u8(1);
                w.put(t);
                w.put_u64(*job);
                w.put(nodes);
                w.put_bool(*backfilled);
            }
            BatchEvent::Finish { t, job } => {
                w.put_u8(2);
                w.put(t);
                w.put_u64(*job);
            }
            BatchEvent::NodeFail { t, node } => {
                w.put_u8(3);
                w.put(t);
                w.put_len(*node);
            }
            BatchEvent::Requeue { t, job, remaining_iters } => {
                w.put_u8(4);
                w.put(t);
                w.put_u64(*job);
                w.put_u32(*remaining_iters);
            }
            BatchEvent::Degraded { t, job, reason } => {
                w.put_u8(5);
                w.put(t);
                w.put_u64(*job);
                w.put_str(reason);
            }
        }
    }

    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(match r.get_u8()? {
            0 => BatchEvent::Submit {
                t: r.get()?,
                job: r.get_u64()?,
                ranks: r.get_len()?,
                nodes: r.get_len()?,
            },
            1 => BatchEvent::Start {
                t: r.get()?,
                job: r.get_u64()?,
                nodes: r.get()?,
                backfilled: r.get_bool()?,
            },
            2 => BatchEvent::Finish { t: r.get()?, job: r.get_u64()? },
            3 => BatchEvent::NodeFail { t: r.get()?, node: r.get_len()? },
            4 => BatchEvent::Requeue {
                t: r.get()?,
                job: r.get_u64()?,
                remaining_iters: r.get_u32()?,
            },
            5 => {
                let t = r.get()?;
                let job = r.get_u64()?;
                let reason = r.get_str()?;
                BatchEvent::Degraded {
                    t,
                    job,
                    reason: intern_reason(&reason)
                        .ok_or(SnapshotError::Malformed("unknown degradation reason"))?,
                }
            }
            _ => return Err(SnapshotError::Malformed("bad BatchEvent tag")),
        })
    }
}

impl Snapshot for ReservationRecord {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.job);
        w.put(&self.at);
        w.put(&self.shadow);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(ReservationRecord { job: r.get_u64()?, at: r.get()?, shadow: r.get()? })
    }
}

impl Snapshot for JobRecord {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.id);
        w.put_str(&self.name);
        w.put_len(self.ranks);
        w.put_f64(self.arrival);
        w.put(&self.first_start);
        w.put_f64(self.end);
        w.put_f64(self.wait);
        w.put_f64(self.turnaround);
        w.put_f64(self.slowdown);
        w.put_bool(self.backfilled);
        w.put_u32(self.requeues);
        w.put_f64(self.node_secs_held);
        w.put(&self.outcome);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(JobRecord {
            id: r.get_u64()?,
            name: r.get_str()?,
            ranks: r.get_len()?,
            arrival: r.get_f64()?,
            first_start: r.get()?,
            end: r.get_f64()?,
            wait: r.get_f64()?,
            turnaround: r.get_f64()?,
            slowdown: r.get_f64()?,
            backfilled: r.get_bool()?,
            requeues: r.get_u32()?,
            node_secs_held: r.get_f64()?,
            outcome: r.get()?,
        })
    }
}

impl Snapshot for Tracker {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.job.snapshot(w);
        self.remaining.snapshot(w);
        w.put(&self.first_start);
        w.put_f64(self.node_secs_held);
        w.put_f64(self.run_secs);
        w.put_u32(self.iters_done);
        w.put_u32(self.requeues);
        w.put_bool(self.backfilled);
        w.put_f64(self.restart_due);
        w.put(&self.failure);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Tracker {
            job: r.get()?,
            remaining: r.get()?,
            first_start: r.get()?,
            node_secs_held: r.get_f64()?,
            run_secs: r.get_f64()?,
            iters_done: r.get_u32()?,
            requeues: r.get_u32()?,
            backfilled: r.get_bool()?,
            restart_due: r.get_f64()?,
            failure: r.get()?,
        })
    }
}

// ---------------------------------------------------------------------------
// Durable storage: atomic rotation with one generation of fallback.
// ---------------------------------------------------------------------------

/// Why a checkpoint could not be loaded.
#[derive(Debug)]
pub enum StoreError {
    Io(io::Error),
    /// The (only) image failed frame/checksum/shape validation.
    Decode(SnapshotError),
    /// Both the latest image and the previous generation are unusable.
    BothCorrupt { latest: SnapshotError, previous: SnapshotError },
    /// Nothing has been saved in this directory yet.
    Missing(PathBuf),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "checkpoint io error: {e}"),
            StoreError::Decode(e) => write!(f, "checkpoint corrupt: {e:?}"),
            StoreError::BothCorrupt { latest, previous } => write!(
                f,
                "checkpoint and fallback both corrupt: latest {latest:?}, previous {previous:?}"
            ),
            StoreError::Missing(p) => write!(f, "no checkpoint found under {}", p.display()),
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> StoreError {
        StoreError::Io(e)
    }
}

/// Offset of the first payload byte in the framed encoding — flipping it
/// corrupts the image without touching the header, so loads fail on the
/// checksum (the realistic torn-write shape `ckptcorrupt:` models).
const PAYLOAD_OFFSET: usize = simcore::snapshot::SNAPSHOT_HEADER_LEN;

/// Rotating on-disk checkpoint store: `batch.ckpt` is the latest good
/// image, `batch.ckpt.prev` the one before it. Saves are atomic
/// (write-to-temp, then rename), so a crash mid-save never destroys the
/// previous generation.
pub struct CheckpointStore {
    dir: PathBuf,
    saves: u32,
    /// Corrupt the nth save (1-based) after writing it — faultsim's
    /// `ckptcorrupt:` injection, used to exercise the fallback path.
    corrupt_nth: Option<u32>,
}

impl CheckpointStore {
    const LATEST: &'static str = "batch.ckpt";
    const PREV: &'static str = "batch.ckpt.prev";
    const TMP: &'static str = "batch.ckpt.tmp";

    pub fn new(dir: impl Into<PathBuf>) -> CheckpointStore {
        CheckpointStore { dir: dir.into(), saves: 0, corrupt_nth: None }
    }

    /// Arm `ckptcorrupt:` injection: the `nth` save (counting from 1) is
    /// flipped after landing, as if the write tore.
    pub fn corrupt_nth_save(mut self, nth: u32) -> CheckpointStore {
        self.corrupt_nth = Some(nth);
        self
    }

    pub fn latest_path(&self) -> PathBuf {
        self.dir.join(Self::LATEST)
    }

    /// Persist a checkpoint, rotating the previous latest into `.prev`.
    pub fn save(&mut self, ckpt: &BatchCheckpoint) -> Result<PathBuf, StoreError> {
        std::fs::create_dir_all(&self.dir)?;
        let tmp = self.dir.join(Self::TMP);
        let latest = self.dir.join(Self::LATEST);
        let prev = self.dir.join(Self::PREV);
        std::fs::write(&tmp, ckpt.encode())?;
        if latest.exists() {
            std::fs::rename(&latest, &prev)?;
        }
        std::fs::rename(&tmp, &latest)?;
        self.saves += 1;
        if self.corrupt_nth == Some(self.saves) {
            let mut bytes = std::fs::read(&latest)?;
            if let Some(b) = bytes.get_mut(PAYLOAD_OFFSET) {
                *b ^= 0xFF;
            }
            std::fs::write(&latest, bytes)?;
        }
        Ok(latest)
    }

    /// Load a single checkpoint file with no fallback (the `--resume
    /// <file>` path).
    pub fn load_file(path: &Path) -> Result<BatchCheckpoint, StoreError> {
        let bytes = std::fs::read(path)?;
        BatchCheckpoint::decode(&bytes).map_err(StoreError::Decode)
    }

    /// Load the newest usable checkpoint in `dir`. Returns the image and
    /// whether the latest was corrupt and recovery fell back to `.prev`.
    pub fn load_latest(dir: &Path) -> Result<(BatchCheckpoint, bool), StoreError> {
        let latest = dir.join(Self::LATEST);
        let prev = dir.join(Self::PREV);
        if !latest.exists() && !prev.exists() {
            return Err(StoreError::Missing(dir.to_path_buf()));
        }
        let latest_err = if latest.exists() {
            let bytes = std::fs::read(&latest)?;
            match BatchCheckpoint::decode(&bytes) {
                Ok(ckpt) => return Ok((ckpt, false)),
                Err(e) => Some(e),
            }
        } else {
            None
        };
        if prev.exists() {
            let bytes = std::fs::read(&prev)?;
            match BatchCheckpoint::decode(&bytes) {
                Ok(ckpt) => return Ok((ckpt, true)),
                Err(prev_err) => match latest_err {
                    Some(latest) => {
                        return Err(StoreError::BothCorrupt { latest, previous: prev_err })
                    }
                    None => return Err(StoreError::Decode(prev_err)),
                },
            }
        }
        // INVARIANT: latest existed (the double-missing case returned
        // above) and failed to decode, and there is no fallback.
        match latest_err {
            Some(e) => Err(StoreError::Decode(e)),
            None => Err(StoreError::Missing(dir.to_path_buf())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrivals::heavy_light_mix;
    use crate::sim::{resume_batch, run_batch, run_batch_checkpointed, run_batch_until};

    fn cfg() -> BatchConfig {
        BatchConfig { discipline: Discipline::Easy, threads: 2, ..BatchConfig::default() }
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("batchsim-ckpt-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn encode_decode_round_trips_byte_exactly() {
        let stream = heavy_light_mix(7, 24);
        let ckpt = run_batch_until(&stream, &cfg(), None, 12).expect("stream outlives the cut");
        let bytes = ckpt.encode();
        let back = BatchCheckpoint::decode(&bytes).expect("decodes");
        assert_eq!(back.encode(), bytes, "decode → encode is the identity");
        assert!(ckpt.events_len() >= 12);
        assert!(back.captured_at() >= SimTime::ZERO);
    }

    #[test]
    fn decode_rejects_a_flipped_payload_byte() {
        let stream = heavy_light_mix(7, 12);
        let ckpt = run_batch_until(&stream, &cfg(), None, 4).expect("cut exists");
        let mut bytes = ckpt.encode();
        bytes[PAYLOAD_OFFSET] ^= 0xFF;
        assert!(matches!(
            BatchCheckpoint::decode(&bytes),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn resume_is_byte_identical_including_metrics() {
        let stream = heavy_light_mix(11, 30);
        let cfg = cfg();
        let fault =
            BatchFault { node: 1, after_completions: 3, max_retries: 2, restart_secs: 5.0 };
        let full = run_batch(&stream, &cfg, Some(&fault));
        for cut in [1, 7, 25, 60] {
            let Some(ckpt) = run_batch_until(&stream, &cfg, Some(&fault), cut) else {
                continue;
            };
            let ckpt = BatchCheckpoint::decode(&ckpt.encode()).expect("round trip");
            let resumed = resume_batch(&ckpt);
            assert_eq!(resumed.render_trace(), full.render_trace(), "cut at {cut} events");
            assert_eq!(resumed.metrics, full.metrics, "metrics replay, cut at {cut}");
            assert_eq!(resumed.makespan.to_bits(), full.makespan.to_bits());
            assert_eq!(resumed.jobs.len(), full.jobs.len());
        }
    }

    #[test]
    fn resume_at_a_different_thread_count_is_byte_identical() {
        let stream = heavy_light_mix(3, 20);
        let cfg = cfg();
        let full = run_batch(&stream, &cfg, None);
        let mut ckpt = run_batch_until(&stream, &cfg, None, 15).expect("cut exists");
        ckpt.set_threads(4);
        assert_eq!(resume_batch(&ckpt).render_trace(), full.render_trace());
    }

    #[test]
    fn checkpointed_run_matches_plain_run_and_feeds_the_sink() {
        let stream = heavy_light_mix(5, 16);
        let cfg = cfg();
        let full = run_batch(&stream, &cfg, None);
        let mut cuts: Vec<usize> = Vec::new();
        let policy = CheckpointPolicy { every_events: Some(8), every_jobs: None };
        let out = run_batch_checkpointed(&stream, &cfg, None, &policy, |c| {
            cuts.push(c.events_len());
        });
        assert_eq!(out.render_trace(), full.render_trace());
        assert!(!cuts.is_empty(), "cadence of 8 events must fire on this stream");
        assert!(cuts.windows(2).all(|w| w[0] < w[1]), "cuts advance monotonically");
    }

    #[test]
    fn store_rotates_and_falls_back_when_latest_is_corrupt() {
        let dir = tmpdir("fallback");
        let stream = heavy_light_mix(9, 20);
        let first = run_batch_until(&stream, &cfg(), None, 5).expect("cut exists");
        let second = run_batch_until(&stream, &cfg(), None, 15).expect("cut exists");
        // Corrupt the *second* save: load_latest must fall back to the first.
        let mut store = CheckpointStore::new(&dir).corrupt_nth_save(2);
        store.save(&first).expect("save 1");
        store.save(&second).expect("save 2");
        let (loaded, fell_back) = CheckpointStore::load_latest(&dir).expect("fallback works");
        assert!(fell_back, "latest is corrupt, so recovery used .prev");
        assert_eq!(loaded.encode(), first.encode());
        // The fallback image still resumes to the uninterrupted trace.
        let full = run_batch(&stream, &cfg(), None);
        assert_eq!(resume_batch(&loaded).render_trace(), full.render_trace());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_load_reports_typed_errors() {
        let dir = tmpdir("errors");
        assert!(matches!(CheckpointStore::load_latest(&dir), Err(StoreError::Missing(_))));
        let stream = heavy_light_mix(2, 10);
        let ckpt = run_batch_until(&stream, &cfg(), None, 3).expect("cut exists");
        let mut store = CheckpointStore::new(&dir).corrupt_nth_save(1);
        let path = store.save(&ckpt).expect("save");
        // Only one (corrupt) generation: no fallback is possible.
        assert!(matches!(CheckpointStore::load_latest(&dir), Err(StoreError::Decode(_))));
        assert!(matches!(CheckpointStore::load_file(&path), Err(StoreError::Decode(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
