//! The release index: running segments ordered by completion instant.
//!
//! EASY backfill needs two queries on every scheduling pass: the next
//! completion instant (to advance the clock) and the *shadow time* — the
//! earliest instant enough nodes have freed up for the blocked queue
//! head. The engine used to answer both by sorting a scratch copy of the
//! running list, O(r log r) per pass and O(n·r log r) over a run.
//!
//! [`ReleaseIndex`] keeps `(end, admission_seq)` keys in an ordered set
//! with the freed node width attached, so:
//!
//! * the next completion is the first key — O(log r);
//! * the shadow walk visits releases in end order and stops as soon as
//!   the accumulated width satisfies the head — at most `need` entries,
//!   since every release frees at least one node;
//! * equal end times order by admission sequence, exactly the stable
//!   sort over the old admission-ordered `Vec` — byte-identical shadow
//!   choices.

use std::collections::{BTreeMap, BTreeSet};

use simcore::SimTime;

/// Ordered index of running segments keyed `(end, admission seq)`, with
/// the node width each release frees.
#[derive(Clone, Debug, Default)]
pub struct ReleaseIndex {
    by_end: BTreeSet<(SimTime, u64)>,
    /// seq → `(end, width)`, for O(log r) removal.
    entries: BTreeMap<u64, (SimTime, usize)>,
}

impl ReleaseIndex {
    pub fn new() -> ReleaseIndex {
        ReleaseIndex::default()
    }

    pub fn len(&self) -> usize {
        self.by_end.len()
    }

    pub fn is_empty(&self) -> bool {
        self.by_end.is_empty()
    }

    /// Track a segment admitted as `seq`, occupying `width` nodes until
    /// `end`.
    pub fn insert(&mut self, seq: u64, end: SimTime, width: usize) {
        self.by_end.insert((end, seq));
        self.entries.insert(seq, (end, width));
    }

    /// Stop tracking a segment (completion or failure-requeue); `false`
    /// when `seq` was not tracked.
    pub fn remove(&mut self, seq: u64) -> bool {
        match self.entries.remove(&seq) {
            Some((end, _)) => {
                self.by_end.remove(&(end, seq));
                true
            }
            None => false,
        }
    }

    /// Earliest completion instant over all running segments.
    pub fn next_release(&self) -> Option<SimTime> {
        self.by_end.first().map(|&(end, _)| end)
    }

    /// Remove and return the seqs of every segment with `end <= now`, in
    /// `(end, seq)` order.
    pub fn pop_released(&mut self, now: SimTime) -> Vec<u64> {
        let mut out = Vec::new();
        while let Some(&(end, seq)) = self.by_end.first() {
            if end > now {
                break;
            }
            self.by_end.pop_first();
            self.entries.remove(&seq);
            out.push(seq);
        }
        out
    }

    /// The EASY shadow computation: starting from `avail` free nodes,
    /// walk releases in end order until at least `need` nodes are
    /// available. Returns `(shadow instant, nodes available then)`, or
    /// `None` when even a fully drained fleet cannot satisfy the head.
    /// Visits at most `need` entries — every release frees ≥ 1 node.
    pub fn shadow(&self, mut avail: usize, need: usize) -> Option<(SimTime, usize)> {
        for &(end, seq) in &self.by_end {
            let width = self.entries.get(&seq).map_or(0, |&(_, w)| w);
            avail += width;
            if avail >= need {
                return Some((end, avail));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::ZERO + simcore::SimDuration::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn next_release_and_pop_follow_end_then_seq_order() {
        let mut ix = ReleaseIndex::new();
        ix.insert(2, t(30), 1);
        ix.insert(0, t(10), 2);
        ix.insert(1, t(10), 3);
        assert_eq!(ix.next_release(), Some(t(10)));
        assert_eq!(ix.pop_released(t(10)), vec![0, 1]);
        assert_eq!(ix.len(), 1);
        assert_eq!(ix.pop_released(t(29)), Vec::<u64>::new());
        assert_eq!(ix.pop_released(t(30)), vec![2]);
        assert!(ix.is_empty());
    }

    #[test]
    fn shadow_matches_the_sorted_linear_walk() {
        let mut ix = ReleaseIndex::new();
        // Admission order 0..3; ends out of order; a tie at t(20).
        let segs = [(0u64, 20u64, 2usize), (1, 10, 1), (2, 20, 1), (3, 40, 4)];
        for &(seq, end, w) in &segs {
            ix.insert(seq, t(end), w);
        }
        // The reference implementation the engine used to run.
        let reference = |avail: usize, need: usize| -> Option<(SimTime, usize)> {
            let mut ends: Vec<(SimTime, usize)> =
                segs.iter().map(|&(_, end, w)| (t(end), w)).collect();
            ends.sort_by_key(|&(end, _)| end);
            let mut a = avail;
            for (end, w) in ends {
                a += w;
                if a >= need {
                    return Some((end, a));
                }
            }
            None
        };
        for avail in 0..3 {
            for need in 1..10 {
                assert_eq!(ix.shadow(avail, need), reference(avail, need), "avail {avail} need {need}");
            }
        }
        assert_eq!(ix.shadow(0, 100), None);
    }

    #[test]
    fn remove_untracks_exactly_one_segment() {
        let mut ix = ReleaseIndex::new();
        ix.insert(0, t(5), 1);
        ix.insert(1, t(5), 1);
        assert!(ix.remove(0));
        assert!(!ix.remove(0));
        assert_eq!(ix.pop_released(t(5)), vec![1]);
    }
}
