//! Lock-cheap metrics for the scheduler kernel and its harnesses.
//!
//! A [`MetricsRegistry`] hands out typed handles — [`Counter`], [`Gauge`],
//! [`HistogramHandle`] — that are plain `Arc`s over atomics: recording a
//! sample is one or two relaxed atomic ops, cheap enough for kernel hot
//! paths (context switches, run-queue updates, hardware-priority writes).
//! Registration is idempotent by name, so instrumented components can
//! request the same metric without coordinating.
//!
//! Snapshots ([`MetricsRegistry::snapshot`]) are deterministic: metrics are
//! reported sorted by name, so two runs with the same seed produce
//! byte-identical exports. Exporters live in [`export`]: JSON for machine
//! consumption, CSV for time series, and a human-readable summary for the
//! `--telemetry` flag of the experiment binaries.

pub mod export;

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// Number of log2 buckets: bucket `i < 64` counts values `v` with
/// `floor(log2(v)) == i - 1` (bucket 0 is `v == 0`), bucket 64 is `u64::MAX`
/// overflow territory shared with the largest magnitudes.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonically increasing event count.
#[derive(Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins signed level (queue depths, priority values).
#[derive(Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Log2-bucketed distribution of `u64` samples with exact count/sum/min/max.
pub struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for HistogramCore {
    fn default() -> HistogramCore {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for zero, else `1 + floor(log2(v))`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket, for reporting.
pub fn bucket_upper_bound(index: usize) -> u64 {
    if index == 0 {
        0
    } else if index >= 64 {
        u64::MAX
    } else {
        (1u64 << index) - 1
    }
}

/// Inverse of [`bucket_upper_bound`]: the bucket index a reported upper
/// bound came from. Upper bounds are `2^i - 1`, so `ub + 1` is a power of
/// two whose trailing-zero count recovers `i`.
fn bucket_index_of_upper_bound(ub: u64) -> usize {
    if ub == 0 {
        0
    } else if ub == u64::MAX {
        64
    } else {
        (ub + 1).trailing_zeros() as usize
    }
}

#[derive(Clone, Default)]
pub struct HistogramHandle {
    core: Arc<HistogramCore>,
}

impl HistogramHandle {
    pub fn record(&self, v: u64) {
        let c = &self.core;
        c.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        c.count.fetch_add(1, Ordering::Relaxed);
        c.sum.fetch_add(v, Ordering::Relaxed);
        c.min.fetch_min(v, Ordering::Relaxed);
        c.max.fetch_max(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.core.count.load(Ordering::Relaxed)
    }

    /// Overwrite this histogram from a previously captured [`HistogramStats`]
    /// — the checkpoint-restore path. Buckets absent from `stats` are
    /// cleared; an empty `stats` resets the histogram to its default state.
    pub fn restore(&self, stats: &HistogramStats) {
        let c = &self.core;
        for b in &c.buckets {
            b.store(0, Ordering::Relaxed);
        }
        for &(ub, n) in &stats.buckets {
            c.buckets[bucket_index_of_upper_bound(ub)].store(n, Ordering::Relaxed);
        }
        c.count.store(stats.count, Ordering::Relaxed);
        c.sum.store(stats.sum, Ordering::Relaxed);
        // `stats` reports min as 0 when empty; internally an empty
        // histogram keeps min at u64::MAX so the next sample wins.
        let min = if stats.count == 0 { u64::MAX } else { stats.min };
        c.min.store(min, Ordering::Relaxed);
        c.max.store(stats.max, Ordering::Relaxed);
    }

    pub fn stats(&self) -> HistogramStats {
        let c = &self.core;
        let count = c.count.load(Ordering::Relaxed);
        let buckets: Vec<(u64, u64)> = c
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then(|| (bucket_upper_bound(i), n))
            })
            .collect();
        HistogramStats {
            count,
            sum: c.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { c.min.load(Ordering::Relaxed) },
            max: c.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// Point-in-time view of one histogram.
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramStats {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    /// Occupied buckets only, as `(inclusive upper bound, count)`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramStats {
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// Point-in-time value of one metric.
#[derive(Clone, Debug, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramStats),
}

/// Deterministic (name-sorted) view of every registered metric.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub metrics: Vec<(String, MetricValue)>,
}

impl MetricsSnapshot {
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.metrics
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Counter value by name; 0 when absent or of another kind.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> i64 {
        match self.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    pub fn histogram(&self, name: &str) -> Option<&HistogramStats> {
        match self.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// Sum of all counters whose name starts with `prefix` — used to roll
    /// up per-CPU or per-heuristic families.
    pub fn counter_family(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter_map(|(n, v)| match v {
                MetricValue::Counter(c) if n.starts_with(prefix) => Some(*c),
                _ => None,
            })
            .sum()
    }
}

enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(HistogramHandle),
}

/// Registry of named metrics.
///
/// The registry itself takes a mutex only at registration and snapshot
/// time; the handles it returns touch nothing but their own atomics, so
/// hot-path recording never contends on the registry. Cloning shares the
/// underlying store.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    fn lock(&self) -> MutexGuard<'_, BTreeMap<String, Metric>> {
        // A panic while holding the lock cannot corrupt the BTreeMap in a
        // way we care about (values are handles); recover instead of
        // cascading the poison.
        self.metrics.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Registers (or retrieves) the counter called `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) the gauge called `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Registers (or retrieves) the histogram called `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut m = self.lock();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(HistogramHandle::default()))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` already registered with a different kind"),
        }
    }

    /// Restore registry state from a previously captured snapshot — the
    /// checkpoint-restore path. Each snapshot entry is registered (or
    /// retrieved) under its recorded kind and overwritten with the captured
    /// value, so `registry.restore(&snap); registry.snapshot() == snap`.
    ///
    /// Panics if a name is already registered under a different kind, the
    /// same contract as registration itself.
    pub fn restore(&self, snap: &MetricsSnapshot) {
        for (name, value) in &snap.metrics {
            match value {
                MetricValue::Counter(v) => {
                    let c = self.counter(name);
                    c.value.store(*v, Ordering::Relaxed);
                }
                MetricValue::Gauge(v) => self.gauge(name).set(*v),
                MetricValue::Histogram(h) => self.histogram(name).restore(h),
            }
        }
    }

    /// Deterministic snapshot: metrics sorted by name (the BTreeMap order).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.lock();
        MetricsSnapshot {
            metrics: m
                .iter()
                .map(|(name, metric)| {
                    let value = match metric {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.stats()),
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }
}

/// One row of a metric time series: sample time plus named values.
#[derive(Clone, Debug, PartialEq)]
pub struct TimeSeriesRow {
    /// Sample timestamp in nanoseconds of simulated time.
    pub time_ns: u64,
    pub values: Vec<(String, f64)>,
}

/// Column-aligned time series collected over a run, exported as CSV.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TimeSeries {
    pub rows: Vec<TimeSeriesRow>,
}

impl TimeSeries {
    pub fn push(&mut self, time_ns: u64, values: Vec<(String, f64)>) {
        self.rows.push(TimeSeriesRow { time_ns, values });
    }

    /// Union of column names across rows, sorted for stable output.
    pub fn columns(&self) -> Vec<String> {
        let mut cols: Vec<String> = self
            .rows
            .iter()
            .flat_map(|r| r.values.iter().map(|(n, _)| n.clone()))
            .collect();
        cols.sort();
        cols.dedup();
        cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concurrent_increments_all_land() {
        let registry = MetricsRegistry::new();
        let counter = registry.counter("kernel.test.increments");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = counter.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), 80_000);
        assert_eq!(registry.snapshot().counter("kernel.test.increments"), 80_000);
    }

    #[test]
    fn registration_is_idempotent_by_name() {
        let registry = MetricsRegistry::new();
        registry.counter("a").add(3);
        registry.counter("a").add(4);
        assert_eq!(registry.snapshot().counter("a"), 7);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_is_rejected() {
        let registry = MetricsRegistry::new();
        registry.counter("x");
        registry.gauge("x");
    }

    #[test]
    fn histogram_bucket_edges() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);

        let h = HistogramHandle::default();
        for v in [0u64, 1, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        let stats = h.stats();
        assert_eq!(stats.count, 7);
        assert_eq!(stats.min, 0);
        assert_eq!(stats.max, 1024);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
        // 1023 → bucket 10 (≤1023); 1024 → bucket 11 (≤2047).
        assert_eq!(
            stats.buckets,
            vec![(0, 1), (1, 1), (3, 2), (7, 1), (1023, 1), (2047, 1)]
        );
    }

    #[test]
    fn gauge_tracks_level() {
        let g = Gauge::default();
        g.set(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
    }

    #[test]
    fn snapshot_is_name_sorted_and_deterministic() {
        let registry = MetricsRegistry::new();
        registry.counter("z.last").inc();
        registry.counter("a.first").inc();
        registry.gauge("m.middle").set(-1);
        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.metrics.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
        assert_eq!(registry.snapshot(), registry.snapshot());
    }

    #[test]
    fn histogram_restore_round_trips() {
        let h = HistogramHandle::default();
        for v in [0u64, 1, 7, 1024, u64::MAX] {
            h.record(v);
        }
        let captured = h.stats();
        let fresh = HistogramHandle::default();
        fresh.restore(&captured);
        assert_eq!(fresh.stats(), captured);
        // Restoring over prior contents overwrites them completely.
        let dirty = HistogramHandle::default();
        dirty.record(42);
        dirty.restore(&captured);
        assert_eq!(dirty.stats(), captured);
        // An empty capture resets to the default (next sample sets min).
        let reset = HistogramHandle::default();
        reset.record(9);
        reset.restore(&HistogramStats {
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
            buckets: Vec::new(),
        });
        reset.record(5);
        assert_eq!(reset.stats().min, 5);
    }

    #[test]
    fn registry_restore_round_trips() {
        let registry = MetricsRegistry::new();
        registry.counter("jobs.completed").add(12);
        registry.gauge("queue.depth").set(-3);
        registry.histogram("wait.us").record(77);
        let snap = registry.snapshot();
        let restored = MetricsRegistry::new();
        restored.restore(&snap);
        assert_eq!(restored.snapshot(), snap);
        // Handles registered after restore keep accumulating on top.
        restored.counter("jobs.completed").inc();
        assert_eq!(restored.snapshot().counter("jobs.completed"), 13);
    }

    #[test]
    fn counter_family_rollup() {
        let registry = MetricsRegistry::new();
        registry.counter("cpu0.transitions").add(2);
        registry.counter("cpu1.transitions").add(3);
        registry.counter("other").add(10);
        assert_eq!(registry.snapshot().counter_family("cpu"), 5);
    }
}
