//! Exporters for [`MetricsSnapshot`](crate::MetricsSnapshot) and
//! [`TimeSeries`](crate::TimeSeries).
//!
//! All three formats are hand-rolled so this crate stays dependency-free
//! and can sit underneath every other crate in the workspace:
//!
//! - [`snapshot_to_json`] — machine-readable, one object per metric;
//! - [`timeseries_to_csv`] — `time_ns` plus one column per series;
//! - [`snapshot_summary`] — aligned human-readable text for `--telemetry`.

use crate::{MetricValue, MetricsSnapshot, TimeSeries};
use std::fmt::Write as _;

fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn json_f64(v: f64, out: &mut String) {
    if v.is_finite() {
        let s = format!("{v}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        out.push_str("null");
    }
}

/// Serializes a snapshot as a JSON object keyed by metric name.
///
/// Counters become `{"type":"counter","value":N}`, gauges
/// `{"type":"gauge","value":N}`, histograms carry count/sum/min/max/mean
/// and the occupied `[upper_bound, count]` bucket pairs.
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n");
    for (i, (name, value)) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str("  ");
        json_escape(name, &mut out);
        out.push_str(": ");
        match value {
            MetricValue::Counter(v) => {
                let _ = write!(out, "{{\"type\": \"counter\", \"value\": {v}}}");
            }
            MetricValue::Gauge(v) => {
                let _ = write!(out, "{{\"type\": \"gauge\", \"value\": {v}}}");
            }
            MetricValue::Histogram(h) => {
                let _ = write!(
                    out,
                    "{{\"type\": \"histogram\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"mean\": ",
                    h.count, h.sum, h.min, h.max
                );
                json_f64(h.mean(), &mut out);
                out.push_str(", \"buckets\": [");
                for (j, (bound, n)) in h.buckets.iter().enumerate() {
                    if j > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "[{bound}, {n}]");
                }
                out.push_str("]}");
            }
        }
    }
    out.push_str("\n}\n");
    out
}

/// Serializes a time series as CSV: `time_ns` first, then the sorted union
/// of column names; rows missing a column leave the cell empty.
pub fn timeseries_to_csv(series: &TimeSeries) -> String {
    let columns = series.columns();
    let mut out = String::from("time_ns");
    for c in &columns {
        out.push(',');
        // Metric names are dot/underscore identifiers; quote defensively
        // if one ever contains a comma or quote.
        if c.contains([',', '"', '\n']) {
            out.push('"');
            out.push_str(&c.replace('"', "\"\""));
            out.push('"');
        } else {
            out.push_str(c);
        }
    }
    out.push('\n');
    for row in &series.rows {
        let _ = write!(out, "{}", row.time_ns);
        for c in &columns {
            out.push(',');
            if let Some((_, v)) = row.values.iter().find(|(n, _)| n == c) {
                let _ = write!(out, "{v}");
            }
        }
        out.push('\n');
    }
    out
}

/// Renders a snapshot as aligned human-readable lines for terminal output.
pub fn snapshot_summary(snapshot: &MetricsSnapshot) -> String {
    let width = snapshot
        .metrics
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    for (name, value) in &snapshot.metrics {
        match value {
            MetricValue::Counter(v) => {
                let _ = writeln!(out, "{name:<width$}  {v}");
            }
            MetricValue::Gauge(v) => {
                let _ = writeln!(out, "{name:<width$}  {v}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(
                    out,
                    "{name:<width$}  count={} mean={:.1} min={} max={}",
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn sample_registry() -> MetricsRegistry {
        let r = MetricsRegistry::new();
        r.counter("kernel.context_switches").add(12);
        r.gauge("kernel.runq_depth").set(-3);
        let h = r.histogram("kernel.pick_ns");
        h.record(0);
        h.record(5);
        h.record(900);
        r
    }

    #[test]
    fn json_contains_every_metric() {
        let json = snapshot_to_json(&sample_registry().snapshot());
        assert!(json.contains("\"kernel.context_switches\": {\"type\": \"counter\", \"value\": 12}"));
        assert!(json.contains("\"kernel.runq_depth\": {\"type\": \"gauge\", \"value\": -3}"));
        assert!(json.contains("\"type\": \"histogram\", \"count\": 3"));
        assert!(json.contains("[1023, 1]"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut ts = crate::TimeSeries::default();
        ts.push(100, vec![("util.rank0".into(), 0.5)]);
        ts.push(200, vec![("util.rank0".into(), 0.75), ("util.rank1".into(), 1.0)]);
        let csv = timeseries_to_csv(&ts);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_ns,util.rank0,util.rank1");
        assert_eq!(lines[1], "100,0.5,");
        assert_eq!(lines[2], "200,0.75,1");
    }

    #[test]
    fn summary_lists_all_names() {
        let text = snapshot_summary(&sample_registry().snapshot());
        assert!(text.contains("kernel.context_switches"));
        assert!(text.contains("kernel.pick_ns"));
        assert!(text.contains("count=3"));
    }
}
