//! MetBenchVar — MetBench with behaviour reversal (paper §V-B).
//!
//! Identical to MetBench except that every `k` iterations the workers swap
//! load assignments: workers that executed the small load start executing
//! the large one and vice versa, reversing the load imbalance at run time.
//! The paper uses k = 15 with two switches (three periods) to show that the
//! static prioritization becomes counter-productive in the reversed period
//! while HPCSched re-balances within a few iterations.

use crate::metbench::{Master, MetBenchConfig};
use crate::spawn::{poll_crash, spawn_ranks, CrashAction, SchedulerSetup};
use mpisim::{Mpi, MpiConfig, MpiFaultConfig};
use schedsim::{Action, Kernel, KernelApi, Program, TaskId};

/// MetBenchVar configuration.
#[derive(Clone, Debug)]
pub struct MetBenchVarConfig {
    /// The underlying MetBench shape (loads are the *initial* assignment).
    pub base: MetBenchConfig,
    /// Swap period: behaviour reverses after every `k` iterations.
    pub k: u32,
}

impl Default for MetBenchVarConfig {
    fn default() -> Self {
        // Calibration (EXPERIMENTS.md): large load 6.545 units, small =
        // large/4, k = 15, 45 iterations (three periods). Baseline
        // iteration time 6.545/0.8 ≈ 8.18 s → total ≈ 368 s and average
        // utilizations ≈ 50%/75%, matching paper Table IV's baseline row.
        MetBenchVarConfig {
            base: MetBenchConfig {
                loads: vec![1.636, 6.545, 1.636, 6.545],
                iterations: 45,
                init_bytes: 1 << 20,
                perf: power5::TaskPerfTraits::uniform(1.0),
            },
            k: 15,
        }
    }
}

enum Phase {
    Init,
    Compute,
    Barrier,
    Done,
}

/// A worker whose load flips between `loads[0]` and `loads[1]` every `k`
/// iterations.
pub struct VarWorker {
    mpi: Mpi,
    rank: usize,
    /// `[initial load, swapped load]`.
    loads: [f64; 2],
    k: u32,
    iterations: u32,
    done_iters: u32,
    phase: Phase,
}

impl VarWorker {
    fn current_load(&self) -> f64 {
        let period = (self.done_iters / self.k) as usize;
        self.loads[period % 2]
    }
}

impl Program for VarWorker {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            Phase::Init => {
                let master = self.mpi.size() - 1;
                let tok = self.mpi.recv(api, self.rank, Some(master), Some(0));
                self.phase = Phase::Compute;
                Action::Block(tok)
            }
            Phase::Compute => {
                self.phase = Phase::Barrier;
                Action::Compute(self.current_load())
            }
            Phase::Barrier => {
                self.done_iters += 1;
                match poll_crash(&self.mpi, api, self.rank, self.done_iters) {
                    Some(CrashAction::Abort(a)) => {
                        self.phase = Phase::Done;
                        return a;
                    }
                    Some(CrashAction::Restart(a)) => {
                        self.done_iters -= 1;
                        self.phase = Phase::Compute;
                        return a;
                    }
                    None => {}
                }
                let tok = self.mpi.barrier(api, self.rank);
                self.phase =
                    if self.done_iters >= self.iterations { Phase::Done } else { Phase::Compute };
                Action::Block(tok)
            }
            Phase::Done => Action::Exit,
        }
    }
}

/// Spawn MetBenchVar. Returns `(worker ids, master id)`.
pub fn spawn(
    kernel: &mut Kernel,
    cfg: &MetBenchVarConfig,
    setup: &SchedulerSetup,
) -> (Vec<TaskId>, TaskId) {
    let (workers, master, _mpi) = spawn_faulted(kernel, cfg, setup, None);
    (workers, master)
}

/// [`spawn`] plus fault injection; returns the MPI world handle as well.
pub fn spawn_faulted(
    kernel: &mut Kernel,
    cfg: &MetBenchVarConfig,
    setup: &SchedulerSetup,
    faults: Option<&MpiFaultConfig>,
) -> (Vec<TaskId>, TaskId, Mpi) {
    let n = cfg.base.workers();
    let mpi = Mpi::new(n + 1, MpiConfig::default());
    if let Some(f) = faults {
        mpi.install_faults(*f);
    }
    let max = cfg.base.loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let min = cfg.base.loads.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut programs: Vec<Box<dyn Program>> = Vec::with_capacity(n + 1);
    for (rank, &load) in cfg.base.loads.iter().enumerate() {
        let other = if (load - max).abs() < (load - min).abs() { min } else { max };
        programs.push(Box::new(VarWorker {
            mpi: mpi.clone(),
            rank,
            loads: [load, other],
            k: cfg.k,
            iterations: cfg.base.iterations,
            done_iters: 0,
            phase: Phase::Init,
        }));
    }
    programs.push(Box::new(Master::new(mpi.clone(), n, cfg.base.iterations, cfg.base.init_bytes)));
    let ids = spawn_ranks(kernel, "metbenchvar", programs, setup, cfg.base.perf);
    let master = *ids.last().expect("master spawned");
    (ids[..n].to_vec(), master, mpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpcsched::HeuristicKind;
    use schedsim::KernelBuilder;
    use power5::HwPriority;
    use simcore::SimDuration;

    fn short_cfg() -> MetBenchVarConfig {
        MetBenchVarConfig {
            base: MetBenchConfig {
                loads: vec![0.02, 0.08, 0.02, 0.08],
                iterations: 12,
                ..Default::default()
            },
            k: 4,
        }
    }

    #[test]
    fn load_flips_every_k_iterations() {
        let mpi = Mpi::new(2, MpiConfig::default());
        let mut w = VarWorker {
            mpi,
            rank: 0,
            loads: [1.0, 4.0],
            k: 3,
            iterations: 12,
            done_iters: 0,
            phase: Phase::Compute,
        };
        let mut seq = Vec::new();
        for i in 0..12 {
            w.done_iters = i;
            seq.push(w.current_load());
        }
        assert_eq!(seq[..3], [1.0, 1.0, 1.0]);
        assert_eq!(seq[3..6], [4.0, 4.0, 4.0]);
        assert_eq!(seq[6..9], [1.0, 1.0, 1.0]);
        assert_eq!(seq[9..], [4.0, 4.0, 4.0]);
    }

    #[test]
    fn adaptive_rebalances_after_swap() {
        let mut k = KernelBuilder::new().heuristic(HeuristicKind::Adaptive).build();
        let cfg = short_cfg();
        let (workers, master) = spawn(&mut k, &cfg, &SchedulerSetup::Hpc);
        let mut all = workers.clone();
        all.push(master);
        k.run_until_exited(&all, SimDuration::from_secs(120)).expect("finishes");
        // After the final period, the *initially small* workers carry the
        // large load (12 iters, k=4 → periods small,large,small? no:
        // periods: [0..4) initial, [4..8) swapped, [8..12) initial again).
        // The last period has the initial assignment, so the initially
        // large workers should have ended high again.
        assert_eq!(k.task(workers[1]).hw_prio, HwPriority::HIGH);
    }

    #[test]
    fn dynamic_beats_static_on_varying_behaviour() {
        let cfg = short_cfg();
        let static_prios = cfg.base.static_priorities();
        let run = |setup: SchedulerSetup, hpc: bool| {
            let mut k = if hpc {
                KernelBuilder::new().heuristic(HeuristicKind::Adaptive).build()
            } else {
                KernelBuilder::new().without_hpc_class().build()
            };
            let (workers, master) = spawn(&mut k, &cfg, &setup);
            let mut all = workers;
            all.push(master);
            k.run_until_exited(&all, SimDuration::from_secs(300)).expect("finishes").as_secs_f64()
        };
        let baseline = run(SchedulerSetup::Baseline, false);
        let stat = run(SchedulerSetup::Static(static_prios), false);
        let dynamic = run(SchedulerSetup::Hpc, true);
        assert!(dynamic < baseline, "dynamic {dynamic} vs baseline {baseline}");
        // The static assignment is wrong for a third of the run; dynamic
        // must not be (meaningfully) worse than static.
        assert!(dynamic <= stat * 1.02, "dynamic {dynamic} vs static {stat}");
    }
}
