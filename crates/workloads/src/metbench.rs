//! MetBench — the Minimum Execution Time Benchmark (paper §V-A).
//!
//! A master process and N workers. Each iteration every worker executes its
//! assigned load and enters an `mpi_barrier`; the master keeps strict
//! synchronization by joining the same barrier and immediately starting the
//! next iteration. Data is exchanged only during initialization.
//!
//! Imbalance injection: SMT-sibling workers get different load sizes. With
//! the default 4:1 split the two small-load workers idle ~75% of the time
//! under the baseline scheduler — the profile of paper Table III.

use crate::spawn::{poll_crash, spawn_ranks, CrashAction, SchedulerSetup};
use mpisim::{Mpi, MpiConfig, MpiFaultConfig};
use schedsim::{Action, Kernel, KernelApi, Program, TaskId};

/// MetBench configuration.
#[derive(Clone, Debug)]
pub struct MetBenchConfig {
    /// Work units per iteration for each worker, in order P1..Pn.
    pub loads: Vec<f64>,
    pub iterations: u32,
    /// Bytes exchanged during the initialization phase.
    pub init_bytes: u64,
    /// SMT performance traits of the workers' code (compute-bound integer
    /// loops: fully decode-sensitive both ways).
    pub perf: power5::TaskPerfTraits,
}

impl Default for MetBenchConfig {
    fn default() -> Self {
        // Calibration (EXPERIMENTS.md): large load 2.18 work units,
        // small = large/4, 30 iterations. Baseline: iteration time
        // 2.18/0.8 = 2.725 s → total ≈ 81.8 s with 25%/100% utilizations,
        // matching paper Table III's baseline row.
        MetBenchConfig {
            loads: vec![0.545, 2.18, 0.545, 2.18],
            iterations: 30,
            init_bytes: 1 << 20,
            perf: power5::TaskPerfTraits::uniform(1.0),
        }
    }
}

impl MetBenchConfig {
    /// Number of workers.
    pub fn workers(&self) -> usize {
        self.loads.len()
    }

    /// The hand-tuned static prioritization for this load split: raise the
    /// large-load workers to High, as the paper's earlier static work did.
    pub fn static_priorities(&self) -> Vec<power5::HwPriority> {
        let max = self.loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.loads
            .iter()
            .map(|&l| {
                if l >= max * 0.99 {
                    power5::HwPriority::HIGH
                } else {
                    power5::HwPriority::MEDIUM
                }
            })
            .collect()
    }
}

enum WorkerPhase {
    Init,
    Compute,
    Barrier,
    Done,
}

/// One MetBench worker: init exchange, then `iterations` × (load; barrier).
pub struct Worker {
    mpi: Mpi,
    rank: usize,
    load: f64,
    iterations: u32,
    done_iters: u32,
    init_bytes: u64,
    phase: WorkerPhase,
}

impl Program for Worker {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            WorkerPhase::Init => {
                // Receive the input data from the master (rank = size-1).
                let master = self.mpi.size() - 1;
                let tok = self.mpi.recv(api, self.rank, Some(master), Some(0));
                self.phase = WorkerPhase::Compute;
                let _ = self.init_bytes;
                Action::Block(tok)
            }
            WorkerPhase::Compute => {
                self.phase = WorkerPhase::Barrier;
                Action::Compute(self.load)
            }
            WorkerPhase::Barrier => {
                self.done_iters += 1;
                match poll_crash(&self.mpi, api, self.rank, self.done_iters) {
                    Some(CrashAction::Abort(a)) => {
                        self.phase = WorkerPhase::Done;
                        return a;
                    }
                    Some(CrashAction::Restart(a)) => {
                        // Lose the interrupted iteration: re-enter at the
                        // last completed barrier (the checkpoint).
                        self.done_iters -= 1;
                        self.phase = WorkerPhase::Compute;
                        return a;
                    }
                    None => {}
                }
                let tok = self.mpi.barrier(api, self.rank);
                self.phase = if self.done_iters >= self.iterations {
                    WorkerPhase::Done
                } else {
                    WorkerPhase::Compute
                };
                Action::Block(tok)
            }
            WorkerPhase::Done => Action::Exit,
        }
    }
}

enum MasterPhase {
    Distribute(usize),
    Barrier,
    Done,
}

/// The MetBench master: distributes input, then joins every barrier.
pub struct Master {
    mpi: Mpi,
    rank: usize,
    iterations: u32,
    done_iters: u32,
    init_bytes: u64,
    phase: MasterPhase,
}

impl Master {
    /// A master for `rank = number of workers`, distributing `init_bytes`
    /// to each worker and then joining `iterations` barriers.
    pub fn new(mpi: Mpi, rank: usize, iterations: u32, init_bytes: u64) -> Self {
        Master {
            mpi,
            rank,
            iterations,
            done_iters: 0,
            init_bytes,
            phase: MasterPhase::Distribute(0),
        }
    }
}

impl Program for Master {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            MasterPhase::Distribute(next) => {
                if next < self.rank {
                    self.mpi.send(api, self.rank, next, 0, self.init_bytes);
                    self.phase = MasterPhase::Distribute(next + 1);
                    // Preparing each worker's input costs a little CPU.
                    Action::Compute(1e-4)
                } else {
                    self.phase = MasterPhase::Barrier;
                    let tok = self.mpi.barrier(api, self.rank);
                    Action::Block(tok)
                }
            }
            MasterPhase::Barrier => {
                self.done_iters += 1;
                if self.done_iters >= self.iterations {
                    self.phase = MasterPhase::Done;
                    return Action::Exit;
                }
                let tok = self.mpi.barrier(api, self.rank);
                Action::Block(tok)
            }
            MasterPhase::Done => Action::Exit,
        }
    }
}

/// Build the program set (workers first — rank r on CPU r — master last)
/// and spawn it. Returns `(worker task ids, master task id)`.
pub fn spawn(
    kernel: &mut Kernel,
    cfg: &MetBenchConfig,
    setup: &SchedulerSetup,
) -> (Vec<TaskId>, TaskId) {
    let (workers, master, _mpi) = spawn_faulted(kernel, cfg, setup, None);
    (workers, master)
}

/// [`spawn`] plus fault injection: installs `faults` into the MPI world
/// before any rank runs and returns the world handle so the runner can read
/// fault accounting afterwards.
pub fn spawn_faulted(
    kernel: &mut Kernel,
    cfg: &MetBenchConfig,
    setup: &SchedulerSetup,
    faults: Option<&MpiFaultConfig>,
) -> (Vec<TaskId>, TaskId, Mpi) {
    let n = cfg.workers();
    let mpi = Mpi::new(n + 1, MpiConfig::default());
    if let Some(f) = faults {
        mpi.install_faults(*f);
    }
    let mut programs: Vec<Box<dyn Program>> = Vec::with_capacity(n + 1);
    for (rank, &load) in cfg.loads.iter().enumerate() {
        programs.push(Box::new(Worker {
            mpi: mpi.clone(),
            rank,
            load,
            iterations: cfg.iterations,
            done_iters: 0,
            init_bytes: cfg.init_bytes,
            phase: WorkerPhase::Init,
        }));
    }
    programs.push(Box::new(Master {
        mpi: mpi.clone(),
        rank: n,
        iterations: cfg.iterations,
        done_iters: 0,
        init_bytes: cfg.init_bytes,
        phase: MasterPhase::Distribute(0),
    }));
    let ids = spawn_ranks(kernel, "metbench", programs, setup, cfg.perf);
    let master = *ids.last().expect("master spawned");
    (ids[..n].to_vec(), master, mpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::KernelBuilder;
    use power5::HwPriority;
    use simcore::SimDuration;

    fn short_cfg() -> MetBenchConfig {
        MetBenchConfig {
            loads: vec![0.02, 0.08, 0.02, 0.08],
            iterations: 4,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_shows_the_imbalance() {
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let (workers, master) = spawn(&mut k, &short_cfg(), &SchedulerSetup::Baseline);
        let mut all = workers.clone();
        all.push(master);
        let end = k.run_until_exited(&all, SimDuration::from_secs(60)).expect("finishes");
        // Small-load workers idle most of the time.
        let u: Vec<f64> = workers.iter().map(|&w| k.task(w).cpu_utilization(end)).collect();
        assert!(u[0] < 0.45, "small worker util {}", u[0]);
        assert!(u[1] > 0.9, "large worker util {}", u[1]);
        assert!((u[0] - u[2]).abs() < 0.1, "symmetric pairs");
    }

    #[test]
    fn hpc_scheduler_balances_it() {
        let mut k = KernelBuilder::new().build();
        let cfg = short_cfg();
        let (workers, master) = spawn(&mut k, &cfg, &SchedulerSetup::Hpc);
        let mut all = workers.clone();
        all.push(master);
        k.run_until_exited(&all, SimDuration::from_secs(60)).expect("finishes");
        // The large-load workers' priority rose.
        assert_eq!(k.task(workers[1]).hw_prio, HwPriority::HIGH);
        assert_eq!(k.task(workers[3]).hw_prio, HwPriority::HIGH);
        assert_eq!(k.task(workers[0]).hw_prio, HwPriority::MEDIUM);
    }

    #[test]
    fn hpc_is_faster_than_baseline() {
        let run = |hpc: bool| {
            let cfg = short_cfg();
            let (mut k, setup) = if hpc {
                (KernelBuilder::new().build(), SchedulerSetup::Hpc)
            } else {
                (KernelBuilder::new().without_hpc_class().build(), SchedulerSetup::Baseline)
            };
            let (workers, master) = spawn(&mut k, &cfg, &setup);
            let mut all = workers;
            all.push(master);
            k.run_until_exited(&all, SimDuration::from_secs(60)).expect("finishes").as_secs_f64()
        };
        let base = run(false);
        let hpc = run(true);
        assert!(hpc < base * 0.95, "hpc {hpc} vs baseline {base}");
    }

    #[test]
    fn static_priorities_pick_large_loads() {
        let cfg = MetBenchConfig::default();
        let prios = cfg.static_priorities();
        assert_eq!(
            prios,
            vec![
                HwPriority::MEDIUM,
                HwPriority::HIGH,
                HwPriority::MEDIUM,
                HwPriority::HIGH
            ]
        );
    }

    #[test]
    fn iteration_counts_recorded() {
        let mut k = KernelBuilder::new().build();
        let cfg = short_cfg();
        let (workers, master) = spawn(&mut k, &cfg, &SchedulerSetup::Hpc);
        let mut all = workers.clone();
        all.push(master);
        k.run_until_exited(&all, SimDuration::from_secs(60)).expect("finishes");
        // Each worker slept at least once per iteration (init + barriers).
        for &w in &workers {
            assert!(k.task(w).iter.iterations >= cfg.iterations as u64);
        }
    }
}
