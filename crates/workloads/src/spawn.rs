//! Spawning MPI ranks under the paper's three scheduling setups.

use mpisim::{Mpi, RankFailurePolicy};
use power5::HwPriority;
use schedsim::{Action, Kernel, KernelApi, Program, SchedPolicy, SpawnOptions, TaskId};

/// How the application's processes are scheduled — the paper's experiment
/// axes (§V).
#[derive(Clone, Debug, PartialEq)]
pub enum SchedulerSetup {
    /// Standard kernel, `SCHED_NORMAL`, default hardware priorities.
    Baseline,
    /// Standard kernel, `SCHED_NORMAL`, hand-tuned fixed hardware
    /// priorities per rank (the static solution of the authors' IPDPS'08
    /// work).
    Static(Vec<HwPriority>),
    /// The paper's contribution: processes in the `SCHED_HPC` class; the
    /// kernel must have the HPC class installed (heuristic configured
    /// there).
    Hpc,
}

impl SchedulerSetup {
    fn policy(&self) -> SchedPolicy {
        match self {
            SchedulerSetup::Baseline | SchedulerSetup::Static(_) => SchedPolicy::Normal,
            SchedulerSetup::Hpc => SchedPolicy::Hpc,
        }
    }

    fn prio_for(&self, rank: usize) -> Option<HwPriority> {
        match self {
            SchedulerSetup::Static(prios) => prios.get(rank).copied(),
            _ => None,
        }
    }
}

/// Spawn one task per program, in order (rank r lands on CPU r for the
/// canonical one-process-per-CPU deployment), with the given SMT
/// performance traits.
pub fn spawn_ranks(
    kernel: &mut Kernel,
    name: &str,
    programs: Vec<Box<dyn Program>>,
    setup: &SchedulerSetup,
    perf: power5::TaskPerfTraits,
) -> Vec<TaskId> {
    let policy = setup.policy();
    programs
        .into_iter()
        .enumerate()
        .map(|(rank, prog)| {
            kernel.spawn(
                format!("{name}-P{}", rank + 1),
                policy,
                prog,
                SpawnOptions {
                    perf: Some(perf),
                    hw_prio: setup.prio_for(rank),
                    ..Default::default()
                },
            )
        })
        .collect()
}

/// What a crash directive told the polling rank to do.
pub(crate) enum CrashAction {
    /// Fail-stop fired: the world was aborted; return the wrapped
    /// `Action::Exit` (after moving to the program's terminal phase).
    Abort(Action),
    /// Checkpoint/restart fired: return the wrapped `Action::Block` on the
    /// recovery delay — the caller must first rewind its phase so the
    /// interrupted iteration re-executes on wake.
    Restart(Action),
}

/// Poll the fault layer's crash directive at an iteration boundary — the
/// last completed barrier/exchange, the only point a checkpoint exists.
pub(crate) fn poll_crash(
    mpi: &Mpi,
    api: &mut KernelApi<'_>,
    rank: usize,
    completed_iters: u32,
) -> Option<CrashAction> {
    match mpi.take_crash(rank, completed_iters)? {
        RankFailurePolicy::FailStop => {
            mpi.abort(api, rank, completed_iters);
            Some(CrashAction::Abort(Action::Exit))
        }
        RankFailurePolicy::RestartFromIteration { delay } => {
            let tok = api.new_token();
            api.signal_after(delay, tok);
            Some(CrashAction::Restart(Action::Block(tok)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn setup_policies() {
        assert_eq!(SchedulerSetup::Baseline.policy(), SchedPolicy::Normal);
        assert_eq!(SchedulerSetup::Hpc.policy(), SchedPolicy::Hpc);
        let s = SchedulerSetup::Static(vec![HwPriority::MEDIUM, HwPriority::HIGH]);
        assert_eq!(s.policy(), SchedPolicy::Normal);
        assert_eq!(s.prio_for(1), Some(HwPriority::HIGH));
        assert_eq!(s.prio_for(5), None);
        assert_eq!(SchedulerSetup::Baseline.prio_for(0), None);
    }
}
