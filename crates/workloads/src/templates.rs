//! Per-rank load *shapes* of the benchmark workloads, normalized to peak
//! 1.0 — for callers (the batch layer) that need realistic heavy/light job
//! mixes at arbitrary scale without instantiating the full MPI programs.
//!
//! A shape is a load vector divided by its maximum: multiply by a peak
//! per-iteration work figure to get a [`cluster`]-style `rank_loads`
//! vector with the same imbalance profile as the calibrated workload.

use crate::btmz::BtMzConfig;
use crate::metbench::MetBenchConfig;
use crate::metbenchvar::MetBenchVarConfig;
use crate::siesta::SiestaConfig;

fn normalize(loads: &[f64]) -> Vec<f64> {
    let max = loads.iter().cloned().fold(0.0_f64, f64::max);
    if max <= 0.0 {
        return loads.to_vec();
    }
    loads.iter().map(|&l| l / max).collect()
}

/// MetBench's 1:4 SMT-sibling split (paper Table III profile).
pub fn metbench_shape() -> Vec<f64> {
    normalize(&MetBenchConfig::default().loads)
}

/// MetBenchVar's initial assignment (the variable-load variant).
pub fn metbenchvar_shape() -> Vec<f64> {
    normalize(&MetBenchVarConfig::default().base.loads)
}

/// BT-MZ's graded zone sizes.
pub fn btmz_shape() -> Vec<f64> {
    normalize(&BtMzConfig::default().zone_work)
}

/// SIESTA's hub-and-spokes profile, stretched to `ranks` ranks: rank 0 is
/// the hub, spokes repeat the calibrated graded tail.
pub fn siesta_shape(ranks: usize) -> Vec<f64> {
    let base = normalize(&SiestaConfig::default().rank_work);
    (0..ranks)
        .map(|r| if r == 0 { base[0] } else { base[1 + (r - 1) % (base.len() - 1)] })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_peak_at_one() {
        for shape in [metbench_shape(), metbenchvar_shape(), btmz_shape(), siesta_shape(8)] {
            let max = shape.iter().cloned().fold(0.0_f64, f64::max);
            assert!((max - 1.0).abs() < 1e-12, "{shape:?}");
            assert!(shape.iter().all(|&l| l > 0.0));
        }
    }

    #[test]
    fn metbench_shape_keeps_sibling_split() {
        assert_eq!(metbench_shape(), vec![0.25, 1.0, 0.25, 1.0]);
    }

    #[test]
    fn siesta_shape_stretches_hub_and_spokes() {
        let s = siesta_shape(8);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], 1.0, "hub is the heaviest");
        assert!(s[1..].iter().all(|&l| l < 1.0));
    }
}
