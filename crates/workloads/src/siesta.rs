//! SIESTA — an ab-initio materials-simulation application (paper §V-D).
//!
//! SIESTA's scheduler-visible behaviour, per the paper: execution phases
//! are *very small*, tasks exchange *many messages*, iterations are **not**
//! representative of each other (per-iteration variability defeats the
//! iteration-i-predicts-i+1 assumption), and the application is highly
//! sensitive to scheduler latency. The imbalance comes from both the
//! algorithm and the input set (benzene), producing the lopsided baseline
//! profile of paper Table VI (98.9 / 52.8 / 28.5 / 20.0% utilization).
//!
//! The synthetic equivalent: a hub-and-spokes self-consistency loop. Rank 0
//! (the "diagonalization owner") computes most of each round and exchanges
//! a request/reply message pair with every other rank, many rounds per
//! iteration, with strong random per-round jitter. This preserves exactly
//! the properties the paper's analysis rests on.

use crate::spawn::{poll_crash, spawn_ranks, CrashAction, SchedulerSetup};
use mpisim::{Mpi, MpiConfig, MpiFaultConfig};
use schedsim::{Action, Kernel, KernelApi, Program, TaskId};
use simcore::SimRng;

/// SIESTA configuration.
#[derive(Clone, Debug)]
pub struct SiestaConfig {
    /// Mean compute work per *iteration* for each rank; rank 0 is the hub.
    pub rank_work: Vec<f64>,
    /// Self-consistency iterations.
    pub iterations: u32,
    /// Fine-grained compute/message rounds per iteration.
    pub rounds: u32,
    /// Relative per-round jitter (standard deviation of the work factor).
    pub jitter: f64,
    /// Request/reply payload bytes.
    pub msg_bytes: u64,
    /// SMT traits: SIESTA is a memory-intensive DFT code — modest gain
    /// from extra decode slots, modest loss when starved (EXPERIMENTS.md).
    pub perf: power5::TaskPerfTraits,
    pub seed: u64,
}

impl Default for SiestaConfig {
    fn default() -> Self {
        // Calibration (EXPERIMENTS.md): hub 2.35 units/iteration over 25
        // iterations plus per-round messaging ≈ 81.5 s baseline; spoke work
        // scaled to the paper's baseline utilization profile.
        SiestaConfig {
            rank_work: vec![2.35, 1.38, 0.72, 0.51],
            iterations: 25,
            rounds: 50,
            jitter: 0.6,
            msg_bytes: 8 * 1024,
            perf: power5::TaskPerfTraits::new(0.45, 0.10),
            seed: 0x51E57A,
        }
    }
}

impl SiestaConfig {
    pub fn ranks(&self) -> usize {
        self.rank_work.len()
    }
}

enum HubPhase {
    Compute,
    Gather,
    Reply,
    Done,
}

/// Rank 0: compute, collect one message from every spoke, reply to all.
struct Hub {
    mpi: Mpi,
    size: usize,
    work_per_round: f64,
    rounds_total: u64,
    done_rounds: u64,
    jitter: f64,
    msg_bytes: u64,
    rng: SimRng,
    phase: HubPhase,
}

impl Program for Hub {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            HubPhase::Compute => {
                match poll_crash(&self.mpi, api, 0, self.done_rounds.min(u32::MAX as u64) as u32) {
                    Some(CrashAction::Abort(a)) => {
                        self.phase = HubPhase::Done;
                        return a;
                    }
                    Some(CrashAction::Restart(a)) => return a,
                    None => {}
                }
                self.phase = HubPhase::Gather;
                let f = self.rng.normal_clamped(1.0, self.jitter, 0.2, 3.0);
                Action::Compute(self.work_per_round * f)
            }
            HubPhase::Gather => {
                let tag = (self.done_rounds % i32::MAX as u64) as i32;
                let reqs: Vec<_> = (1..self.size)
                    .map(|src| self.mpi.irecv(api, 0, Some(src), Some(tag)))
                    .collect();
                let tok = self.mpi.waitall(api, &reqs);
                self.phase = HubPhase::Reply;
                Action::Block(tok)
            }
            HubPhase::Reply => {
                let tag = (self.done_rounds % i32::MAX as u64) as i32;
                for dst in 1..self.size {
                    self.mpi.send(api, 0, dst, tag, self.msg_bytes);
                }
                self.done_rounds += 1;
                self.phase = if self.done_rounds >= self.rounds_total {
                    HubPhase::Done
                } else {
                    HubPhase::Compute
                };
                // Assembling the replies costs a little CPU.
                Action::Compute(self.work_per_round * 0.02)
            }
            HubPhase::Done => Action::Exit,
        }
    }
}

enum SpokePhase {
    Compute,
    Exchange,
    Done,
}

/// Ranks 1..n: compute, send the request, block on the reply.
struct Spoke {
    mpi: Mpi,
    rank: usize,
    work_per_round: f64,
    rounds_total: u64,
    done_rounds: u64,
    jitter: f64,
    msg_bytes: u64,
    rng: SimRng,
    phase: SpokePhase,
}

impl Program for Spoke {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            SpokePhase::Compute => {
                match poll_crash(
                    &self.mpi,
                    api,
                    self.rank,
                    self.done_rounds.min(u32::MAX as u64) as u32,
                ) {
                    Some(CrashAction::Abort(a)) => {
                        self.phase = SpokePhase::Done;
                        return a;
                    }
                    Some(CrashAction::Restart(a)) => return a,
                    None => {}
                }
                self.phase = SpokePhase::Exchange;
                let f = self.rng.normal_clamped(1.0, self.jitter, 0.2, 3.0);
                Action::Compute(self.work_per_round * f)
            }
            SpokePhase::Exchange => {
                let tag = (self.done_rounds % i32::MAX as u64) as i32;
                self.mpi.send(api, self.rank, 0, tag, self.msg_bytes);
                let tok = self.mpi.recv(api, self.rank, Some(0), Some(tag));
                self.done_rounds += 1;
                self.phase = if self.done_rounds >= self.rounds_total {
                    SpokePhase::Done
                } else {
                    SpokePhase::Compute
                };
                Action::Block(tok)
            }
            SpokePhase::Done => Action::Exit,
        }
    }
}

/// Spawn SIESTA; rank r lands on CPU r.
pub fn spawn(kernel: &mut Kernel, cfg: &SiestaConfig, setup: &SchedulerSetup) -> Vec<TaskId> {
    spawn_faulted(kernel, cfg, setup, None).0
}

/// [`spawn`] plus fault injection; returns the MPI world handle as well.
pub fn spawn_faulted(
    kernel: &mut Kernel,
    cfg: &SiestaConfig,
    setup: &SchedulerSetup,
    faults: Option<&MpiFaultConfig>,
) -> (Vec<TaskId>, Mpi) {
    let n = cfg.ranks();
    assert!(n >= 2, "siesta needs a hub and at least one spoke");
    let mpi = Mpi::new(n, MpiConfig::default());
    if let Some(f) = faults {
        mpi.install_faults(*f);
    }
    let rounds_total = cfg.iterations as u64 * cfg.rounds as u64;
    let mut seed_rng = SimRng::seed_from_u64(cfg.seed);
    let mut programs: Vec<Box<dyn Program>> = Vec::with_capacity(n);
    programs.push(Box::new(Hub {
        mpi: mpi.clone(),
        size: n,
        work_per_round: cfg.rank_work[0] / cfg.rounds as f64,
        rounds_total,
        done_rounds: 0,
        jitter: cfg.jitter,
        msg_bytes: cfg.msg_bytes,
        rng: seed_rng.fork(0),
        phase: HubPhase::Compute,
    }));
    for rank in 1..n {
        programs.push(Box::new(Spoke {
            mpi: mpi.clone(),
            rank,
            work_per_round: cfg.rank_work[rank] / cfg.rounds as f64,
            rounds_total,
            done_rounds: 0,
            jitter: cfg.jitter,
            msg_bytes: cfg.msg_bytes,
            rng: seed_rng.fork(rank as u64),
            phase: SpokePhase::Compute,
        }));
    }
    (spawn_ranks(kernel, "siesta", programs, setup, cfg.perf), mpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::KernelBuilder;
    use schedsim::NoiseConfig;
    use simcore::SimDuration;

    fn short_cfg() -> SiestaConfig {
        SiestaConfig {
            rank_work: vec![0.06, 0.028, 0.017, 0.012],
            iterations: 6,
            rounds: 10,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_profile_is_lopsided() {
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let ranks = spawn(&mut k, &short_cfg(), &SchedulerSetup::Baseline);
        let end = k.run_until_exited(&ranks, SimDuration::from_secs(60)).expect("finishes");
        let u: Vec<f64> = ranks.iter().map(|&r| k.task(r).cpu_utilization(end)).collect();
        assert!(u[0] > 0.85, "hub nearly always busy: {u:?}");
        assert!(u[1] > u[2] && u[2] > u[3], "graded spokes: {u:?}");
    }

    #[test]
    fn iterations_are_noisy() {
        // The per-iteration utilization of a spoke varies run to run — the
        // property that defeats iteration-based prediction.
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let cfg = short_cfg();
        let ranks = spawn(&mut k, &cfg, &SchedulerSetup::Baseline);
        k.run_until_exited(&ranks, SimDuration::from_secs(60)).expect("finishes");
        // Spokes block once per round: plenty of iterations recorded.
        let iters = k.task(ranks[1]).iter.iterations;
        assert!(iters >= (cfg.iterations * cfg.rounds) as u64 / 2, "iters {iters}");
    }

    #[test]
    fn hpc_with_noise_still_finishes_and_does_not_regress() {
        let cfg = short_cfg();
        let run = |hpc: bool| {
            let builder = KernelBuilder::new().noise(NoiseConfig::light()).seed(7);
            let (mut k, setup) = if hpc {
                (builder.build(), SchedulerSetup::Hpc)
            } else {
                (builder.without_hpc_class().build(), SchedulerSetup::Baseline)
            };
            let ranks = spawn(&mut k, &cfg, &setup);
            k.run_until_exited(&ranks, SimDuration::from_secs(120)).expect("finishes").as_secs_f64()
        };
        let base = run(false);
        let hpc = run(true);
        assert!(hpc <= base * 1.01, "hpc {hpc} vs baseline {base}");
    }

    #[test]
    #[should_panic(expected = "hub and at least one spoke")]
    fn rejects_single_rank() {
        let mut k = KernelBuilder::new().build();
        let cfg = SiestaConfig { rank_work: vec![1.0], ..Default::default() };
        let _ = spawn(&mut k, &cfg, &SchedulerSetup::Baseline);
    }
}
