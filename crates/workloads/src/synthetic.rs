//! Generic synthetic SPMD building blocks.
//!
//! The paper's benchmarks share one skeleton: compute a load, synchronize,
//! repeat. [`BarrierGang`] is that skeleton as a reusable program — the
//! quickest way to put a custom imbalance shape in front of the scheduler
//! (used by the cluster layer and the examples).

use crate::spawn::{poll_crash, spawn_ranks, CrashAction, SchedulerSetup};
use mpisim::{Mpi, MpiConfig, MpiFaultConfig};
use schedsim::{Action, Kernel, KernelApi, Program, TaskId};

/// One rank of a barrier-synchronized gang: `iterations` × (compute
/// `load`; barrier over all ranks).
pub struct BarrierGang {
    mpi: Mpi,
    rank: usize,
    load: f64,
    iterations: u32,
    done: u32,
    computing: bool,
}

impl BarrierGang {
    pub fn new(mpi: Mpi, rank: usize, load: f64, iterations: u32) -> Self {
        BarrierGang { mpi, rank, load, iterations, done: 0, computing: true }
    }
}

impl Program for BarrierGang {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() || self.done >= self.iterations {
            return Action::Exit;
        }
        if self.computing {
            self.computing = false;
            Action::Compute(self.load)
        } else {
            match poll_crash(&self.mpi, api, self.rank, self.done + 1) {
                Some(CrashAction::Abort(a)) => {
                    self.done = self.iterations;
                    return a;
                }
                Some(CrashAction::Restart(a)) => {
                    // Redo the interrupted compute after recovery.
                    self.computing = true;
                    return a;
                }
                None => {}
            }
            self.done += 1;
            self.computing = true;
            Action::Block(self.mpi.barrier(api, self.rank))
        }
    }
}

/// Spawn a barrier gang with one rank per load, under the given setup.
pub fn spawn_gang(
    kernel: &mut Kernel,
    name: &str,
    loads: &[f64],
    iterations: u32,
    setup: &SchedulerSetup,
) -> Vec<TaskId> {
    spawn_gang_faulted(kernel, name, loads, iterations, setup, None).0
}

/// [`spawn_gang`] plus fault injection; returns the MPI world handle too.
pub fn spawn_gang_faulted(
    kernel: &mut Kernel,
    name: &str,
    loads: &[f64],
    iterations: u32,
    setup: &SchedulerSetup,
    faults: Option<&MpiFaultConfig>,
) -> (Vec<TaskId>, Mpi) {
    assert!(!loads.is_empty(), "empty gang");
    let mpi = Mpi::new(loads.len(), MpiConfig::default());
    if let Some(f) = faults {
        mpi.install_faults(*f);
    }
    let programs: Vec<Box<dyn Program>> = loads
        .iter()
        .enumerate()
        .map(|(rank, &load)| {
            Box::new(BarrierGang::new(mpi.clone(), rank, load, iterations)) as Box<dyn Program>
        })
        .collect();
    (spawn_ranks(kernel, name, programs, setup, power5::TaskPerfTraits::default()), mpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::KernelBuilder;
    use simcore::SimDuration;

    #[test]
    fn gang_computes_exactly_iterations_times() {
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let ids = spawn_gang(&mut k, "g", &[0.05, 0.05, 0.05, 0.05], 4, &SchedulerSetup::Baseline);
        let end = k.run_until_exited(&ids, SimDuration::from_secs(10)).expect("finishes");
        // 4 iterations × 0.05/0.8 = 0.25 s, plus barrier costs.
        assert!((0.24..0.27).contains(&end.as_secs_f64()), "end {end}");
        for &t in &ids {
            let exec = k.task(t).exec_total.as_secs_f64();
            assert!((0.24..0.26).contains(&exec), "exec {exec}");
        }
    }

    #[test]
    fn imbalanced_gang_balances_under_hpc() {
        let loads = [0.02, 0.08, 0.02, 0.08];
        let mut kb = KernelBuilder::new().without_hpc_class().build();
        let base_ids = spawn_gang(&mut kb, "g", &loads, 6, &SchedulerSetup::Baseline);
        let base = kb.run_until_exited(&base_ids, SimDuration::from_secs(10)).unwrap();

        let mut kh = KernelBuilder::new().build();
        let hpc_ids = spawn_gang(&mut kh, "g", &loads, 6, &SchedulerSetup::Hpc);
        let hpc = kh.run_until_exited(&hpc_ids, SimDuration::from_secs(10)).unwrap();
        assert!(hpc < base, "{hpc} vs {base}");
    }

    #[test]
    #[should_panic(expected = "empty gang")]
    fn empty_gang_rejected() {
        let mut k = KernelBuilder::new().build();
        let _ = spawn_gang(&mut k, "g", &[], 1, &SchedulerSetup::Baseline);
    }
}
