//! BT-MZ — the NAS multi-zone Block Tri-diagonal benchmark (paper §V-C).
//!
//! Each MPI process owns a set of mesh zones of uneven sizes; every
//! iteration it computes over its zones, then exchanges boundary data with
//! its neighbours *asynchronously* (`mpi_isend`/`mpi_irecv`) and waits with
//! `mpi_waitall`. There is **no global barrier** — a process synchronizes
//! only with its neighbours (ring topology), which is exactly the coupling
//! the paper notes. The communication phase is ~0.1% of the execution time.
//!
//! Zone-size imbalance is what HPCSched corrects: the default configuration
//! reproduces paper Table V's baseline utilization profile
//! (17.6 / 29.9 / 66.1 / 99.9%).

use crate::spawn::{poll_crash, spawn_ranks, CrashAction, SchedulerSetup};
use mpisim::{Mpi, MpiConfig, MpiFaultConfig};
use schedsim::{Action, Kernel, KernelApi, Program, TaskId};

/// BT-MZ configuration.
#[derive(Clone, Debug)]
pub struct BtMzConfig {
    /// Per-rank compute work per iteration (zone-size proxy).
    pub zone_work: Vec<f64>,
    /// Iterations (paper: class A, 200 iterations).
    pub iterations: u32,
    /// Boundary-exchange message size in bytes.
    pub exchange_bytes: u64,
    /// SMT traits: BT-MZ is memory-bandwidth-bound stencil code — it
    /// converts extra decode slots into speed when favoured (its stalls
    /// overlap), but being decode-starved barely hurts it because cache
    /// misses dominate. Calibrated so the paper's Table V balance is
    /// reachable (see EXPERIMENTS.md).
    pub perf: power5::TaskPerfTraits,
}

impl Default for BtMzConfig {
    fn default() -> Self {
        // Calibration (EXPERIMENTS.md): the critical rank computes 0.380
        // units/iteration → 0.475 s at SMT speed 0.8 → ≈95 s over 200
        // iterations; the other ranks' work is scaled to the paper's
        // baseline utilizations.
        BtMzConfig {
            zone_work: vec![0.067, 0.113, 0.251, 0.380],
            iterations: 200,
            exchange_bytes: 64 * 1024,
            perf: power5::TaskPerfTraits::new(1.0, 0.10),
        }
    }
}

impl BtMzConfig {
    pub fn ranks(&self) -> usize {
        self.zone_work.len()
    }

    /// A hand-tuned static assignment for this zone split *on this
    /// platform*: the critical rank gets High priority. (The paper's own
    /// static run used {4,4,5,6}, hand-tuned for the real POWER5; static
    /// assignments are platform-specific by nature.)
    pub fn static_priorities(&self) -> Vec<power5::HwPriority> {
        let max = self.zone_work.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        self.zone_work
            .iter()
            .map(|&w| {
                if w >= max * 0.99 {
                    power5::HwPriority::HIGH
                } else {
                    power5::HwPriority::MEDIUM
                }
            })
            .collect()
    }
}

enum Phase {
    Compute,
    Exchange,
    Done,
}

/// One BT-MZ process: compute over zones, neighbour exchange, repeat.
pub struct ZoneRank {
    mpi: Mpi,
    rank: usize,
    size: usize,
    work: f64,
    iterations: u32,
    done_iters: u32,
    exchange_bytes: u64,
    phase: Phase,
}

impl Program for ZoneRank {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.mpi.aborted() {
            return Action::Exit;
        }
        match self.phase {
            Phase::Compute => {
                self.phase = Phase::Exchange;
                Action::Compute(self.work)
            }
            Phase::Exchange => {
                match poll_crash(&self.mpi, api, self.rank, self.done_iters) {
                    Some(CrashAction::Abort(a)) => {
                        self.phase = Phase::Done;
                        return a;
                    }
                    Some(CrashAction::Restart(a)) => {
                        // Redo the interrupted compute after recovery.
                        self.phase = Phase::Compute;
                        return a;
                    }
                    None => {}
                }
                let left = (self.rank + self.size - 1) % self.size;
                let right = (self.rank + 1) % self.size;
                let tag = self.done_iters as i32;
                // Asynchronous boundary exchange with both neighbours.
                let s1 = self.mpi.isend(api, self.rank, left, tag, self.exchange_bytes);
                let s2 = self.mpi.isend(api, self.rank, right, tag, self.exchange_bytes);
                let r1 = self.mpi.irecv(api, self.rank, Some(left), Some(tag));
                let r2 = self.mpi.irecv(api, self.rank, Some(right), Some(tag));
                let tok = self.mpi.waitall(api, &[s1, s2, r1, r2]);
                self.done_iters += 1;
                self.phase =
                    if self.done_iters >= self.iterations { Phase::Done } else { Phase::Compute };
                Action::Block(tok)
            }
            Phase::Done => Action::Exit,
        }
    }
}

/// Spawn BT-MZ; rank r lands on CPU r.
pub fn spawn(kernel: &mut Kernel, cfg: &BtMzConfig, setup: &SchedulerSetup) -> Vec<TaskId> {
    spawn_faulted(kernel, cfg, setup, None).0
}

/// [`spawn`] plus fault injection; returns the MPI world handle as well.
pub fn spawn_faulted(
    kernel: &mut Kernel,
    cfg: &BtMzConfig,
    setup: &SchedulerSetup,
    faults: Option<&MpiFaultConfig>,
) -> (Vec<TaskId>, Mpi) {
    let n = cfg.ranks();
    let mpi = Mpi::new(n, MpiConfig::default());
    if let Some(f) = faults {
        mpi.install_faults(*f);
    }
    let programs: Vec<Box<dyn Program>> = cfg
        .zone_work
        .iter()
        .enumerate()
        .map(|(rank, &work)| {
            Box::new(ZoneRank {
                mpi: mpi.clone(),
                rank,
                size: n,
                work,
                iterations: cfg.iterations,
                done_iters: 0,
                exchange_bytes: cfg.exchange_bytes,
                phase: Phase::Compute,
            }) as Box<dyn Program>
        })
        .collect();
    (spawn_ranks(kernel, "btmz", programs, setup, cfg.perf), mpi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::KernelBuilder;
    use power5::HwPriority;
    use simcore::SimDuration;

    fn short_cfg() -> BtMzConfig {
        BtMzConfig {
            zone_work: vec![0.007, 0.011, 0.025, 0.038],
            iterations: 20,
            ..Default::default()
        }
    }

    #[test]
    fn baseline_utilization_is_graded() {
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let ranks = spawn(&mut k, &short_cfg(), &SchedulerSetup::Baseline);
        let end = k.run_until_exited(&ranks, SimDuration::from_secs(60)).expect("finishes");
        let u: Vec<f64> = ranks.iter().map(|&r| k.task(r).cpu_utilization(end)).collect();
        assert!(u[0] < u[1] && u[1] < u[2] && u[2] < u[3], "graded utils {u:?}");
        assert!(u[3] > 0.9, "critical rank busy {}", u[3]);
    }

    #[test]
    fn no_global_barrier_lets_neighbours_run_ahead() {
        // With ring-only coupling the simulation must finish even though
        // ranks progress at different speeds.
        let mut k = KernelBuilder::new().without_hpc_class().build();
        let ranks = spawn(&mut k, &short_cfg(), &SchedulerSetup::Baseline);
        assert!(k.run_until_exited(&ranks, SimDuration::from_secs(60)).is_some());
    }

    #[test]
    fn hpc_raises_critical_rank_and_improves_time() {
        let cfg = short_cfg();
        let mut kb = KernelBuilder::new().without_hpc_class().build();
        let base_ranks = spawn(&mut kb, &cfg, &SchedulerSetup::Baseline);
        let base =
            kb.run_until_exited(&base_ranks, SimDuration::from_secs(60)).unwrap().as_secs_f64();

        let mut kh = KernelBuilder::new().build();
        let hpc_ranks = spawn(&mut kh, &cfg, &SchedulerSetup::Hpc);
        let hpc =
            kh.run_until_exited(&hpc_ranks, SimDuration::from_secs(60)).unwrap().as_secs_f64();
        assert_eq!(kh.task(hpc_ranks[3]).hw_prio, HwPriority::HIGH);
        assert!(hpc < base * 0.95, "hpc {hpc} vs base {base}");
    }

    #[test]
    fn static_priorities_target_critical_rank() {
        let cfg = BtMzConfig::default();
        assert_eq!(
            cfg.static_priorities(),
            vec![
                HwPriority::MEDIUM,
                HwPriority::MEDIUM,
                HwPriority::MEDIUM,
                HwPriority::HIGH
            ]
        );
    }
}
