//! The paper's four evaluation applications, rebuilt as simulated MPI
//! programs (paper §V):
//!
//! * [`metbench`] — the BSC *Minimum Execution Time Benchmark*: a master
//!   and N workers with per-worker loads and a strict global barrier per
//!   iteration. Imbalance is injected by giving SMT-sibling workers
//!   different load sizes.
//! * [`metbenchvar`] — MetBench with the load assignment reversed every
//!   `k` iterations (the dynamic-behaviour stressor of §V-B).
//! * [`btmz`] — a BT-MZ-alike: uneven zone sizes, per-iteration neighbour
//!   exchange with `isend`/`irecv`/`waitall` (no global barrier), 200
//!   iterations (§V-C).
//! * [`siesta`] — a SIESTA-alike: a hub-and-spokes self-consistency loop
//!   with many fine-grained compute/message rounds and strong per-iteration
//!   variability, so iteration *i* is not representative of *i+1* (§V-D).
//!
//! [`synthetic`] provides the reusable compute-barrier skeleton for custom
//! imbalance shapes.
//!
//! Each module exposes a config struct calibrated (see `EXPERIMENTS.md`)
//! so the *baseline* run reproduces the per-task utilization profile of the
//! paper's tables, and a `spawn` function that plants the ranks into a
//! [`schedsim::Kernel`] under a chosen scheduling setup.

pub mod btmz;
pub mod metbench;
pub mod metbenchvar;
pub mod siesta;
pub mod spawn;
pub mod synthetic;
pub mod templates;

pub use spawn::{spawn_ranks, SchedulerSetup};
