//! Deprecated location: the balancing heuristics moved to
//! [`schedsim::policies::heuristics`].

pub use schedsim::policies::heuristics::*;
