//! Deprecated location: the `SCHED_HPC` class now lives in
//! [`schedsim::classes::balanced`] as a thin driver over a pluggable
//! [`schedsim::Balancer`], with the paper's Table-I decision logic in
//! [`schedsim::policies::table1`].
//!
//! This module re-exports the moved types so existing imports keep
//! compiling for one release; new code should import from `schedsim`.

pub use schedsim::classes::{BalancedClass, HpcPolicyKind};
pub use schedsim::policies::SharedTunables;

/// The old name of the `SCHED_HPC` class.
#[deprecated(note = "use `schedsim::BalancedClass` driven by a `schedsim::policies` balancer")]
pub type HpcClass = BalancedClass;
