//! The `SCHED_HPC` scheduling class (paper §IV).
//!
//! Inserted between the real-time and CFS classes, so HPC processes always
//! run in preference to normal tasks (and, crucially, wake with near-zero
//! scheduler latency) while real-time semantics are preserved.
//!
//! The run queue is deliberately simple: with the usual one-MPI-process-per-
//! CPU deployment there is no point in a red-black tree, so the class uses
//! per-CPU round-robin lists with either FIFO or RR policy (paper §IV-A;
//! the paper reports no measurable difference between the two and uses RR).

use crate::balance::{plan_pull, BalanceView};
use crate::detector::LoadImbalanceDetector;
use crate::heuristics::Heuristic;
use crate::mechanism::PrioMechanism;
use crate::tunables::HpcTunables;
use power5::{CpuId, HwPriority};
use schedsim::class::{ClassCtx, EnqueueKind, Migration, SchedClass};
use schedsim::{SchedPolicy, TaskId};
use simcore::SimDuration;
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Intra-class scheduling policy for HPC tasks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HpcPolicyKind {
    /// Selected task runs until it blocks or yields.
    Fifo,
    /// Predefined time slice, rotation on expiry.
    Rr,
}

/// Shared, runtime-adjustable tunables handle (the simulated sysfs mount).
pub type SharedTunables = Arc<Mutex<HpcTunables>>;

/// Telemetry handles for the class's balancing decisions. Registered once
/// via [`HpcClass::attach_telemetry`]; recording is a relaxed atomic add.
struct HpcTelemetry {
    /// Priority proposals the mechanism applied (the task's register moved).
    accepted: telemetry::Counter,
    /// Proposals the mechanism refused or clamped into a no-op.
    rejected: telemetry::Counter,
    /// Detector verdicts per completed iteration.
    balanced: telemetry::Counter,
    imbalanced: telemetry::Counter,
    /// Unusable iteration samples (zero wall / non-finite utilization) that
    /// triggered the uniform-priority fallback.
    degraded: telemetry::Counter,
}

/// The HPC scheduling class.
pub struct HpcClass {
    policy: HpcPolicyKind,
    slice: SimDuration,
    rqs: Vec<VecDeque<TaskId>>,
    detector: LoadImbalanceDetector,
    heuristic: Box<dyn Heuristic>,
    mechanism: Box<dyn PrioMechanism>,
    tunables: SharedTunables,
    /// Priority changes applied so far (diagnostics / Figure annotations).
    prio_changes: u64,
    /// When false, the detector still tracks iterations but priorities are
    /// never changed (isolates the pure class-placement benefit).
    dynamic_prio: bool,
    /// Whether the application was balanced at the last check; a
    /// balanced→imbalanced transition is a behaviour change and resets the
    /// detector's history.
    was_balanced: bool,
    telemetry: Option<HpcTelemetry>,
}

impl HpcClass {
    pub fn new(
        policy: HpcPolicyKind,
        slice: SimDuration,
        heuristic: Box<dyn Heuristic>,
        mechanism: Box<dyn PrioMechanism>,
        tunables: SharedTunables,
    ) -> Self {
        HpcClass {
            policy,
            slice,
            rqs: Vec::new(),
            detector: LoadImbalanceDetector::new(),
            heuristic,
            mechanism,
            tunables,
            prio_changes: 0,
            dynamic_prio: true,
            was_balanced: false,
            telemetry: None,
        }
    }

    /// Register the class's decision counters in `registry`:
    /// `hpc.decisions.<heuristic>.accepted` / `.rejected` count priority
    /// proposals the mechanism applied vs refused, and
    /// `hpc.detector.balanced` / `.imbalanced` count detector verdicts.
    pub fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        let h = self.heuristic.name();
        self.telemetry = Some(HpcTelemetry {
            accepted: registry.counter(&format!("hpc.decisions.{h}.accepted")),
            rejected: registry.counter(&format!("hpc.decisions.{h}.rejected")),
            balanced: registry.counter("hpc.detector.balanced"),
            imbalanced: registry.counter("hpc.detector.imbalanced"),
            degraded: registry.counter("hpc.detector.degraded"),
        });
    }

    /// Disable dynamic prioritization (keep only the scheduling-policy
    /// benefit). Used by the SIESTA-style ablation.
    pub fn with_static_priorities(mut self) -> Self {
        self.dynamic_prio = false;
        self
    }

    pub fn detector(&self) -> &LoadImbalanceDetector {
        &self.detector
    }

    pub fn priority_changes(&self) -> u64 {
        self.prio_changes
    }

    /// HPC tasks per CPU: queued plus the running one, needed by the
    /// domain balancer.
    fn hpc_counts(&self, ctx: &ClassCtx<'_>) -> Vec<usize> {
        (0..self.rqs.len())
            .map(|cpu| {
                let running_hpc = ctx.running[cpu]
                    .map(|t| ctx.tasks[t.0].policy == SchedPolicy::Hpc)
                    .unwrap_or(false);
                self.rqs[cpu].len() + usize::from(running_hpc)
            })
            .collect()
    }

    /// Graceful degradation ("do no harm" floor, DESIGN.md §9): the
    /// detector produced no usable sample for this task, so stop steering
    /// it — drop its hardware priority back to the uniform default instead
    /// of letting a decision made on stale data stand. The kernel's trace
    /// layer records the transition like any other priority change.
    fn degrade(&mut self, ctx: &mut ClassCtx<'_>, task: TaskId) {
        if let Some(t) = &self.telemetry {
            t.degraded.inc();
        }
        if !self.dynamic_prio {
            return;
        }
        let current = ctx.task(task).hw_prio;
        if current == HwPriority::MEDIUM {
            return;
        }
        if let Ok(effective) = self.mechanism.validate(HwPriority::MEDIUM) {
            if effective != current {
                ctx.task_mut(task).hw_prio = effective;
                self.prio_changes += 1;
            }
        }
    }
}

impl SchedClass for HpcClass {
    fn name(&self) -> &'static str {
        "hpc"
    }

    fn handles(&self, policy: SchedPolicy) -> bool {
        policy == SchedPolicy::Hpc
    }

    fn init_cpus(&mut self, num_cpus: usize) {
        self.rqs = (0..num_cpus).map(|_| VecDeque::new()).collect();
    }

    fn enqueue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, _kind: EnqueueKind) {
        if self.policy == HpcPolicyKind::Rr {
            let t = ctx.task_mut(task);
            if t.slice_left.is_zero() {
                t.slice_left = self.slice;
            }
        }
        self.rqs[cpu.0].push_back(task);
    }

    fn dequeue(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        if let Some(pos) = self.rqs[cpu.0].iter().position(|&t| t == task) {
            self.rqs[cpu.0].remove(pos);
        } else {
            debug_assert!(false, "dequeue of unqueued HPC task");
        }
    }

    fn pick_next(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].pop_front()
    }

    fn put_prev(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        match self.policy {
            HpcPolicyKind::Fifo => self.rqs[cpu.0].push_front(task),
            HpcPolicyKind::Rr => {
                let t = ctx.task_mut(task);
                if t.slice_left.is_zero() {
                    t.slice_left = self.slice;
                    self.rqs[cpu.0].push_back(task);
                } else {
                    self.rqs[cpu.0].push_front(task);
                }
            }
        }
    }

    fn on_yield(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        self.rqs[cpu.0].push_back(task);
    }

    fn charge(&mut self, ctx: &mut ClassCtx<'_>, _cpu: CpuId, task: TaskId, delta: SimDuration) {
        if self.policy == HpcPolicyKind::Rr {
            let t = ctx.task_mut(task);
            t.slice_left = t.slice_left.saturating_sub(delta);
        }
    }

    fn task_tick(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) -> bool {
        if self.policy != HpcPolicyKind::Rr {
            return false;
        }
        ctx.task(task).slice_left.is_zero() && !self.rqs[cpu.0].is_empty()
    }

    fn wakeup_preempt(&self, _ctx: &ClassCtx<'_>, _curr: TaskId, _woken: TaskId) -> bool {
        // Within the class, woken tasks queue round-robin; no preemption.
        false
    }

    fn task_woken(
        &mut self,
        ctx: &mut ClassCtx<'_>,
        task: TaskId,
        iter_run: SimDuration,
        iter_wall: SimDuration,
    ) {
        let Some(mut stats) = self.detector.record_iteration(task, iter_run, iter_wall) else {
            self.degrade(ctx, task);
            return;
        };
        if !self.dynamic_prio {
            return;
        }
        let tun = *self.tunables.lock().expect("tunables poisoned");
        // The Load Imbalance Detector gates the heuristic: once the
        // application is balanced, stop touching priorities (paper §IV-B:
        // "At the end of the second iteration, the Load Imbalance Detector
        // detects no imbalance, thus there is no need of trying to balance
        // again"). Balance is judged on the *latest* iteration — the
        // heuristics' own metrics (global vs blended) only decide how a
        // still-imbalanced task's priority moves.
        let balanced = self.detector.is_balanced_recent(&tun);
        if self.was_balanced && !balanced {
            // Behaviour change: the balanced regime's history no longer
            // describes the application; start the metrics afresh so even
            // the slow global metric reacts within a couple of iterations
            // (paper Figure 4(c)).
            self.detector.reset_history();
            if let Some(s) = self.detector.record_iteration(task, iter_run, iter_wall) {
                // Same inputs as the accepted sample above, so this always
                // re-records; the if-let just avoids a second unwrap path.
                stats = s;
            }
        }
        self.was_balanced = balanced;
        if let Some(t) = &self.telemetry {
            if balanced {
                t.balanced.inc();
            } else {
                t.imbalanced.inc();
            }
        }
        if balanced {
            return;
        }
        let current = ctx.task(task).hw_prio;
        let next = self.heuristic.next_priority(&stats, current, &tun);
        if next == current {
            return;
        }
        match self.mechanism.validate(next) {
            Ok(effective) => {
                if effective != current {
                    ctx.task_mut(task).hw_prio = effective;
                    self.prio_changes += 1;
                    if let Some(t) = &self.telemetry {
                        t.accepted.inc();
                    }
                } else if let Some(t) = &self.telemetry {
                    // Clamped into a no-op: the heuristic's proposal was
                    // effectively refused.
                    t.rejected.inc();
                }
            }
            Err(_) => {
                // Architecture refused (e.g. range restriction): keep the
                // old priority, exactly like a failed or-nop.
                if let Some(t) = &self.telemetry {
                    t.rejected.inc();
                }
            }
        }
    }

    fn task_exited(&mut self, _ctx: &mut ClassCtx<'_>, task: TaskId) {
        self.detector.forget(task);
    }

    fn load_balance(
        &mut self,
        ctx: &mut ClassCtx<'_>,
        cpu: CpuId,
        idle: bool,
    ) -> Vec<Migration> {
        let counts = self.hpc_counts(ctx);
        let view = BalanceView { topology: ctx.topology, counts: &counts, queued: &self.rqs };
        let plan = plan_pull(&view, cpu, idle, |t, c| ctx.tasks[t.0].allowed_on(c));
        plan.into_iter().collect()
    }

    fn nr_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristics::UniformHeuristic;
    use crate::mechanism::Power5Mechanism;
    use power5::{HwPriority, Topology};
    use schedsim::program::ScriptedProgram;
    use schedsim::task::Task;
    use simcore::SimTime;

    fn mk_class(policy: HpcPolicyKind) -> HpcClass {
        let mut c = HpcClass::new(
            policy,
            SimDuration::from_millis(100),
            Box::new(UniformHeuristic),
            Box::new(Power5Mechanism),
            Arc::new(Mutex::new(HpcTunables::default())),
        );
        c.init_cpus(4);
        c
    }

    fn mk_tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("rank{i}"),
                    SchedPolicy::Hpc,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                )
            })
            .collect()
    }

    fn ctx<'a>(tasks: &'a mut Vec<Task>, topo: &'a Topology) -> ClassCtx<'a> {
        ClassCtx { now: SimTime::ZERO, tasks, topology: topo, running: vec![None; 4] }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn round_robin_queue_order() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::New);
        }
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(0)));
        assert_eq!(c.nr_runnable(CpuId(0)), 2);
    }

    #[test]
    fn rr_slice_rotation() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        c.charge(&mut cx, CpuId(0), first, ms(100));
        assert!(c.task_tick(&mut cx, CpuId(0), first));
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)), "rotated to tail");
    }

    #[test]
    fn fifo_keeps_head_even_after_long_run() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Fifo);
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        c.charge(&mut cx, CpuId(0), first, ms(500));
        assert!(!c.task_tick(&mut cx, CpuId(0), first), "FIFO never expires");
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(first));
    }

    #[test]
    fn imbalanced_iterations_raise_priority_of_busy_task() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Task 0: 25% utilization; task 1: 100%.
        c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM, "low-util stays at min");
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM_HIGH, "+1 step");
        // Second identical round: the busy task reaches MAX_PRIO.
        c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::HIGH);
        assert_eq!(c.priority_changes(), 2);
    }

    #[test]
    fn balanced_application_freezes_priorities() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Both ~95%: spread below threshold → no changes even though both
        // are above HIGH_UTIL.
        c.task_woken(&mut cx, TaskId(0), ms(95), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(98), ms(100));
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(c.priority_changes(), 0);
    }

    #[test]
    fn static_mode_never_touches_priorities() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr).with_static_priorities();
        let mut cx = ctx(&mut tasks, &topo);
        c.task_woken(&mut cx, TaskId(0), ms(10), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(c.detector().tracked(), 2, "detector still observes");
    }

    #[test]
    fn exited_task_forgotten_by_detector() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        c.task_woken(&mut cx, TaskId(0), ms(10), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(c.detector().tracked(), 2);
        c.task_exited(&mut cx, TaskId(0));
        assert_eq!(c.detector().tracked(), 1);
    }

    #[test]
    fn balancer_pulls_across_cores() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Three HPC tasks queued on CPU 2 (core 1); CPU 0 (core 0) is empty.
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(2), TaskId(i), EnqueueKind::New);
        }
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].from, CpuId(2));
        assert_eq!(migs[0].to, CpuId(0));
    }

    #[test]
    fn running_tasks_count_toward_domain_balance() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        // CPU 2 runs an HPC task and has one queued; CPU 0 idle.
        let mut cx = ctx(&mut tasks, &topo);
        cx.running[2] = Some(TaskId(0));
        c.enqueue(&mut cx, CpuId(2), TaskId(1), EnqueueKind::New);
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1, "2 tasks on core1 vs 0 on core0");
        assert_eq!(migs[0].task, TaskId(1), "only the queued task can move");
    }

    #[test]
    fn telemetry_counts_decisions_and_verdicts() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let registry = telemetry::MetricsRegistry::new();
        c.attach_telemetry(&registry);
        let mut cx = ctx(&mut tasks, &topo);
        // Two imbalanced rounds (same shape as
        // imbalanced_iterations_raise_priority_of_busy_task).
        for _ in 0..2 {
            c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
            c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("hpc.decisions.uniform.accepted"),
            c.priority_changes(),
            "every applied change is counted against the heuristic"
        );
        assert_eq!(snap.counter("hpc.decisions.uniform.rejected"), 0);
        assert_eq!(
            snap.counter("hpc.detector.balanced") + snap.counter("hpc.detector.imbalanced"),
            4,
            "one verdict per completed iteration"
        );
    }

    #[test]
    fn unusable_sample_degrades_to_uniform_priority() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let registry = telemetry::MetricsRegistry::new();
        c.attach_telemetry(&registry);
        let mut cx = ctx(&mut tasks, &topo);
        // Drive task 1 to HIGH with two imbalanced rounds.
        for _ in 0..2 {
            c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
            c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        }
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::HIGH);
        // A zero-wall (unusable) sample: fall back to the uniform floor
        // instead of keeping a priority decided on stale data.
        c.task_woken(&mut cx, TaskId(1), SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM, "do-no-harm floor");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hpc.detector.degraded"), 1);
        // The detector history is untouched by the bad sample.
        assert_eq!(c.detector().stats_of(TaskId(1)).expect("history kept").iterations, 2);
    }

    #[test]
    fn degraded_task_at_floor_stays_put() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(1);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        c.task_woken(&mut cx, TaskId(0), SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(c.priority_changes(), 0, "no change when already at the floor");
    }

    #[test]
    fn handles_only_hpc_policy() {
        let c = mk_class(HpcPolicyKind::Rr);
        assert!(c.handles(SchedPolicy::Hpc));
        assert!(!c.handles(SchedPolicy::Normal));
        assert!(!c.handles(SchedPolicy::Fifo));
        assert_eq!(c.name(), "hpc");
    }
}
