//! Deprecated location: the Load Imbalance Detector moved to
//! [`schedsim::policies::detector`] alongside the policies that consume it.

pub use schedsim::policies::detector::*;
