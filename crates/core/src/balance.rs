//! Deprecated location: the domain-level workload balancer moved to
//! [`schedsim::balance`].

pub use schedsim::balance::*;
