//! Convenience assembly: a simulated POWER5 machine running a kernel with
//! the HPC scheduling class installed.

use crate::class::{HpcClass, HpcPolicyKind, SharedTunables};
use crate::heuristics::{make_heuristic, HeuristicKind};
use crate::mechanism::{NullMechanism, Power5Mechanism, PrioMechanism};
use crate::tunables::HpcTunables;
use power5::{AnalyticModel, Chip, TableModel, Topology};
use schedsim::{Kernel, KernelConfig, SchedError};
use simcore::SimDuration;
use std::sync::{Arc, Mutex};

/// Configuration of the HPC scheduling class.
#[derive(Clone, Debug)]
pub struct HpcSchedConfig {
    pub policy: HpcPolicyKind,
    /// RR time slice for HPC tasks.
    pub slice: SimDuration,
    pub heuristic: HeuristicKind,
    pub tunables: HpcTunables,
    /// Use the POWER5 mechanism (true) or the no-op mechanism for
    /// architectures without hardware prioritization (false).
    pub power5_mechanism: bool,
    /// Disable the dynamic heuristic entirely (class placement only).
    pub policy_only: bool,
}

impl Default for HpcSchedConfig {
    fn default() -> Self {
        HpcSchedConfig {
            policy: HpcPolicyKind::Rr,
            slice: SimDuration::from_millis(100),
            heuristic: HeuristicKind::Uniform,
            tunables: HpcTunables::default(),
            power5_mechanism: true,
            policy_only: false,
        }
    }
}

/// Which SMT performance model the chip uses.
#[derive(Clone, Copy, Debug)]
pub enum PerfModelChoice {
    /// The calibrated table model (default; DESIGN.md §3.2).
    Table,
    /// The analytic rational model with concavity `k` (ablations).
    Analytic { k: f64 },
}

/// Builds a [`Kernel`] on a simulated POWER5 with (optionally) the HPC
/// class installed — the standard entry point for examples, tests and
/// experiments.
pub struct HpcKernelBuilder {
    topology: Topology,
    kernel: KernelConfig,
    hpc: Option<HpcSchedConfig>,
    model: PerfModelChoice,
}

impl Default for HpcKernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl HpcKernelBuilder {
    /// Paper defaults: OpenPower 710 topology, Linux-2.6.24-like tunables,
    /// HPC class with the Uniform heuristic.
    pub fn new() -> Self {
        HpcKernelBuilder {
            topology: Topology::openpower_710(),
            kernel: KernelConfig::default(),
            hpc: Some(HpcSchedConfig::default()),
            model: PerfModelChoice::Table,
        }
    }

    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    pub fn kernel_config(mut self, c: KernelConfig) -> Self {
        self.kernel = c;
        self
    }

    pub fn noise(mut self, n: schedsim::NoiseConfig) -> Self {
        self.kernel.noise = n;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.kernel.seed = seed;
        self
    }

    /// Baseline kernel: no HPC class (the paper's "standard CFS" runs).
    pub fn without_hpc_class(mut self) -> Self {
        self.hpc = None;
        self
    }

    pub fn hpc_config(mut self, cfg: HpcSchedConfig) -> Self {
        self.hpc = Some(cfg);
        self
    }

    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        if let Some(h) = self.hpc.as_mut() {
            h.heuristic = kind;
        }
        self
    }

    pub fn perf_model(mut self, m: PerfModelChoice) -> Self {
        self.model = m;
        self
    }

    /// Build the kernel, validating the configuration first. Returns the
    /// kernel and, when the HPC class is installed, the shared tunables
    /// handle (the "sysfs mount") for runtime adjustment.
    ///
    /// # Errors
    /// [`SchedError::InvalidTopology`] if the topology has no CPUs, or if
    /// the analytic model's concavity is not a positive finite number;
    /// [`SchedError::InvalidTunables`] if the HPC tunables fail validation
    /// (e.g. `low_util > high_util`).
    pub fn try_build_with_tunables(self) -> Result<(Kernel, Option<SharedTunables>), SchedError> {
        if self.topology.num_cpus() == 0 {
            return Err(SchedError::InvalidTopology("topology has no CPUs".into()));
        }
        if let PerfModelChoice::Analytic { k } = self.model {
            if !k.is_finite() || k <= 0.0 {
                return Err(SchedError::InvalidTopology(format!(
                    "analytic model concavity must be a positive finite number, got {k}"
                )));
            }
        }
        if let Some(cfg) = &self.hpc {
            cfg.tunables
                .validate()
                .map_err(|e| SchedError::InvalidTunables(e.to_string()))?;
        }
        let chip = match self.model {
            PerfModelChoice::Table => {
                Chip::with_model(self.topology.clone(), Box::new(TableModel::default()))
            }
            PerfModelChoice::Analytic { k } => {
                Chip::with_model(self.topology.clone(), Box::new(AnalyticModel { k }))
            }
        };
        let mut kernel = Kernel::new(chip, self.kernel);
        let mut handle = None;
        if let Some(cfg) = self.hpc {
            let registry = kernel.metrics_registry().clone();
            let tunables: SharedTunables = Arc::new(Mutex::new(cfg.tunables));
            handle = Some(tunables.clone());
            let mech: Box<dyn PrioMechanism> = if cfg.power5_mechanism {
                Box::new(Power5Mechanism)
            } else {
                Box::new(NullMechanism)
            };
            let mut class =
                HpcClass::new(cfg.policy, cfg.slice, make_heuristic(cfg.heuristic), mech, tunables);
            if cfg.policy_only {
                class = class.with_static_priorities();
            }
            class.attach_telemetry(&registry);
            kernel.install_class_after_rt(Box::new(class));
        }
        Ok((kernel, handle))
    }

    /// Build, discarding the tunables handle.
    ///
    /// # Errors
    /// Same conditions as [`Self::try_build_with_tunables`].
    pub fn try_build(self) -> Result<Kernel, SchedError> {
        self.try_build_with_tunables().map(|(kernel, _)| kernel)
    }

    /// Build the kernel and tunables handle, panicking on an invalid
    /// configuration. Prefer [`Self::try_build_with_tunables`] in code that
    /// can surface errors.
    pub fn build_with_tunables(self) -> (Kernel, Option<SharedTunables>) {
        self.try_build_with_tunables().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build, discarding the tunables handle and panicking on an invalid
    /// configuration. Prefer [`Self::try_build`].
    pub fn build(self) -> Kernel {
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use schedsim::program::ScriptedProgram;
    use schedsim::{SchedPolicy, SpawnOptions};

    #[test]
    fn builder_installs_hpc_class() {
        let mut k = HpcKernelBuilder::new().build();
        // An HPC task can be spawned only if a class handles SCHED_HPC.
        let t = k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "no class handles")]
    fn baseline_kernel_rejects_hpc_policy() {
        let mut k = HpcKernelBuilder::new().without_hpc_class().build();
        k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
    }

    #[test]
    fn tunables_handle_is_live() {
        let (_k, handle) = HpcKernelBuilder::new().build_with_tunables();
        let handle = handle.expect("hpc installed");
        handle.lock().unwrap().set("high_util", "90").unwrap();
        assert_eq!(handle.lock().unwrap().get("high_util").unwrap(), "90");
    }

    #[test]
    fn baseline_has_no_tunables() {
        let (_k, handle) = HpcKernelBuilder::new().without_hpc_class().build_with_tunables();
        assert!(handle.is_none());
    }

    #[test]
    fn try_build_rejects_invalid_tunables() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.low_util = 90.0;
        cfg.tunables.high_util = 10.0;
        let err = match HpcKernelBuilder::new().hpc_config(cfg).try_build() {
            Err(e) => e,
            Ok(_) => panic!("invalid tunables accepted"),
        };
        assert!(matches!(err, schedsim::SchedError::InvalidTunables(_)), "got {err:?}");
        assert!(err.to_string().contains("invalid HPC tunables"));
    }

    #[test]
    fn try_build_rejects_bad_analytic_concavity() {
        let err = match HpcKernelBuilder::new()
            .perf_model(PerfModelChoice::Analytic { k: f64::NAN })
            .try_build()
        {
            Err(e) => e,
            Ok(_) => panic!("NaN concavity accepted"),
        };
        assert!(matches!(err, schedsim::SchedError::InvalidTopology(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "invalid HPC tunables")]
    fn build_panics_on_invalid_tunables() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.low_util = 90.0;
        cfg.tunables.high_util = 10.0;
        let _ = HpcKernelBuilder::new().hpc_config(cfg).build();
    }

    #[test]
    fn builder_registers_hpc_decision_counters() {
        let k = HpcKernelBuilder::new().try_build().expect("valid defaults");
        let snapshot = k.metrics_registry().snapshot();
        assert!(
            snapshot.get("hpc.decisions.uniform.accepted").is_some(),
            "HPC class telemetry is registered at build time"
        );
        assert!(snapshot.get("hpc.detector.balanced").is_some());
    }

    #[test]
    fn analytic_model_builds() {
        let mut k = HpcKernelBuilder::new()
            .perf_model(PerfModelChoice::Analytic { k: 3.0 })
            .build();
        let t = k.spawn(
            "t",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }
}
