//! Deprecated location: the kernel builder moved to [`schedsim::builder`]
//! as the policy-aware [`schedsim::KernelBuilder`].
//!
//! [`HpcKernelBuilder`] remains as a thin delegating shim for one release.
//! The only behavioral difference of the new builder is the tunables path:
//! instead of the `try_build` / `try_build_with_tunables` split, the shared
//! handle exists from construction on and is read with
//! [`schedsim::KernelBuilder::tunables`].

use crate::class::SharedTunables;
use crate::heuristics::HeuristicKind;
use power5::Topology;
use schedsim::{Kernel, KernelBuilder, KernelConfig, SchedError};

pub use schedsim::builder::{HpcSchedConfig, PerfModelChoice};

/// The old name of the kernel builder, delegating to
/// [`schedsim::KernelBuilder`].
#[deprecated(note = "use `schedsim::KernelBuilder` (single `tunables()` path, `policy()` by name)")]
pub struct HpcKernelBuilder {
    inner: KernelBuilder,
    has_hpc: bool,
}

#[allow(deprecated)]
impl Default for HpcKernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[allow(deprecated)]
impl HpcKernelBuilder {
    /// Paper defaults: OpenPower 710 topology, Linux-2.6.24-like tunables,
    /// HPC class with the Uniform heuristic.
    pub fn new() -> Self {
        HpcKernelBuilder { inner: KernelBuilder::new(), has_hpc: true }
    }

    pub fn topology(mut self, t: Topology) -> Self {
        self.inner = self.inner.topology(t);
        self
    }

    pub fn kernel_config(mut self, c: KernelConfig) -> Self {
        self.inner = self.inner.kernel_config(c);
        self
    }

    pub fn noise(mut self, n: schedsim::NoiseConfig) -> Self {
        self.inner = self.inner.noise(n);
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Baseline kernel: no HPC class (the paper's "standard CFS" runs).
    pub fn without_hpc_class(mut self) -> Self {
        self.inner = self.inner.without_hpc_class();
        self.has_hpc = false;
        self
    }

    pub fn hpc_config(mut self, cfg: HpcSchedConfig) -> Self {
        self.inner = self.inner.hpc_config(cfg);
        self.has_hpc = true;
        self
    }

    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        self.inner = self.inner.heuristic(kind);
        self
    }

    pub fn perf_model(mut self, m: PerfModelChoice) -> Self {
        self.inner = self.inner.perf_model(m);
        self
    }

    /// Build the kernel and, when the HPC class is installed, the shared
    /// tunables handle.
    ///
    /// # Errors
    /// Same conditions as [`schedsim::KernelBuilder::try_build`].
    pub fn try_build_with_tunables(self) -> Result<(Kernel, Option<SharedTunables>), SchedError> {
        let handle = self.has_hpc.then(|| self.inner.tunables());
        Ok((self.inner.try_build()?, handle))
    }

    /// Build, discarding the tunables handle.
    ///
    /// # Errors
    /// Same conditions as [`Self::try_build_with_tunables`].
    pub fn try_build(self) -> Result<Kernel, SchedError> {
        self.inner.try_build()
    }

    /// Build the kernel and tunables handle, panicking on an invalid
    /// configuration.
    pub fn build_with_tunables(self) -> (Kernel, Option<SharedTunables>) {
        self.try_build_with_tunables().unwrap_or_else(|e| panic!("{e}"))
    }

    /// Build, discarding the tunables handle and panicking on an invalid
    /// configuration.
    pub fn build(self) -> Kernel {
        self.inner.build()
    }
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use schedsim::program::ScriptedProgram;
    use schedsim::{SchedPolicy, SpawnOptions};
    use simcore::SimDuration;

    #[test]
    fn shim_installs_hpc_class() {
        let mut k = HpcKernelBuilder::new().build();
        let t = k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }

    #[test]
    fn tunables_handle_is_live() {
        let (_k, handle) = HpcKernelBuilder::new().build_with_tunables();
        let handle = handle.expect("hpc installed");
        handle.lock().unwrap().set("high_util", "90").unwrap();
        assert_eq!(handle.lock().unwrap().get("high_util").unwrap(), "90");
    }

    #[test]
    fn baseline_has_no_tunables() {
        let (_k, handle) = HpcKernelBuilder::new().without_hpc_class().build_with_tunables();
        assert!(handle.is_none());
    }

    #[test]
    fn shim_surfaces_build_errors() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.low_util = 90.0;
        cfg.tunables.high_util = 10.0;
        let err = match HpcKernelBuilder::new().hpc_config(cfg).try_build_with_tunables() {
            Err(e) => e,
            Ok(_) => panic!("invalid tunables accepted"),
        };
        assert!(matches!(err, SchedError::InvalidTunables(_)), "got {err:?}");
    }

    #[test]
    #[should_panic(expected = "invalid HPC tunables")]
    fn build_panics_on_invalid_tunables() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.low_util = 90.0;
        cfg.tunables.high_util = 10.0;
        let _ = HpcKernelBuilder::new().hpc_config(cfg).build();
    }
}
