//! Deprecated location: the hardware-priority mechanism moved to
//! [`schedsim::policies::mechanism`].

pub use schedsim::policies::mechanism::*;
