//! Deprecated location: the sysfs-style tunables moved to
//! [`schedsim::policies::tunables`].

pub use schedsim::policies::tunables::*;
