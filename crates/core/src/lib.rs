//! **HPCSched** — a dynamic scheduler for balancing HPC applications.
//!
//! This crate is the reproduction of the primary contribution of
//! *Boneti, Gioiosa, Cazorla, Valero — "A Dynamic Scheduler for Balancing
//! HPC Applications", SC 2008*: a Linux scheduling class (`SCHED_HPC`) that
//! transparently balances MPI applications on IBM POWER5 machines by
//! steering the processor's hardware thread prioritization.
//!
//! The scheduler is built from the paper's three "mainly independent"
//! components (§IV):
//!
//! * **Scheduling policy** ([`class`]) — the `SCHED_HPC` class, inserted
//!   between the real-time and CFS classes; FIFO and round-robin policies
//!   over a simple per-CPU run queue, plus a domain-level workload balancer
//!   that equalizes HPC task counts at core/chip/system level;
//! * **Load Imbalance Detector and Heuristics** ([`detector`],
//!   [`heuristics`]) — per-iteration CPU-utilization tracking
//!   (`Ui = tR / ti`), an application-level imbalance check, and the two
//!   heuristics of the paper: *Uniform* (global utilization with hysteresis
//!   bounds `LOW_UTIL`/`HIGH_UTIL`) and *Adaptive* (recency-weighted
//!   utilization `Ui = G·Ug(i−1) + L·Ul(i)`);
//! * **Mechanism** ([`mechanism`]) — the only architecture-dependent part:
//!   applying a hardware thread priority on dispatch, validated against the
//!   POWER5 privilege rules (supervisor may set 1–6).
//!
//! # Quick start
//!
//! ```
//! use hpcsched::prelude::*;
//!
//! // A POWER5 machine (2 cores × 2 SMT) running a kernel with the HPC class.
//! // The builder validates tunables and topology up front; an invalid
//! // configuration surfaces as a `SchedError` instead of a panic.
//! let mut kernel = HpcKernelBuilder::new().try_build()?;
//!
//! // An intentionally imbalanced pair on core 0: a long worker and a short
//! // worker that barrier-waits for it every iteration would normally idle
//! // ~75% of the time. Under SCHED_HPC the long worker's hardware priority
//! // rises and the pair converges.
//! # let _ = &mut kernel;
//! # Ok::<(), SchedError>(())
//! ```
//!
//! See the `workloads` and `experiments` crates for the paper's benchmarks
//! (MetBench, MetBenchVar, BT-MZ, SIESTA) and the regeneration of every
//! table and figure.

pub mod balance;
pub mod class;
pub mod detector;
pub mod heuristics;
pub mod mechanism;
pub mod runtime;
pub mod tunables;

pub use class::{HpcClass, HpcPolicyKind};
pub use detector::{LoadImbalanceDetector, TaskIterStats};
pub use heuristics::{AdaptiveHeuristic, Heuristic, HeuristicKind, HybridHeuristic, UniformHeuristic};
pub use mechanism::{NullMechanism, Power5Mechanism, PrioMechanism};
pub use runtime::{HpcKernelBuilder, HpcSchedConfig, PerfModelChoice};
pub use tunables::HpcTunables;

/// Common imports for users of the library.
pub mod prelude {
    pub use crate::class::{HpcClass, HpcPolicyKind};
    pub use crate::heuristics::{AdaptiveHeuristic, Heuristic, HeuristicKind, HybridHeuristic, UniformHeuristic};
    pub use crate::runtime::{HpcKernelBuilder, HpcSchedConfig};
    pub use crate::tunables::HpcTunables;
    pub use power5::{Chip, CpuId, HwPriority, Topology};
    pub use schedsim::{
        Action, Kernel, KernelApi, KernelConfig, KernelEvent, MetricEvent, NoiseConfig, Observer,
        Program, SchedError, SchedPolicy, SpawnOptions, TaskId,
    };
    pub use telemetry::{MetricsRegistry, MetricsSnapshot};
    pub use simcore::{SimDuration, SimTime};
}
