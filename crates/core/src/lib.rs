//! **HPCSched** — a dynamic scheduler for balancing HPC applications.
//!
//! This crate is the reproduction of the primary contribution of
//! *Boneti, Gioiosa, Cazorla, Valero — "A Dynamic Scheduler for Balancing
//! HPC Applications", SC 2008*: a Linux scheduling class (`SCHED_HPC`) that
//! transparently balances MPI applications on IBM POWER5 machines by
//! steering the processor's hardware thread prioritization.
//!
//! # Where the implementation lives
//!
//! As of the Balancer-trait refactor, the implementation is in the
//! `schedsim` crate and this crate is a compatibility facade:
//!
//! * the `SCHED_HPC` class is [`schedsim::classes::BalancedClass`] — a thin
//!   driver owning run queues and migration plumbing, generic over a
//!   [`schedsim::Balancer`] policy;
//! * the paper's Table-I policy (detector + heuristics + mechanism) is
//!   [`schedsim::policies::Table1Balancer`], one entry in the policy zoo of
//!   [`schedsim::policies::registry`] (`--policy <name>` on every
//!   experiment binary);
//! * kernels are assembled with [`schedsim::KernelBuilder`]; the old
//!   [`HpcKernelBuilder`] remains as a deprecated delegating shim.
//!
//! The old module paths (`class`, `detector`, `heuristics`, `mechanism`,
//! `tunables`, `balance`, `runtime`) re-export the moved items so existing
//! imports keep compiling for one release.
//!
//! # Quick start
//!
//! ```
//! use hpcsched::prelude::*;
//!
//! // A POWER5 machine (2 cores × 2 SMT) running a kernel with the HPC class.
//! // The builder validates tunables and topology up front; an invalid
//! // configuration surfaces as a `SchedError` instead of a panic.
//! let mut kernel = KernelBuilder::new().try_build()?;
//!
//! // An intentionally imbalanced pair on core 0: a long worker and a short
//! // worker that barrier-waits for it every iteration would normally idle
//! // ~75% of the time. Under SCHED_HPC the long worker's hardware priority
//! // rises and the pair converges.
//! # let _ = &mut kernel;
//! # Ok::<(), SchedError>(())
//! ```
//!
//! See the `workloads` and `experiments` crates for the paper's benchmarks
//! (MetBench, MetBenchVar, BT-MZ, SIESTA) and the regeneration of every
//! table and figure.

pub mod balance;
pub mod class;
pub mod detector;
pub mod heuristics;
pub mod mechanism;
pub mod runtime;
pub mod tunables;

#[allow(deprecated)]
pub use class::HpcClass;
pub use class::{BalancedClass, HpcPolicyKind};
pub use detector::{LoadImbalanceDetector, TaskIterStats};
pub use heuristics::{AdaptiveHeuristic, Heuristic, HeuristicKind, HybridHeuristic, UniformHeuristic};
pub use mechanism::{NullMechanism, Power5Mechanism, PrioMechanism};
#[allow(deprecated)]
pub use runtime::HpcKernelBuilder;
pub use runtime::{HpcSchedConfig, PerfModelChoice};
pub use tunables::HpcTunables;

/// Common imports for users of the library.
pub mod prelude {
    #[allow(deprecated)]
    pub use crate::class::HpcClass;
    pub use crate::class::{BalancedClass, HpcPolicyKind};
    pub use crate::heuristics::{AdaptiveHeuristic, Heuristic, HeuristicKind, HybridHeuristic, UniformHeuristic};
    #[allow(deprecated)]
    pub use crate::runtime::HpcKernelBuilder;
    pub use crate::runtime::HpcSchedConfig;
    pub use power5::{Chip, CpuId, HwPriority, Topology};
    pub use schedsim::policies::HpcTunables;
    pub use schedsim::{
        Action, Balancer, Kernel, KernelApi, KernelBuilder, KernelConfig, KernelEvent, MetricEvent,
        NoiseConfig, Observer, Program, SchedError, SchedPolicy, SpawnOptions, TaskId,
    };
    pub use telemetry::{MetricsRegistry, MetricsSnapshot};
    pub use simcore::{SimDuration, SimTime};
}
