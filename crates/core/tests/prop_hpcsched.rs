//! Property tests for the HPC scheduler's decision components.

use hpcsched::{
    AdaptiveHeuristic, Heuristic, HpcTunables, LoadImbalanceDetector, TaskIterStats,
    UniformHeuristic,
};
use power5::HwPriority;
use proptest::prelude::*;
use schedsim::TaskId;
use simcore::SimDuration;

fn stats(last: f64, global: f64, prev: f64) -> TaskIterStats {
    TaskIterStats { iterations: 5, last_util: last, global_util: global, prev_global_util: prev }
}

proptest! {
    /// Heuristic outputs never leave the configured priority range and
    /// never jump more than one level per decision.
    #[test]
    fn heuristic_steps_are_bounded(
        util in 0.0f64..100.0,
        cur in 4u8..=6,
        uniform in any::<bool>(),
    ) {
        let tun = HpcTunables::default();
        let current = HwPriority::new(cur).unwrap();
        let h: Box<dyn Heuristic> = if uniform {
            Box::new(UniformHeuristic)
        } else {
            Box::new(AdaptiveHeuristic)
        };
        let next = h.next_priority(&stats(util, util, util), current, &tun);
        prop_assert!(next >= tun.min_prio && next <= tun.max_prio);
        prop_assert!(next.value().abs_diff(current.value()) <= 1);
    }

    /// The heuristic decision is monotone in utilization: more utilization
    /// never yields a lower priority.
    #[test]
    fn heuristic_monotone_in_utilization(
        u1 in 0.0f64..100.0,
        u2 in 0.0f64..100.0,
        cur in 4u8..=6,
    ) {
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        let tun = HpcTunables::default();
        let current = HwPriority::new(cur).unwrap();
        let h = UniformHeuristic;
        let from_lo = h.next_priority(&stats(lo, lo, lo), current, &tun);
        let from_hi = h.next_priority(&stats(hi, hi, hi), current, &tun);
        prop_assert!(from_hi >= from_lo);
    }

    /// Adaptive's blended metric interpolates between history and the last
    /// iteration and stays within their envelope.
    #[test]
    fn blended_metric_is_convex(
        last in 0.0f64..100.0,
        prev in 0.0f64..100.0,
        g in 0.0f64..=1.0,
    ) {
        let s = stats(last, (last + prev) / 2.0, prev);
        let blended = s.blended(g, 1.0 - g);
        let lo = last.min(prev) - 1e-9;
        let hi = last.max(prev) + 1e-9;
        prop_assert!((lo..=hi).contains(&blended), "blended {blended} in [{lo},{hi}]");
    }

    /// Detector utilizations are always within [0, 100] and the global is
    /// within the envelope of recorded iteration utilizations.
    #[test]
    fn detector_utilizations_bounded(
        iters in proptest::collection::vec((1u64..1_000, 1u64..1_000), 1..30),
    ) {
        let mut d = LoadImbalanceDetector::new();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for (run_ms, extra_ms) in iters {
            let run = SimDuration::from_millis(run_ms);
            let wall = SimDuration::from_millis(run_ms + extra_ms);
            let s = d.record_iteration(TaskId(0), run, wall).expect("wall > 0");
            prop_assert!((0.0..=100.0).contains(&s.last_util));
            lo = lo.min(s.last_util);
            hi = hi.max(s.last_util);
            prop_assert!(s.global_util >= lo - 1e-9 && s.global_util <= hi + 1e-9,
                "global {} outside envelope [{lo},{hi}]", s.global_util);
        }
    }

    /// Spread is symmetric under task relabeling and zero when all equal.
    #[test]
    fn spread_properties(utils in proptest::collection::vec(6.0f64..100.0, 2..8)) {
        let tun = HpcTunables::default();
        let mut d = LoadImbalanceDetector::new();
        for (i, &u) in utils.iter().enumerate() {
            let wall = SimDuration::from_millis(1_000);
            let run = SimDuration::from_millis((u * 10.0) as u64);
            d.record_iteration(TaskId(i), run, wall);
        }
        let spread = d.spread(tun.negligible_util, |s| s.last_util);
        let max = utils.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = utils.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((spread - (max - min)).abs() < 0.2, "spread {spread} vs {}", max - min);
    }

    /// sysfs round-trip: any valid numeric write reads back equal.
    #[test]
    fn tunables_roundtrip(high in 66.0f64..100.0, low in 0.0f64..=65.0) {
        let mut t = HpcTunables::default();
        t.set("low_util", &low.to_string()).unwrap();
        t.set("high_util", &high.to_string()).unwrap();
        prop_assert_eq!(t.get("high_util").unwrap(), high.to_string());
        prop_assert_eq!(t.get("low_util").unwrap(), low.to_string());
        prop_assert!(t.validate().is_ok());
    }
}
