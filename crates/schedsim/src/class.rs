//! The Scheduling Class abstraction (paper §III, Figure 1).
//!
//! The Scheduler Core treats classes as objects and walks them in priority
//! order; each class owns its own per-CPU run queues and algorithms. This
//! trait is the seam the paper exploits: the `hpcsched` crate implements it
//! and installs itself between the real-time and CFS classes without
//! touching the core (`Kernel`).

use crate::task::{Task, TaskId};
use power5::{CpuId, Topology};
use simcore::{SimDuration, SimTime};

/// A migration decided by a class's load balancer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Migration {
    pub task: TaskId,
    pub from: CpuId,
    pub to: CpuId,
}

/// Why a task is being enqueued; placement policies differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EnqueueKind {
    /// Freshly spawned.
    New,
    /// Woken from sleep.
    Wakeup,
    /// Migrated from another CPU by load balancing.
    Migration,
}

/// Mutable kernel state a class may touch while handling a callback.
pub struct ClassCtx<'a> {
    pub now: SimTime,
    pub tasks: &'a mut Vec<Task>,
    pub topology: &'a Topology,
    /// The task currently dispatched on each CPU (indexed by CPU id).
    /// Needed by balancers that equalize *total* task counts per domain.
    pub running: Vec<Option<TaskId>>,
}

impl<'a> ClassCtx<'a> {
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    pub fn task_mut(&mut self, id: TaskId) -> &mut Task {
        &mut self.tasks[id.0]
    }
}

/// A scheduling class: policy container + per-CPU run queues + algorithms.
///
/// Invariant maintained by the kernel: a task is *queued* in its class only
/// while `Runnable`; the task currently running on a CPU is not in any
/// queue (the kernel calls [`SchedClass::put_prev`] to give it back).
pub trait SchedClass: Send {
    fn name(&self) -> &'static str;

    /// Which policies this class services.
    fn handles(&self, policy: crate::policy::SchedPolicy) -> bool;

    /// Called once with the machine's CPU count before any other callback.
    fn init_cpus(&mut self, num_cpus: usize);

    /// Add a runnable task to this class's queue on `cpu`.
    fn enqueue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, kind: EnqueueKind);

    /// Remove a queued task (migration, policy change, exit while queued).
    fn dequeue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId);

    /// Choose and remove the next task to run on `cpu`, if any.
    fn pick_next(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId>;

    /// Return a preempted-but-still-runnable task to the queue.
    fn put_prev(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId);

    /// The running task voluntarily yields; default: same as `put_prev`.
    fn on_yield(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        self.put_prev(ctx, cpu, task);
    }

    /// Account `delta` of CPU time to the running `task`. Called on every
    /// accounting sync (not just ticks), so vruntime/slice bookkeeping is
    /// exact.
    fn charge(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, delta: SimDuration);

    /// Scheduler tick while `task` runs on `cpu`. Return `true` to request
    /// a reschedule.
    fn task_tick(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) -> bool;

    /// Should `woken` preempt `curr`? Both belong to this class.
    fn wakeup_preempt(&self, ctx: &ClassCtx<'_>, curr: TaskId, woken: TaskId) -> bool;

    /// The running task blocked. (The task is not queued at this point.)
    fn task_slept(&mut self, _ctx: &mut ClassCtx<'_>, _cpu: CpuId, _task: TaskId) {}

    /// A task of this class woke after an actual sleep, completing one
    /// iteration (compute `iter_run` + wait `iter_wait`). Called *before*
    /// the task is enqueued, so the class may adjust `Task::hw_prio` and
    /// have it applied on next dispatch — this is the hook the paper's Load
    /// Imbalance Detector lives behind.
    fn task_woken(
        &mut self,
        _ctx: &mut ClassCtx<'_>,
        _task: TaskId,
        _iter_run: SimDuration,
        _iter_wait: SimDuration,
    ) {
    }

    /// A task of this class exited; drop any per-task state.
    fn task_exited(&mut self, _ctx: &mut ClassCtx<'_>, _task: TaskId) {}

    /// Load balancing opportunity on `cpu` (`idle` = the CPU ran out of
    /// work). Return migrations of *queued* tasks; the kernel applies them.
    fn load_balance(
        &mut self,
        _ctx: &mut ClassCtx<'_>,
        _cpu: CpuId,
        _idle: bool,
    ) -> Vec<Migration> {
        Vec::new()
    }

    /// Number of queued (runnable, not running) tasks on `cpu`.
    fn nr_runnable(&self, cpu: CpuId) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn migration_is_plain_data() {
        let m = Migration { task: TaskId(1), from: CpuId(0), to: CpuId(2) };
        assert_eq!(m, m);
        assert_ne!(m, Migration { task: TaskId(2), from: CpuId(0), to: CpuId(2) });
    }
}
