//! OS-noise model: per-CPU background daemons.
//!
//! The OS is a major *extrinsic* source of load imbalance in HPC
//! applications (paper §I, citing Petrini et al. and Tsafrir et al.);
//! the paper's SIESTA result (§V-D) depends on SCHED_HPC tasks preempting
//! such background work immediately instead of competing with it inside
//! CFS. Each daemon sleeps for an exponentially distributed interval, then
//! burns a small exponentially distributed burst of CPU — a standard
//! Poisson-process noise model.

use crate::config::NoiseConfig;
use crate::program::{Action, KernelApi, Program};
use simcore::{SimDuration, SimRng};

/// A background daemon program.
pub struct NoiseDaemon {
    cfg: NoiseConfig,
    rng: SimRng,
    sleeping: bool,
}

impl NoiseDaemon {
    pub fn new(cfg: NoiseConfig, rng: SimRng) -> Self {
        NoiseDaemon { cfg, rng, sleeping: false }
    }
}

impl Program for NoiseDaemon {
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        if self.sleeping {
            // Just woke: burn a burst.
            self.sleeping = false;
            let work = self.rng.exponential(self.cfg.mean_burst_work).min(
                // Cap a single burst at 20× the mean so an unlucky draw
                // cannot freeze a CPU for a macroscopic chunk of the run.
                self.cfg.mean_burst_work * 20.0,
            );
            Action::Compute(work)
        } else {
            let mean_s = self.cfg.mean_interval.as_secs_f64();
            let delay = SimDuration::from_secs_f64(self.rng.exponential(mean_s));
            let delay = delay.max(SimDuration::from_micros(10));
            let tok = api.new_token();
            api.signal_after(delay, tok);
            self.sleeping = true;
            Action::Block(tok)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::TokenTable;
    use crate::task::TaskId;
    use simcore::SimTime;

    #[test]
    fn daemon_alternates_sleep_and_burst() {
        let mut d = NoiseDaemon::new(NoiseConfig::light(), SimRng::seed_from_u64(1));
        let mut tokens = TokenTable::default();
        let mut sigs = Vec::new();
        let mut pol = None;
        let mut api = KernelApi {
            now: SimTime::ZERO,
            caller: TaskId(0),
            tokens: &mut tokens,
            deferred_signals: &mut sigs,
            policy_change: &mut pol,
        };
        assert!(matches!(d.next_action(&mut api), Action::Block(_)));
        assert_eq!(api.deferred_signals.len(), 1, "armed a timer");
        match d.next_action(&mut api) {
            Action::Compute(w) => assert!(w > 0.0 && w < 1.0),
            _ => panic!("expected a burst after waking"),
        }
        assert!(matches!(d.next_action(&mut api), Action::Block(_)));
    }

    #[test]
    fn bursts_are_bounded() {
        let cfg = NoiseConfig::light();
        let mut d = NoiseDaemon::new(cfg, SimRng::seed_from_u64(2));
        let mut tokens = TokenTable::default();
        let mut sigs = Vec::new();
        let mut pol = None;
        let mut api = KernelApi {
            now: SimTime::ZERO,
            caller: TaskId(0),
            tokens: &mut tokens,
            deferred_signals: &mut sigs,
            policy_change: &mut pol,
        };
        for _ in 0..200 {
            let _ = d.next_action(&mut api); // block
            match d.next_action(&mut api) {
                Action::Compute(w) => assert!(w <= cfg.mean_burst_work * 20.0),
                _ => panic!("expected burst"),
            }
        }
    }
}
