//! The HPC workload balancer (paper §IV-A), over the scheduling-domain
//! tree.
//!
//! "Our workload balancer tries to balance the number of tasks at each
//! domain level": a core domain running fewer HPC tasks than another core
//! pulls tasks over until counts are even; the same logic repeats at every
//! outer level of the tree. Balancing moves *queued* tasks only.
//!
//! The walk is the tree path from the pulling CPU to the machine root,
//! innermost level first. Because per-level migration costs are monotone
//! non-decreasing toward the root ([`power5::Level::cost`]), the first
//! level with an imbalance is also the *cheapest* level at which it can
//! be fixed — the bubble-scheduler preference for keeping work close. At
//! each step only the sibling domains under the shared parent are
//! candidates, so a socket-local imbalance is repaired socket-locally
//! before any cross-socket (or cross-NUMA) pull is considered.

use crate::class::Migration;
use crate::task::TaskId;
use power5::{CpuId, Topology};
use std::ops::Range;

/// A snapshot of HPC task placement, as the balancer sees it.
pub struct BalanceView<'a> {
    pub topology: &'a Topology,
    /// HPC tasks (queued + running) per CPU.
    pub counts: &'a [usize],
    /// Queued (migratable) HPC tasks per CPU, front = next to run.
    pub queued: &'a [std::collections::VecDeque<TaskId>],
}

/// Decide at most one pull migration for `cpu`.
///
/// `idle` relaxes the imbalance threshold: an idle CPU pulls whenever any
/// domain has work queued for it (the paper: "the idle CPU tries to pull
/// tasks from other, busiest run queue lists").
pub fn plan_pull(
    view: &BalanceView<'_>,
    cpu: CpuId,
    idle: bool,
    allowed: impl Fn(TaskId, CpuId) -> bool,
) -> Option<Migration> {
    let topo = view.topology;
    let group_count =
        |range: &Range<usize>| -> usize { range.clone().map(|c| view.counts[c]).sum() };

    // Walk the tree path from `cpu` to the root, cheapest level first:
    // costs are monotone toward the root, so the innermost level with an
    // imbalance is the cheapest place to fix it. The units compared at
    // step `l` are the level-`l` domains that share `cpu`'s level-`l+1`
    // parent.
    for l in 0..topo.num_levels().saturating_sub(1) {
        let my = topo.group_range(cpu, l);
        let parent = topo.group_range(cpu, l + 1);
        let my_count = group_count(&my);
        let span = topo.span(l);

        // Busiest sibling domain under the shared parent (first in CPU
        // order wins ties).
        let mut best: Option<(usize, Range<usize>)> = None;
        let mut start = parent.start;
        while start < parent.end {
            let dom = start..start + span;
            start += span;
            if dom.start == my.start {
                continue;
            }
            let count = group_count(&dom);
            if best.as_ref().map(|(c, _)| count > *c).unwrap_or(true) {
                best = Some((count, dom));
            }
        }
        let Some((busiest_count, busiest_dom)) = best else { continue };

        // Pull when moving one task strictly reduces the imbalance:
        // after the move, source has busiest-1 ≥ my+1 tasks ⇔
        // busiest ≥ my + 2. An idle CPU (my context empty) also pulls
        // queued work whenever the source keeps at least one task.
        let should_pull = busiest_count >= my_count + 2
            || (idle && view.counts[cpu.0] == 0 && busiest_count > my_count);
        if !should_pull {
            continue;
        }
        // Source: the CPU in the busiest domain with the most queued tasks.
        let src = busiest_dom
            .clone()
            .filter(|&c| !view.queued[c].is_empty())
            .max_by_key(|&c| view.queued[c].len())
            .map(CpuId)?;
        let task = view.queued[src.0].iter().copied().find(|&t| allowed(t, cpu))?;
        return Some(Migration { task, from: src, to: cpu });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn queued_on(per_cpu: &[&[usize]]) -> Vec<VecDeque<TaskId>> {
        per_cpu.iter().map(|ids| ids.iter().map(|&i| TaskId(i)).collect()).collect()
    }

    #[test]
    fn paper_example_core_pull() {
        // Paper §IV-A: core 0 has 1 HPC task, core 1 has 3 → core 0 pulls
        // one so each core has 2.
        let topo = Topology::openpower_710();
        let counts = [1usize, 0, 2, 1]; // core0: 1, core1: 3
        let queued = queued_on(&[&[], &[], &[10], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(1), true, |_, _| true).expect("pull");
        assert_eq!(m.from, CpuId(2));
        assert_eq!(m.to, CpuId(1));
        assert_eq!(m.task, TaskId(10));
    }

    #[test]
    fn balanced_domains_do_not_pull() {
        let topo = Topology::openpower_710();
        let counts = [1usize, 1, 1, 1];
        let queued = queued_on(&[&[], &[], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), false, |_, _| true).is_none());
    }

    #[test]
    fn one_task_difference_is_tolerated() {
        // 2 vs 1 across cores: moving one only inverts the imbalance.
        let topo = Topology::openpower_710();
        let counts = [1usize, 0, 1, 1];
        let queued = queued_on(&[&[], &[], &[7], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), false, |_, _| true).is_none());
    }

    #[test]
    fn idle_cpu_pulls_even_small_imbalance() {
        let topo = Topology::openpower_710();
        // CPU 0 idle; its core has 0; core 1 has 2 (one queued on cpu 2).
        let counts = [0usize, 0, 2, 0];
        let queued = queued_on(&[&[], &[], &[5], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(0), true, |_, _| true).expect("idle pull");
        assert_eq!(m.task, TaskId(5));
    }

    #[test]
    fn affinity_blocks_pull() {
        let topo = Topology::openpower_710();
        let counts = [0usize, 0, 2, 1];
        let queued = queued_on(&[&[], &[], &[5, 6], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), true, |_, _| false).is_none());
    }

    #[test]
    fn no_queued_tasks_means_no_pull() {
        // Counts say imbalance but everything is running (not migratable).
        let topo = Topology::openpower_710();
        let counts = [0usize, 0, 2, 2];
        let queued = queued_on(&[&[], &[], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), true, |_, _| true).is_none());
    }

    #[test]
    fn cheapest_level_with_imbalance_wins() {
        // 2 sockets × 2 cores × 2 threads. CPU 0's sibling core (CPUs
        // 2,3) is overloaded AND the remote socket is overloaded; the
        // pull must come from the socket-local core — the cheaper level —
        // even though the remote socket is busier.
        let topo = Topology::parse("2s2c2t").unwrap();
        let counts = [0usize, 0, 2, 1, 3, 2, 0, 0];
        let queued = queued_on(&[&[], &[], &[20], &[], &[30, 31], &[32], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(0), true, |_, _| true).expect("pull");
        assert_eq!(m.from, CpuId(2));
        assert_eq!(m.task, TaskId(20));
    }

    #[test]
    fn balanced_socket_pulls_across_the_root() {
        // Socket 0 is internally balanced but empty; all work sits in
        // socket 1 — the walk escalates to the machine root and pulls
        // cross-socket.
        let topo = Topology::parse("2s2c2t").unwrap();
        let counts = [0usize, 0, 0, 0, 2, 1, 2, 1];
        let queued = queued_on(&[&[], &[], &[], &[], &[40], &[], &[41], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(0), true, |_, _| true).expect("cross-socket pull");
        assert!(m.from.0 >= 4, "source {:?} must be in socket 1", m.from);
        assert_eq!(m.to, CpuId(0));
    }

    #[test]
    fn numa_tree_walk_reaches_the_remote_node() {
        // 2 NUMA nodes of 2 dual-thread cores (no socket level): an idle
        // node pulls from the remote node only after its local cores are
        // even, and the migration is costed at the NUMA level.
        let topo = Topology::parse("2n2c2t").unwrap();
        let counts = [0usize, 0, 0, 0, 3, 2, 1, 1];
        let queued = queued_on(&[&[], &[], &[], &[], &[50, 51], &[52], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(0), true, |_, _| true).expect("cross-numa pull");
        assert_eq!(m.from, CpuId(4));
        let numa_cost = topo.migration_cost(m.from, m.to);
        let core_cost = topo.migration_cost(CpuId(0), CpuId(2));
        assert!(numa_cost > core_cost, "numa {numa_cost} vs core {core_cost}");
    }
}
