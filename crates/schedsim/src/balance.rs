//! The HPC workload balancer (paper §IV-A).
//!
//! "Our workload balancer tries to balance the number of tasks at each
//! domain level": a core domain running fewer HPC tasks than another core
//! pulls tasks over until counts are even; the same logic repeats at chip
//! and system level. Balancing moves *queued* tasks only.

use crate::class::Migration;
use crate::task::TaskId;
use power5::{CpuId, DomainLevel, Topology};

/// A snapshot of HPC task placement, as the balancer sees it.
pub struct BalanceView<'a> {
    pub topology: &'a Topology,
    /// HPC tasks (queued + running) per CPU.
    pub counts: &'a [usize],
    /// Queued (migratable) HPC tasks per CPU, front = next to run.
    pub queued: &'a [std::collections::VecDeque<TaskId>],
}

/// Decide at most one pull migration for `cpu`.
///
/// `idle` relaxes the imbalance threshold: an idle CPU pulls whenever any
/// domain has work queued for it (the paper: "the idle CPU tries to pull
/// tasks from other, busiest run queue lists").
pub fn plan_pull(
    view: &BalanceView<'_>,
    cpu: CpuId,
    idle: bool,
    allowed: impl Fn(TaskId, CpuId) -> bool,
) -> Option<Migration> {
    for level in [DomainLevel::Core, DomainLevel::Chip, DomainLevel::System] {
        let my_cpus = view.topology.domain_cpus(cpu, level);
        let my_count: usize = my_cpus.iter().map(|c| view.counts[c.0]).sum();

        // Enumerate sibling domains at this level by representative CPU.
        let mut best: Option<(usize, Vec<CpuId>)> = None;
        for other in view.topology.cpus() {
            if my_cpus.contains(&other) {
                continue;
            }
            let dom = view.topology.domain_cpus(other, level);
            // Skip domains already visited (identified by first CPU).
            if dom[0] != other {
                continue;
            }
            let count: usize = dom.iter().map(|c| view.counts[c.0]).sum();
            if best.as_ref().map(|(c, _)| count > *c).unwrap_or(true) {
                best = Some((count, dom));
            }
        }
        let Some((busiest_count, busiest_dom)) = best else { continue };

        // Pull when moving one task strictly reduces the imbalance:
        // after the move, source has busiest-1 ≥ my+1 tasks ⇔
        // busiest ≥ my + 2. An idle CPU (my context empty) also pulls
        // queued work whenever the source keeps at least one task.
        let should_pull = busiest_count >= my_count + 2
            || (idle && view.counts[cpu.0] == 0 && busiest_count > my_count);
        if !should_pull {
            continue;
        }
        // Source: the CPU in the busiest domain with the most queued tasks.
        let src = busiest_dom
            .iter()
            .copied()
            .filter(|c| !view.queued[c.0].is_empty())
            .max_by_key(|c| view.queued[c.0].len())?;
        let task = view.queued[src.0].iter().copied().find(|&t| allowed(t, cpu))?;
        return Some(Migration { task, from: src, to: cpu });
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn queued_on(per_cpu: &[&[usize]]) -> Vec<VecDeque<TaskId>> {
        per_cpu.iter().map(|ids| ids.iter().map(|&i| TaskId(i)).collect()).collect()
    }

    #[test]
    fn paper_example_core_pull() {
        // Paper §IV-A: core 0 has 1 HPC task, core 1 has 3 → core 0 pulls
        // one so each core has 2.
        let topo = Topology::openpower_710();
        let counts = [1usize, 0, 2, 1]; // core0: 1, core1: 3
        let queued = queued_on(&[&[], &[], &[10], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(1), true, |_, _| true).expect("pull");
        assert_eq!(m.from, CpuId(2));
        assert_eq!(m.to, CpuId(1));
        assert_eq!(m.task, TaskId(10));
    }

    #[test]
    fn balanced_domains_do_not_pull() {
        let topo = Topology::openpower_710();
        let counts = [1usize, 1, 1, 1];
        let queued = queued_on(&[&[], &[], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), false, |_, _| true).is_none());
    }

    #[test]
    fn one_task_difference_is_tolerated() {
        // 2 vs 1 across cores: moving one only inverts the imbalance.
        let topo = Topology::openpower_710();
        let counts = [1usize, 0, 1, 1];
        let queued = queued_on(&[&[], &[], &[7], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), false, |_, _| true).is_none());
    }

    #[test]
    fn idle_cpu_pulls_even_small_imbalance() {
        let topo = Topology::openpower_710();
        // CPU 0 idle; its core has 0; core 1 has 2 (one queued on cpu 2).
        let counts = [0usize, 0, 2, 0];
        let queued = queued_on(&[&[], &[], &[5], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let m = plan_pull(&view, CpuId(0), true, |_, _| true).expect("idle pull");
        assert_eq!(m.task, TaskId(5));
    }

    #[test]
    fn affinity_blocks_pull() {
        let topo = Topology::openpower_710();
        let counts = [0usize, 0, 2, 1];
        let queued = queued_on(&[&[], &[], &[5, 6], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), true, |_, _| false).is_none());
    }

    #[test]
    fn no_queued_tasks_means_no_pull() {
        // Counts say imbalance but everything is running (not migratable).
        let topo = Topology::openpower_710();
        let counts = [0usize, 0, 2, 2];
        let queued = queued_on(&[&[], &[], &[], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        assert!(plan_pull(&view, CpuId(0), true, |_, _| true).is_none());
    }
}
