//! The Scheduler Core (paper §III): per-CPU state, the class chain walk,
//! dispatch, wakeups, ticks, load balancing — driven by a discrete-event
//! loop over simulated time, with task speeds supplied by the POWER5 chip
//! model.

use crate::class::{ClassCtx, EnqueueKind, Migration, SchedClass};
use crate::classes::{FairClass, IdleClass, RtClass};
use crate::config::KernelConfig;
use crate::error::SchedError;
use crate::fault::FaultEvent;
use crate::observer::{KernelEvent, MetricEvent, Observer};
use crate::policy::SchedPolicy;
use crate::program::{Action, KernelApi, Program, TokenTable, WaitToken};
use crate::task::{Task, TaskId, TaskState};
use crate::trace::{TraceEvent, TraceRecord};
use power5::{Chip, CpuId, HwPriority, PrivilegeLevel, TaskPerfTraits, Topology};
use simcore::{EventId, EventQueue, EventQueueCounters, Histogram, SimDuration, SimRng, SimTime};
use std::time::Instant;
use telemetry::{Counter, HistogramHandle, MetricsRegistry};

/// Kernel events.
#[derive(Clone, Copy, Debug)]
enum KEvent {
    /// Periodic scheduler tick on a CPU.
    Tick(CpuId),
    /// The running task on a CPU finished its current compute segment.
    WorkDone(CpuId),
    /// A timed token signal fired (timer, message delivery).
    Signal(WaitToken),
    /// An injected fault fired (see [`crate::fault::FaultEvent`]).
    Fault(FaultEvent),
}

struct CpuState {
    current: Option<TaskId>,
    /// Cached speed factor of the running task (from the chip model).
    speed: f64,
    /// Accounting synced up to this instant.
    last_sync: SimTime,
    /// Context-switch penalty: no work accrues before this instant.
    switch_until: SimTime,
    /// Injected steal burst: no work accrues before this instant either.
    /// Kept separate from `switch_until` so dispatch (which overwrites the
    /// switch penalty) cannot shorten an in-flight burst.
    steal_until: SimTime,
    workdone_ev: EventId,
    need_resched: bool,
    ticks: u64,
}

impl CpuState {
    fn new() -> Self {
        CpuState {
            current: None,
            speed: 0.0,
            last_sync: SimTime::ZERO,
            switch_until: SimTime::ZERO,
            steal_until: SimTime::ZERO,
            workdone_ev: EventId::NONE,
            need_resched: false,
            ticks: 0,
        }
    }
}

/// Options for [`Kernel::spawn`].
#[derive(Default)]
pub struct SpawnOptions {
    pub nice: i32,
    pub rt_priority: u8,
    pub affinity: Option<Vec<CpuId>>,
    pub perf: Option<TaskPerfTraits>,
    /// Fixed hardware priority (the *static* prioritization of the paper's
    /// earlier work); defaults to Medium (4).
    pub hw_prio: Option<HwPriority>,
}

/// Whole-run scheduler metrics.
#[derive(Debug, Clone)]
pub struct KernelMetrics {
    pub ticks: u64,
    pub context_switches: u64,
    pub priority_writes: u64,
    /// Wakeup→dispatch latency distribution, microseconds.
    pub latency_us: Histogram,
}

/// Hot-path metric handles, registered once at kernel construction so
/// recording is a relaxed atomic op with no registry lookup.
struct KernelCounters {
    context_switches: Counter,
    ticks: Counter,
    /// Task-level hardware-priority changes; reconciles 1:1 with
    /// [`TraceEvent::HwPrio`] records.
    task_hw_prio_transitions: Counter,
    /// Iteration completions; reconciles 1:1 with
    /// [`TraceEvent::IterationEnd`] records.
    iterations: Counter,
    /// Task exits; reconciles 1:1 with [`TraceEvent::Exit`] records.
    task_exits: Counter,
    /// Injected CPU steal bursts delivered (fault class 1).
    fault_steal_bursts: Counter,
    /// Injected per-task speed-multiplier changes delivered (fault class 2).
    fault_slowdowns: Counter,
    /// Host wall-clock nanoseconds per class-chain pick.
    pick_wall_ns: HistogramHandle,
    /// Simulated wakeup→dispatch latency, nanoseconds.
    dispatch_latency_ns: HistogramHandle,
    /// Runnable tasks across classes on the picking CPU, sampled per pick.
    runq_depth: HistogramHandle,
    /// Per-CPU hardware priority register transitions.
    cpu_hw_prio_transitions: Vec<Counter>,
}

impl KernelCounters {
    fn register(registry: &MetricsRegistry, ncpus: usize) -> KernelCounters {
        KernelCounters {
            context_switches: registry.counter("kernel.context_switches"),
            ticks: registry.counter("kernel.ticks"),
            task_hw_prio_transitions: registry.counter("kernel.hw_prio_transitions"),
            iterations: registry.counter("kernel.iterations"),
            task_exits: registry.counter("kernel.task_exits"),
            fault_steal_bursts: registry.counter("kernel.faults.steal_bursts"),
            fault_slowdowns: registry.counter("kernel.faults.slowdowns"),
            pick_wall_ns: registry.histogram("kernel.pick_wall_ns"),
            dispatch_latency_ns: registry.histogram("kernel.dispatch_latency_ns"),
            runq_depth: registry.histogram("kernel.runq_depth"),
            cpu_hw_prio_transitions: (0..ncpus)
                .map(|c| registry.counter(&format!("cpu{c}.hw_prio_transitions")))
                .collect(),
        }
    }
}

/// The simulated kernel.
pub struct Kernel {
    chip: Chip,
    config: KernelConfig,
    now: SimTime,
    tasks: Vec<Task>,
    classes: Vec<Box<dyn SchedClass>>,
    events: EventQueue<KEvent>,
    cpus: Vec<CpuState>,
    tokens: TokenTable,
    observers: Vec<Box<dyn Observer>>,
    rng: SimRng,
    registry: MetricsRegistry,
    counters: KernelCounters,
    latency_us: Histogram,
    transition_guard: u32,
}

impl Kernel {
    /// Build a kernel with the standard class chain (RT → CFS → Idle) on the
    /// given chip. Install additional classes (e.g. the HPC class) with
    /// [`Kernel::install_class_after_rt`] *before* spawning tasks.
    pub fn new(chip: Chip, config: KernelConfig) -> Self {
        let ncpus = chip.topology().num_cpus();
        let mut classes: Vec<Box<dyn SchedClass>> = vec![
            Box::new(RtClass::new(config.rt_rr_slice)),
            Box::new(FairClass::new(config.cfs)),
            Box::new(IdleClass::new()),
        ];
        for c in &mut classes {
            c.init_cpus(ncpus);
        }
        let registry = MetricsRegistry::new();
        let counters = KernelCounters::register(&registry, ncpus);
        let mut events = EventQueue::new();
        events.attach_counters(EventQueueCounters::register(&registry, "sim.events"));
        for cpu in 0..ncpus {
            events.schedule(SimTime::ZERO + config.tick, KEvent::Tick(CpuId(cpu)));
        }
        let rng = SimRng::seed_from_u64(config.seed);
        let mut kernel = Kernel {
            chip,
            config,
            now: SimTime::ZERO,
            tasks: Vec::new(),
            classes,
            events,
            cpus: (0..ncpus).map(|_| CpuState::new()).collect(),
            tokens: TokenTable::default(),
            observers: Vec::new(),
            rng,
            registry,
            counters,
            latency_us: Histogram::new(0.0, 20_000.0, 200),
            transition_guard: 0,
        };
        kernel.spawn_noise_daemons();
        kernel
    }

    /// Insert a scheduling class between the real-time class and CFS —
    /// exactly where the paper puts `SCHED_HPC` (Figure 1(b)).
    ///
    /// # Panics
    /// If tasks have already been spawned (class sets must be fixed first).
    pub fn install_class_after_rt(&mut self, mut class: Box<dyn SchedClass>) {
        assert!(
            self.tasks.iter().all(|t| t.policy == SchedPolicy::Normal),
            "install classes before spawning application tasks"
        );
        class.init_cpus(self.cpus.len());
        self.classes.insert(1, class);
    }

    /// Attach an observer to the kernel's unified event stream: every
    /// [`TraceRecord`] and every [`MetricEvent`] of the run, in order.
    ///
    /// Any [`TraceSink`] is an [`Observer`], so shared-handle sinks like
    /// [`SharedSink`](crate::SharedSink) attach directly — the caller keeps
    /// its handle and never needs the sink back.
    pub fn observe(&mut self, observer: Box<dyn Observer>) {
        self.observers.push(observer);
    }

    /// The kernel's metric registry: counters, gauges and histograms for
    /// every instrumented hot path. Handles are cheap to clone; snapshots
    /// are deterministic (name-sorted).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    pub fn now(&self) -> SimTime {
        self.now
    }

    pub fn topology(&self) -> &Topology {
        self.chip.topology()
    }

    pub fn chip(&self) -> &Chip {
        &self.chip
    }

    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.0]
    }

    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// Run-wide metrics snapshot.
    pub fn metrics(&self) -> KernelMetrics {
        KernelMetrics {
            ticks: self.counters.ticks.get(),
            context_switches: self.counters.context_switches.get(),
            priority_writes: self.chip.priority_writes(),
            latency_us: self.latency_us.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Spawning
    // ------------------------------------------------------------------

    /// Create a task and make it runnable. Placement: the allowed CPU with
    /// the fewest runnable tasks (ties to the lowest CPU id), mirroring
    /// fork balancing.
    ///
    /// # Panics
    /// On invalid input — no class handles `policy`, or the affinity mask
    /// excludes every CPU. Use [`Kernel::try_spawn`] to handle these as
    /// errors instead.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        policy: SchedPolicy,
        program: Box<dyn Program>,
        opts: SpawnOptions,
    ) -> TaskId {
        // INVARIANT: panicking wrapper by documented contract; fallible
        // callers use try_spawn directly.
        self.try_spawn(name, policy, program, opts)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`Kernel::spawn`]: rejects a policy no installed class
    /// handles and an affinity mask that excludes every CPU, without
    /// touching kernel state.
    pub fn try_spawn(
        &mut self,
        name: impl Into<String>,
        policy: SchedPolicy,
        program: Box<dyn Program>,
        opts: SpawnOptions,
    ) -> Result<TaskId, SchedError> {
        // Validate everything before mutating: a rejected spawn must leave
        // no trace records, queue entries, or task slots behind.
        let class = self.try_class_of_policy(policy)?;
        let id = TaskId(self.tasks.len());
        let mut task = Task::new(id, name.into(), policy, program, self.now);
        task.nice = opts.nice;
        task.rt_priority = opts.rt_priority;
        task.affinity = opts.affinity;
        if let Some(p) = opts.perf {
            task.perf = p;
        }
        if let Some(hp) = opts.hw_prio {
            task.hw_prio = hp;
        }
        let Some(cpu) = self.least_loaded_cpu(&task) else {
            return Err(SchedError::UnschedulableAffinity { task: task.name.clone() });
        };
        self.emit(id, TraceEvent::Spawn { name: self.tasks_name(&task) });
        task.cpu = Some(cpu);
        self.tasks.push(task);

        self.with_ctx(class, |class, ctx| class.enqueue(ctx, cpu, id, EnqueueKind::New));
        self.tasks[id.0].last_state_change = self.now;
        self.emit(id, TraceEvent::State { state: TaskState::Runnable, cpu: Some(cpu) });
        self.check_preempt(cpu, id);
        self.settle();
        Ok(id)
    }

    fn tasks_name(&self, t: &Task) -> String {
        t.name.clone()
    }

    /// `None` when the task's affinity mask excludes every CPU.
    fn least_loaded_cpu(&self, task: &Task) -> Option<CpuId> {
        // Count *live tasks homed on each CPU* (running, queued or
        // sleeping): fork-time balancing must spread tasks that block
        // immediately after starting (every MPI rank does).
        let mut homed = vec![0usize; self.cpus.len()];
        for t in &self.tasks {
            if t.is_live() {
                if let Some(c) = t.cpu {
                    homed[c.0] += 1;
                }
            }
        }
        let mut best: Option<(usize, CpuId)> = None;
        for cpu in self.chip.topology().cpus() {
            if !task.allowed_on(cpu) {
                continue;
            }
            match best {
                Some((b, _)) if homed[cpu.0] >= b => {}
                _ => best = Some((homed[cpu.0], cpu)),
            }
        }
        best.map(|(_, c)| c)
    }

    fn spawn_noise_daemons(&mut self) {
        let noise = self.config.noise;
        if noise.is_off() {
            return;
        }
        let cpus: Vec<CpuId> = self.chip.topology().cpus().collect();
        for cpu in cpus {
            for d in 0..noise.daemons_per_cpu {
                let rng = self.rng.fork((cpu.0 as u64) << 8 | d as u64);
                let prog = crate::noise::NoiseDaemon::new(noise, rng);
                self.spawn(
                    format!("kdaemon-{}/{}", cpu.0, d),
                    SchedPolicy::Normal,
                    Box::new(prog),
                    SpawnOptions { affinity: Some(vec![cpu]), ..Default::default() },
                );
            }
        }
    }

    // ------------------------------------------------------------------
    // Event loop
    // ------------------------------------------------------------------

    /// Process one event. Returns `false` when no events remain.
    pub fn step(&mut self) -> bool {
        let Some(ev) = self.events.pop() else { return false };
        debug_assert!(ev.time >= self.now);
        self.sync_to(ev.time);
        match ev.payload {
            KEvent::Tick(cpu) => self.handle_tick(cpu),
            KEvent::WorkDone(cpu) => {
                // Stale WorkDone events are cancelled on re-arm, so an event
                // that fires is authoritative.
                self.cpus[cpu.0].workdone_ev = EventId::NONE;
                self.handle_workdone(cpu);
            }
            KEvent::Signal(tok) => self.tokens.signal(tok),
            KEvent::Fault(fault) => self.handle_fault(fault),
        }
        self.settle();
        true
    }

    /// Schedule an injected fault at `at` (clamped to the current time).
    ///
    /// Faults ride the ordinary event queue, so a faulted run remains a
    /// pure function of `(config, seed, plan)`. Stale references — a CPU or
    /// task index the plan got wrong — are dropped at delivery time rather
    /// than panicking: fault plans describe hostile conditions, and a bad
    /// plan must degrade the run, never crash the simulator.
    pub fn inject_fault(&mut self, at: SimTime, fault: FaultEvent) {
        self.events.schedule(at.max(self.now), KEvent::Fault(fault));
    }

    fn handle_fault(&mut self, fault: FaultEvent) {
        match fault {
            FaultEvent::StealBurst { cpu, duration } => {
                if cpu.0 >= self.cpus.len() || duration.is_zero() {
                    return;
                }
                self.counters.fault_steal_bursts.inc();
                // The thief holds the context: no work accrues before the
                // burst ends (sync_cpu and rearm_workdone both respect
                // `steal_until`), like a context-switch stall of fault
                // length. Overlapping bursts extend, never shorten.
                let until = self.now + duration;
                let cs = &mut self.cpus[cpu.0];
                if until > cs.steal_until {
                    cs.steal_until = until;
                }
            }
            FaultEvent::SlowTask { task, factor } => {
                if task.0 >= self.tasks.len() || !factor.is_finite() || factor < 0.0 {
                    return;
                }
                self.counters.fault_slowdowns.inc();
                self.tasks[task.0].fault_slow = factor;
            }
        }
        // settle() runs after every event and re-arms completion events
        // against the new stall horizon / speed.
    }

    /// Run until every task in `until_exited` has exited, or `deadline`
    /// simulated time passes. Returns the exit time of the last task, or
    /// `None` on deadline.
    // PURITY-ROOT: the kernel event loop every node run spins inside.
    pub fn run_until_exited(
        &mut self,
        until_exited: &[TaskId],
        deadline: SimDuration,
    ) -> Option<SimTime> {
        let deadline = self.now.saturating_add(deadline);
        loop {
            if until_exited.iter().all(|&t| self.tasks[t.0].state == TaskState::Exited) {
                let end = until_exited
                    .iter()
                    .filter_map(|&t| self.tasks[t.0].exited_at)
                    .max()
                    .unwrap_or(self.now);
                return Some(end);
            }
            if self.now >= deadline || !self.step() {
                return None;
            }
        }
    }

    /// Run for a fixed span of simulated time.
    pub fn run_for(&mut self, span: SimDuration) {
        let end = self.now + span;
        while self.now < end {
            match self.events.peek_time() {
                Some(t) if t <= end => {
                    self.step();
                }
                _ => {
                    self.sync_to(end);
                    break;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Accounting
    // ------------------------------------------------------------------

    /// Advance accounting on every CPU to `t` and set the kernel clock.
    fn sync_to(&mut self, t: SimTime) {
        debug_assert!(t >= self.now);
        for cpu in 0..self.cpus.len() {
            self.sync_cpu(CpuId(cpu), t);
        }
        self.now = t;
    }

    fn sync_cpu(&mut self, cpu: CpuId, t: SimTime) {
        let cs = &mut self.cpus[cpu.0];
        let start = cs.last_sync.max(cs.switch_until).max(cs.steal_until).min(t);
        cs.last_sync = t;
        let Some(tid) = cs.current else { return };
        let delta = t.saturating_since(start);
        if delta.is_zero() {
            return;
        }
        let speed = cs.speed;
        let policy = {
            let task = &mut self.tasks[tid.0];
            debug_assert_eq!(task.state, TaskState::Running);
            task.exec_total += delta;
            task.iter.run_in_iter += delta;
            let work = delta.as_secs_f64() * speed;
            task.remaining_work = (task.remaining_work - work).max(0.0);
            task.policy
        };
        let class = self.class_of_policy(policy);
        self.with_ctx(class, |class, ctx| class.charge(ctx, cpu, tid, delta));
    }

    // ------------------------------------------------------------------
    // Event handlers
    // ------------------------------------------------------------------

    fn handle_tick(&mut self, cpu: CpuId) {
        self.counters.ticks.inc();
        self.emit_metric(MetricEvent::Tick { cpu });
        self.cpus[cpu.0].ticks += 1;
        let next = self.now + self.config.tick;
        self.events.schedule(next, KEvent::Tick(cpu));

        if let Some(tid) = self.cpus[cpu.0].current {
            let class = self.class_of_policy(self.tasks[tid.0].policy);
            let resched = self.with_ctx(class, |class, ctx| class.task_tick(ctx, cpu, tid));
            if resched {
                self.cpus[cpu.0].need_resched = true;
            }
        }

        // Periodic load balancing.
        let interval = self.config.balance_interval_ticks;
        if interval > 0 && self.cpus[cpu.0].ticks.is_multiple_of(interval as u64) {
            self.balance(cpu, false);
        }
    }

    fn handle_workdone(&mut self, cpu: CpuId) {
        let Some(tid) = self.cpus[cpu.0].current else { return };
        // Guard against float dust: the segment is done when the event
        // fires (sync_to already subtracted the work).
        if self.tasks[tid.0].remaining_work > 1e-12 {
            // Speed changed since the event was armed and re-arm missed it;
            // simply re-arm from current state.
            self.cpus[cpu.0].need_resched = false;
            return;
        }
        self.tasks[tid.0].remaining_work = 0.0;
        self.run_transitions(tid);
    }

    // ------------------------------------------------------------------
    // Program transitions
    // ------------------------------------------------------------------

    /// Drive `tid`'s program forward until it computes, sleeps, or exits.
    /// The task must be `Running` on its CPU.
    fn run_transitions(&mut self, tid: TaskId) {
        self.transition_guard = 0;
        loop {
            self.transition_guard += 1;
            assert!(
                self.transition_guard < 100_000,
                "program transition livelock on {:?}",
                tid
            );
            // INVARIANT: the program is only ever taken for the duration
            // of this call and restored two lines below.
            let mut program = self.tasks[tid.0].program.take().expect("task has a program");
            let mut deferred: Vec<(SimTime, WaitToken)> = Vec::new();
            let mut policy_change = None;
            let action = {
                let mut api = KernelApi {
                    now: self.now,
                    caller: tid,
                    tokens: &mut self.tokens,
                    deferred_signals: &mut deferred,
                    policy_change: &mut policy_change,
                };
                program.next_action(&mut api)
            };
            self.tasks[tid.0].program = Some(program);
            for (at, tok) in deferred {
                self.events.schedule(at.max(self.now), KEvent::Signal(tok));
            }
            if let Some(policy) = policy_change {
                self.apply_policy_change(tid, policy);
            }
            match action {
                Action::Compute(w) => {
                    assert!(w.is_finite() && w >= 0.0, "invalid work amount {w}");
                    self.tasks[tid.0].remaining_work = w;
                    break;
                }
                Action::Block(tok) => {
                    if self.tokens.block(tok, tid) {
                        // Already signalled: continue without sleeping.
                        continue;
                    }
                    self.block_current(tid);
                    break;
                }
                Action::Yield => {
                    self.yield_current(tid);
                    break;
                }
                Action::Exit => {
                    self.exit_current(tid);
                    break;
                }
            }
        }
    }

    fn apply_policy_change(&mut self, tid: TaskId, policy: SchedPolicy) {
        let task = &mut self.tasks[tid.0];
        debug_assert_eq!(
            task.state,
            TaskState::Running,
            "policy change only from the running task itself"
        );
        task.policy = policy;
    }

    fn block_current(&mut self, tid: TaskId) {
        // INVARIANT: callers pass the running task; dispatch set its cpu.
        let cpu = self.tasks[tid.0].cpu.expect("running task has a cpu");
        debug_assert_eq!(self.cpus[cpu.0].current, Some(tid));
        let class = self.class_of_policy(self.tasks[tid.0].policy);
        self.with_ctx(class, |class, ctx| class.task_slept(ctx, cpu, tid));
        let task = &mut self.tasks[tid.0];
        task.state = TaskState::Sleeping;
        task.last_state_change = self.now;
        task.last_sleep_start = Some(self.now);
        self.cpus[cpu.0].current = None;
        self.emit(tid, TraceEvent::State { state: TaskState::Sleeping, cpu: Some(cpu) });
        self.cpus[cpu.0].need_resched = true;
    }

    fn yield_current(&mut self, tid: TaskId) {
        // INVARIANT: callers pass the running task; dispatch set its cpu.
        let cpu = self.tasks[tid.0].cpu.expect("running task has a cpu");
        debug_assert_eq!(self.cpus[cpu.0].current, Some(tid));
        let class = self.class_of_policy(self.tasks[tid.0].policy);
        self.cpus[cpu.0].current = None;
        let task = &mut self.tasks[tid.0];
        task.state = TaskState::Runnable;
        task.last_state_change = self.now;
        self.with_ctx(class, |class, ctx| class.on_yield(ctx, cpu, tid));
        self.emit(tid, TraceEvent::State { state: TaskState::Runnable, cpu: Some(cpu) });
        self.cpus[cpu.0].need_resched = true;
    }

    fn exit_current(&mut self, tid: TaskId) {
        // INVARIANT: callers pass the running task; dispatch set its cpu.
        let cpu = self.tasks[tid.0].cpu.expect("running task has a cpu");
        debug_assert_eq!(self.cpus[cpu.0].current, Some(tid));
        let task = &mut self.tasks[tid.0];
        task.state = TaskState::Exited;
        task.exited_at = Some(self.now);
        task.last_state_change = self.now;
        self.cpus[cpu.0].current = None;
        let class = self.class_of_policy(self.tasks[tid.0].policy);
        self.with_ctx(class, |class, ctx| class.task_exited(ctx, tid));
        self.emit(tid, TraceEvent::Exit);
        self.cpus[cpu.0].need_resched = true;
    }

    // ------------------------------------------------------------------
    // Wakeups
    // ------------------------------------------------------------------

    fn wake_task(&mut self, tid: TaskId) {
        let task = &self.tasks[tid.0];
        if task.state != TaskState::Sleeping {
            // Signal raced with something else (e.g. task exited); ignore.
            return;
        }
        // INVARIANT: block_current records the sleep start on every
        // Running→Sleeping transition, checked just above.
        let slept_at = task.last_sleep_start.expect("sleeping task has sleep start");
        let iter_wall = self.now.saturating_since(task.iter.iter_started);
        let iter_run = task.iter.run_in_iter;
        let iterations = task.iter.iterations;
        let prio_before = task.hw_prio;
        let policy = task.policy;

        {
            let task = &mut self.tasks[tid.0];
            task.sleep_total += self.now.saturating_since(slept_at);
            task.state = TaskState::Runnable;
            task.last_state_change = self.now;
            task.last_wakeup = Some(self.now);
            task.iter.iterations += 1;
            task.iter.run_in_iter = SimDuration::ZERO;
            task.iter.iter_started = self.now;
        }

        // Iteration hook: the class may adjust hw_prio before re-dispatch.
        let class = self.class_of_policy(policy);
        self.with_ctx(class, |class, ctx| class.task_woken(ctx, tid, iter_run, iter_wall));
        let util = if iter_wall.is_zero() {
            1.0
        } else {
            iter_run.as_nanos() as f64 / iter_wall.as_nanos() as f64
        };
        self.emit(tid, TraceEvent::IterationEnd { index: iterations, utilization: util.min(1.0) });
        if self.tasks[tid.0].hw_prio != prio_before {
            self.emit(tid, TraceEvent::HwPrio { prio: self.tasks[tid.0].hw_prio });
        }

        let cpu = self.select_cpu(tid);
        self.tasks[tid.0].cpu = Some(cpu);
        self.with_ctx(class, |class, ctx| class.enqueue(ctx, cpu, tid, EnqueueKind::Wakeup));
        self.emit(tid, TraceEvent::State { state: TaskState::Runnable, cpu: Some(cpu) });
        self.check_preempt(cpu, tid);
    }

    /// Placement of a waking task, mirroring the era's `wake_idle`: return
    /// to the previous CPU if it is free, otherwise look for an idle
    /// allowed CPU (SMT sibling first, for cache affinity), otherwise fall
    /// back to the previous CPU.
    fn select_cpu(&self, tid: TaskId) -> CpuId {
        let task = &self.tasks[tid.0];
        let my_class = self.class_of_policy(task.policy);
        // A CPU is "idle" *for this task* when nothing of its class or a
        // higher class runs or queues there — lower-class work (e.g. a CFS
        // noise daemon under an HPC task) is preempted immediately, so it
        // must not push the woken task off its cache-hot CPU.
        let idle = |c: CpuId| {
            let cur_busy = self.cpus[c.0]
                .current
                .map(|t| self.class_of_policy(self.tasks[t.0].policy) <= my_class)
                .unwrap_or(false);
            !cur_busy
                && self
                    .classes
                    .iter()
                    .take(my_class + 1)
                    .all(|cl| cl.nr_runnable(c) == 0)
        };
        if let Some(prev) = task.cpu {
            if task.allowed_on(prev) {
                if idle(prev) {
                    return prev;
                }
                // SMT siblings share the core's cache; try them (in
                // context order) before anything farther up the tree.
                let topo = self.chip.topology();
                for sib in topo.cpus_of_core(topo.core_of(prev)) {
                    if sib != prev && task.allowed_on(sib) && idle(sib) {
                        return sib;
                    }
                }
                if let Some(c) = self.chip.topology().cpus().find(|&c| task.allowed_on(c) && idle(c))
                {
                    return c;
                }
                return prev;
            }
        }
        // INVARIANT: try_spawn rejects all-excluding affinity masks.
        self.chip
            .topology()
            .cpus()
            .find(|&c| task.allowed_on(c))
            .expect("task affinity excludes every CPU")
    }

    /// Decide whether the newly runnable `tid` (queued on `cpu`) preempts.
    fn check_preempt(&mut self, cpu: CpuId, tid: TaskId) {
        match self.cpus[cpu.0].current {
            None => self.cpus[cpu.0].need_resched = true,
            Some(curr) => {
                let curr_class = self.class_of_policy(self.tasks[curr.0].policy);
                let new_class = self.class_of_policy(self.tasks[tid.0].policy);
                if new_class < curr_class {
                    self.cpus[cpu.0].need_resched = true;
                } else if new_class == curr_class {
                    let preempt = {
                        let running = self.cpus.iter().map(|c| c.current).collect();
                        let ctx = ClassCtx {
                            now: self.now,
                            tasks: &mut self.tasks,
                            topology: self.chip.topology(),
                            running,
                        };
                        self.classes[new_class].wakeup_preempt(&ctx, curr, tid)
                    };
                    if preempt {
                        self.cpus[cpu.0].need_resched = true;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Drain pending wakeups and reschedule requests until quiescent, then
    /// refresh hardware state and re-arm completion events.
    fn settle(&mut self) {
        loop {
            let wakes = self.tokens.take_wakes();
            if wakes.is_empty() && !self.cpus.iter().any(|c| c.need_resched) {
                break;
            }
            for t in wakes {
                self.wake_task(t);
            }
            for cpu in 0..self.cpus.len() {
                if self.cpus[cpu].need_resched {
                    self.cpus[cpu].need_resched = false;
                    self.reschedule(CpuId(cpu));
                }
            }
        }
        self.refresh_hw();
    }

    /// Pick and dispatch the next task on `cpu`.
    fn reschedule(&mut self, cpu: CpuId) {
        let prev = self.cpus[cpu.0].current;
        // Put a still-running previous task back on its queue.
        if let Some(p) = prev {
            if self.tasks[p.0].state == TaskState::Running {
                let class = self.class_of_policy(self.tasks[p.0].policy);
                self.cpus[cpu.0].current = None;
                let task = &mut self.tasks[p.0];
                task.state = TaskState::Runnable;
                task.last_state_change = self.now;
                self.with_ctx(class, |class, ctx| class.put_prev(ctx, cpu, p));
                self.emit(p, TraceEvent::State { state: TaskState::Runnable, cpu: Some(cpu) });
            }
        }

        loop {
            let runnable: usize = self.classes.iter().map(|c| c.nr_runnable(cpu)).sum();
            let pick_started = Instant::now();
            let mut next = None;
            for class in 0..self.classes.len() {
                next = self.with_ctx(class, |class, ctx| class.pick_next(ctx, cpu));
                if next.is_some() {
                    break;
                }
            }
            let wall_ns = pick_started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.counters.pick_wall_ns.record(wall_ns);
            self.counters.runq_depth.record(runnable as u64);
            self.emit_metric(MetricEvent::ClassPick { cpu, wall_ns, runnable });
            let Some(tid) = next else {
                // Nothing runnable: try an idle pull, then give up.
                if self.balance(cpu, true) {
                    continue;
                }
                self.cpus[cpu.0].current = None;
                return;
            };
            self.dispatch(cpu, tid, prev);
            // The dispatched task may need its next action; it can sleep or
            // exit right here, in which case pick again.
            if self.cpus[cpu.0].current == Some(tid) && self.tasks[tid.0].remaining_work == 0.0 {
                self.run_transitions(tid);
            }
            if self.cpus[cpu.0].current.is_some() {
                return;
            }
        }
    }

    fn dispatch(&mut self, cpu: CpuId, tid: TaskId, prev: Option<TaskId>) {
        let mut wakeup_latency = None;
        {
            let task = &mut self.tasks[tid.0];
            debug_assert_eq!(task.state, TaskState::Runnable);
            // Runnable→Running: account runqueue wait and wakeup latency.
            let waited = self.now.saturating_since(task.last_state_change);
            task.wait_rq_total += waited;
            task.state = TaskState::Running;
            task.cpu = Some(cpu);
            task.last_state_change = self.now;
            if let Some(woke) = task.last_wakeup.take() {
                let lat = self.now.saturating_since(woke);
                task.latency_total += lat;
                task.latency_samples += 1;
                self.latency_us.record(lat.as_nanos() as f64 / 1_000.0);
                wakeup_latency = Some(lat);
            }
        }
        if let Some(lat) = wakeup_latency {
            let latency_ns = lat.as_nanos();
            self.counters.dispatch_latency_ns.record(latency_ns);
            self.emit_metric(MetricEvent::DispatchLatency { cpu, task: tid, latency_ns });
        }
        self.cpus[cpu.0].current = Some(tid);
        if prev != Some(tid) {
            self.counters.context_switches.inc();
            self.emit_metric(MetricEvent::ContextSwitch { cpu, task: tid });
            self.tasks[tid.0].nr_switches += 1;
            if !self.config.ctx_switch_cost.is_zero() {
                self.cpus[cpu.0].switch_until = self.now + self.config.ctx_switch_cost;
            }
        }
        self.emit(tid, TraceEvent::State { state: TaskState::Running, cpu: Some(cpu) });
    }

    /// Refresh chip load/priority registers from dispatch state, re-cache
    /// speeds, and re-arm per-CPU work completion events.
    fn refresh_hw(&mut self) {
        for cpu in 0..self.cpus.len() {
            match self.cpus[cpu].current {
                Some(tid) => {
                    let task = &self.tasks[tid.0];
                    let (perf, hw_prio) = (task.perf, task.hw_prio);
                    self.chip.set_load(CpuId(cpu), Some(perf));
                    let from = self.chip.priority_of(CpuId(cpu));
                    if from != hw_prio {
                        // INVARIANT: the kernel runs at supervisor
                        // privilege and the heuristics clamp priorities
                        // into the supervisor range; cannot fail.
                        self.chip
                            .set_priority(CpuId(cpu), hw_prio, PrivilegeLevel::Supervisor)
                            .expect("scheduler priorities stay in supervisor range");
                        self.counters.cpu_hw_prio_transitions[cpu].inc();
                        self.emit_metric(MetricEvent::HwPrioTransition {
                            cpu: CpuId(cpu),
                            from,
                            to: hw_prio,
                        });
                    }
                }
                None => {
                    self.chip.set_load(CpuId(cpu), None);
                }
            }
        }
        let speeds = self.chip.all_speeds();
        for (cpu, &speed) in speeds.iter().enumerate().take(self.cpus.len()) {
            // Injected straggler drift composes with the chip model: the
            // cached speed is the chip speed scaled by the running task's
            // fault multiplier (1.0 unless a SlowTask fault changed it).
            let scale = match self.cpus[cpu].current {
                Some(tid) => self.tasks[tid.0].fault_slow,
                None => 1.0,
            };
            self.cpus[cpu].speed = speed * scale;
            self.rearm_workdone(CpuId(cpu));
        }
    }

    fn rearm_workdone(&mut self, cpu: CpuId) {
        let cs = &mut self.cpus[cpu.0];
        let old = cs.workdone_ev;
        cs.workdone_ev = EventId::NONE;
        if old != EventId::NONE {
            self.events.cancel(old);
        }
        let Some(tid) = self.cpus[cpu.0].current else { return };
        let remaining = self.tasks[tid.0].remaining_work;
        let speed = self.cpus[cpu.0].speed;
        if remaining <= 0.0 {
            // The segment completed during a sync driven by some other
            // CPU's event (the old completion event may just have been
            // cancelled above): fire completion immediately.
            self.cpus[cpu.0].workdone_ev =
                self.events.schedule(self.now, KEvent::WorkDone(cpu));
            return;
        }
        if speed <= 0.0 {
            // Stalled (e.g. hardware priority 0 on the context): no event;
            // a later state change re-arms.
            return;
        }
        let start = self.now.max(self.cpus[cpu.0].switch_until).max(self.cpus[cpu.0].steal_until);
        let dur = SimDuration::from_secs_f64(remaining / speed);
        // Guarantee forward progress even when the duration rounds to zero.
        let dur = if dur.is_zero() { SimDuration::from_nanos(1) } else { dur };
        let at = start + dur;
        self.cpus[cpu.0].workdone_ev = self.events.schedule(at, KEvent::WorkDone(cpu));
    }

    // ------------------------------------------------------------------
    // Load balancing
    // ------------------------------------------------------------------

    /// Run per-class load balancing for `cpu`; returns whether any task
    /// migrated *to* this CPU.
    fn balance(&mut self, cpu: CpuId, idle: bool) -> bool {
        let mut pulled = false;
        for class in 0..self.classes.len() {
            let migs = self.with_ctx(class, |c, ctx| c.load_balance(ctx, cpu, idle));
            for Migration { task, from, to } in migs {
                if self.tasks[task.0].state != TaskState::Runnable {
                    continue;
                }
                self.with_ctx(class, |c, ctx| c.dequeue(ctx, from, task));
                self.tasks[task.0].cpu = Some(to);
                self.with_ctx(class, |c, ctx| c.enqueue(ctx, to, task, EnqueueKind::Migration));
                self.emit(
                    task,
                    TraceEvent::State { state: TaskState::Runnable, cpu: Some(to) },
                );
                if to == cpu {
                    pulled = true;
                } else {
                    self.check_preempt(to, task);
                }
            }
        }
        pulled
    }

    // ------------------------------------------------------------------
    // Helpers
    // ------------------------------------------------------------------

    fn try_class_of_policy(&self, policy: SchedPolicy) -> Result<usize, SchedError> {
        self.classes
            .iter()
            .position(|c| c.handles(policy))
            .ok_or(SchedError::NoClassForPolicy(policy))
    }

    fn class_of_policy(&self, policy: SchedPolicy) -> usize {
        // INVARIANT: only reached for policies of already-spawned tasks,
        // which try_spawn validated against the installed classes.
        self.try_class_of_policy(policy).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Call a class method with a [`ClassCtx`] over the kernel's state.
    fn with_ctx<R>(
        &mut self,
        class: usize,
        f: impl FnOnce(&mut dyn SchedClass, &mut ClassCtx<'_>) -> R,
    ) -> R {
        let running = self.cpus.iter().map(|c| c.current).collect();
        let mut ctx = ClassCtx {
            now: self.now,
            tasks: &mut self.tasks,
            topology: self.chip.topology(),
            running,
        };
        f(self.classes[class].as_mut(), &mut ctx)
    }

    fn emit(&mut self, task: TaskId, event: TraceEvent) {
        // Trace-derived counters are bumped at the emission point itself so
        // they reconcile 1:1 with the records observers receive, by
        // construction — and keep counting with no observer attached.
        match &event {
            TraceEvent::HwPrio { .. } => self.counters.task_hw_prio_transitions.inc(),
            TraceEvent::IterationEnd { .. } => self.counters.iterations.inc(),
            TraceEvent::Exit => self.counters.task_exits.inc(),
            _ => {}
        }
        if self.observers.is_empty() {
            return;
        }
        let kernel_event = KernelEvent::Trace(TraceRecord { time: self.now, task, event });
        for obs in &mut self.observers {
            obs.on_event(&kernel_event);
        }
    }

    fn emit_metric(&mut self, event: MetricEvent) {
        if self.observers.is_empty() {
            return;
        }
        let kernel_event = KernelEvent::Metric { time: self.now, event };
        for obs in &mut self.observers {
            obs.on_event(&kernel_event);
        }
    }

    /// Diagnostic: the task currently on `cpu`.
    pub fn current_on(&self, cpu: CpuId) -> Option<TaskId> {
        self.cpus[cpu.0].current
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, FnProgram, ScriptedProgram};
    use power5::Topology;

    fn kernel() -> Kernel {
        let chip = Chip::new(Topology::openpower_710());
        Kernel::new(chip, KernelConfig::default())
    }

    fn kernel_1cpu() -> Kernel {
        let chip = Chip::new(Topology::single_core_st());
        Kernel::new(chip, KernelConfig::default())
    }

    #[test]
    fn single_task_computes_and_exits() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "worker",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.5)),
            SpawnOptions::default(),
        );
        let end = k.run_until_exited(&[t], SimDuration::from_secs(10)).expect("finishes");
        // 0.5 work units at ST speed 1.0 → ~0.5s (plus switch cost).
        let secs = end.as_secs_f64();
        assert!((0.5..0.51).contains(&secs), "end {secs}");
        assert_eq!(k.task(t).state, TaskState::Exited);
        assert!(k.task(t).exec_total >= SimDuration::from_millis(499));
    }

    #[test]
    fn two_tasks_on_one_cpu_share_time() {
        let mut k = kernel_1cpu();
        let a = k.spawn(
            "a",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.2)),
            SpawnOptions::default(),
        );
        let b = k.spawn(
            "b",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.2)),
            SpawnOptions::default(),
        );
        let end = k.run_until_exited(&[a, b], SimDuration::from_secs(10)).expect("finishes");
        // Serialized on one CPU: ~0.4s total.
        assert!((0.39..0.45).contains(&end.as_secs_f64()), "end {end}");
        // Both made progress interleaved: context switches happened.
        assert!(k.metrics().context_switches >= 2);
    }

    #[test]
    fn smt_pair_runs_slower_than_solo() {
        let mut k = kernel();
        // Two tasks pinned to the two contexts of core 0.
        let a = k.spawn(
            "a",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(1.0)),
            SpawnOptions { affinity: Some(vec![CpuId(0)]), ..Default::default() },
        );
        let b = k.spawn(
            "b",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(1.0)),
            SpawnOptions { affinity: Some(vec![CpuId(1)]), ..Default::default() },
        );
        let end = k.run_until_exited(&[a, b], SimDuration::from_secs(10)).expect("finishes");
        // Equal-priority SMT: each runs at 0.8 → 1.25s, not 1.0s.
        assert!((1.2..1.3).contains(&end.as_secs_f64()), "end {end}");
    }

    #[test]
    fn hw_priority_speeds_up_favoured_task() {
        let mut k = kernel();
        let fast = k.spawn(
            "fast",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(1.0)),
            SpawnOptions {
                affinity: Some(vec![CpuId(0)]),
                hw_prio: Some(HwPriority::HIGH),
                ..Default::default()
            },
        );
        let slow = k.spawn(
            "slow",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(1.0)),
            SpawnOptions { affinity: Some(vec![CpuId(1)]), ..Default::default() },
        );
        k.run_until_exited(&[fast, slow], SimDuration::from_secs(30)).expect("finishes");
        let t_fast = k.task(fast).exited_at.unwrap();
        let t_slow = k.task(slow).exited_at.unwrap();
        assert!(t_fast < t_slow, "prio 6 task finishes first");
        // diff 2 speeds: 0.92 vs ~0.25 while co-running.
        assert!((1.0..1.2).contains(&t_fast.as_secs_f64()), "fast {t_fast}");
        assert!(t_slow.as_secs_f64() > 1.5, "slow {t_slow}");
    }

    #[test]
    fn block_and_timed_signal() {
        let mut k = kernel_1cpu();
        let mut armed = false;
        let t = k.spawn(
            "sleeper",
            SchedPolicy::Normal,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                if !armed {
                    armed = true;
                    let tok = api.new_token();
                    api.signal_after(SimDuration::from_millis(50), tok);
                    Action::Block(tok)
                } else {
                    Action::Exit
                }
            })),
            SpawnOptions::default(),
        );
        let end = k.run_until_exited(&[t], SimDuration::from_secs(5)).expect("finishes");
        assert!(end.as_secs_f64() >= 0.050);
        assert!(k.task(t).sleep_total >= SimDuration::from_millis(49));
        assert_eq!(k.task(t).iter.iterations, 1, "one sleep = one iteration");
    }

    #[test]
    fn pre_signalled_token_does_not_sleep() {
        let mut k = kernel_1cpu();
        let mut step = 0;
        let t = k.spawn(
            "nosleep",
            SchedPolicy::Normal,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                step += 1;
                match step {
                    1 => {
                        let tok = api.new_token();
                        api.signal(tok);
                        Action::Block(tok)
                    }
                    _ => Action::Exit,
                }
            })),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(1)).expect("finishes");
        assert_eq!(k.task(t).sleep_total, SimDuration::ZERO);
        assert_eq!(k.task(t).iter.iterations, 0);
    }

    #[test]
    fn rt_task_preempts_normal() {
        let mut k = kernel_1cpu();
        let normal = k.spawn(
            "normal",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(1.0)),
            SpawnOptions::default(),
        );
        // RT task arrives by waking after 100ms.
        let mut step = 0;
        let rt = k.spawn(
            "rt",
            SchedPolicy::Fifo,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                step += 1;
                match step {
                    1 => {
                        let tok = api.new_token();
                        api.signal_after(SimDuration::from_millis(100), tok);
                        Action::Block(tok)
                    }
                    2 => Action::Compute(0.3),
                    _ => Action::Exit,
                }
            })),
            SpawnOptions { rt_priority: 10, ..Default::default() },
        );
        k.run_until_exited(&[normal, rt], SimDuration::from_secs(10)).expect("finishes");
        // RT work (0.3s) ran in preference to normal once it woke: RT exits
        // at ~0.4s, normal at ~1.3s.
        let rt_end = k.task(rt).exited_at.unwrap().as_secs_f64();
        let n_end = k.task(normal).exited_at.unwrap().as_secs_f64();
        assert!(rt_end < 0.45, "rt end {rt_end}");
        assert!(n_end > 1.25, "normal end {n_end}");
        // RT wakeup latency is tiny (immediate class preemption).
        assert!(k.task(rt).mean_latency() < SimDuration::from_micros(50));
    }

    #[test]
    fn spawn_places_on_least_loaded_cpu() {
        let mut k = kernel();
        let ids: Vec<TaskId> = (0..4)
            .map(|i| {
                k.spawn(
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(0.1)),
                    SpawnOptions::default(),
                )
            })
            .collect();
        let cpus: Vec<CpuId> = ids.iter().map(|&t| k.task(t).cpu.unwrap()).collect();
        let mut sorted = cpus.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 4, "tasks spread across all CPUs: {cpus:?}");
    }

    #[test]
    fn exited_tasks_free_the_cpu() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "t",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(1)).unwrap();
        assert_eq!(k.current_on(CpuId(0)), None);
    }

    #[test]
    fn run_for_advances_clock() {
        let mut k = kernel_1cpu();
        k.run_for(SimDuration::from_millis(500));
        assert!(k.now() >= SimTime::ZERO + SimDuration::from_millis(500));
    }

    #[test]
    fn noise_daemons_consume_cpu() {
        let chip = Chip::new(Topology::single_core_st());
        let cfg = KernelConfig {
            noise: crate::config::NoiseConfig::heavy(),
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(chip, cfg);
        k.run_for(SimDuration::from_secs(2));
        let noise_exec: SimDuration = k.tasks().iter().map(|t| t.exec_total).sum();
        assert!(
            noise_exec > SimDuration::from_millis(10),
            "daemons should have run: {noise_exec}"
        );
    }

    #[test]
    fn deadline_returns_none() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "long",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(100.0)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_millis(100)).is_none());
    }

    #[test]
    fn yield_rotates_between_tasks() {
        let mut k = kernel_1cpu();
        let mk = |n: u32| {
            let mut left = n;
            FnProgram(move |_api: &mut KernelApi<'_>| {
                if left == 0 {
                    Action::Exit
                } else {
                    left -= 1;
                    Action::Yield
                }
            })
        };
        let a = k.spawn("a", SchedPolicy::Normal, Box::new(mk(5)), SpawnOptions::default());
        let b = k.spawn("b", SchedPolicy::Normal, Box::new(mk(5)), SpawnOptions::default());
        k.run_until_exited(&[a, b], SimDuration::from_secs(1)).expect("finishes");
    }

    #[test]
    fn set_scheduler_moves_task_to_new_policy() {
        let mut k = kernel_1cpu();
        let mut step = 0;
        let t = k.spawn(
            "switcher",
            SchedPolicy::Normal,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                step += 1;
                match step {
                    1 => {
                        api.set_scheduler(SchedPolicy::Batch);
                        Action::Compute(0.01)
                    }
                    _ => Action::Exit,
                }
            })),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(1)).unwrap();
        assert_eq!(k.task(t).policy, SchedPolicy::Batch);
    }

    #[test]
    fn trace_records_lifecycle() {
        let mut k = kernel_1cpu();
        let sink = crate::trace::SharedSink::new();
        k.observe(Box::new(sink.clone()));
        let t = k.spawn(
            "traced",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(1)).unwrap();
        let records = sink.snapshot();
        let kinds: Vec<&TraceEvent> = records.iter().map(|r| &r.event).collect();
        assert!(matches!(kinds.first(), Some(TraceEvent::Spawn { .. })));
        assert!(kinds
            .iter()
            .any(|e| matches!(e, TraceEvent::State { state: TaskState::Running, .. })));
        assert!(matches!(kinds.last(), Some(TraceEvent::Exit)));
    }

    #[test]
    fn try_spawn_rejects_unhandled_policy() {
        let mut k = kernel_1cpu();
        let err = k
            .try_spawn(
                "hpc",
                SchedPolicy::Hpc,
                Box::new(ScriptedProgram::compute_once(0.1)),
                SpawnOptions::default(),
            )
            .unwrap_err();
        assert_eq!(err, crate::SchedError::NoClassForPolicy(SchedPolicy::Hpc));
        assert!(err.to_string().contains("no class handles"));
        // The failed spawn left no task behind.
        assert!(k.tasks().iter().all(|t| t.name != "hpc"));
    }

    #[test]
    fn try_spawn_rejects_empty_affinity() {
        let mut k = kernel_1cpu();
        let before = k.tasks().len();
        let err = k
            .try_spawn(
                "nowhere",
                SchedPolicy::Normal,
                Box::new(ScriptedProgram::compute_once(0.1)),
                SpawnOptions { affinity: Some(vec![]), ..Default::default() },
            )
            .unwrap_err();
        assert!(matches!(err, crate::SchedError::UnschedulableAffinity { .. }));
        assert_eq!(k.tasks().len(), before, "rejected spawn must not mutate");
    }

    #[test]
    fn telemetry_counts_hot_paths() {
        let mut k = kernel_1cpu();
        let a = k.spawn(
            "a",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.1)),
            SpawnOptions::default(),
        );
        let b = k.spawn(
            "b",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.1)),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[a, b], SimDuration::from_secs(5)).unwrap();
        let snap = k.metrics_registry().snapshot();
        assert!(snap.counter("kernel.context_switches") >= 2);
        assert_eq!(snap.counter("kernel.context_switches"), k.metrics().context_switches);
        assert_eq!(snap.counter("kernel.ticks"), k.metrics().ticks);
        assert_eq!(snap.counter("kernel.task_exits"), 2);
        assert!(snap.histogram("kernel.pick_wall_ns").is_some_and(|h| h.count > 0));
        assert!(snap.histogram("kernel.runq_depth").is_some_and(|h| h.count > 0));
        assert!(snap.counter("sim.events.processed") > 0);
    }

    #[test]
    fn metric_events_reach_observers() {
        struct CountingObserver {
            metrics: std::sync::Arc<std::sync::atomic::AtomicU64>,
        }
        impl crate::Observer for CountingObserver {
            fn on_event(&mut self, event: &crate::KernelEvent) {
                if matches!(event, crate::KernelEvent::Metric { .. }) {
                    self.metrics.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
            }
        }
        let seen = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        let mut k = kernel_1cpu();
        k.observe(Box::new(CountingObserver { metrics: seen.clone() }));
        let t = k.spawn(
            "t",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.05)),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(5)).unwrap();
        assert!(seen.load(std::sync::atomic::Ordering::Relaxed) > 0);
    }

    #[test]
    fn steal_burst_stalls_the_context() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "victim",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.1)),
            SpawnOptions::default(),
        );
        // 0.5s steal burst 20ms in: the remaining ~80ms of work cannot
        // finish before the burst ends at ~0.52s.
        k.inject_fault(
            SimTime::ZERO + SimDuration::from_millis(20),
            FaultEvent::StealBurst { cpu: CpuId(0), duration: SimDuration::from_millis(500) },
        );
        let end = k.run_until_exited(&[t], SimDuration::from_secs(10)).expect("finishes");
        let secs = end.as_secs_f64();
        assert!((0.55..0.70).contains(&secs), "end {secs}");
        assert_eq!(k.metrics_registry().snapshot().counter("kernel.faults.steal_bursts"), 1);
    }

    #[test]
    fn slow_task_fault_halves_progress() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "straggler",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.1)),
            SpawnOptions::default(),
        );
        k.inject_fault(SimTime::ZERO, FaultEvent::SlowTask { task: t, factor: 0.5 });
        let end = k.run_until_exited(&[t], SimDuration::from_secs(10)).expect("finishes");
        let secs = end.as_secs_f64();
        assert!((0.19..0.25).contains(&secs), "end {secs}");
        assert_eq!(k.metrics_registry().snapshot().counter("kernel.faults.slowdowns"), 1);
    }

    #[test]
    fn stale_fault_references_are_dropped_not_panics() {
        let mut k = kernel_1cpu();
        let t = k.spawn(
            "t",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.05)),
            SpawnOptions::default(),
        );
        k.inject_fault(SimTime::ZERO, FaultEvent::SlowTask { task: TaskId(99), factor: 0.5 });
        k.inject_fault(SimTime::ZERO, FaultEvent::SlowTask { task: t, factor: f64::NAN });
        k.inject_fault(
            SimTime::ZERO,
            FaultEvent::StealBurst { cpu: CpuId(7), duration: SimDuration::from_secs(1) },
        );
        let end = k.run_until_exited(&[t], SimDuration::from_secs(5)).expect("finishes");
        assert!(end.as_secs_f64() < 0.1, "dropped faults must not slow the run");
        let snap = k.metrics_registry().snapshot();
        assert_eq!(snap.counter("kernel.faults.steal_bursts"), 0);
        assert_eq!(snap.counter("kernel.faults.slowdowns"), 0);
    }
}
