//! An arena-backed red-black tree.
//!
//! The CFS class keeps its runnable tasks in a red-black tree ordered by
//! virtual runtime (paper §III); this is that tree, written from scratch
//! (CLRS-style insert/delete with fixups) rather than borrowed from a
//! collection library, because the experiments benchmark it and the
//! property-test suite checks its invariants directly.
//!
//! Keys must be unique; CFS guarantees that by keying on
//! `(vruntime, task id)`. The leftmost node is cached so `min()` — the
//! scheduler's hot query — is O(1).

use std::cmp::Ordering;

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Color {
    Red,
    Black,
}

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<K> {
    key: K,
    parent: usize,
    left: usize,
    right: usize,
    color: Color,
}

/// Red-black tree over unique, copyable keys.
#[derive(Clone, Debug)]
pub struct RbTree<K> {
    nodes: Vec<Node<K>>,
    free: Vec<usize>,
    root: usize,
    leftmost: usize,
    len: usize,
}

impl<K: Ord + Copy> Default for RbTree<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Copy> RbTree<K> {
    pub fn new() -> Self {
        RbTree { nodes: Vec::new(), free: Vec::new(), root: NIL, leftmost: NIL, len: 0 }
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The smallest key, if any. O(1).
    pub fn min(&self) -> Option<K> {
        if self.leftmost == NIL {
            None
        } else {
            Some(self.nodes[self.leftmost].key)
        }
    }

    /// Remove and return the smallest key.
    pub fn pop_min(&mut self) -> Option<K> {
        let k = self.min()?;
        self.remove(&k);
        Some(k)
    }

    /// Whether `key` is present.
    pub fn contains(&self, key: &K) -> bool {
        self.find(key) != NIL
    }

    /// Insert a key. Returns `false` (and changes nothing) if already
    /// present.
    pub fn insert(&mut self, key: K) -> bool {
        // BST descent.
        let mut parent = NIL;
        let mut cur = self.root;
        while cur != NIL {
            parent = cur;
            match key.cmp(&self.nodes[cur].key) {
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
                Ordering::Equal => return false,
            }
        }
        let n = self.alloc(Node { key, parent, left: NIL, right: NIL, color: Color::Red });
        if parent == NIL {
            self.root = n;
        } else if key < self.nodes[parent].key {
            self.nodes[parent].left = n;
        } else {
            self.nodes[parent].right = n;
        }
        // Maintain the leftmost cache.
        if self.leftmost == NIL || key < self.nodes[self.leftmost].key {
            self.leftmost = n;
        }
        self.len += 1;
        self.insert_fixup(n);
        true
    }

    /// Remove a key. Returns `false` if absent.
    pub fn remove(&mut self, key: &K) -> bool {
        let z = self.find(key);
        if z == NIL {
            return false;
        }
        if z == self.leftmost {
            self.leftmost = self.successor(z);
        }
        self.delete_node(z);
        self.len -= 1;
        true
    }

    /// In-order iteration (ascending keys). O(n) total.
    pub fn iter(&self) -> RbIter<'_, K> {
        RbIter { tree: self, next: self.leftmost }
    }

    // ---- internals ----

    fn alloc(&mut self, node: Node<K>) -> usize {
        if let Some(i) = self.free.pop() {
            self.nodes[i] = node;
            i
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn find(&self, key: &K) -> usize {
        let mut cur = self.root;
        while cur != NIL {
            match key.cmp(&self.nodes[cur].key) {
                Ordering::Less => cur = self.nodes[cur].left,
                Ordering::Greater => cur = self.nodes[cur].right,
                Ordering::Equal => return cur,
            }
        }
        NIL
    }

    fn successor(&self, mut x: usize) -> usize {
        if self.nodes[x].right != NIL {
            let mut c = self.nodes[x].right;
            while self.nodes[c].left != NIL {
                c = self.nodes[c].left;
            }
            return c;
        }
        let mut p = self.nodes[x].parent;
        while p != NIL && x == self.nodes[p].right {
            x = p;
            p = self.nodes[p].parent;
        }
        p
    }

    fn rotate_left(&mut self, x: usize) {
        let y = self.nodes[x].right;
        debug_assert_ne!(y, NIL);
        self.nodes[x].right = self.nodes[y].left;
        if self.nodes[y].left != NIL {
            let yl = self.nodes[y].left;
            self.nodes[yl].parent = x;
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let xp = self.nodes[x].parent;
        if xp == NIL {
            self.root = y;
        } else if x == self.nodes[xp].left {
            self.nodes[xp].left = y;
        } else {
            self.nodes[xp].right = y;
        }
        self.nodes[y].left = x;
        self.nodes[x].parent = y;
    }

    fn rotate_right(&mut self, x: usize) {
        let y = self.nodes[x].left;
        debug_assert_ne!(y, NIL);
        self.nodes[x].left = self.nodes[y].right;
        if self.nodes[y].right != NIL {
            let yr = self.nodes[y].right;
            self.nodes[yr].parent = x;
        }
        self.nodes[y].parent = self.nodes[x].parent;
        let xp = self.nodes[x].parent;
        if xp == NIL {
            self.root = y;
        } else if x == self.nodes[xp].right {
            self.nodes[xp].right = y;
        } else {
            self.nodes[xp].left = y;
        }
        self.nodes[y].right = x;
        self.nodes[x].parent = y;
    }

    fn insert_fixup(&mut self, mut z: usize) {
        while self.nodes[z].parent != NIL && self.color(self.nodes[z].parent) == Color::Red {
            let p = self.nodes[z].parent;
            let g = self.nodes[p].parent;
            debug_assert_ne!(g, NIL, "red root parent");
            if p == self.nodes[g].left {
                let u = self.nodes[g].right;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].right {
                        z = p;
                        self.rotate_left(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_right(g);
                }
            } else {
                let u = self.nodes[g].left;
                if self.color(u) == Color::Red {
                    self.nodes[p].color = Color::Black;
                    self.nodes[u].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    z = g;
                } else {
                    if z == self.nodes[p].left {
                        z = p;
                        self.rotate_right(z);
                    }
                    let p = self.nodes[z].parent;
                    let g = self.nodes[p].parent;
                    self.nodes[p].color = Color::Black;
                    self.nodes[g].color = Color::Red;
                    self.rotate_left(g);
                }
            }
        }
        let r = self.root;
        self.nodes[r].color = Color::Black;
    }

    fn color(&self, n: usize) -> Color {
        if n == NIL {
            Color::Black
        } else {
            self.nodes[n].color
        }
    }

    fn transplant(&mut self, u: usize, v: usize) {
        let up = self.nodes[u].parent;
        if up == NIL {
            self.root = v;
        } else if u == self.nodes[up].left {
            self.nodes[up].left = v;
        } else {
            self.nodes[up].right = v;
        }
        if v != NIL {
            self.nodes[v].parent = up;
        }
    }

    fn delete_node(&mut self, z: usize) {
        let mut y = z;
        let mut y_color = self.nodes[y].color;
        let x;
        let x_parent;
        if self.nodes[z].left == NIL {
            x = self.nodes[z].right;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else if self.nodes[z].right == NIL {
            x = self.nodes[z].left;
            x_parent = self.nodes[z].parent;
            self.transplant(z, x);
        } else {
            // y = minimum of right subtree.
            y = self.nodes[z].right;
            while self.nodes[y].left != NIL {
                y = self.nodes[y].left;
            }
            y_color = self.nodes[y].color;
            x = self.nodes[y].right;
            if self.nodes[y].parent == z {
                x_parent = y;
            } else {
                x_parent = self.nodes[y].parent;
                self.transplant(y, x);
                self.nodes[y].right = self.nodes[z].right;
                let yr = self.nodes[y].right;
                self.nodes[yr].parent = y;
            }
            self.transplant(z, y);
            self.nodes[y].left = self.nodes[z].left;
            let yl = self.nodes[y].left;
            self.nodes[yl].parent = y;
            self.nodes[y].color = self.nodes[z].color;
        }
        if y_color == Color::Black {
            self.delete_fixup(x, x_parent);
        }
        self.free.push(z);
    }

    /// CLRS delete-fixup, tracking the parent explicitly because `x` may be
    /// NIL (we have no sentinel node).
    fn delete_fixup(&mut self, mut x: usize, mut parent: usize) {
        while x != self.root && self.color(x) == Color::Black {
            if parent == NIL {
                break;
            }
            if x == self.nodes[parent].left {
                let mut w = self.nodes[parent].right;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[parent].color = Color::Red;
                    self.rotate_left(parent);
                    w = self.nodes[parent].right;
                }
                if self.color(self.node_left(w)) == Color::Black
                    && self.color(self.node_right(w)) == Color::Black
                {
                    if w != NIL {
                        self.nodes[w].color = Color::Red;
                    }
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.node_right(w)) == Color::Black {
                        let wl = self.node_left(w);
                        if wl != NIL {
                            self.nodes[wl].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_right(w);
                        w = self.nodes[parent].right;
                    }
                    self.nodes[w].color = self.nodes[parent].color;
                    self.nodes[parent].color = Color::Black;
                    let wr = self.node_right(w);
                    if wr != NIL {
                        self.nodes[wr].color = Color::Black;
                    }
                    self.rotate_left(parent);
                    x = self.root;
                    break;
                }
            } else {
                let mut w = self.nodes[parent].left;
                if self.color(w) == Color::Red {
                    self.nodes[w].color = Color::Black;
                    self.nodes[parent].color = Color::Red;
                    self.rotate_right(parent);
                    w = self.nodes[parent].left;
                }
                if self.color(self.node_left(w)) == Color::Black
                    && self.color(self.node_right(w)) == Color::Black
                {
                    if w != NIL {
                        self.nodes[w].color = Color::Red;
                    }
                    x = parent;
                    parent = self.nodes[x].parent;
                } else {
                    if self.color(self.node_left(w)) == Color::Black {
                        let wr = self.node_right(w);
                        if wr != NIL {
                            self.nodes[wr].color = Color::Black;
                        }
                        self.nodes[w].color = Color::Red;
                        self.rotate_left(w);
                        w = self.nodes[parent].left;
                    }
                    self.nodes[w].color = self.nodes[parent].color;
                    self.nodes[parent].color = Color::Black;
                    let wl = self.node_left(w);
                    if wl != NIL {
                        self.nodes[wl].color = Color::Black;
                    }
                    self.rotate_right(parent);
                    x = self.root;
                    break;
                }
            }
        }
        if x != NIL {
            self.nodes[x].color = Color::Black;
        }
    }

    fn node_left(&self, n: usize) -> usize {
        if n == NIL {
            NIL
        } else {
            self.nodes[n].left
        }
    }

    fn node_right(&self, n: usize) -> usize {
        if n == NIL {
            NIL
        } else {
            self.nodes[n].right
        }
    }

    /// Validate every red-black invariant. Test/diagnostic use; panics with
    /// a description on violation.
    pub fn assert_invariants(&self) {
        if self.root == NIL {
            assert_eq!(self.len, 0, "empty tree with non-zero len");
            assert_eq!(self.leftmost, NIL);
            return;
        }
        assert_eq!(self.color(self.root), Color::Black, "root must be black");
        assert_eq!(self.nodes[self.root].parent, NIL, "root has a parent");
        let (count, _) = self.check_subtree(self.root, None, None);
        assert_eq!(count, self.len, "len mismatch");
        // Leftmost cache correctness.
        let mut m = self.root;
        while self.nodes[m].left != NIL {
            m = self.nodes[m].left;
        }
        assert_eq!(self.leftmost, m, "leftmost cache stale");
    }

    fn check_subtree(&self, n: usize, lo: Option<K>, hi: Option<K>) -> (usize, usize) {
        if n == NIL {
            return (0, 1); // black-height of NIL = 1
        }
        let node = &self.nodes[n];
        if let Some(lo) = lo {
            assert!(node.key > lo, "BST order violated (left bound)");
        }
        if let Some(hi) = hi {
            assert!(node.key < hi, "BST order violated (right bound)");
        }
        if node.color == Color::Red {
            assert_eq!(self.color(node.left), Color::Black, "red node with red left child");
            assert_eq!(self.color(node.right), Color::Black, "red node with red right child");
        }
        if node.left != NIL {
            assert_eq!(self.nodes[node.left].parent, n, "broken parent link (left)");
        }
        if node.right != NIL {
            assert_eq!(self.nodes[node.right].parent, n, "broken parent link (right)");
        }
        let (lc, lbh) = self.check_subtree(node.left, lo, Some(node.key));
        let (rc, rbh) = self.check_subtree(node.right, Some(node.key), hi);
        assert_eq!(lbh, rbh, "black-height mismatch");
        let bh = lbh + if node.color == Color::Black { 1 } else { 0 };
        (lc + rc + 1, bh)
    }
}

/// Ascending in-order iterator.
pub struct RbIter<'a, K> {
    tree: &'a RbTree<K>,
    next: usize,
}

impl<'a, K: Ord + Copy> Iterator for RbIter<'a, K> {
    type Item = K;

    fn next(&mut self) -> Option<K> {
        if self.next == NIL {
            return None;
        }
        let k = self.tree.nodes[self.next].key;
        self.next = self.tree.successor(self.next);
        Some(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree() {
        let t: RbTree<u64> = RbTree::new();
        assert!(t.is_empty());
        assert_eq!(t.min(), None);
        assert!(!t.contains(&3));
        t.assert_invariants();
    }

    #[test]
    fn insert_and_min() {
        let mut t = RbTree::new();
        for k in [5u64, 3, 8, 1, 9, 7] {
            assert!(t.insert(k));
            t.assert_invariants();
        }
        assert_eq!(t.len(), 6);
        assert_eq!(t.min(), Some(1));
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = RbTree::new();
        assert!(t.insert(4u64));
        assert!(!t.insert(4));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_maintains_invariants() {
        let mut t = RbTree::new();
        for k in 0..64u64 {
            t.insert(k);
        }
        for k in (0..64u64).step_by(3) {
            assert!(t.remove(&k));
            t.assert_invariants();
        }
        assert!(!t.remove(&0), "already removed");
        assert_eq!(t.len(), 64 - 22);
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut t = RbTree::new();
        let mut keys: Vec<u64> = (0..100).map(|i| (i * 37) % 101).collect();
        for &k in &keys {
            t.insert(k);
        }
        keys.sort_unstable();
        let mut out = Vec::new();
        while let Some(k) = t.pop_min() {
            t.assert_invariants();
            out.push(k);
        }
        assert_eq!(out, keys);
    }

    #[test]
    fn iter_is_sorted() {
        let mut t = RbTree::new();
        for k in [9u64, 2, 7, 4, 0, 5] {
            t.insert(k);
        }
        let v: Vec<u64> = t.iter().collect();
        assert_eq!(v, vec![0, 2, 4, 5, 7, 9]);
    }

    #[test]
    fn node_reuse_via_free_list() {
        let mut t = RbTree::new();
        for k in 0..10u64 {
            t.insert(k);
        }
        for k in 0..10u64 {
            t.remove(&k);
        }
        let cap_before = t.nodes.len();
        for k in 10..20u64 {
            t.insert(k);
        }
        assert_eq!(t.nodes.len(), cap_before, "freed slots reused");
        t.assert_invariants();
    }

    #[test]
    fn tuple_keys_mirror_cfs_usage() {
        // CFS keys: (vruntime, task id) — duplicates in vruntime allowed.
        let mut t = RbTree::new();
        t.insert((100u64, 1usize));
        t.insert((100u64, 2usize));
        t.insert((50u64, 3usize));
        assert_eq!(t.min(), Some((50, 3)));
        t.assert_invariants();
    }

    #[test]
    fn descending_and_ascending_insert_patterns() {
        for order in [true, false] {
            let mut t = RbTree::new();
            let keys: Vec<u64> =
                if order { (0..200).collect() } else { (0..200).rev().collect() };
            for k in keys {
                t.insert(k);
                t.assert_invariants();
            }
            assert_eq!(t.min(), Some(0));
        }
    }
}
