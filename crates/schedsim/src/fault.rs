//! Kernel-level fault hook points (classes 1 and 2 of the fault model).
//!
//! These are the *hooks*, not the policy: fault schedules are compiled by
//! the `faultsim` crate from a seeded plan and delivered through
//! [`crate::Kernel::inject_fault`] as ordinary events on the simulation
//! queue, so a faulted run stays a pure function of `(config, seed, plan)`.
//! A kernel that never receives a `FaultEvent` behaves bit-for-bit as if
//! this module did not exist.

use crate::task::TaskId;
use power5::CpuId;
use simcore::SimDuration;

/// An injected kernel-level fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// OS noise / daemon interference: something outside the simulated
    /// scheduler holds `cpu` for `duration`. No work accrues on the context
    /// until the burst ends; the dispatched task simply stalls, exactly as
    /// if a hypervisor or bound daemon had stolen the hardware thread.
    StealBurst { cpu: CpuId, duration: SimDuration },
    /// Compute slowdown / straggler drift: from now on `task` executes at
    /// `factor` × its modelled speed (1.0 = nominal, 0.5 = half speed,
    /// 0.0 = fully stalled). Replaces any earlier factor for the task.
    SlowTask { task: TaskId, factor: f64 },
}
