//! Discrete-event simulation of the Linux 2.6.2x scheduler framework
//! (paper §III), hosting simulated tasks on a simulated POWER5 chip.
//!
//! The framework mirrors the structure the paper builds on:
//!
//! * a **Scheduler Core** ([`Kernel`]) that owns per-CPU state and walks an
//!   ordered chain of **Scheduling Classes** to pick the next task — no task
//!   from a lower class runs while a higher class has runnable work;
//! * a **real-time class** ([`classes::RtClass`]) with per-priority
//!   round-robin queues (the old O(1)-style design);
//! * the **CFS class** ([`classes::FairClass`]) with a hand-written
//!   red-black tree ([`rbtree`]) ordered by virtual runtime;
//! * an **idle class** ([`classes::IdleClass`]) that always has something to
//!   run;
//! * scheduling-domain aware **load balancing** hooks, wakeup preemption,
//!   per-task accounting (exec / wait / sleep, per-iteration run+sleep), and
//!   scheduler-latency measurement;
//! * an **OS noise** model ([`noise`]) of per-CPU background daemons.
//!
//! The paper's own class (`SCHED_HPC`) is *not* in this crate: it plugs in
//! through the [`class::SchedClass`] trait from the `hpcsched` crate,
//! exactly as the paper inserts its class between the real-time and CFS
//! classes (Figure 1(b)).
//!
//! Simulated tasks execute [`program::Program`]s: state machines yielding
//! compute segments, blocking waits and exits. Blocking and waking is how
//! the kernel observes the *iterations* (compute phase + wait phase) that
//! drive the paper's Load Imbalance Detector.

pub mod class;
pub mod classes;
pub mod config;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod noise;
pub mod observer;
pub mod policy;
pub mod program;
pub mod rbtree;
pub mod task;
pub mod trace;

pub use class::{ClassCtx, SchedClass};
pub use config::{CfsTunables, KernelConfig, NoiseConfig};
pub use error::SchedError;
pub use fault::FaultEvent;
pub use kernel::{Kernel, KernelMetrics, SpawnOptions};
pub use observer::{KernelEvent, MetricEvent, Observer};
pub use policy::SchedPolicy;
pub use program::{Action, KernelApi, Program, WaitToken, Work};
pub use task::{Task, TaskId, TaskState};
pub use trace::{SharedSink, TraceEvent, TraceRecord, TraceSink};
