//! Discrete-event simulation of the Linux 2.6.2x scheduler framework
//! (paper §III), hosting simulated tasks on a simulated POWER5 chip.
//!
//! The framework mirrors the structure the paper builds on:
//!
//! * a **Scheduler Core** ([`Kernel`]) that owns per-CPU state and walks an
//!   ordered chain of **Scheduling Classes** to pick the next task — no task
//!   from a lower class runs while a higher class has runnable work;
//! * a **real-time class** ([`classes::RtClass`]) with per-priority
//!   round-robin queues (the old O(1)-style design);
//! * the **CFS class** ([`classes::FairClass`]) with a hand-written
//!   red-black tree ([`rbtree`]) ordered by virtual runtime;
//! * an **idle class** ([`classes::IdleClass`]) that always has something to
//!   run;
//! * scheduling-domain aware **load balancing** hooks, wakeup preemption,
//!   per-task accounting (exec / wait / sleep, per-iteration run+sleep), and
//!   scheduler-latency measurement;
//! * an **OS noise** model ([`noise`]) of per-CPU background daemons.
//!
//! The paper's own class (`SCHED_HPC`) is [`classes::BalancedClass`]: a
//! thin driver inserted between the real-time and CFS classes (Figure 1(b))
//! that owns the HPC run queues and delegates every balancing *decision*
//! to a pluggable [`Balancer`]. The policies implementing that trait — the
//! paper's Table-I policy and the LB4OMP-style dynamic techniques — live
//! in [`policies`], selectable by name through [`policies::registry`] and
//! [`KernelBuilder::policy`].
//!
//! Simulated tasks execute [`program::Program`]s: state machines yielding
//! compute segments, blocking waits and exits. Blocking and waking is how
//! the kernel observes the *iterations* (compute phase + wait phase) that
//! drive the paper's Load Imbalance Detector.

pub mod balance;
pub mod balancer;
pub mod builder;
pub mod class;
pub mod classes;
pub mod config;
pub mod error;
pub mod fault;
pub mod kernel;
pub mod noise;
pub mod observer;
pub mod policies;
pub mod policy;
pub mod program;
pub mod rbtree;
pub mod task;
pub mod trace;

pub use balance::BalanceView;
pub use balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
pub use builder::{HpcSchedConfig, KernelBuilder, PerfModelChoice};
pub use class::{ClassCtx, SchedClass};
pub use classes::{BalancedClass, HpcPolicyKind};
pub use config::{CfsTunables, KernelConfig, NoiseConfig};
pub use error::SchedError;
pub use fault::FaultEvent;
pub use kernel::{Kernel, KernelMetrics, SpawnOptions};
pub use observer::{KernelEvent, MetricEvent, Observer};
pub use policy::SchedPolicy;
pub use program::{Action, KernelApi, Program, WaitToken, Work};
pub use task::{Task, TaskId, TaskState};
pub use trace::{SharedSink, TraceEvent, TraceRecord, TraceSink};
