//! Kernel trace hooks.
//!
//! The kernel emits a [`TraceRecord`] on every scheduler-visible transition.
//! Collectors (the `tracefmt` crate) implement [`TraceSink`]; the kernel
//! stays agnostic of storage and rendering — the same role PARAVER's
//! instrumentation plays in the paper's evaluation.

use crate::task::{TaskId, TaskState};
use power5::{CpuId, HwPriority};
use simcore::SimTime;

/// What happened.
#[derive(Clone, Debug, PartialEq)]
pub enum TraceEvent {
    /// Task created.
    Spawn { name: String },
    /// Task changed scheduler-visible state.
    State { state: TaskState, cpu: Option<CpuId> },
    /// The hardware priority applied for this task changed.
    HwPrio { prio: HwPriority },
    /// An iteration (compute + wait phase) completed, with its utilization
    /// in `[0,1]`.
    IterationEnd { index: u64, utilization: f64 },
    /// Task exited.
    Exit,
}

/// A timestamped, task-attributed trace record.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRecord {
    pub time: SimTime,
    pub task: TaskId,
    pub event: TraceEvent,
}

/// Receives trace records as the simulation runs.
pub trait TraceSink: Send {
    fn record(&mut self, rec: TraceRecord);
}

/// A sink that stores everything in memory.
#[derive(Default)]
pub struct VecSink {
    pub records: Vec<TraceRecord>,
}

impl TraceSink for VecSink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.push(rec);
    }
}

/// A sink writing into a shared buffer, so callers keep access to the
/// records while the kernel owns the sink.
#[derive(Clone, Default)]
pub struct SharedSink {
    records: std::sync::Arc<std::sync::Mutex<Vec<TraceRecord>>>,
}

impl SharedSink {
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshot the records collected so far.
    ///
    /// Poison-proof: a panic on another thread mid-`push` cannot leave the
    /// Vec in a broken state, so recover the inner buffer instead of
    /// cascading the poison into every later reader.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.records.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }
}

impl TraceSink for SharedSink {
    fn record(&mut self, rec: TraceRecord) {
        self.records.lock().unwrap_or_else(|p| p.into_inner()).push(rec);
    }
}

/// A sink that discards everything (the default).
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _rec: TraceRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sink_accumulates() {
        let mut s = VecSink::default();
        s.record(TraceRecord { time: SimTime::ZERO, task: TaskId(1), event: TraceEvent::Exit });
        assert_eq!(s.records.len(), 1);
        assert_eq!(s.records[0].task, TaskId(1));
    }

    #[test]
    fn null_sink_ignores() {
        let mut s = NullSink;
        s.record(TraceRecord { time: SimTime::ZERO, task: TaskId(0), event: TraceEvent::Exit });
    }
}
