//! Simulated task (process) descriptors and accounting.

use crate::policy::SchedPolicy;
use crate::program::Program;
use power5::{CpuId, HwPriority, TaskPerfTraits};
use simcore::{SimDuration, SimTime};
use std::fmt;

/// Index of a task in the kernel's task table. Task 0..n are created in
/// spawn order; ids are never reused.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, serde::Serialize, serde::Deserialize)]
pub struct TaskId(pub usize);

impl fmt::Debug for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

impl simcore::snapshot::Snapshot for TaskId {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_len(self.0);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(TaskId(r.get_len()?))
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// Scheduler-visible task state.
#[derive(Clone, Copy, PartialEq, Eq, Debug, serde::Serialize, serde::Deserialize)]
pub enum TaskState {
    /// On a runqueue, waiting for a CPU.
    Runnable,
    /// Currently executing on a CPU.
    Running,
    /// Blocked (MPI wait, timer); not on any runqueue.
    Sleeping,
    /// Finished; never scheduled again.
    Exited,
}

/// Accounting for the current iteration (compute phase + wait phase,
/// paper §IV-B and Figure 2) plus lifetime totals.
#[derive(Clone, Copy, Debug, Default)]
pub struct IterationAccounting {
    /// CPU time consumed since the current iteration started (`tR`).
    pub run_in_iter: SimDuration,
    /// Completed iterations.
    pub iterations: u64,
    /// When the current iteration started.
    pub iter_started: SimTime,
}

/// A simulated process.
pub struct Task {
    pub id: TaskId,
    pub name: String,
    pub policy: SchedPolicy,
    /// Nice value for CFS policies (−20 … 19).
    pub nice: i32,
    /// Real-time priority for FIFO/RR (1 … 99, higher wins).
    pub rt_priority: u8,
    pub state: TaskState,
    /// CPU the task is running on, or last ran on.
    pub cpu: Option<CpuId>,
    /// Allowed CPUs; `None` = no restriction.
    pub affinity: Option<Vec<CpuId>>,
    /// Hardware thread priority the mechanism applies when this task is
    /// dispatched onto a context. Heuristics write this; default Medium (4).
    pub hw_prio: HwPriority,
    /// SMT performance traits fed to the chip model.
    pub perf: TaskPerfTraits,

    // ---- CFS bookkeeping ----
    /// Virtual runtime in weighted nanoseconds.
    pub vruntime: u64,

    // ---- round-robin bookkeeping (RT RR and HPC RR) ----
    /// Remaining time slice.
    pub slice_left: SimDuration,

    // ---- lifetime accounting ----
    pub spawned_at: SimTime,
    pub exited_at: Option<SimTime>,
    pub exec_total: SimDuration,
    /// Time spent runnable-but-not-running.
    pub wait_rq_total: SimDuration,
    pub sleep_total: SimDuration,
    /// Moment of the last state transition (basis for the above).
    pub last_state_change: SimTime,

    // ---- wakeup latency ----
    /// When the task last became runnable (for latency measurement).
    pub last_wakeup: Option<SimTime>,
    /// When the task last went to sleep.
    pub last_sleep_start: Option<SimTime>,
    /// Accumulated wakeup→dispatch latency.
    pub latency_total: SimDuration,
    pub latency_samples: u64,

    // ---- iteration accounting ----
    pub iter: IterationAccounting,

    // ---- voluntary/involuntary switches ----
    pub nr_switches: u64,

    /// The code the task runs. Taken out while an action executes.
    pub(crate) program: Option<Box<dyn Program>>,
    /// Work units left in the current compute segment.
    pub(crate) remaining_work: f64,
    /// Injected speed multiplier (fault class 2: straggler drift); 1.0 when
    /// no fault touched the task. Applied on top of the chip-model speed.
    pub(crate) fault_slow: f64,
}

impl Task {
    /// Construct a task descriptor. Normally tasks are created through
    /// [`crate::Kernel::spawn`]; this is public so scheduling classes in
    /// other crates can build descriptors in their own unit tests.
    pub fn new(
        id: TaskId,
        name: String,
        policy: SchedPolicy,
        program: Box<dyn Program>,
        now: SimTime,
    ) -> Self {
        Task {
            id,
            name,
            policy,
            nice: 0,
            rt_priority: 0,
            state: TaskState::Runnable,
            cpu: None,
            affinity: None,
            hw_prio: HwPriority::MEDIUM,
            perf: TaskPerfTraits::default(),
            vruntime: 0,
            slice_left: SimDuration::ZERO,
            spawned_at: now,
            exited_at: None,
            exec_total: SimDuration::ZERO,
            wait_rq_total: SimDuration::ZERO,
            sleep_total: SimDuration::ZERO,
            last_state_change: now,
            last_wakeup: Some(now),
            last_sleep_start: None,
            latency_total: SimDuration::ZERO,
            latency_samples: 0,
            iter: IterationAccounting { iter_started: now, ..Default::default() },
            nr_switches: 0,
            program: Some(program),
            remaining_work: 0.0,
            fault_slow: 1.0,
        }
    }

    /// Whether the task may run on `cpu`.
    pub fn allowed_on(&self, cpu: CpuId) -> bool {
        match &self.affinity {
            None => true,
            Some(set) => set.contains(&cpu),
        }
    }

    /// Lifetime wall-clock, using `now` for still-live tasks.
    pub fn lifetime(&self, now: SimTime) -> SimDuration {
        self.exited_at.unwrap_or(now).saturating_since(self.spawned_at)
    }

    /// Lifetime CPU utilization in `[0,1]` — the paper's `%Comp` metric.
    pub fn cpu_utilization(&self, now: SimTime) -> f64 {
        let life = self.lifetime(now);
        if life.is_zero() {
            0.0
        } else {
            self.exec_total.as_nanos() as f64 / life.as_nanos() as f64
        }
    }

    /// Mean wakeup→dispatch scheduler latency.
    pub fn mean_latency(&self) -> SimDuration {
        if self.latency_samples == 0 {
            SimDuration::ZERO
        } else {
            self.latency_total / self.latency_samples
        }
    }

    pub fn is_live(&self) -> bool {
        self.state != TaskState::Exited
    }

    /// Work units left in the current compute segment (diagnostic).
    pub fn remaining_work(&self) -> f64 {
        self.remaining_work
    }
}

impl fmt::Debug for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Task")
            .field("id", &self.id)
            .field("name", &self.name)
            .field("policy", &self.policy)
            .field("state", &self.state)
            .field("cpu", &self.cpu)
            .field("hw_prio", &self.hw_prio)
            .field("exec_total", &self.exec_total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{Action, KernelApi};

    struct Nop;
    impl Program for Nop {
        fn next_action(&mut self, _api: &mut KernelApi<'_>) -> Action {
            Action::Exit
        }
    }

    fn mk() -> Task {
        Task::new(TaskId(0), "t".into(), SchedPolicy::Normal, Box::new(Nop), SimTime::ZERO)
    }

    #[test]
    fn new_task_is_runnable_medium() {
        let t = mk();
        assert_eq!(t.state, TaskState::Runnable);
        assert_eq!(t.hw_prio, HwPriority::MEDIUM);
        assert!(t.is_live());
    }

    #[test]
    fn affinity_checks() {
        let mut t = mk();
        assert!(t.allowed_on(CpuId(3)));
        t.affinity = Some(vec![CpuId(1)]);
        assert!(t.allowed_on(CpuId(1)));
        assert!(!t.allowed_on(CpuId(0)));
    }

    #[test]
    fn utilization_is_exec_over_lifetime() {
        let mut t = mk();
        t.exec_total = SimDuration::from_secs(1);
        let now = SimTime::ZERO + SimDuration::from_secs(4);
        assert!((t.cpu_utilization(now) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_newborn_is_zero() {
        let t = mk();
        assert_eq!(t.cpu_utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn mean_latency() {
        let mut t = mk();
        assert_eq!(t.mean_latency(), SimDuration::ZERO);
        t.latency_total = SimDuration::from_micros(30);
        t.latency_samples = 3;
        assert_eq!(t.mean_latency(), SimDuration::from_micros(10));
    }

    #[test]
    fn lifetime_uses_exit_time_when_exited() {
        let mut t = mk();
        t.exited_at = Some(SimTime::ZERO + SimDuration::from_secs(2));
        let much_later = SimTime::ZERO + SimDuration::from_secs(100);
        assert_eq!(t.lifetime(much_later), SimDuration::from_secs(2));
    }
}
