//! Fallible-API error type for kernel construction and task admission.

use crate::policy::SchedPolicy;
use std::fmt;

/// Why the kernel refused a request.
#[derive(Clone, Debug, PartialEq)]
pub enum SchedError {
    /// No installed scheduling class handles the requested policy (e.g.
    /// `SCHED_HPC` on a kernel built without the HPC class).
    NoClassForPolicy(SchedPolicy),
    /// The task's CPU affinity mask excludes every CPU in the topology.
    UnschedulableAffinity { task: String },
    /// HPC tunables failed validation.
    InvalidTunables(String),
    /// The requested topology cannot host the configuration.
    InvalidTopology(String),
    /// The named balancing policy is not in [`crate::policies::registry`].
    UnknownPolicy(String),
}

impl fmt::Display for SchedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            // Wording is load-bearing: callers (and tests) match on the
            // panic message of the infallible wrappers.
            SchedError::NoClassForPolicy(p) => write!(f, "no class handles {p:?}"),
            SchedError::UnschedulableAffinity { task } => {
                write!(f, "task affinity excludes every CPU (task `{task}`)")
            }
            SchedError::InvalidTunables(msg) => write!(f, "invalid HPC tunables: {msg}"),
            SchedError::InvalidTopology(msg) => write!(f, "invalid topology: {msg}"),
            SchedError::UnknownPolicy(name) => {
                write!(f, "unknown policy `{name}`; see `--policy help`")
            }
        }
    }
}

impl std::error::Error for SchedError {}
