//! Convenience assembly: a simulated POWER5 machine running a kernel with
//! the HPC scheduling class — driven by any registered balancing policy.
//!
//! This is the policy-aware successor of the old `hpcsched::HpcKernelBuilder`
//! (which now delegates here). Differences:
//!
//! * the balancing policy is selected by registry name
//!   ([`KernelBuilder::policy`], default `"hpc"`) or injected as a custom
//!   [`Balancer`] instance ([`KernelBuilder::balancer`]);
//! * there is a single tunables path: the shared handle exists from
//!   [`KernelBuilder::new`] on and is read with [`KernelBuilder::tunables`],
//!   instead of the old `try_build` / `try_build_with_tunables` split.

use crate::balancer::Balancer;
use crate::classes::{BalancedClass, HpcPolicyKind};
use crate::config::KernelConfig;
use crate::error::SchedError;
use crate::kernel::Kernel;
use crate::policies::{self, HeuristicKind, HpcTunables, PolicyCtx, SharedTunables};
use power5::{AnalyticModel, Chip, TableModel, Topology};
use simcore::SimDuration;
use std::sync::{Arc, Mutex};

/// Configuration of the HPC scheduling class.
#[derive(Clone, Debug)]
pub struct HpcSchedConfig {
    pub policy: HpcPolicyKind,
    /// RR time slice for HPC tasks.
    pub slice: SimDuration,
    /// Balancing policy, by [`policies::registry`] name.
    pub balancer: &'static str,
    /// Heuristic selection, honored by the heuristic-parametric policies
    /// (`hpc`, `hpc-static`).
    pub heuristic: HeuristicKind,
    pub tunables: HpcTunables,
    /// Use the POWER5 mechanism (true) or the no-op mechanism for
    /// architectures without hardware prioritization (false).
    pub power5_mechanism: bool,
    /// Disable the dynamic heuristic entirely (class placement only).
    pub policy_only: bool,
}

impl Default for HpcSchedConfig {
    fn default() -> Self {
        HpcSchedConfig {
            policy: HpcPolicyKind::Rr,
            slice: SimDuration::from_millis(100),
            balancer: "hpc",
            heuristic: HeuristicKind::Uniform,
            tunables: HpcTunables::default(),
            power5_mechanism: true,
            policy_only: false,
        }
    }
}

/// Which SMT performance model the chip uses.
#[derive(Clone, Copy, Debug)]
pub enum PerfModelChoice {
    /// The calibrated table model (default; DESIGN.md §3.2).
    Table,
    /// The analytic rational model with concavity `k` (ablations).
    Analytic { k: f64 },
}

/// Builds a [`Kernel`] on a simulated POWER5 with (optionally) the HPC
/// class installed — the standard entry point for examples, tests and
/// experiments.
pub struct KernelBuilder {
    topology: Topology,
    kernel: KernelConfig,
    hpc: Option<HpcSchedConfig>,
    model: PerfModelChoice,
    /// The live tunables handle (the simulated sysfs mount); created up
    /// front so callers can hold it before and after the build.
    tunables: SharedTunables,
    custom: Option<Box<dyn Balancer>>,
    /// A `policy()` name that failed registry lookup, reported at build.
    bad_policy: Option<String>,
}

impl Default for KernelBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl KernelBuilder {
    /// Paper defaults: OpenPower 710 topology, Linux-2.6.24-like tunables,
    /// HPC class driven by the paper's Table-I policy (`hpc`).
    pub fn new() -> Self {
        KernelBuilder {
            topology: Topology::openpower_710(),
            kernel: KernelConfig::default(),
            hpc: Some(HpcSchedConfig::default()),
            model: PerfModelChoice::Table,
            tunables: Arc::new(Mutex::new(HpcTunables::default())),
            custom: None,
            bad_policy: None,
        }
    }

    pub fn topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    pub fn kernel_config(mut self, c: KernelConfig) -> Self {
        self.kernel = c;
        self
    }

    pub fn noise(mut self, n: crate::config::NoiseConfig) -> Self {
        self.kernel.noise = n;
        self
    }

    pub fn seed(mut self, seed: u64) -> Self {
        self.kernel.seed = seed;
        self
    }

    /// Baseline kernel: no HPC class (the paper's "standard CFS" runs).
    pub fn without_hpc_class(mut self) -> Self {
        self.hpc = None;
        self
    }

    pub fn hpc_config(mut self, cfg: HpcSchedConfig) -> Self {
        // The shared handle is the single source of tunable truth; fold the
        // config's values into it so pre-build holders observe them.
        // INVARIANT: the builder is single-threaded; the only way this lock
        // is poisoned is a panic already unwinding this thread.
        *self.tunables.lock().expect("tunables poisoned") = cfg.tunables;
        self.hpc = Some(cfg);
        self
    }

    /// Select the balancing policy by [`policies::registry`] name. Unknown
    /// names surface as [`SchedError::UnknownPolicy`] at build time.
    pub fn policy(mut self, name: &str) -> Self {
        match policies::canonical(name) {
            Some(canon) => {
                if let Some(cfg) = self.hpc.as_mut() {
                    cfg.balancer = canon;
                }
                self.bad_policy = None;
            }
            None => self.bad_policy = Some(name.to_owned()),
        }
        self
    }

    /// Install a custom [`Balancer`] instance instead of a registry policy
    /// (e.g. an experiment-local prototype).
    pub fn balancer(mut self, b: Box<dyn Balancer>) -> Self {
        self.custom = Some(b);
        self
    }

    pub fn heuristic(mut self, kind: HeuristicKind) -> Self {
        if let Some(h) = self.hpc.as_mut() {
            h.heuristic = kind;
        }
        self
    }

    pub fn perf_model(mut self, m: PerfModelChoice) -> Self {
        self.model = m;
        self
    }

    /// The shared tunables handle (the "sysfs mount"). Live from
    /// construction on: values set through it before [`Self::try_build`]
    /// are validated and used, and adjustments after the build steer the
    /// running kernel. Inert when built [`Self::without_hpc_class`].
    pub fn tunables(&self) -> SharedTunables {
        self.tunables.clone()
    }

    /// Build the kernel, validating the configuration first.
    ///
    /// # Errors
    /// [`SchedError::InvalidTopology`] if the topology has no CPUs, or if
    /// the analytic model's concavity is not a positive finite number;
    /// [`SchedError::UnknownPolicy`] if [`Self::policy`] was given a name
    /// not in the registry;
    /// [`SchedError::InvalidTunables`] if the HPC tunables fail validation
    /// (e.g. `low_util > high_util`).
    pub fn try_build(self) -> Result<Kernel, SchedError> {
        if self.topology.num_cpus() == 0 {
            return Err(SchedError::InvalidTopology("topology has no CPUs".into()));
        }
        if let PerfModelChoice::Analytic { k } = self.model {
            if !k.is_finite() || k <= 0.0 {
                return Err(SchedError::InvalidTopology(format!(
                    "analytic model concavity must be a positive finite number, got {k}"
                )));
            }
        }
        if let Some(name) = self.bad_policy {
            return Err(SchedError::UnknownPolicy(name));
        }
        if self.hpc.is_some() {
            // INVARIANT: single-threaded build; the only way this lock is
            // poisoned is a panic already unwinding this thread.
            self.tunables
                .lock()
                .expect("tunables poisoned")
                .validate()
                .map_err(|e| SchedError::InvalidTunables(e.to_string()))?;
        }
        let chip = match self.model {
            // The calibrated table is pairwise; a topology with cores
            // wider than 2-way SMT silently upgrades to the analytic
            // n-way model at the table's default concavity.
            PerfModelChoice::Table if self.topology.max_smt_width() > 2 => {
                Chip::with_model(self.topology.clone(), Box::new(AnalyticModel::default()))
            }
            PerfModelChoice::Table => {
                Chip::with_model(self.topology.clone(), Box::new(TableModel::default()))
            }
            PerfModelChoice::Analytic { k } => {
                Chip::with_model(self.topology.clone(), Box::new(AnalyticModel { k }))
            }
        };
        let mut kernel = Kernel::new(chip, self.kernel);
        if let Some(cfg) = self.hpc {
            let registry = kernel.metrics_registry().clone();
            let balancer = match self.custom {
                Some(b) => b,
                None => {
                    let ctx = PolicyCtx {
                        tunables: self.tunables.clone(),
                        heuristic: cfg.heuristic,
                        power5_mechanism: cfg.power5_mechanism,
                        policy_only: cfg.policy_only,
                    };
                    // `policy()` canonicalized the name, and the struct
                    // field is documented as a registry name; an unknown
                    // one here is a caller-constructed config error.
                    let spec = policies::find(cfg.balancer)
                        .ok_or_else(|| SchedError::UnknownPolicy(cfg.balancer.to_owned()))?;
                    (spec.make)(&ctx)
                }
            };
            let mut class = BalancedClass::new(cfg.policy, cfg.slice, balancer);
            class.attach_telemetry(&registry);
            kernel.install_class_after_rt(Box::new(class));
        }
        Ok(kernel)
    }

    /// Build, panicking on an invalid configuration. Prefer
    /// [`Self::try_build`] in code that can surface errors.
    pub fn build(self) -> Kernel {
        // INVARIANT: panicking wrapper by documented contract; fallible
        // callers use `try_build`.
        self.try_build().unwrap_or_else(|e| panic!("{e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptedProgram;
    use crate::{SchedPolicy, SpawnOptions};

    #[test]
    fn builder_installs_hpc_class() {
        let mut k = KernelBuilder::new().build();
        // An HPC task can be spawned only if a class handles SCHED_HPC.
        let t = k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }

    #[test]
    #[should_panic(expected = "no class handles")]
    fn baseline_kernel_rejects_hpc_policy() {
        let mut k = KernelBuilder::new().without_hpc_class().build();
        k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
    }

    #[test]
    fn tunables_handle_is_live_before_and_after_build() {
        let b = KernelBuilder::new();
        let handle = b.tunables();
        // Pre-build adjustment is used by the build...
        handle.lock().unwrap().set("high_util", "90").unwrap();
        let _k = b.try_build().expect("valid");
        // ...and the same handle keeps steering afterwards.
        assert_eq!(handle.lock().unwrap().get("high_util").unwrap(), "90");
        handle.lock().unwrap().set("high_util", "95").unwrap();
        assert_eq!(handle.lock().unwrap().get("high_util").unwrap(), "95");
    }

    #[test]
    fn hpc_config_folds_tunables_into_the_handle() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.high_util = 91.0;
        let b = KernelBuilder::new().hpc_config(cfg);
        assert_eq!(b.tunables().lock().unwrap().high_util, 91.0);
    }

    #[test]
    fn try_build_rejects_invalid_tunables() {
        let mut cfg = HpcSchedConfig::default();
        cfg.tunables.low_util = 90.0;
        cfg.tunables.high_util = 10.0;
        let err = match KernelBuilder::new().hpc_config(cfg).try_build() {
            Err(e) => e,
            Ok(_) => panic!("invalid tunables accepted"),
        };
        assert!(matches!(err, SchedError::InvalidTunables(_)), "got {err:?}");
        assert!(err.to_string().contains("invalid HPC tunables"));
    }

    #[test]
    fn try_build_rejects_bad_analytic_concavity() {
        let err = match KernelBuilder::new()
            .perf_model(PerfModelChoice::Analytic { k: f64::NAN })
            .try_build()
        {
            Err(e) => e,
            Ok(_) => panic!("NaN concavity accepted"),
        };
        assert!(matches!(err, SchedError::InvalidTopology(_)), "got {err:?}");
    }

    #[test]
    fn unknown_policy_is_a_build_error() {
        let err = match KernelBuilder::new().policy("lottery").try_build() {
            Err(e) => e,
            Ok(_) => panic!("unknown policy accepted"),
        };
        assert!(matches!(err, SchedError::UnknownPolicy(ref n) if n == "lottery"), "got {err:?}");
        assert!(err.to_string().contains("unknown policy"));
    }

    #[test]
    fn later_valid_policy_clears_earlier_bad_name() {
        let k = KernelBuilder::new().policy("nope").policy("gss").try_build();
        assert!(k.is_ok());
    }

    #[test]
    fn every_registry_policy_builds_and_runs() {
        for spec in crate::policies::registry() {
            let mut k = KernelBuilder::new().policy(spec.name).build();
            let t = k.spawn(
                "rank0",
                SchedPolicy::Hpc,
                Box::new(ScriptedProgram::compute_once(0.01)),
                SpawnOptions::default(),
            );
            assert!(
                k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some(),
                "policy {} runs a task to completion",
                spec.name
            );
        }
    }

    #[test]
    fn custom_balancer_is_installed() {
        struct Noop;
        impl crate::balancer::Balancer for Noop {
            fn name(&self) -> &'static str {
                "noop"
            }
            fn on_sample(
                &mut self,
                _ctx: &crate::class::ClassCtx<'_>,
                _sample: crate::balancer::IterSample,
            ) -> crate::balancer::SampleOutcome {
                crate::balancer::SampleOutcome::Recorded
            }
            fn assign_priorities(
                &mut self,
                _ctx: &crate::class::ClassCtx<'_>,
                _task: crate::task::TaskId,
            ) -> Vec<crate::balancer::PrioAssignment> {
                Vec::new()
            }
        }
        let mut k = KernelBuilder::new().balancer(Box::new(Noop)).build();
        let t = k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }

    #[test]
    fn builder_registers_hpc_decision_counters() {
        let k = KernelBuilder::new().try_build().expect("valid defaults");
        let snapshot = k.metrics_registry().snapshot();
        assert!(
            snapshot.get("hpc.decisions.uniform.accepted").is_some(),
            "HPC class telemetry is registered at build time"
        );
        assert!(snapshot.get("hpc.detector.balanced").is_some());
    }

    #[test]
    fn wide_smt_topology_builds_and_runs() {
        // A 4-way core would panic the pairwise table model; the builder
        // upgrades to the analytic model automatically.
        let mut k = KernelBuilder::new().topology(Topology::new(1, 1, 4)).build();
        let t = k.spawn(
            "rank0",
            SchedPolicy::Hpc,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }

    #[test]
    fn analytic_model_builds() {
        let mut k =
            KernelBuilder::new().perf_model(PerfModelChoice::Analytic { k: 3.0 }).build();
        let t = k.spawn(
            "t",
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.01)),
            SpawnOptions::default(),
        );
        assert!(k.run_until_exited(&[t], SimDuration::from_secs(1)).is_some());
    }
}
