//! Task programs: the "user code" simulated tasks execute.
//!
//! A [`Program`] is a resumable state machine. The kernel calls
//! [`Program::next_action`] whenever the previous action completes; the
//! program answers with the next thing it wants to do: burn CPU
//! ([`Action::Compute`]), block on a [`WaitToken`] ([`Action::Block`]),
//! yield, or exit. Non-blocking work (posting an MPI send, arming a timer)
//! happens *inside* `next_action` through the [`KernelApi`], which exposes
//! token creation and signalling — the same facility the MPI layer and the
//! OS-noise daemons use.

use crate::policy::SchedPolicy;
use crate::task::TaskId;
use simcore::{SimDuration, SimTime};
use std::collections::{BTreeMap, BTreeSet};

/// CPU work, in units of "seconds of a dedicated single-threaded core".
/// A task with speed factor `s` consumes `w` work in `w / s` seconds.
pub type Work = f64;

/// A one-shot wait/signal token connecting blockers and wakers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct WaitToken(pub u64);

/// What a program wants to do next.
pub enum Action {
    /// Consume `Work` units of CPU.
    Compute(Work),
    /// Sleep until the token is signalled. If it was already signalled the
    /// kernel continues the program immediately (no sleep, no iteration
    /// boundary).
    Block(WaitToken),
    /// Release the CPU but stay runnable (`sched_yield`).
    Yield,
    /// Terminate.
    Exit,
}

/// User code for a simulated task.
pub trait Program: Send {
    /// Produce the next action. `api` allows non-blocking kernel calls
    /// (tokens, timers, policy changes) during the transition.
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action;
}

/// The syscall surface exposed to programs while they transition.
///
/// Borrowed pieces of kernel state: enough to create/signal tokens and
/// schedule timed signals without re-entering the scheduler.
pub struct KernelApi<'a> {
    pub(crate) now: SimTime,
    pub(crate) caller: TaskId,
    pub(crate) tokens: &'a mut TokenTable,
    /// Timed signals the kernel must arm once the transition completes:
    /// `(fire_at, token)`.
    pub(crate) deferred_signals: &'a mut Vec<(SimTime, WaitToken)>,
    /// Immediate wakeups produced during the transition (signalling a token
    /// some *other* task is blocked on).
    pub(crate) policy_change: &'a mut Option<SchedPolicy>,
}

impl<'a> KernelApi<'a> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The calling task.
    pub fn caller(&self) -> TaskId {
        self.caller
    }

    /// Create a fresh unsignalled token.
    pub fn new_token(&mut self) -> WaitToken {
        self.tokens.create()
    }

    /// Signal a token now. If a task is blocked on it, the kernel wakes it
    /// once the current transition finishes.
    pub fn signal(&mut self, tok: WaitToken) {
        self.tokens.signal(tok);
    }

    /// Signal a token at a future time (timer / message delivery).
    pub fn signal_at(&mut self, at: SimTime, tok: WaitToken) {
        debug_assert!(at >= self.now, "signal scheduled in the past");
        self.deferred_signals.push((at, tok));
    }

    /// Convenience: signal after a delay.
    pub fn signal_after(&mut self, delay: SimDuration, tok: WaitToken) {
        self.deferred_signals.push((self.now + delay, tok));
    }

    /// `sched_setscheduler(0, policy)`: move the calling task to another
    /// policy, effective immediately after this transition. This is the
    /// one-line change the paper asks of application code (§IV-A).
    pub fn set_scheduler(&mut self, policy: SchedPolicy) {
        *self.policy_change = Some(policy);
    }
}

/// State of every token ever created.
///
/// Tokens are one-shot: created → (optionally) a single task blocks on it →
/// signalled → consumed. Signalling before the block is recorded so the
/// block returns immediately (the "wakeup already arrived" race).
#[derive(Default)]
pub struct TokenTable {
    next: u64,
    /// Tokens signalled with no blocker yet. Ordered containers keep every
    /// token-table walk independent of hash order.
    pending_signals: BTreeSet<u64>,
    /// Token → blocked task.
    blockers: BTreeMap<u64, TaskId>,
    /// Wakeups ready for the kernel to perform.
    ready_wakes: Vec<TaskId>,
}

impl TokenTable {
    pub fn create(&mut self) -> WaitToken {
        let t = WaitToken(self.next);
        self.next += 1;
        t
    }

    /// Record that `task` blocks on `tok`. Returns `true` if the token was
    /// already signalled (the task must not sleep).
    pub fn block(&mut self, tok: WaitToken, task: TaskId) -> bool {
        if self.pending_signals.remove(&tok.0) {
            true
        } else {
            let prev = self.blockers.insert(tok.0, task);
            debug_assert!(prev.is_none(), "token blocked twice");
            false
        }
    }

    /// Signal `tok`; queues a wake if a task is blocked on it.
    pub fn signal(&mut self, tok: WaitToken) {
        if let Some(task) = self.blockers.remove(&tok.0) {
            self.ready_wakes.push(task);
        } else {
            self.pending_signals.insert(tok.0);
        }
    }

    /// Drain wakeups produced by recent signals.
    pub fn take_wakes(&mut self) -> Vec<TaskId> {
        std::mem::take(&mut self.ready_wakes)
    }

    /// Test helper: is the token signalled-and-unconsumed?
    pub fn is_pending(&self, tok: WaitToken) -> bool {
        self.pending_signals.contains(&tok.0)
    }
}

/// Owned backing storage for a [`KernelApi`] outside the kernel — lets
/// other crates unit-test code that takes `&mut KernelApi` (MPI layers,
/// custom programs) without spinning up a whole simulation.
#[derive(Default)]
pub struct MockApi {
    pub tokens: TokenTable,
    pub deferred_signals: Vec<(SimTime, WaitToken)>,
    pub policy_change: Option<SchedPolicy>,
    pub now: SimTime,
    pub caller: TaskId,
}

impl MockApi {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn at(now: SimTime, caller: TaskId) -> Self {
        MockApi { now, caller, ..Default::default() }
    }

    /// Borrow as a [`KernelApi`].
    pub fn api(&mut self) -> KernelApi<'_> {
        KernelApi {
            now: self.now,
            caller: self.caller,
            tokens: &mut self.tokens,
            deferred_signals: &mut self.deferred_signals,
            policy_change: &mut self.policy_change,
        }
    }
}

/// A program built from a fixed list of actions; handy in tests.
pub struct ScriptedProgram {
    actions: std::vec::IntoIter<Action>,
}

impl ScriptedProgram {
    pub fn new(actions: Vec<Action>) -> Self {
        ScriptedProgram { actions: actions.into_iter() }
    }

    /// A program that computes `work` once and exits.
    pub fn compute_once(work: Work) -> Self {
        ScriptedProgram::new(vec![Action::Compute(work), Action::Exit])
    }
}

impl Program for ScriptedProgram {
    fn next_action(&mut self, _api: &mut KernelApi<'_>) -> Action {
        self.actions.next().unwrap_or(Action::Exit)
    }
}

/// A program driven by a closure; the most flexible test/utility form.
pub struct FnProgram<F>(pub F);

impl<F> Program for FnProgram<F>
where
    F: FnMut(&mut KernelApi<'_>) -> Action + Send,
{
    fn next_action(&mut self, api: &mut KernelApi<'_>) -> Action {
        (self.0)(api)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_block_then_signal() {
        let mut tt = TokenTable::default();
        let tok = tt.create();
        assert!(!tt.block(tok, TaskId(3)), "not yet signalled: task sleeps");
        tt.signal(tok);
        assert_eq!(tt.take_wakes(), vec![TaskId(3)]);
        assert!(tt.take_wakes().is_empty(), "wakes drain once");
    }

    #[test]
    fn token_signal_then_block_returns_immediately() {
        let mut tt = TokenTable::default();
        let tok = tt.create();
        tt.signal(tok);
        assert!(tt.is_pending(tok));
        assert!(tt.block(tok, TaskId(1)), "pre-signalled: no sleep");
        assert!(!tt.is_pending(tok), "consumed");
        assert!(tt.take_wakes().is_empty());
    }

    #[test]
    fn tokens_are_distinct() {
        let mut tt = TokenTable::default();
        let a = tt.create();
        let b = tt.create();
        assert_ne!(a, b);
        tt.signal(a);
        assert!(!tt.block(b, TaskId(0)), "signal on a does not release b");
    }

    #[test]
    fn scripted_program_runs_out_to_exit() {
        let mut p = ScriptedProgram::new(vec![Action::Compute(1.0)]);
        let mut tokens = TokenTable::default();
        let mut sigs = Vec::new();
        let mut pol = None;
        let mut api = KernelApi {
            now: SimTime::ZERO,
            caller: TaskId(0),
            tokens: &mut tokens,
            deferred_signals: &mut sigs,
            policy_change: &mut pol,
        };
        assert!(matches!(p.next_action(&mut api), Action::Compute(w) if w == 1.0));
        assert!(matches!(p.next_action(&mut api), Action::Exit));
        assert!(matches!(p.next_action(&mut api), Action::Exit));
    }

    #[test]
    fn api_signal_after_defers() {
        let mut tokens = TokenTable::default();
        let mut sigs = Vec::new();
        let mut pol = None;
        let mut api = KernelApi {
            now: SimTime::ZERO + SimDuration::from_millis(1),
            caller: TaskId(0),
            tokens: &mut tokens,
            deferred_signals: &mut sigs,
            policy_change: &mut pol,
        };
        let tok = api.new_token();
        api.signal_after(SimDuration::from_millis(4), tok);
        api.set_scheduler(SchedPolicy::Hpc);
        assert_eq!(sigs.len(), 1);
        assert_eq!(sigs[0].0, SimTime::ZERO + SimDuration::from_millis(5));
        assert_eq!(pol, Some(SchedPolicy::Hpc));
    }
}
