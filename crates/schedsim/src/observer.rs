//! The kernel's unified observation API.
//!
//! Every scheduler-visible happening — trace records *and* metric events —
//! flows through one channel: [`KernelEvent`], delivered to every observer
//! attached with [`Kernel::observe`](crate::Kernel::observe). Trace
//! renderers (`tracefmt`), metric exporters and ad-hoc probes are all just
//! [`Observer`]s, which replaces the old `set_trace`/`take_trace` ownership
//! dance: the kernel never has to give a sink back because shared handles
//! (e.g. [`SharedSink`](crate::SharedSink)) stay with the caller.
//!
//! Any [`TraceSink`] is automatically an [`Observer`] that receives the
//! trace half of the stream, so existing sinks plug in unchanged.

use crate::task::TaskId;
use crate::trace::{TraceRecord, TraceSink};
use power5::{CpuId, HwPriority};
use simcore::SimTime;

/// A metric-bearing kernel event (the non-trace half of [`KernelEvent`]).
///
/// These are emitted from the scheduler hot paths and mirrored into the
/// kernel's [`MetricsRegistry`](telemetry::MetricsRegistry); observers see
/// them too so exporters can build time series without polling.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum MetricEvent {
    /// A different task was put on a CPU.
    ContextSwitch { cpu: CpuId, task: TaskId },
    /// One walk of the class chain picked a task (or found none).
    /// `wall_ns` is host wall-clock spent picking; `runnable` is the
    /// run-queue depth across classes on that CPU at pick time.
    ClassPick { cpu: CpuId, wall_ns: u64, runnable: usize },
    /// A woken task reached a CPU; simulated wakeup→dispatch latency.
    DispatchLatency { cpu: CpuId, task: TaskId, latency_ns: u64 },
    /// The hardware priority register of a CPU changed.
    HwPrioTransition { cpu: CpuId, from: HwPriority, to: HwPriority },
    /// Periodic scheduler tick.
    Tick { cpu: CpuId },
}

/// One item of the kernel's unified observation stream.
#[derive(Clone, Debug, PartialEq)]
pub enum KernelEvent {
    /// A scheduler-visible task transition (the trace stream).
    Trace(TraceRecord),
    /// A metric sample (the telemetry stream).
    Metric { time: SimTime, event: MetricEvent },
}

/// Receives the kernel's unified event stream.
pub trait Observer: Send {
    fn on_event(&mut self, event: &KernelEvent);
}

// Every trace sink observes the trace half of the stream unchanged, so
// `kernel.observe(Box::new(SharedSink::new()))` replaces `set_trace`.
impl<T: TraceSink> Observer for T {
    fn on_event(&mut self, event: &KernelEvent) {
        if let KernelEvent::Trace(rec) = event {
            self.record(rec.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SharedSink, TraceEvent};

    #[test]
    fn trace_sinks_are_observers() {
        let sink = SharedSink::new();
        let mut obs: Box<dyn Observer> = Box::new(sink.clone());
        obs.on_event(&KernelEvent::Trace(TraceRecord {
            time: SimTime::ZERO,
            task: TaskId(3),
            event: TraceEvent::Exit,
        }));
        obs.on_event(&KernelEvent::Metric {
            time: SimTime::ZERO,
            event: MetricEvent::Tick { cpu: CpuId(0) },
        });
        let records = sink.snapshot();
        assert_eq!(records.len(), 1, "metric events are not trace records");
        assert_eq!(records[0].task, TaskId(3));
    }
}
