//! Scheduling policies, mirroring the Linux uapi constants the paper uses.

use serde::{Deserialize, Serialize};

/// A task's scheduling policy. Policies map onto scheduling classes:
/// `Fifo`/`Rr` → real-time class, `Hpc` → the paper's HPC class (when
/// installed), `Normal`/`Batch` → CFS, `Idle` → idle class.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum SchedPolicy {
    /// `SCHED_FIFO`: real-time, runs until it yields or blocks.
    Fifo,
    /// `SCHED_RR`: real-time round-robin with a time slice.
    Rr,
    /// `SCHED_HPC`: the paper's new policy for HPC (MPI) processes.
    Hpc,
    /// `SCHED_NORMAL` (née `SCHED_OTHER`): ordinary CFS time-sharing.
    Normal,
    /// `SCHED_BATCH`: CFS, but never treated as interactive.
    Batch,
    /// `SCHED_IDLE`: only runs when nothing else is runnable.
    Idle,
}

impl SchedPolicy {
    /// True for the real-time policies whose semantics the class order
    /// must preserve (paper §III).
    pub const fn is_realtime(self) -> bool {
        matches!(self, SchedPolicy::Fifo | SchedPolicy::Rr)
    }

    /// True for policies handled by the CFS class.
    pub const fn is_fair(self) -> bool {
        matches!(self, SchedPolicy::Normal | SchedPolicy::Batch)
    }

    /// Kernel-style name.
    pub const fn name(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "SCHED_FIFO",
            SchedPolicy::Rr => "SCHED_RR",
            SchedPolicy::Hpc => "SCHED_HPC",
            SchedPolicy::Normal => "SCHED_NORMAL",
            SchedPolicy::Batch => "SCHED_BATCH",
            SchedPolicy::Idle => "SCHED_IDLE",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(SchedPolicy::Fifo.is_realtime());
        assert!(SchedPolicy::Rr.is_realtime());
        assert!(!SchedPolicy::Hpc.is_realtime());
        assert!(SchedPolicy::Normal.is_fair());
        assert!(SchedPolicy::Batch.is_fair());
        assert!(!SchedPolicy::Hpc.is_fair());
        assert!(!SchedPolicy::Idle.is_fair());
    }

    #[test]
    fn names() {
        assert_eq!(SchedPolicy::Hpc.name(), "SCHED_HPC");
        assert_eq!(SchedPolicy::Normal.name(), "SCHED_NORMAL");
    }
}
