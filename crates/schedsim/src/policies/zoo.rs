//! Shared plumbing for the LB4OMP-style dynamic policies.
//!
//! Each zoo policy owns only its *metric* — how iteration history is
//! summarized into a utilization estimate. Everything downstream of the
//! metric (threshold classification, one-step moves, range clamping,
//! mechanism validation, do-no-harm degradation, decision telemetry) is
//! identical across policies and lives in [`StepCore`] so a new policy is
//! just a metric plus a registry line.

use super::mechanism::PrioMechanism;
use super::tunables::HpcTunables;
use super::SharedTunables;
use crate::balancer::{degrade_to_floor, BalancerTelemetry, PrioAssignment};
use crate::class::ClassCtx;
use crate::task::TaskId;
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimDuration;

/// Utilization (percent) of one iteration, or `None` for an unusable
/// sample (zero wall, non-finite ratio) — the same filter the paper's
/// detector applies before recording.
pub(crate) fn usable_util(run: SimDuration, wall: SimDuration) -> Option<f64> {
    if wall.is_zero() {
        return None;
    }
    let util = 100.0 * run.as_nanos() as f64 / wall.as_nanos() as f64;
    util.is_finite().then_some(util)
}

/// Classify a metric against the tunable hysteresis band:
/// `+1` raise, `-1` lower, `0` keep.
pub(crate) fn classify(metric: f64, tun: &HpcTunables) -> i8 {
    if metric >= tun.high_util {
        1
    } else if metric <= tun.low_util {
        -1
    } else {
        0
    }
}

/// The policy-independent half of a stepping balancer.
pub(crate) struct StepCore {
    pub name: &'static str,
    tunables: SharedTunables,
    mechanism: Box<dyn PrioMechanism>,
    dynamic_prio: bool,
    telemetry: Option<BalancerTelemetry>,
    /// Direction decided by the latest `on_sample`, consumed by the next
    /// `assign_priorities` call for the same task.
    pub pending: Option<(TaskId, i8)>,
}

impl StepCore {
    pub fn new(
        name: &'static str,
        tunables: SharedTunables,
        mechanism: Box<dyn PrioMechanism>,
        dynamic_prio: bool,
    ) -> Self {
        StepCore { name, tunables, mechanism, dynamic_prio, telemetry: None, pending: None }
    }

    pub fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.telemetry = Some(BalancerTelemetry::register(registry, self.name));
    }

    /// Current tunables snapshot.
    pub fn tun(&self) -> HpcTunables {
        // INVARIANT: single-threaded simulation; the only way this lock is
        // poisoned is a panic already unwinding this thread.
        *self.tunables.lock().expect("tunables poisoned")
    }

    /// Apply the pending one-step decision for `task`: clamp into the
    /// tunable range, validate through the mechanism, count the verdict.
    pub fn settle(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        let Some((decided, dir)) = self.pending.take() else {
            return Vec::new();
        };
        debug_assert_eq!(decided, task, "assign_priorities follows on_sample for one task");
        if !self.dynamic_prio {
            return Vec::new();
        }
        let tun = self.tun();
        let current = ctx.task(task).hw_prio;
        let next = match dir {
            1 => current.raised(),
            -1 => current.lowered(),
            _ => current,
        }
        .clamp(tun.min_prio, tun.max_prio);
        if next == current {
            return Vec::new();
        }
        match self.mechanism.validate(next) {
            Ok(effective) if effective != current => {
                if let Some(t) = &self.telemetry {
                    t.accepted.inc();
                }
                vec![PrioAssignment { task, prio: effective }]
            }
            _ => {
                // Refused outright or clamped into a no-op: either way the
                // proposal did not take.
                if let Some(t) = &self.telemetry {
                    t.rejected.inc();
                }
                Vec::new()
            }
        }
    }

    /// Snapshot the core's only mutable state: the pending one-step
    /// decision. Tunables/mechanism are construction-time configuration
    /// and belong to the fresh instance restore happens into.
    pub fn snapshot_pending(&self, w: &mut SnapshotWriter) {
        w.put(&self.pending);
    }

    /// Inverse of [`StepCore::snapshot_pending`].
    pub fn restore_pending(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.pending = r.get()?;
        Ok(())
    }

    /// The shared do-no-harm fault path: count the degraded sample, then
    /// drop the task to the uniform floor (unless priorities are pinned).
    pub fn fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        if let Some(t) = &self.telemetry {
            t.degraded.inc();
        }
        if !self.dynamic_prio {
            return Vec::new();
        }
        degrade_to_floor(ctx, task)
    }
}
