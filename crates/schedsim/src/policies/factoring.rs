//! FAC and AWF — factoring and adaptive weighted factoring (Hummel /
//! Flynn-Hummel et al.; LB4OMP's `FAC` and `AWF`), reinterpreted for
//! priority assignment.
//!
//! * **FAC** schedules work in *batches* whose size halves each round and
//!   only re-decides between batches. Mapped onto priority balancing: a
//!   task's samples accumulate into the current batch; at batch end the
//!   batch-mean utilization is classified and the batch size halves
//!   (initial 4, floor 1), so the policy starts deliberate and becomes
//!   per-iteration reactive as the run matures.
//! * **AWF** weighs each worker *relative to the others*. Mapped onto
//!   priority balancing: a task's weight is its cumulative utilization
//!   against the fleet mean; tasks more than half the balance spread above
//!   the mean are raised, more than half below are lowered. The only zoo
//!   policy whose decision for one task depends on the whole fleet —
//!   which is precisely what distinguishes AWF from FAC in LB4OMP.

use super::zoo::{classify, usable_util, StepCore};
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimDuration;
use std::collections::BTreeMap;

const FAC_INITIAL_BATCH: u32 = 4;

#[derive(Clone, Copy, Debug)]
struct Batch {
    sum: f64,
    count: u32,
    size: u32,
}

impl Default for Batch {
    fn default() -> Self {
        Batch { sum: 0.0, count: 0, size: FAC_INITIAL_BATCH }
    }
}

impl Snapshot for Batch {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_f64(self.sum);
        w.put_u32(self.count);
        w.put_u32(self.size);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Batch { sum: r.get_f64()?, count: r.get_u32()?, size: r.get_u32()? })
    }
}

pub struct FacBalancer {
    core: StepCore,
    // BTreeMap, not HashMap: decisions must not depend on hash order.
    batches: BTreeMap<TaskId, Batch>,
}

impl FacBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        FacBalancer { core, batches: BTreeMap::new() }
    }
}

impl Balancer for FacBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        let Some(util) = usable_util(sample.run, sample.wall) else {
            return SampleOutcome::Unusable;
        };
        let batch = self.batches.entry(sample.task).or_default();
        batch.sum += util;
        batch.count += 1;
        let dir = if batch.count >= batch.size {
            let mean = batch.sum / batch.count as f64;
            *batch = Batch { sum: 0.0, count: 0, size: (batch.size / 2).max(1) };
            classify(mean, &self.core.tun())
        } else {
            // Mid-batch: hold the current priority.
            0
        };
        self.core.pending = Some((sample.task, dir));
        SampleOutcome::Recorded
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.settle(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn task_exited(&mut self, task: TaskId) {
        self.batches.remove(&task);
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.batches);
        self.core.snapshot_pending(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.batches = r.get()?;
        self.core.restore_pending(r)
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Accum {
    run: SimDuration,
    wall: SimDuration,
}

impl Snapshot for Accum {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.run);
        w.put(&self.wall);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Accum { run: r.get()?, wall: r.get()? })
    }
}

impl Accum {
    fn util(&self) -> Option<f64> {
        usable_util(self.run, self.wall)
    }
}

pub struct AwfBalancer {
    core: StepCore,
    // BTreeMap, not HashMap: the fleet mean iterates the task set, and
    // decisions must not depend on hash order.
    accum: BTreeMap<TaskId, Accum>,
}

impl AwfBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        AwfBalancer { core, accum: BTreeMap::new() }
    }
}

impl Balancer for AwfBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        if usable_util(sample.run, sample.wall).is_none() {
            return SampleOutcome::Unusable;
        }
        let acc = self.accum.entry(sample.task).or_default();
        acc.run += sample.run;
        acc.wall += sample.wall;
        // Weight the task against the fleet: mean cumulative utilization
        // over every tracked task (deterministic BTreeMap order).
        let (sum, n) = self
            .accum
            .values()
            .filter_map(Accum::util)
            .fold((0.0, 0u32), |(s, n), u| (s + u, n + 1));
        let dir = match self.accum.get(&sample.task).and_then(Accum::util) {
            Some(mine) if n >= 2 => {
                let mean = sum / n as f64;
                let band = self.core.tun().balance_spread / 2.0;
                if mine - mean >= band {
                    1
                } else if mean - mine >= band {
                    -1
                } else {
                    0
                }
            }
            // A lone task has no fleet to be weighed against.
            _ => 0,
        };
        self.core.pending = Some((sample.task, dir));
        SampleOutcome::Recorded
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.settle(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn task_exited(&mut self, task: TaskId) {
        self.accum.remove(&task);
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.accum);
        self.core.snapshot_pending(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.accum = r.get()?;
        self.core.restore_pending(r)
    }
}
