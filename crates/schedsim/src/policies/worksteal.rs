//! Work stealing — a queue discipline rather than a priority policy.
//!
//! Hardware priorities stay at the uniform default; balancing happens
//! entirely through migrations: an idle CPU steals from the *tail* of the
//! busiest run queue anywhere in the system (classic Cilk-style victim
//! choice, flattened across domain levels — contrast with the paper's
//! nearest-domain-first pull in [`crate::balance::plan_pull`]).

use super::zoo::{usable_util, StepCore};
use crate::balance::BalanceView;
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::{ClassCtx, Migration};
use crate::task::TaskId;
use power5::CpuId;

pub struct WorkStealBalancer {
    core: StepCore,
}

impl WorkStealBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        WorkStealBalancer { core }
    }
}

impl Balancer for WorkStealBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        if usable_util(sample.run, sample.wall).is_none() {
            return SampleOutcome::Unusable;
        }
        SampleOutcome::Recorded
    }

    /// Priorities are never steered; stealing does all the balancing.
    fn assign_priorities(&mut self, _ctx: &ClassCtx<'_>, _task: TaskId) -> Vec<PrioAssignment> {
        Vec::new()
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn plan_migrations(
        &mut self,
        view: &BalanceView<'_>,
        cpu: CpuId,
        idle: bool,
        allowed: &dyn Fn(TaskId, CpuId) -> bool,
    ) -> Option<Migration> {
        // Only genuinely idle thieves steal; busy CPUs never rebalance.
        if !idle || view.counts[cpu.0] != 0 {
            return None;
        }
        // Victim: the longest queue; ties break to the lowest CPU id so
        // the choice is deterministic.
        let victim = (0..view.queued.len())
            .filter(|&c| c != cpu.0 && !view.queued[c].is_empty())
            .max_by_key(|&c| (view.queued[c].len(), std::cmp::Reverse(c)))?;
        // Steal from the tail — the victim keeps its next-to-run work.
        let task = view.queued[victim].iter().rev().copied().find(|&t| allowed(t, cpu))?;
        Some(Migration { task, from: CpuId(victim), to: cpu })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use power5::Topology;
    use std::collections::VecDeque;

    fn mk() -> WorkStealBalancer {
        let tunables = std::sync::Arc::new(std::sync::Mutex::new(
            super::super::tunables::HpcTunables::default(),
        ));
        let mech = Box::new(super::super::mechanism::Power5Mechanism);
        WorkStealBalancer::new(StepCore::new("worksteal", tunables, mech, true))
    }

    fn queued_on(per_cpu: &[&[usize]]) -> Vec<VecDeque<TaskId>> {
        per_cpu.iter().map(|ids| ids.iter().map(|&i| TaskId(i)).collect()).collect()
    }

    #[test]
    fn idle_cpu_steals_from_busiest_tail() {
        let topo = Topology::openpower_710();
        let counts = [0usize, 1, 3, 1];
        let queued = queued_on(&[&[], &[], &[5, 6, 7], &[9]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let mut b = mk();
        let m = b.plan_migrations(&view, CpuId(0), true, &|_, _| true).expect("steal");
        assert_eq!(m.from, CpuId(2));
        assert_eq!(m.task, TaskId(7), "steals the tail, not the head");
    }

    #[test]
    fn busy_cpu_never_steals() {
        let topo = Topology::openpower_710();
        let counts = [1usize, 0, 3, 0];
        let queued = queued_on(&[&[1], &[], &[5, 6, 7], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let mut b = mk();
        assert!(b.plan_migrations(&view, CpuId(0), true, &|_, _| true).is_none());
        assert!(b.plan_migrations(&view, CpuId(1), false, &|_, _| true).is_none(), "not idle");
    }

    #[test]
    fn victim_ties_break_to_lowest_cpu() {
        let topo = Topology::openpower_710();
        let counts = [0usize, 2, 2, 0];
        let queued = queued_on(&[&[], &[1, 2], &[5, 6], &[]]);
        let view = BalanceView { topology: &topo, counts: &counts, queued: &queued };
        let mut b = mk();
        let m = b.plan_migrations(&view, CpuId(0), true, &|_, _| true).expect("steal");
        assert_eq!(m.from, CpuId(1));
    }
}
