//! The paper's Table-I balancing policy (§IV-B), as a [`Balancer`].
//!
//! This is the HPCSched decision logic verbatim: the Load Imbalance
//! Detector accumulates per-iteration utilization, an application-level
//! balance gate decides whether to touch priorities at all, and one of the
//! heuristics (Uniform / Adaptive / Hybrid) steps the busy task's hardware
//! priority by one level within `[min_prio, max_prio]`, validated by the
//! architecture mechanism. The refactor out of the scheduling class is
//! trace-gated: a kernel driving this balancer must produce byte-identical
//! traces to the pre-trait `HpcClass` (see `TRACE_baseline.txt`).

use super::detector::{LoadImbalanceDetector, TaskIterStats};
use super::heuristics::Heuristic;
use super::mechanism::PrioMechanism;
use super::SharedTunables;
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;
use power5::HwPriority;
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimDuration;

/// Telemetry handles for the policy's balancing decisions, registered via
/// [`Balancer::attach_telemetry`]; recording is a relaxed atomic add.
struct Table1Telemetry {
    /// Priority proposals the mechanism applied (the task's register moved).
    accepted: telemetry::Counter,
    /// Proposals the mechanism refused or clamped into a no-op.
    rejected: telemetry::Counter,
    /// Detector verdicts per completed iteration.
    balanced: telemetry::Counter,
    imbalanced: telemetry::Counter,
    /// Unusable iteration samples (zero wall / non-finite utilization) that
    /// triggered the uniform-priority fallback.
    degraded: telemetry::Counter,
}

/// The paper's detector + heuristic + mechanism pipeline.
pub struct Table1Balancer {
    detector: LoadImbalanceDetector,
    heuristic: Box<dyn Heuristic>,
    mechanism: Box<dyn PrioMechanism>,
    tunables: SharedTunables,
    /// When false, the detector still tracks iterations but priorities are
    /// never changed (isolates the pure class-placement benefit).
    dynamic_prio: bool,
    /// Whether the application was balanced at the last check; a
    /// balanced→imbalanced transition is a behaviour change and resets the
    /// detector's history.
    was_balanced: bool,
    /// The sample recorded by the latest `on_sample`, consumed by the next
    /// `assign_priorities` call for the same task.
    pending: Option<(TaskId, TaskIterStats, SimDuration, SimDuration)>,
    telemetry: Option<Table1Telemetry>,
}

impl Table1Balancer {
    pub fn new(
        heuristic: Box<dyn Heuristic>,
        mechanism: Box<dyn PrioMechanism>,
        tunables: SharedTunables,
    ) -> Self {
        Table1Balancer {
            detector: LoadImbalanceDetector::new(),
            heuristic,
            mechanism,
            tunables,
            dynamic_prio: true,
            was_balanced: false,
            pending: None,
            telemetry: None,
        }
    }

    /// Disable dynamic prioritization (keep only the scheduling-policy
    /// benefit). Used by the SIESTA-style ablation.
    pub fn with_static_priorities(mut self) -> Self {
        self.dynamic_prio = false;
        self
    }

    pub fn detector(&self) -> &LoadImbalanceDetector {
        &self.detector
    }

    pub fn heuristic_name(&self) -> &'static str {
        self.heuristic.name()
    }
}

impl Balancer for Table1Balancer {
    fn name(&self) -> &'static str {
        "table1"
    }

    /// Register `hpc.decisions.<heuristic>.accepted` / `.rejected`
    /// (proposals the mechanism applied vs refused) and
    /// `hpc.detector.balanced` / `.imbalanced` / `.degraded` (verdicts per
    /// completed iteration).
    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        let h = self.heuristic.name();
        self.telemetry = Some(Table1Telemetry {
            accepted: registry.counter(&format!("hpc.decisions.{h}.accepted")),
            rejected: registry.counter(&format!("hpc.decisions.{h}.rejected")),
            balanced: registry.counter("hpc.detector.balanced"),
            imbalanced: registry.counter("hpc.detector.imbalanced"),
            degraded: registry.counter("hpc.detector.degraded"),
        });
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        match self.detector.record_iteration(sample.task, sample.run, sample.wall) {
            Some(stats) => {
                self.pending = Some((sample.task, stats, sample.run, sample.wall));
                SampleOutcome::Recorded
            }
            None => SampleOutcome::Unusable,
        }
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        let Some((recorded, mut stats, run, wall)) = self.pending.take() else {
            return Vec::new();
        };
        debug_assert_eq!(recorded, task, "assign_priorities follows on_sample for one task");
        if !self.dynamic_prio {
            return Vec::new();
        }
        // INVARIANT: single-threaded simulation; the only way this lock is
        // poisoned is a panic already unwinding this thread.
        let tun = *self.tunables.lock().expect("tunables poisoned");
        // The Load Imbalance Detector gates the heuristic: once the
        // application is balanced, stop touching priorities (paper §IV-B:
        // "At the end of the second iteration, the Load Imbalance Detector
        // detects no imbalance, thus there is no need of trying to balance
        // again"). Balance is judged on the *latest* iteration — the
        // heuristics' own metrics (global vs blended) only decide how a
        // still-imbalanced task's priority moves.
        let balanced = self.detector.is_balanced_recent(&tun);
        if self.was_balanced && !balanced {
            // Behaviour change: the balanced regime's history no longer
            // describes the application; start the metrics afresh so even
            // the slow global metric reacts within a couple of iterations
            // (paper Figure 4(c)).
            self.detector.reset_history();
            if let Some(s) = self.detector.record_iteration(task, run, wall) {
                // Same inputs as the accepted sample above, so this always
                // re-records; the if-let just avoids a second unwrap path.
                stats = s;
            }
        }
        self.was_balanced = balanced;
        if let Some(t) = &self.telemetry {
            if balanced {
                t.balanced.inc();
            } else {
                t.imbalanced.inc();
            }
        }
        if balanced {
            return Vec::new();
        }
        let current = ctx.task(task).hw_prio;
        let next = self.heuristic.next_priority(&stats, current, &tun);
        if next == current {
            return Vec::new();
        }
        match self.mechanism.validate(next) {
            Ok(effective) => {
                if effective != current {
                    if let Some(t) = &self.telemetry {
                        t.accepted.inc();
                    }
                    vec![PrioAssignment { task, prio: effective }]
                } else {
                    // Clamped into a no-op: the heuristic's proposal was
                    // effectively refused.
                    if let Some(t) = &self.telemetry {
                        t.rejected.inc();
                    }
                    Vec::new()
                }
            }
            Err(_) => {
                // Architecture refused (e.g. range restriction): keep the
                // old priority, exactly like a failed or-nop.
                if let Some(t) = &self.telemetry {
                    t.rejected.inc();
                }
                Vec::new()
            }
        }
    }

    /// Graceful degradation ("do no harm" floor, DESIGN.md §9): the
    /// detector produced no usable sample for this task, so stop steering
    /// it — drop its hardware priority back to the uniform default instead
    /// of letting a decision made on stale data stand.
    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        if let Some(t) = &self.telemetry {
            t.degraded.inc();
        }
        if !self.dynamic_prio {
            return Vec::new();
        }
        let current = ctx.task(task).hw_prio;
        if current == HwPriority::MEDIUM {
            return Vec::new();
        }
        if let Ok(effective) = self.mechanism.validate(HwPriority::MEDIUM) {
            if effective != current {
                return vec![PrioAssignment { task, prio: effective }];
            }
        }
        Vec::new()
    }

    fn task_exited(&mut self, task: TaskId) {
        self.detector.forget(task);
    }

    /// Everything that accumulates across iterations: the detector's
    /// per-task history, the balance gate's hysteresis bit, and an
    /// in-flight sample awaiting `assign_priorities`. Heuristic,
    /// mechanism, and tunables are construction-time configuration.
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.detector);
        w.put_bool(self.was_balanced);
        w.put(&self.pending);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.detector = r.get()?;
        self.was_balanced = r.get_bool()?;
        self.pending = r.get()?;
        Ok(())
    }
}
