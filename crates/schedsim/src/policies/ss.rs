//! SS — pure self-scheduling (LB4OMP's `SS`, reinterpreted for priority
//! assignment).
//!
//! In loop self-scheduling, SS hands out one chunk at a time and reacts to
//! nothing but the chunk just finished. Mapped onto priority balancing:
//! judge each task on its *last iteration only*, no history at all. The
//! most reactive policy in the zoo — and the most noise-sensitive, which
//! is exactly the trade-off LB4OMP documents for SS.

use super::zoo::{classify, usable_util, StepCore};
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};

pub struct SsBalancer {
    core: StepCore,
}

impl SsBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        SsBalancer { core }
    }
}

impl Balancer for SsBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        let Some(util) = usable_util(sample.run, sample.wall) else {
            return SampleOutcome::Unusable;
        };
        let dir = classify(util, &self.core.tun());
        self.core.pending = Some((sample.task, dir));
        SampleOutcome::Recorded
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.settle(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        self.core.snapshot_pending(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.core.restore_pending(r)
    }
}
