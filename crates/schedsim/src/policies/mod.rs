//! The balancing-policy zoo and its registry.
//!
//! Every policy the simulator can drive is listed in [`registry`] — the
//! single name → constructor table shared by the CLI (`--policy`), the
//! experiment runner, the cluster/batch layers and the verify harness.
//! Adding a policy is one module implementing [`crate::Balancer`] plus one
//! [`PolicySpec`] row here; nothing else in the tree enumerates policies.
//!
//! The zoo (DESIGN.md §12):
//!
//! | name          | decision basis                                    |
//! |---------------|---------------------------------------------------|
//! | `hpc`         | paper Table-I, Uniform heuristic (global util)    |
//! | `hpc-adaptive`| paper Table-I, Adaptive heuristic (recency blend) |
//! | `hpc-hybrid`  | paper Table-I, annealed Hybrid heuristic (§VI)    |
//! | `hpc-static`  | Table-I detector running, priorities pinned       |
//! | `static`      | uniform baseline: placement only, no steering     |
//! | `ss`          | last iteration only (LB4OMP SS)                   |
//! | `gss`         | exponentially weighted estimate (LB4OMP GSS)      |
//! | `tss`         | linearly weighted window (LB4OMP TSS)             |
//! | `fac`         | halving decision batches (LB4OMP FAC)             |
//! | `awf`         | weight vs fleet mean (LB4OMP AWF)                 |
//! | `worksteal`   | idle thieves steal queue tails; no priorities     |

pub mod detector;
pub mod heuristics;
pub mod mechanism;
pub mod table1;
pub mod tunables;

pub mod factoring;
pub mod gss;
pub mod ss;
pub mod statics;
pub mod tss;
pub mod worksteal;

pub(crate) mod zoo;

pub use detector::{LoadImbalanceDetector, TaskIterStats};
pub use heuristics::{
    make_heuristic, AdaptiveHeuristic, Heuristic, HeuristicKind, HybridHeuristic, UniformHeuristic,
};
pub use mechanism::{NullMechanism, Power5Mechanism, PrioMechanism};
pub use table1::Table1Balancer;
pub use tunables::{HpcTunables, TunableError};

use crate::balancer::Balancer;
use std::sync::{Arc, Mutex};
use zoo::StepCore;

/// Shared, runtime-adjustable tunables handle (the simulated sysfs mount).
pub type SharedTunables = Arc<Mutex<HpcTunables>>;

/// Everything a policy constructor may draw on. One context serves every
/// policy so the registry signature stays uniform.
pub struct PolicyCtx {
    /// The live tunables handle; policies read it at decision time.
    pub tunables: SharedTunables,
    /// Heuristic selection, honored by the heuristic-parametric policies
    /// (`hpc`, `hpc-static`); the pinned variants ignore it.
    pub heuristic: HeuristicKind,
    /// Use the POWER5 mechanism (true) or the no-op mechanism for
    /// architectures without hardware prioritization (false).
    pub power5_mechanism: bool,
    /// Disable dynamic prioritization entirely (class placement only).
    pub policy_only: bool,
}

impl PolicyCtx {
    fn mechanism(&self) -> Box<dyn PrioMechanism> {
        if self.power5_mechanism {
            Box::new(Power5Mechanism)
        } else {
            Box::new(NullMechanism)
        }
    }

    fn step_core(&self, name: &'static str) -> StepCore {
        StepCore::new(name, self.tunables.clone(), self.mechanism(), !self.policy_only)
    }

    fn table1(&self, kind: HeuristicKind) -> Table1Balancer {
        Table1Balancer::new(make_heuristic(kind), self.mechanism(), self.tunables.clone())
    }
}

/// One registry row: a constructible, documented policy.
pub struct PolicySpec {
    pub name: &'static str,
    /// One-line summary for `--policy help` style listings and docs.
    pub summary: &'static str,
    pub make: fn(&PolicyCtx) -> Box<dyn Balancer>,
}

/// The canonical policy table. Order is presentation order (paper policies
/// first, then the LB4OMP family, then the queue discipline).
pub fn registry() -> &'static [PolicySpec] {
    &[
        PolicySpec {
            name: "hpc",
            summary: "paper Table-I policy, Uniform heuristic (global utilization)",
            make: |ctx| {
                let b = ctx.table1(ctx.heuristic);
                if ctx.policy_only {
                    Box::new(b.with_static_priorities())
                } else {
                    Box::new(b)
                }
            },
        },
        PolicySpec {
            name: "hpc-adaptive",
            summary: "paper Table-I policy, Adaptive heuristic (recency-weighted)",
            make: |ctx| Box::new(ctx.table1(HeuristicKind::Adaptive)),
        },
        PolicySpec {
            name: "hpc-hybrid",
            summary: "paper Table-I policy, annealed Hybrid heuristic (paper §VI)",
            make: |ctx| Box::new(ctx.table1(HeuristicKind::Hybrid)),
        },
        PolicySpec {
            name: "hpc-static",
            summary: "Table-I detector observing, priorities pinned (ablation)",
            make: |ctx| Box::new(ctx.table1(ctx.heuristic).with_static_priorities()),
        },
        PolicySpec {
            name: "static",
            summary: "uniform baseline: class placement only, no priority steering",
            make: |ctx| Box::new(statics::StaticBalancer::new(ctx.step_core("static"))),
        },
        PolicySpec {
            name: "ss",
            summary: "self-scheduling: judge on the last iteration only (LB4OMP SS)",
            make: |ctx| Box::new(ss::SsBalancer::new(ctx.step_core("ss"))),
        },
        PolicySpec {
            name: "gss",
            summary: "guided: exponentially weighted utilization estimate (LB4OMP GSS)",
            make: |ctx| Box::new(gss::GssBalancer::new(ctx.step_core("gss"))),
        },
        PolicySpec {
            name: "tss",
            summary: "trapezoid: linearly weighted sample window (LB4OMP TSS)",
            make: |ctx| Box::new(tss::TssBalancer::new(ctx.step_core("tss"))),
        },
        PolicySpec {
            name: "fac",
            summary: "factoring: decide on halving batch means (LB4OMP FAC)",
            make: |ctx| Box::new(factoring::FacBalancer::new(ctx.step_core("fac"))),
        },
        PolicySpec {
            name: "awf",
            summary: "adaptive weighted factoring: weight vs fleet mean (LB4OMP AWF)",
            make: |ctx| Box::new(factoring::AwfBalancer::new(ctx.step_core("awf"))),
        },
        PolicySpec {
            name: "worksteal",
            summary: "work stealing: idle CPUs steal queue tails, no priority moves",
            make: |ctx| Box::new(worksteal::WorkStealBalancer::new(ctx.step_core("worksteal"))),
        },
    ]
}

/// Look a policy up by name.
pub fn find(name: &str) -> Option<&'static PolicySpec> {
    registry().iter().find(|spec| spec.name == name)
}

/// The `'static` canonical spelling of `name`, if registered — what CLI
/// layers store so policy names stay `Copy` throughout the stack.
pub fn canonical(name: &str) -> Option<&'static str> {
    find(name).map(|spec| spec.name)
}

/// Render the registry as "name — summary" lines (CLI error messages,
/// docs-drift tests).
pub fn render_table() -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for spec in registry() {
        let _ = writeln!(out, "  {:<12} {}", spec.name, spec.summary);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> PolicyCtx {
        PolicyCtx {
            tunables: Arc::new(Mutex::new(HpcTunables::default())),
            heuristic: HeuristicKind::Uniform,
            power5_mechanism: true,
            policy_only: false,
        }
    }

    #[test]
    fn registry_names_are_unique_and_canonical() {
        let mut seen = std::collections::BTreeSet::new();
        for spec in registry() {
            assert!(seen.insert(spec.name), "duplicate policy {}", spec.name);
            assert_eq!(canonical(spec.name), Some(spec.name));
            assert!(!spec.summary.is_empty());
        }
        assert!(registry().len() >= 6, "the zoo ships at least six policies");
    }

    #[test]
    fn find_rejects_unknown_names() {
        assert!(find("no-such-policy").is_none());
        assert!(canonical("").is_none());
    }

    #[test]
    fn every_policy_constructs() {
        let c = ctx();
        for spec in registry() {
            let b = (spec.make)(&c);
            // Zoo policies report their registry name; the Table-I family
            // reports its shared implementation name.
            assert!(
                b.name() == spec.name || b.name() == "table1",
                "{} constructed as {}",
                spec.name,
                b.name()
            );
        }
    }

    #[test]
    fn hpc_spec_honors_heuristic_and_policy_only() {
        let mut c = ctx();
        c.heuristic = HeuristicKind::Adaptive;
        let spec = find("hpc").unwrap();
        let _ = (spec.make)(&c); // adaptive table1 constructs
        c.policy_only = true;
        let _ = (spec.make)(&c); // pinned table1 constructs
    }

    #[test]
    fn render_table_lists_every_policy() {
        let table = render_table();
        for spec in registry() {
            assert!(table.contains(spec.name));
        }
    }

    mod snapshot_round_trip {
        use super::super::*;
        use super::ctx;
        use crate::balancer::{IterSample, PrioAssignment, SampleOutcome};
        use crate::class::ClassCtx;
        use crate::policy::SchedPolicy;
        use crate::program::ScriptedProgram;
        use crate::task::{Task, TaskId};
        use power5::Topology;
        use simcore::snapshot::{SnapshotReader, SnapshotWriter};
        use simcore::{SimDuration, SimTime};

        fn fleet(n: usize) -> Vec<Task> {
            (0..n)
                .map(|i| {
                    Task::new(
                        TaskId(i),
                        format!("rank{i}"),
                        SchedPolicy::Hpc,
                        Box::new(ScriptedProgram::compute_once(1.0)),
                        SimTime::ZERO,
                    )
                })
                .collect()
        }

        /// Feed one iteration sample through the full decision pipeline and
        /// apply whatever priorities the policy hands back — the same loop
        /// the kernel's class driver runs.
        fn step(
            b: &mut dyn Balancer,
            tasks: &mut Vec<Task>,
            topo: &Topology,
            idx: usize,
            run_ms: u64,
            wall_ms: u64,
        ) -> Vec<PrioAssignment> {
            let task = TaskId(idx);
            let sample = IterSample {
                task,
                run: SimDuration::from_millis(run_ms),
                wall: SimDuration::from_millis(wall_ms),
            };
            let assignments = {
                let ctx =
                    ClassCtx { now: SimTime::ZERO, tasks, topology: topo, running: vec![] };
                match b.on_sample(&ctx, sample) {
                    SampleOutcome::Recorded => b.assign_priorities(&ctx, task),
                    SampleOutcome::Unusable => b.on_fault(&ctx, task),
                }
            };
            for a in &assignments {
                tasks[a.task.0].hw_prio = a.prio;
            }
            assignments
        }

        fn snapshot_bytes(b: &dyn Balancer) -> Vec<u8> {
            let mut w = SnapshotWriter::new();
            b.snapshot(&mut w);
            w.finish()
        }

        /// A mixed schedule: hot tasks (raise), cold tasks (lower), a
        /// mid-band hold, and one unusable sample (zero wall) so the
        /// detector/fault paths all accumulate history before the cut.
        const WARMUP: &[(usize, u64, u64)] =
            &[(0, 95, 100), (1, 20, 100), (0, 96, 100), (2, 70, 100), (1, 15, 100), (2, 0, 0)];
        const TAIL: &[(usize, u64, u64)] =
            &[(0, 97, 100), (1, 18, 100), (2, 92, 100), (0, 30, 100), (1, 94, 100)];

        /// Every zoo policy must resume from a mid-run snapshot with its
        /// decision stream intact: drive A, snapshot, restore into a fresh
        /// B, then drive both identically and require identical priority
        /// assignments and identical re-snapshot bytes.
        #[test]
        fn every_policy_round_trips_mid_run_state() {
            let topo = Topology::openpower_710();
            for spec in registry() {
                let c = ctx();
                let mut a = (spec.make)(&c);
                let mut tasks_a = fleet(3);
                for &(i, r, w) in WARMUP {
                    step(a.as_mut(), &mut tasks_a, &topo, i, r, w);
                }

                let bytes = snapshot_bytes(a.as_ref());
                let mut b = (spec.make)(&c);
                let mut r = SnapshotReader::new(&bytes)
                    .unwrap_or_else(|e| panic!("{}: bad snapshot: {e}", spec.name));
                b.restore(&mut r).unwrap_or_else(|e| panic!("{}: restore: {e}", spec.name));
                r.finish().unwrap_or_else(|e| panic!("{}: leftover bytes: {e}", spec.name));

                // Kernel-side task state (hw priorities) is restored by the
                // surrounding checkpoint; mirror it for the clone.
                let mut tasks_b = fleet(3);
                for (tb, ta) in tasks_b.iter_mut().zip(tasks_a.iter()) {
                    tb.hw_prio = ta.hw_prio;
                }

                assert_eq!(
                    snapshot_bytes(a.as_ref()),
                    snapshot_bytes(b.as_ref()),
                    "{}: restored state must re-encode to identical bytes",
                    spec.name
                );
                for &(i, r, w) in TAIL {
                    let da = step(a.as_mut(), &mut tasks_a, &topo, i, r, w);
                    let db = step(b.as_mut(), &mut tasks_b, &topo, i, r, w);
                    assert_eq!(da, db, "{}: decision diverged after restore", spec.name);
                }
                assert_eq!(
                    snapshot_bytes(a.as_ref()),
                    snapshot_bytes(b.as_ref()),
                    "{}: states diverged after identical post-restore drive",
                    spec.name
                );
            }
        }

        /// A snapshot taken between `on_sample` and `assign_priorities`
        /// must carry the in-flight pending decision across the cut.
        #[test]
        fn pending_decision_survives_the_cut() {
            let topo = Topology::openpower_710();
            for spec in registry() {
                let c = ctx();
                let mut a = (spec.make)(&c);
                let mut tasks_a = fleet(3);
                for &(i, r, w) in WARMUP {
                    step(a.as_mut(), &mut tasks_a, &topo, i, r, w);
                }
                // Record a hot sample but cut before the assignment lands.
                let sample = IterSample {
                    task: TaskId(0),
                    run: SimDuration::from_millis(95),
                    wall: SimDuration::from_millis(100),
                };
                {
                    let ctx = ClassCtx {
                        now: SimTime::ZERO,
                        tasks: &mut tasks_a,
                        topology: &topo,
                        running: vec![],
                    };
                    assert_eq!(a.on_sample(&ctx, sample), SampleOutcome::Recorded);
                }

                let bytes = snapshot_bytes(a.as_ref());
                let mut b = (spec.make)(&c);
                let mut r = SnapshotReader::new(&bytes).expect("snapshot decodes");
                b.restore(&mut r).expect("restore succeeds");
                let mut tasks_b = fleet(3);
                for (tb, ta) in tasks_b.iter_mut().zip(tasks_a.iter()) {
                    tb.hw_prio = ta.hw_prio;
                }

                let settle = |bal: &mut Box<dyn Balancer>, tasks: &mut Vec<Task>| {
                    let ctx = ClassCtx {
                        now: SimTime::ZERO,
                        tasks,
                        topology: &topo,
                        running: vec![],
                    };
                    bal.assign_priorities(&ctx, TaskId(0))
                };
                let da = settle(&mut a, &mut tasks_a);
                let db = settle(&mut b, &mut tasks_b);
                assert_eq!(da, db, "{}: pending decision lost across snapshot", spec.name);
            }
        }
    }
}
