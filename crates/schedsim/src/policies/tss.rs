//! TSS — trapezoid self-scheduling (Tzen & Ni; LB4OMP's `TSS`),
//! reinterpreted for priority assignment.
//!
//! TSS decreases chunk sizes *linearly* rather than geometrically. Mapped
//! onto priority balancing: a sliding window of the last `WINDOW`
//! iterations with linearly decaying weights (newest = `WINDOW`, oldest
//! = 1) — smoother than GSS's exponential discounting, faster than the
//! paper's all-history global metric.

use super::zoo::{classify, usable_util, StepCore};
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::{BTreeMap, VecDeque};

const WINDOW: usize = 8;

pub struct TssBalancer {
    core: StepCore,
    // BTreeMap, not HashMap: decisions must not depend on hash order.
    window: BTreeMap<TaskId, VecDeque<f64>>,
}

impl TssBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        TssBalancer { core, window: BTreeMap::new() }
    }

    /// Linearly weighted mean: the i-th newest sample has weight
    /// `WINDOW - i`.
    fn metric(samples: &VecDeque<f64>) -> f64 {
        let mut num = 0.0;
        let mut den = 0.0;
        for (age, u) in samples.iter().rev().enumerate() {
            let w = (WINDOW - age) as f64;
            num += w * u;
            den += w;
        }
        num / den
    }
}

impl Balancer for TssBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        let Some(util) = usable_util(sample.run, sample.wall) else {
            return SampleOutcome::Unusable;
        };
        let w = self.window.entry(sample.task).or_default();
        w.push_back(util);
        if w.len() > WINDOW {
            w.pop_front();
        }
        let dir = classify(Self::metric(w), &self.core.tun());
        self.core.pending = Some((sample.task, dir));
        SampleOutcome::Recorded
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.settle(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn task_exited(&mut self, task: TaskId) {
        self.window.remove(&task);
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.window);
        self.core.snapshot_pending(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.window = r.get()?;
        self.core.restore_pending(r)
    }
}
