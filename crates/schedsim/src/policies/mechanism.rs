//! The Mechanism (paper §IV-C): the only architecture-dependent component.
//!
//! The scheduling policy and heuristics are architecture-neutral; applying
//! a hardware priority is not. On POWER5 the kernel issues a supervisor
//! `or X,X,X` nop on the context the task is dispatched to; on machines
//! without software-controlled prioritization the mechanism is a no-op and
//! HPCSched still helps through its class placement alone (the paper makes
//! exactly this point).

use power5::{priority, HwPriority, PriorityError, PrivilegeLevel};

/// Applies heuristic decisions to the hardware.
pub trait PrioMechanism: Send {
    fn name(&self) -> &'static str;

    /// Validate `prio` for this architecture and return the priority to
    /// record on the task (applied by the dispatcher when the task next
    /// runs). `Err` leaves the task's priority unchanged.
    fn validate(&self, prio: HwPriority) -> Result<HwPriority, PriorityError>;

    /// Whether this architecture actually varies resource allocation.
    fn is_effective(&self) -> bool {
        true
    }
}

/// POWER5 mechanism: priorities are set from supervisor (OS) privilege, so
/// only levels 1–6 are reachable; the heuristics' `[4,6]` working range is
/// well inside that.
#[derive(Clone, Copy, Debug, Default)]
pub struct Power5Mechanism;

impl PrioMechanism for Power5Mechanism {
    fn name(&self) -> &'static str {
        "power5"
    }

    fn validate(&self, prio: HwPriority) -> Result<HwPriority, PriorityError> {
        priority::issue_or_nop(prio, PrivilegeLevel::Supervisor)
    }
}

/// No-op mechanism for architectures without hardware prioritization: every
/// request "succeeds" but resolves to the default Medium priority, so the
/// chip model never sees a difference.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullMechanism;

impl PrioMechanism for NullMechanism {
    fn name(&self) -> &'static str {
        "null"
    }

    fn validate(&self, _prio: HwPriority) -> Result<HwPriority, PriorityError> {
        Ok(HwPriority::MEDIUM)
    }

    fn is_effective(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power5_accepts_supervisor_range() {
        let m = Power5Mechanism;
        for v in 1..=6u8 {
            let p = HwPriority::new(v).unwrap();
            assert_eq!(m.validate(p), Ok(p), "prio {v}");
        }
    }

    #[test]
    fn power5_rejects_hypervisor_levels() {
        let m = Power5Mechanism;
        assert!(m.validate(HwPriority::VERY_HIGH).is_err());
        assert!(m.validate(HwPriority::OFF).is_err());
    }

    #[test]
    fn null_mechanism_pins_medium() {
        let m = NullMechanism;
        assert_eq!(m.validate(HwPriority::HIGH), Ok(HwPriority::MEDIUM));
        assert!(!m.is_effective());
        assert!(Power5Mechanism.is_effective());
    }
}
