//! Prioritization heuristics (paper §IV-B).
//!
//! After each iteration the scheduler must decide whether to raise, lower or
//! keep a task's hardware priority. The paper implements two heuristics and
//! lets the user pick one (plus tune it at run time):
//!
//! * **Uniform** — judges on the *global* utilization `Ug`. Slow to adapt
//!   but stable; best for applications with constant behaviour
//!   (MetBench, BT-MZ).
//! * **Adaptive** — judges on `Ui = G·Ug(i−1) + L·Ul(i)`, weighting recent
//!   history (aggressively, by default: G=0.1, L=0.9). Fast to adapt, may
//!   over-react to noise and then recover (MetBenchVar, dynamic apps).
//!
//! Both step the priority by one level per iteration within
//! `[MIN_PRIO, MAX_PRIO]` (default `[4, 6]`, i.e. a maximum difference of
//! ±2 — larger differences starve the sibling context, paper §II/§IV).

use super::detector::TaskIterStats;
use super::tunables::HpcTunables;
use power5::HwPriority;
use serde::{Deserialize, Serialize};

/// Which heuristic to run (the paper selects this at kernel compile time).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum HeuristicKind {
    Uniform,
    Adaptive,
    /// The paper's future-work wish (§VI): "an heuristic capable of
    /// performing well (even if not optimal) for both constant and dynamic
    /// applications". See [`HybridHeuristic`].
    Hybrid,
}

/// A prioritization heuristic: maps a task's iteration statistics to its
/// next hardware priority.
pub trait Heuristic: Send {
    fn name(&self) -> &'static str;

    /// The utilization metric (percent) this heuristic judges on; also used
    /// by the detector's balance gate.
    fn metric(&self, stats: &TaskIterStats, tun: &HpcTunables) -> f64;

    /// Next priority for a task currently at `current` with the given
    /// stats. Must stay within `[tun.min_prio, tun.max_prio]`.
    fn next_priority(
        &self,
        stats: &TaskIterStats,
        current: HwPriority,
        tun: &HpcTunables,
    ) -> HwPriority {
        let util = self.metric(stats, tun);
        let next = if util >= tun.high_util {
            current.raised()
        } else if util <= tun.low_util {
            current.lowered()
        } else {
            current
        };
        next.clamp(tun.min_prio, tun.max_prio)
    }

    /// Whether the balance gate should judge on recent (last-iteration)
    /// utilization rather than global utilization.
    fn judges_recent(&self) -> bool {
        false
    }
}

/// The Uniform heuristic: global utilization with hysteresis bounds.
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformHeuristic;

impl Heuristic for UniformHeuristic {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn metric(&self, stats: &TaskIterStats, _tun: &HpcTunables) -> f64 {
        stats.global_util
    }
}

/// The Adaptive heuristic: recency-weighted utilization.
#[derive(Clone, Copy, Debug, Default)]
pub struct AdaptiveHeuristic;

impl Heuristic for AdaptiveHeuristic {
    fn name(&self) -> &'static str {
        "adaptive"
    }

    fn metric(&self, stats: &TaskIterStats, tun: &HpcTunables) -> f64 {
        stats.blended(tun.g_weight, tun.l_weight)
    }

    fn judges_recent(&self) -> bool {
        true
    }
}

/// The Hybrid heuristic — this reproduction's implementation of the
/// paper's future-work item (§VI).
///
/// Observation: what distinguishes the two built-in heuristics is how much
/// history they trust. History is trustworthy exactly when the application
/// has been behaving consistently *since the last behaviour change* — and
/// the Load Imbalance Detector already resets its accumulators on every
/// behaviour change, so a task's `iterations` counter *is* its
/// "iterations of consistent behaviour" age.
///
/// Hybrid therefore anneals: right after a behaviour change (young
/// history) it judges like an aggressive Adaptive (trust the last
/// iteration); as consistent history accumulates it smoothly shifts to the
/// Uniform judgement (trust the global average). Constant applications get
/// Uniform's stability; dynamic applications get Adaptive's reaction time.
#[derive(Clone, Copy, Debug)]
pub struct HybridHeuristic {
    /// Iterations of consistent behaviour after which history is fully
    /// trusted.
    pub warmup: u64,
}

impl Default for HybridHeuristic {
    fn default() -> Self {
        HybridHeuristic { warmup: 6 }
    }
}

impl Heuristic for HybridHeuristic {
    fn name(&self) -> &'static str {
        "hybrid"
    }

    fn metric(&self, stats: &TaskIterStats, _tun: &HpcTunables) -> f64 {
        // Weight of history grows with its age: g = min(age/warmup, 1) · g_max.
        // g_max < 1 keeps a sliver of reactivity even at full maturity.
        const G_MAX: f64 = 0.9;
        let age = stats.iterations.min(self.warmup) as f64 / self.warmup as f64;
        let g = G_MAX * age;
        stats.blended(g, 1.0 - g)
    }

    fn judges_recent(&self) -> bool {
        true
    }
}

/// Instantiate a heuristic by kind.
pub fn make_heuristic(kind: HeuristicKind) -> Box<dyn Heuristic> {
    match kind {
        HeuristicKind::Uniform => Box::new(UniformHeuristic),
        HeuristicKind::Adaptive => Box::new(AdaptiveHeuristic),
        HeuristicKind::Hybrid => Box::new(HybridHeuristic::default()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(last: f64, global: f64, prev_global: f64) -> TaskIterStats {
        TaskIterStats { iterations: 3, last_util: last, global_util: global, prev_global_util: prev_global }
    }

    fn tun() -> HpcTunables {
        HpcTunables::default()
    }

    #[test]
    fn uniform_raises_high_utilization_tasks() {
        let h = UniformHeuristic;
        let next = h.next_priority(&stats(99.0, 99.0, 99.0), HwPriority::MEDIUM, &tun());
        assert_eq!(next, HwPriority::MEDIUM_HIGH, "one step per iteration");
        let next = h.next_priority(&stats(99.0, 99.0, 99.0), next, &tun());
        assert_eq!(next, HwPriority::HIGH);
        let next = h.next_priority(&stats(99.0, 99.0, 99.0), next, &tun());
        assert_eq!(next, HwPriority::HIGH, "clamped at MAX_PRIO");
    }

    #[test]
    fn uniform_lowers_low_utilization_tasks() {
        let h = UniformHeuristic;
        let next = h.next_priority(&stats(20.0, 20.0, 20.0), HwPriority::HIGH, &tun());
        assert_eq!(next, HwPriority::MEDIUM_HIGH);
        let next = h.next_priority(&stats(20.0, 20.0, 20.0), HwPriority::MEDIUM, &tun());
        assert_eq!(next, HwPriority::MEDIUM, "clamped at MIN_PRIO");
    }

    #[test]
    fn hysteresis_band_keeps_priority() {
        let h = UniformHeuristic;
        for u in [66.0, 70.0, 80.0, 84.9] {
            let next = h.next_priority(&stats(u, u, u), HwPriority::MEDIUM_HIGH, &tun());
            assert_eq!(next, HwPriority::MEDIUM_HIGH, "util {u} inside band");
        }
    }

    #[test]
    fn uniform_ignores_last_iteration_spike() {
        // Global 50%, last iteration 100%: Uniform judges on global.
        let h = UniformHeuristic;
        let next = h.next_priority(&stats(100.0, 50.0, 49.0), HwPriority::MEDIUM, &tun());
        assert_eq!(next, HwPriority::MEDIUM);
    }

    #[test]
    fn adaptive_follows_last_iteration() {
        // Same stats: Adaptive (G=0.1, L=0.9) sees 0.1*49 + 0.9*100 = 94.9.
        let h = AdaptiveHeuristic;
        let next = h.next_priority(&stats(100.0, 50.0, 49.0), HwPriority::MEDIUM, &tun());
        assert_eq!(next, HwPriority::MEDIUM_HIGH);
    }

    #[test]
    fn adaptive_with_g_one_behaves_like_uniform() {
        let mut t = tun();
        t.set_weights(1.0);
        let h = AdaptiveHeuristic;
        let s = stats(100.0, 50.0, 49.0);
        assert!((h.metric(&s, &t) - 49.0).abs() < 1e-9, "pure history");
        assert_eq!(h.next_priority(&s, HwPriority::MEDIUM, &t), HwPriority::MEDIUM);
    }

    #[test]
    fn priorities_never_leave_configured_range() {
        let t = tun();
        for kind in [HeuristicKind::Uniform, HeuristicKind::Adaptive] {
            let h = make_heuristic(kind);
            for u in [0.0, 30.0, 65.0, 75.0, 85.0, 100.0] {
                for p in [HwPriority::MEDIUM, HwPriority::MEDIUM_HIGH, HwPriority::HIGH] {
                    let next = h.next_priority(&stats(u, u, u), p, &t);
                    assert!(next >= t.min_prio && next <= t.max_prio, "{kind:?} u={u} p={p}");
                }
            }
        }
    }

    #[test]
    fn custom_range_respected() {
        let mut t = tun();
        t.set("min_prio", "3").unwrap();
        t.set("max_prio", "5").unwrap();
        let h = UniformHeuristic;
        let up = h.next_priority(&stats(99.0, 99.0, 99.0), HwPriority::MEDIUM_HIGH, &t);
        assert_eq!(up, HwPriority::MEDIUM_HIGH, "clamped at 5");
        let down = h.next_priority(&stats(10.0, 10.0, 10.0), HwPriority::MEDIUM, &t);
        assert_eq!(down.value(), 3);
    }

    #[test]
    fn kinds_instantiate() {
        assert_eq!(make_heuristic(HeuristicKind::Uniform).name(), "uniform");
        assert_eq!(make_heuristic(HeuristicKind::Adaptive).name(), "adaptive");
        assert_eq!(make_heuristic(HeuristicKind::Hybrid).name(), "hybrid");
        assert!(make_heuristic(HeuristicKind::Adaptive).judges_recent());
        assert!(!make_heuristic(HeuristicKind::Uniform).judges_recent());
    }

    fn stats_with_age(last: f64, prev: f64, age: u64) -> TaskIterStats {
        TaskIterStats {
            iterations: age,
            last_util: last,
            global_util: (last + prev) / 2.0,
            prev_global_util: prev,
        }
    }

    #[test]
    fn hybrid_acts_like_adaptive_when_history_is_young() {
        let h = HybridHeuristic::default();
        // One iteration of history after a behaviour change: the metric is
        // dominated by the last iteration.
        let s = stats_with_age(100.0, 20.0, 1);
        let m = h.metric(&s, &tun());
        assert!(m > 85.0, "young history follows the last iteration: {m}");
        assert_eq!(
            h.next_priority(&s, HwPriority::MEDIUM, &tun()),
            HwPriority::MEDIUM_HIGH
        );
    }

    #[test]
    fn hybrid_acts_like_uniform_when_history_is_mature() {
        let h = HybridHeuristic::default();
        // Long consistent history at 20%: a single 100% spike is ignored.
        let s = stats_with_age(100.0, 20.0, 50);
        let m = h.metric(&s, &tun());
        assert!(m < 40.0, "mature history damps spikes: {m}");
        assert_eq!(h.next_priority(&s, HwPriority::MEDIUM, &tun()), HwPriority::MEDIUM);
    }

    #[test]
    fn hybrid_weight_anneals_monotonically() {
        let h = HybridHeuristic::default();
        let mut last_metric = f64::INFINITY;
        for age in 1..=8 {
            // With last > prev, the metric decreases as history weight
            // grows.
            let m = h.metric(&stats_with_age(100.0, 0.0, age), &tun());
            assert!(m <= last_metric, "age {age}: {m} > {last_metric}");
            last_metric = m;
        }
    }
}
