//! The uniform/static baseline policy: the HPC class's placement benefit
//! with hardware priorities pinned at the default.
//!
//! Useful as the control arm of any policy comparison — whatever a dynamic
//! policy gains over `static` is attributable to priority steering, not to
//! class placement or domain balancing (which this policy keeps).

use super::zoo::{usable_util, StepCore};
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;

pub struct StaticBalancer {
    core: StepCore,
}

impl StaticBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        StaticBalancer { core }
    }
}

impl Balancer for StaticBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        if usable_util(sample.run, sample.wall).is_none() {
            return SampleOutcome::Unusable;
        }
        SampleOutcome::Recorded
    }

    /// Never moves a priority.
    fn assign_priorities(&mut self, _ctx: &ClassCtx<'_>, _task: TaskId) -> Vec<PrioAssignment> {
        Vec::new()
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }
}
