//! Runtime tunables for the HPC scheduler.
//!
//! The paper exposes these "through specific entries in the sysfs
//! filesystem" (§IV-B); [`HpcTunables::set`]/[`HpcTunables::get`] mirror
//! that string-keyed interface so examples and experiments can tune a live
//! scheduler the way an administrator would.

use power5::HwPriority;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Tunable parameters of the Load Imbalance Detector and heuristics.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct HpcTunables {
    /// Utilization (percent) below which a task is "low utilization".
    pub low_util: f64,
    /// Utilization (percent) above which a task is "high utilization".
    pub high_util: f64,
    /// Lowest hardware priority the heuristics may assign.
    pub min_prio: HwPriority,
    /// Highest hardware priority the heuristics may assign.
    pub max_prio: HwPriority,
    /// Weight of the global (historical) utilization in the Adaptive
    /// heuristic. `G + L = 1` is maintained by [`HpcTunables::set_weights`].
    pub g_weight: f64,
    /// Weight of the last iteration's utilization in the Adaptive heuristic.
    pub l_weight: f64,
    /// Utilization spread (percentage points) below which the application
    /// counts as balanced and priorities are left alone.
    pub balance_spread: f64,
    /// Tasks whose global utilization is below this (percent) are treated
    /// as non-compute processes (e.g. an MPI master that only coordinates)
    /// and excluded from the imbalance check — they cannot be sped up or
    /// slowed down, so they are not part of the balancing problem.
    pub negligible_util: f64,
}

impl Default for HpcTunables {
    fn default() -> Self {
        // Paper §IV-B / §V: HIGH_UTIL = 85, LOW_UTIL = 65, priorities
        // explored in [4, 6] (max difference ±2), Adaptive run "very
        // aggressive" at 10% global / 90% last.
        HpcTunables {
            low_util: 65.0,
            high_util: 85.0,
            min_prio: HwPriority::MEDIUM,
            max_prio: HwPriority::HIGH,
            g_weight: 0.10,
            l_weight: 0.90,
            balance_spread: 10.0,
            negligible_util: 5.0,
        }
    }
}

/// Error from the sysfs-style string interface.
#[derive(Clone, Debug, PartialEq)]
pub enum TunableError {
    UnknownKey(String),
    InvalidValue { key: &'static str, value: String, reason: &'static str },
}

impl fmt::Display for TunableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TunableError::UnknownKey(k) => write!(f, "unknown tunable {k:?}"),
            TunableError::InvalidValue { key, value, reason } => {
                write!(f, "invalid value {value:?} for {key}: {reason}")
            }
        }
    }
}

impl std::error::Error for TunableError {}

impl HpcTunables {
    /// Set the Adaptive weights, keeping `G + L = 1`.
    ///
    /// # Panics
    /// If `g` is not within `[0, 1]`.
    pub fn set_weights(&mut self, g: f64) {
        assert!((0.0..=1.0).contains(&g), "G weight must be in [0,1]");
        self.g_weight = g;
        self.l_weight = 1.0 - g;
    }

    /// Validate cross-field consistency.
    pub fn validate(&self) -> Result<(), TunableError> {
        if self.low_util > self.high_util {
            return Err(TunableError::InvalidValue {
                key: "low_util",
                value: self.low_util.to_string(),
                reason: "LOW_UTIL must not exceed HIGH_UTIL",
            });
        }
        if self.min_prio > self.max_prio {
            return Err(TunableError::InvalidValue {
                key: "min_prio",
                value: self.min_prio.to_string(),
                reason: "MIN_PRIO must not exceed MAX_PRIO",
            });
        }
        if !self.min_prio.is_regular() || !self.max_prio.is_regular() {
            return Err(TunableError::InvalidValue {
                key: "max_prio",
                value: self.max_prio.to_string(),
                reason: "heuristic priorities must be regular (2-6)",
            });
        }
        Ok(())
    }

    /// sysfs-style write: `echo <value> > /sys/kernel/hpcsched/<key>`.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), TunableError> {
        fn parse_f64(key: &'static str, value: &str) -> Result<f64, TunableError> {
            value.trim().parse::<f64>().map_err(|_| TunableError::InvalidValue {
                key,
                value: value.to_string(),
                reason: "not a number",
            })
        }
        fn parse_prio(key: &'static str, value: &str) -> Result<HwPriority, TunableError> {
            let raw: u8 = value.trim().parse().map_err(|_| TunableError::InvalidValue {
                key,
                value: value.to_string(),
                reason: "not an integer",
            })?;
            HwPriority::new(raw).map_err(|_| TunableError::InvalidValue {
                key,
                value: value.to_string(),
                reason: "priority out of range 0-7",
            })
        }
        match key {
            "low_util" => self.low_util = parse_f64("low_util", value)?,
            "high_util" => self.high_util = parse_f64("high_util", value)?,
            "min_prio" => self.min_prio = parse_prio("min_prio", value)?,
            "max_prio" => self.max_prio = parse_prio("max_prio", value)?,
            "g_weight" => {
                let g = parse_f64("g_weight", value)?;
                if !(0.0..=1.0).contains(&g) {
                    return Err(TunableError::InvalidValue {
                        key: "g_weight",
                        value: value.to_string(),
                        reason: "must be in [0,1]",
                    });
                }
                self.set_weights(g);
            }
            "balance_spread" => self.balance_spread = parse_f64("balance_spread", value)?,
            "negligible_util" => self.negligible_util = parse_f64("negligible_util", value)?,
            other => return Err(TunableError::UnknownKey(other.to_string())),
        }
        self.validate()
    }

    /// sysfs-style read.
    pub fn get(&self, key: &str) -> Result<String, TunableError> {
        Ok(match key {
            "low_util" => self.low_util.to_string(),
            "high_util" => self.high_util.to_string(),
            "min_prio" => self.min_prio.to_string(),
            "max_prio" => self.max_prio.to_string(),
            "g_weight" => self.g_weight.to_string(),
            "l_weight" => self.l_weight.to_string(),
            "balance_spread" => self.balance_spread.to_string(),
            "negligible_util" => self.negligible_util.to_string(),
            other => return Err(TunableError::UnknownKey(other.to_string())),
        })
    }

    /// All tunable keys, for discovery/diagnostics.
    pub fn keys() -> &'static [&'static str] {
        &[
            "low_util",
            "high_util",
            "min_prio",
            "max_prio",
            "g_weight",
            "l_weight",
            "balance_spread",
            "negligible_util",
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let t = HpcTunables::default();
        assert_eq!(t.low_util, 65.0);
        assert_eq!(t.high_util, 85.0);
        assert_eq!(t.min_prio, HwPriority::MEDIUM);
        assert_eq!(t.max_prio, HwPriority::HIGH);
        assert!((t.g_weight - 0.10).abs() < 1e-12);
        assert!((t.l_weight - 0.90).abs() < 1e-12);
        assert!(t.validate().is_ok());
    }

    #[test]
    fn max_priority_difference_is_two() {
        // Paper: priorities limited to [4,6] so the difference is ±2 and
        // the victim keeps reasonable throughput.
        let t = HpcTunables::default();
        assert_eq!(t.max_prio.value() - t.min_prio.value(), 2);
    }

    #[test]
    fn sysfs_set_get_roundtrip() {
        let mut t = HpcTunables::default();
        t.set("high_util", "90").unwrap();
        assert_eq!(t.get("high_util").unwrap(), "90");
        t.set("max_prio", "5").unwrap();
        assert_eq!(t.max_prio, HwPriority::MEDIUM_HIGH);
    }

    #[test]
    fn weights_stay_normalized() {
        let mut t = HpcTunables::default();
        t.set("g_weight", "0.25").unwrap();
        assert!((t.g_weight + t.l_weight - 1.0).abs() < 1e-12);
        assert!((t.l_weight - 0.75).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_values() {
        let mut t = HpcTunables::default();
        assert!(matches!(t.set("high_util", "abc"), Err(TunableError::InvalidValue { .. })));
        assert!(matches!(t.set("max_prio", "9"), Err(TunableError::InvalidValue { .. })));
        assert!(matches!(t.set("g_weight", "1.5"), Err(TunableError::InvalidValue { .. })));
        assert!(matches!(t.set("nope", "1"), Err(TunableError::UnknownKey(_))));
    }

    #[test]
    fn validation_catches_inversions() {
        let mut t = HpcTunables::default();
        assert!(t.set("low_util", "95").is_err(), "LOW above HIGH rejected");
        let mut t2 = HpcTunables { min_prio: HwPriority::VERY_HIGH, ..Default::default() };
        assert!(t2.validate().is_err());
        t2.min_prio = HwPriority::MEDIUM;
        assert!(t2.validate().is_ok());
    }

    #[test]
    fn keys_are_all_readable() {
        let t = HpcTunables::default();
        for k in HpcTunables::keys() {
            assert!(t.get(k).is_ok(), "key {k}");
        }
    }
}
