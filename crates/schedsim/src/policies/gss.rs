//! GSS — guided self-scheduling (Polychronopoulos & Kuck; LB4OMP's `GSS`),
//! reinterpreted for priority assignment.
//!
//! GSS assigns geometrically shrinking chunks: each new chunk counts as
//! much as all remaining work it halves. Mapped onto priority balancing:
//! an exponentially weighted utilization estimate with weight ½ —
//! `e ← (e + u) / 2` — so each iteration carries as much weight as the
//! entire history before it. Reacts in O(1) iterations like SS but keeps a
//! damping tail, the classic GSS compromise.

use super::zoo::{classify, usable_util, StepCore};
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::ClassCtx;
use crate::task::TaskId;
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use std::collections::BTreeMap;

pub struct GssBalancer {
    core: StepCore,
    // BTreeMap, not HashMap: decisions must not depend on hash order.
    estimate: BTreeMap<TaskId, f64>,
}

impl GssBalancer {
    pub(crate) fn new(core: StepCore) -> Self {
        GssBalancer { core, estimate: BTreeMap::new() }
    }
}

impl Balancer for GssBalancer {
    fn name(&self) -> &'static str {
        self.core.name
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.core.attach_telemetry(registry);
    }

    fn on_sample(&mut self, _ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        let Some(util) = usable_util(sample.run, sample.wall) else {
            return SampleOutcome::Unusable;
        };
        let e = self
            .estimate
            .entry(sample.task)
            .and_modify(|e| *e = (*e + util) / 2.0)
            .or_insert(util);
        let dir = classify(*e, &self.core.tun());
        self.core.pending = Some((sample.task, dir));
        SampleOutcome::Recorded
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.settle(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        self.core.fault(ctx, task)
    }

    fn task_exited(&mut self, task: TaskId) {
        self.estimate.remove(&task);
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.estimate);
        self.core.snapshot_pending(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        self.estimate = r.get()?;
        self.core.restore_pending(r)
    }
}
