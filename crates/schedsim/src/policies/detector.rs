//! The Load Imbalance Detector (paper §IV-B).
//!
//! MPI applications alternate *computing phases* (runnable) with *waiting
//! phases* (blocked on messages or barriers); one of each is an iteration.
//! The detector accumulates, per SCHED_HPC task:
//!
//! * the last iteration's utilization `Ul(i) = tR / ti`,
//! * the global utilization `Ug = Σ tR / Σ ti`,
//!
//! and answers the application-level question the heuristics gate on: *is
//! the set of HPC tasks imbalanced right now?* Balance is declared when the
//! utilization spread across live tasks falls below a tunable threshold —
//! the "stable state" the paper wants heuristics to find and then stop
//! touching priorities in.

use super::tunables::HpcTunables;
use crate::task::TaskId;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimDuration;
use std::collections::BTreeMap;

/// Per-task iteration statistics, as the heuristics see them.
#[derive(Clone, Copy, Debug)]
pub struct TaskIterStats {
    /// Completed iterations.
    pub iterations: u64,
    /// Utilization of the last completed iteration, in percent.
    pub last_util: f64,
    /// Global utilization over all iterations, in percent.
    pub global_util: f64,
    /// Global utilization *excluding* the last iteration, in percent —
    /// the `Ug(i−1)` term of the Adaptive heuristic.
    pub prev_global_util: f64,
}

impl TaskIterStats {
    /// The Adaptive heuristic's blended metric
    /// `Ui = G·Ug(i−1) + L·Ul(i)` (paper §IV-B).
    pub fn blended(&self, g: f64, l: f64) -> f64 {
        g * self.prev_global_util + l * self.last_util
    }
}

impl Snapshot for TaskIterStats {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u64(self.iterations);
        w.put_f64(self.last_util);
        w.put_f64(self.global_util);
        w.put_f64(self.prev_global_util);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(TaskIterStats {
            iterations: r.get_u64()?,
            last_util: r.get_f64()?,
            global_util: r.get_f64()?,
            prev_global_util: r.get_f64()?,
        })
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Accum {
    run: SimDuration,
    wall: SimDuration,
    iterations: u64,
    last_util: f64,
    prev_global: f64,
}

impl Snapshot for Accum {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.run);
        w.put(&self.wall);
        w.put_u64(self.iterations);
        w.put_f64(self.last_util);
        w.put_f64(self.prev_global);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(Accum {
            run: r.get()?,
            wall: r.get()?,
            iterations: r.get_u64()?,
            last_util: r.get_f64()?,
            prev_global: r.get_f64()?,
        })
    }
}

/// Tracks iteration statistics for every task in the HPC class.
#[derive(Clone, Debug, Default)]
pub struct LoadImbalanceDetector {
    // BTreeMap, not HashMap: `spread` iterates the task set, and imbalance
    // decisions must not depend on hash order.
    tasks: BTreeMap<TaskId, Accum>,
}

impl LoadImbalanceDetector {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a completed iteration (`run` CPU time over `wall` elapsed
    /// time) and return the task's updated stats.
    ///
    /// Returns `None` — recording nothing — when the sample is unusable: a
    /// zero-length iteration (a never-blocking task "completes" those
    /// back-to-back) or a non-finite utilization. Fabricating a number here
    /// would poison the accumulated history every later decision rests on;
    /// the caller treats `None` as "no sample" and falls back to uniform
    /// priorities rather than acting on garbage.
    pub fn record_iteration(
        &mut self,
        task: TaskId,
        run: SimDuration,
        wall: SimDuration,
    ) -> Option<TaskIterStats> {
        if wall.is_zero() {
            return None;
        }
        let util = ratio_percent(run, wall);
        if !util.is_finite() {
            return None;
        }
        let acc = self.tasks.entry(task).or_default();
        let prev_global = if acc.wall.is_zero() {
            // No history: treat the first iteration as its own history so
            // the blended metric degenerates gracefully.
            util
        } else {
            ratio_percent(acc.run, acc.wall)
        };
        acc.prev_global = prev_global;
        acc.run += run;
        acc.wall += wall;
        acc.iterations += 1;
        acc.last_util = util;
        self.stats_of(task)
    }

    /// A task left the class (exit or policy change); stop counting it in
    /// imbalance checks.
    pub fn forget(&mut self, task: TaskId) {
        self.tasks.remove(&task);
    }

    /// Discard all accumulated history (keeping nothing but the task set).
    ///
    /// Called when a *behaviour change* is detected — the application was
    /// balanced and is no longer. Pre-change history describes a different
    /// regime and would make the global-utilization metric unresponsive
    /// (the paper's Figure 4(c) shows re-balancing within 2–3 iterations
    /// of a swap, which is only possible if stale history stops counting).
    pub fn reset_history(&mut self) {
        for acc in self.tasks.values_mut() {
            *acc = Accum::default();
        }
    }

    /// Stats for one task, if it has completed at least one iteration.
    pub fn stats_of(&self, task: TaskId) -> Option<TaskIterStats> {
        let acc = self.tasks.get(&task)?;
        if acc.iterations == 0 {
            return None;
        }
        Some(TaskIterStats {
            iterations: acc.iterations,
            last_util: acc.last_util,
            global_util: ratio_percent(acc.run, acc.wall),
            prev_global_util: acc.prev_global,
        })
    }

    /// Number of tracked tasks.
    pub fn tracked(&self) -> usize {
        self.tasks.len()
    }

    /// The application-level imbalance check: the spread (max − min) of the
    /// given per-task metric across tracked *compute* tasks, in percentage
    /// points. Tasks whose global utilization is below `negligible_util`
    /// (coordinator/master processes) are excluded: they cannot be balanced
    /// and would otherwise pin the spread open forever. Returns 0 with
    /// fewer than two compute tasks.
    pub fn spread(&self, negligible_util: f64, metric: impl Fn(&TaskIterStats) -> f64) -> f64 {
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        let mut n = 0;
        for (&task, _) in self.tasks.iter() {
            if let Some(s) = self.stats_of(task) {
                if s.global_util < negligible_util {
                    continue;
                }
                let v = metric(&s);
                lo = lo.min(v);
                hi = hi.max(v);
                n += 1;
            }
        }
        if n < 2 {
            0.0
        } else {
            hi - lo
        }
    }

    /// Whether the application is balanced under the tunables' spread
    /// threshold, judged on global utilization.
    pub fn is_balanced(&self, tun: &HpcTunables) -> bool {
        self.spread(tun.negligible_util, |s| s.global_util) <= tun.balance_spread
    }

    /// Whether it is balanced judged on the last iteration only — the gate
    /// the scheduler uses, so a behaviour change reopens balancing
    /// immediately.
    pub fn is_balanced_recent(&self, tun: &HpcTunables) -> bool {
        self.spread(tun.negligible_util, |s| s.last_util) <= tun.balance_spread
    }
}

impl Snapshot for LoadImbalanceDetector {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        // BTreeMap iterates in key order, so equal detectors produce
        // equal bytes.
        w.put(&self.tasks);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(LoadImbalanceDetector { tasks: r.get()? })
    }
}

fn ratio_percent(num: SimDuration, den: SimDuration) -> f64 {
    if den.is_zero() {
        // No elapsed time → no meaningful ratio. Callers filter this out
        // (`record_iteration` rejects the sample); never let it reach the
        // spread computation as a fabricated percentage.
        f64::NAN
    } else {
        100.0 * num.as_nanos() as f64 / den.as_nanos() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn single_iteration_stats() {
        let mut d = LoadImbalanceDetector::new();
        let s = d.record_iteration(TaskId(0), ms(25), ms(100)).expect("usable sample");
        assert_eq!(s.iterations, 1);
        assert!((s.last_util - 25.0).abs() < 1e-9);
        assert!((s.global_util - 25.0).abs() < 1e-9);
    }

    #[test]
    fn global_accumulates_across_iterations() {
        let mut d = LoadImbalanceDetector::new();
        d.record_iteration(TaskId(0), ms(25), ms(100));
        let s = d.record_iteration(TaskId(0), ms(75), ms(100)).expect("usable sample");
        assert!((s.last_util - 75.0).abs() < 1e-9);
        assert!((s.global_util - 50.0).abs() < 1e-9, "Σrun/Σwall = 100/200");
        assert!((s.prev_global_util - 25.0).abs() < 1e-9, "history excludes last");
    }

    #[test]
    fn blended_metric_matches_paper_formula() {
        let mut d = LoadImbalanceDetector::new();
        d.record_iteration(TaskId(0), ms(20), ms(100)); // Ug = 20
        let s = d.record_iteration(TaskId(0), ms(90), ms(100)).expect("usable sample"); // Ul = 90
        // Ui = 0.1 * 20 + 0.9 * 90 = 83
        assert!((s.blended(0.1, 0.9) - 83.0).abs() < 1e-9);
    }

    #[test]
    fn spread_and_balance_detection() {
        let mut d = LoadImbalanceDetector::new();
        d.record_iteration(TaskId(0), ms(25), ms(100));
        d.record_iteration(TaskId(1), ms(100), ms(100));
        let tun = HpcTunables::default();
        assert!((d.spread(tun.negligible_util, |s| s.global_util) - 75.0).abs() < 1e-9);
        assert!(!d.is_balanced(&tun));

        // Next iterations converge.
        d.record_iteration(TaskId(0), ms(95), ms(100));
        d.record_iteration(TaskId(1), ms(100), ms(100));
        assert!(d.is_balanced_recent(&tun), "last-iteration spread 5pts");
    }

    #[test]
    fn fewer_than_two_tasks_is_balanced() {
        let mut d = LoadImbalanceDetector::new();
        let tun = HpcTunables::default();
        assert!(d.is_balanced(&tun), "empty");
        d.record_iteration(TaskId(0), ms(1), ms(100));
        assert!(d.is_balanced(&tun), "single task cannot be imbalanced");
    }

    #[test]
    fn forget_removes_task_from_spread() {
        let mut d = LoadImbalanceDetector::new();
        d.record_iteration(TaskId(0), ms(10), ms(100));
        d.record_iteration(TaskId(1), ms(100), ms(100));
        assert!(!d.is_balanced(&HpcTunables::default()));
        d.forget(TaskId(0));
        assert_eq!(d.tracked(), 1);
        assert!(d.is_balanced(&HpcTunables::default()));
    }

    #[test]
    fn zero_wall_iteration_yields_no_sample() {
        let mut d = LoadImbalanceDetector::new();
        assert!(d.record_iteration(TaskId(0), SimDuration::ZERO, SimDuration::ZERO).is_none());
        assert!(d.stats_of(TaskId(0)).is_none(), "nothing was recorded");
    }

    #[test]
    fn never_blocking_task_accumulates_no_history() {
        // A task that never waits "completes" zero-length iterations back
        // to back; none of them may count or skew the spread.
        let mut d = LoadImbalanceDetector::new();
        for _ in 0..50 {
            assert!(d.record_iteration(TaskId(0), SimDuration::ZERO, SimDuration::ZERO).is_none());
        }
        d.record_iteration(TaskId(1), ms(40), ms(100));
        d.record_iteration(TaskId(2), ms(90), ms(100));
        let tun = HpcTunables::default();
        let spread = d.spread(tun.negligible_util, |s| s.global_util);
        assert!((spread - 50.0).abs() < 1e-9, "spread over real samples only: {spread}");
    }

    #[test]
    fn degraded_then_recovered_task_reports_clean_stats() {
        let mut d = LoadImbalanceDetector::new();
        assert!(d.record_iteration(TaskId(0), ms(5), SimDuration::ZERO).is_none());
        let s = d.record_iteration(TaskId(0), ms(30), ms(100)).expect("usable sample");
        assert_eq!(s.iterations, 1, "rejected sample left no trace");
        assert!((s.last_util - 30.0).abs() < 1e-9);
        assert!(s.global_util.is_finite() && s.prev_global_util.is_finite());
    }

    #[test]
    fn stats_of_unknown_task_is_none() {
        let d = LoadImbalanceDetector::new();
        assert!(d.stats_of(TaskId(9)).is_none());
    }
}
