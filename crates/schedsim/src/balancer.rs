//! The balancing-policy abstraction: what the paper hard-wires into
//! `SCHED_HPC`, lifted into a trait.
//!
//! The scheduling *class* machinery (run queues, dispatch, migration) is
//! policy-independent; what varies between balancing disciplines is how an
//! iteration sample is judged and which hardware priorities come out. A
//! [`Balancer`] owns exactly that decision logic, and the thin driver
//! ([`crate::classes::BalancedClass`]) owns everything else — time, the
//! per-CPU queues, and telemetry wiring — mirroring the
//! `Scheduler`/`SchedCore` split used by BPF-style pluggable schedulers.
//!
//! The contract (see DESIGN.md §12):
//!
//! * `on_sample` is called once per completed iteration (compute + wait),
//!   *before* the task re-enters a run queue. It classifies the sample:
//!   [`SampleOutcome::Recorded`] feeds `assign_priorities`,
//!   [`SampleOutcome::Unusable`] feeds `on_fault` (the do-no-harm path).
//! * `assign_priorities` / `on_fault` return [`PrioAssignment`]s; the
//!   driver applies them to task state and counts actual changes. A
//!   balancer never mutates `ClassCtx` directly.
//! * Every returned priority must lie within the tunables' configured
//!   `[min_prio, max_prio]` range (conformance rule C001).
//! * Balancers are pure functions of their inputs: no wall clock, no
//!   unseeded randomness, no hash-order iteration (purity rules of
//!   DESIGN.md §11 apply verbatim).

use crate::balance::{plan_pull, BalanceView};
use crate::class::{ClassCtx, Migration};
use crate::task::TaskId;
use power5::{CpuId, HwPriority};
use simcore::snapshot::{SnapshotError, SnapshotReader, SnapshotWriter};
use simcore::SimDuration;

/// One completed iteration of an HPC task, as observed by the kernel.
#[derive(Clone, Copy, Debug)]
pub struct IterSample {
    pub task: TaskId,
    /// CPU time consumed during the iteration.
    pub run: SimDuration,
    /// Elapsed (wall) simulated time of the iteration.
    pub wall: SimDuration,
}

/// How a balancer classified a sample.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SampleOutcome {
    /// The sample entered the policy's history; ask `assign_priorities`.
    Recorded,
    /// The sample was garbage (zero wall, non-finite utilization); ask
    /// `on_fault` so the task degrades to the do-no-harm floor.
    Unusable,
}

/// A hardware-priority decision for one task. The driver applies it and
/// counts it as a change only if the task's priority actually moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrioAssignment {
    pub task: TaskId,
    pub prio: HwPriority,
}

/// The do-no-harm degradation floor (DESIGN.md §9), shared by every
/// policy's default fault path: stop steering a task the policy has no
/// usable data for by dropping it back to the uniform default priority.
pub fn degrade_to_floor(ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
    if ctx.task(task).hw_prio == HwPriority::MEDIUM {
        Vec::new()
    } else {
        vec![PrioAssignment { task, prio: HwPriority::MEDIUM }]
    }
}

/// A balancing policy: iteration samples in, priority assignments out.
pub trait Balancer: Send {
    /// Registry name of the policy (also its trace/report label).
    fn name(&self) -> &'static str;

    /// Called once with the machine's CPU count before any sample.
    fn init(&mut self, _num_cpus: usize) {}

    /// Register the policy's decision counters. Called at kernel build
    /// time when telemetry is available.
    fn attach_telemetry(&mut self, _registry: &telemetry::MetricsRegistry) {}

    /// Observe one completed iteration and classify it.
    fn on_sample(&mut self, ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome;

    /// Decide the task's next hardware priority after a recorded sample.
    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment>;

    /// Decide what to do after an unusable sample. The default is the
    /// do-no-harm floor: degrade the task to the uniform priority.
    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        degrade_to_floor(ctx, task)
    }

    /// A task left the class (exit or policy change); drop its history.
    fn task_exited(&mut self, _task: TaskId) {}

    /// Decide at most one queue migration for `cpu` (`idle` = it ran out
    /// of work). The default is the paper's domain-level pull balancer.
    fn plan_migrations(
        &mut self,
        view: &BalanceView<'_>,
        cpu: CpuId,
        idle: bool,
        allowed: &dyn Fn(TaskId, CpuId) -> bool,
    ) -> Option<Migration> {
        plan_pull(view, cpu, idle, allowed)
    }

    /// Serialize the policy's accumulated decision state (DESIGN.md §14):
    /// everything a freshly-built instance of the same policy (same
    /// registry entry, same tunables) needs to continue making
    /// byte-identical decisions. Stateless policies write nothing — the
    /// default. The encoding must be byte-stable: equal state, equal
    /// bytes (no hash-order iteration).
    fn snapshot(&self, _w: &mut SnapshotWriter) {}

    /// Restore state written by [`Balancer::snapshot`] into this
    /// freshly-built instance. The default consumes nothing, matching the
    /// default `snapshot`.
    fn restore(&mut self, _r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        Ok(())
    }
}

impl<B: Balancer + ?Sized> Balancer for Box<B> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn init(&mut self, num_cpus: usize) {
        (**self).init(num_cpus);
    }

    fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        (**self).attach_telemetry(registry);
    }

    fn on_sample(&mut self, ctx: &ClassCtx<'_>, sample: IterSample) -> SampleOutcome {
        (**self).on_sample(ctx, sample)
    }

    fn assign_priorities(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        (**self).assign_priorities(ctx, task)
    }

    fn on_fault(&mut self, ctx: &ClassCtx<'_>, task: TaskId) -> Vec<PrioAssignment> {
        (**self).on_fault(ctx, task)
    }

    fn task_exited(&mut self, task: TaskId) {
        (**self).task_exited(task);
    }

    fn plan_migrations(
        &mut self,
        view: &BalanceView<'_>,
        cpu: CpuId,
        idle: bool,
        allowed: &dyn Fn(TaskId, CpuId) -> bool,
    ) -> Option<Migration> {
        (**self).plan_migrations(view, cpu, idle, allowed)
    }

    fn snapshot(&self, w: &mut SnapshotWriter) {
        (**self).snapshot(w);
    }

    fn restore(&mut self, r: &mut SnapshotReader<'_>) -> Result<(), SnapshotError> {
        (**self).restore(r)
    }
}

/// Decision counters shared by the zoo policies:
/// `hpc.decisions.<policy>.accepted` / `.rejected` count priority proposals
/// the mechanism applied vs refused, and `hpc.detector.degraded` counts
/// unusable samples that hit the do-no-harm floor (the counter the fault
/// report reads as `degraded_samples`).
pub struct BalancerTelemetry {
    pub accepted: telemetry::Counter,
    pub rejected: telemetry::Counter,
    pub degraded: telemetry::Counter,
}

impl BalancerTelemetry {
    pub fn register(registry: &telemetry::MetricsRegistry, policy: &str) -> Self {
        BalancerTelemetry {
            accepted: registry.counter(&format!("hpc.decisions.{policy}.accepted")),
            rejected: registry.counter(&format!("hpc.decisions.{policy}.rejected")),
            degraded: registry.counter("hpc.detector.degraded"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::SchedPolicy;
    use crate::program::ScriptedProgram;
    use crate::task::Task;
    use power5::Topology;
    use simcore::SimTime;

    #[test]
    fn floor_degrades_only_raised_tasks() {
        let topo = Topology::openpower_710();
        let mut tasks: Vec<Task> = (0..2)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("rank{i}"),
                    SchedPolicy::Hpc,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                )
            })
            .collect();
        tasks[1].hw_prio = HwPriority::HIGH;
        let ctx =
            ClassCtx { now: SimTime::ZERO, tasks: &mut tasks, topology: &topo, running: vec![] };
        assert!(degrade_to_floor(&ctx, TaskId(0)).is_empty(), "already at floor");
        assert_eq!(
            degrade_to_floor(&ctx, TaskId(1)),
            vec![PrioAssignment { task: TaskId(1), prio: HwPriority::MEDIUM }]
        );
    }
}
