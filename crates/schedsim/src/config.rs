//! Kernel configuration and tunables.

use serde::{Deserialize, Serialize};
use simcore::SimDuration;

/// CFS tunables (the `sched_*_ns` sysctls of Linux 2.6.2x).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct CfsTunables {
    /// Target scheduling period: every runnable task should run once per
    /// this span (paper §III: "no one waits … more than … 20ms").
    pub sched_latency: SimDuration,
    /// Lower bound on any task's slice within the period.
    pub min_granularity: SimDuration,
    /// A waking task preempts the current one only if it is owed at least
    /// this much virtual runtime — the knob behind the CFS wakeup latency
    /// the paper's SIESTA experiment exposes.
    pub wakeup_granularity: SimDuration,
}

impl Default for CfsTunables {
    fn default() -> Self {
        // Linux 2.6.24 defaults (the kernel the paper patches).
        CfsTunables {
            sched_latency: SimDuration::from_millis(20),
            min_granularity: SimDuration::from_millis(4),
            wakeup_granularity: SimDuration::from_millis(10),
        }
    }
}

/// OS-noise model: per-CPU background daemons with Poisson arrivals
/// (paper §I cites the OS as a major extrinsic source of imbalance;
/// §V-D relies on noise competing with SIESTA under CFS).
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NoiseConfig {
    /// Daemons per CPU.
    pub daemons_per_cpu: usize,
    /// Mean time between a daemon's activity bursts.
    pub mean_interval: SimDuration,
    /// Mean CPU work per burst, in work units (seconds at speed 1).
    pub mean_burst_work: f64,
}

impl NoiseConfig {
    /// No background activity.
    pub fn off() -> Self {
        NoiseConfig {
            daemons_per_cpu: 0,
            mean_interval: SimDuration::from_millis(100),
            mean_burst_work: 0.0,
        }
    }

    /// A lightly loaded HPC node: one daemon per CPU waking every ~80 ms
    /// for ~300 µs of work (≈0.4% CPU) — in line with published OS-noise
    /// measurements on HPC clusters.
    pub fn light() -> Self {
        NoiseConfig {
            daemons_per_cpu: 1,
            mean_interval: SimDuration::from_millis(80),
            mean_burst_work: 300e-6,
        }
    }

    /// A noisier node (several daemons, more frequent bursts).
    pub fn heavy() -> Self {
        NoiseConfig {
            daemons_per_cpu: 2,
            mean_interval: SimDuration::from_millis(20),
            mean_burst_work: 500e-6,
        }
    }

    pub fn is_off(&self) -> bool {
        self.daemons_per_cpu == 0 || self.mean_burst_work <= 0.0
    }
}

/// Top-level kernel configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct KernelConfig {
    /// Scheduler tick period (1 ms = CONFIG_HZ 1000).
    pub tick: SimDuration,
    /// Time slice for `SCHED_RR` real-time tasks.
    pub rt_rr_slice: SimDuration,
    /// Direct cost charged on every context switch.
    pub ctx_switch_cost: SimDuration,
    pub cfs: CfsTunables,
    pub noise: NoiseConfig,
    /// Seed for kernel-internal randomness (noise daemons).
    pub seed: u64,
    /// Invoke per-class load balancing every N ticks per CPU (0 = only on
    /// idle).
    pub balance_interval_ticks: u32,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            tick: SimDuration::from_millis(1),
            rt_rr_slice: SimDuration::from_millis(100),
            ctx_switch_cost: SimDuration::from_micros(2),
            cfs: CfsTunables::default(),
            noise: NoiseConfig::off(),
            seed: 0x5EED,
            balance_interval_ticks: 64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_linux_2624() {
        let c = KernelConfig::default();
        assert_eq!(c.tick, SimDuration::from_millis(1));
        assert_eq!(c.cfs.sched_latency, SimDuration::from_millis(20));
        assert_eq!(c.cfs.wakeup_granularity, SimDuration::from_millis(10));
        assert_eq!(c.rt_rr_slice, SimDuration::from_millis(100));
    }

    #[test]
    fn noise_presets() {
        assert!(NoiseConfig::off().is_off());
        assert!(!NoiseConfig::light().is_off());
        assert!(NoiseConfig::heavy().daemons_per_cpu > NoiseConfig::light().daemons_per_cpu);
    }
}
