//! The idle scheduling class.
//!
//! Lowest in the class chain (paper Figure 1): its tasks run only when every
//! other class is empty. We host `SCHED_IDLE` tasks here as a plain per-CPU
//! FIFO. The *idle loop itself* (what runs when even this class is empty) is
//! modelled by the kernel as an empty CPU — on POWER5 the idle loop drops
//! the hardware thread priority so the sibling context gets the whole core,
//! which is exactly how the chip model treats an unloaded context.

use crate::class::{ClassCtx, EnqueueKind, SchedClass};
use crate::policy::SchedPolicy;
use crate::task::TaskId;
use power5::CpuId;
use simcore::SimDuration;
use std::collections::VecDeque;

/// The idle class.
pub struct IdleClass {
    rqs: Vec<VecDeque<TaskId>>,
}

impl IdleClass {
    pub fn new() -> Self {
        IdleClass { rqs: Vec::new() }
    }
}

impl Default for IdleClass {
    fn default() -> Self {
        Self::new()
    }
}

impl SchedClass for IdleClass {
    fn name(&self) -> &'static str {
        "idle"
    }

    fn handles(&self, policy: SchedPolicy) -> bool {
        policy == SchedPolicy::Idle
    }

    fn init_cpus(&mut self, num_cpus: usize) {
        self.rqs = (0..num_cpus).map(|_| VecDeque::new()).collect();
    }

    fn enqueue(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, _kind: EnqueueKind) {
        self.rqs[cpu.0].push_back(task);
    }

    fn dequeue(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        if let Some(pos) = self.rqs[cpu.0].iter().position(|&t| t == task) {
            self.rqs[cpu.0].remove(pos);
        } else {
            debug_assert!(false, "dequeue of unqueued idle task");
        }
    }

    fn pick_next(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].pop_front()
    }

    fn put_prev(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        // Round-robin among idle tasks.
        self.rqs[cpu.0].push_back(task);
    }

    fn charge(&mut self, _ctx: &mut ClassCtx<'_>, _cpu: CpuId, _task: TaskId, _d: SimDuration) {}

    fn task_tick(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, _task: TaskId) -> bool {
        // Rotate whenever someone else idle-priority is waiting.
        !self.rqs[cpu.0].is_empty()
    }

    fn wakeup_preempt(&self, _ctx: &ClassCtx<'_>, _curr: TaskId, _woken: TaskId) -> bool {
        false
    }

    fn nr_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptedProgram;
    use crate::task::Task;
    use power5::Topology;
    use simcore::SimTime;

    #[test]
    fn fifo_behaviour() {
        let topo = Topology::openpower_710();
        let mut tasks: Vec<Task> = (0..2)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("idle{i}"),
                    SchedPolicy::Idle,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                )
            })
            .collect();
        let mut c = IdleClass::new();
        c.init_cpus(4);
        let mut cx = ClassCtx { now: SimTime::ZERO, tasks: &mut tasks, topology: &topo, running: vec![None; 4] };
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        assert_eq!(c.nr_runnable(CpuId(0)), 2);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        assert_eq!(first, TaskId(0));
        assert!(c.task_tick(&mut cx, CpuId(0), first), "rotate when others wait");
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)));
    }

    #[test]
    fn handles_only_idle_policy() {
        let c = IdleClass::new();
        assert!(c.handles(SchedPolicy::Idle));
        assert!(!c.handles(SchedPolicy::Normal));
        assert!(!c.handles(SchedPolicy::Hpc));
    }
}
