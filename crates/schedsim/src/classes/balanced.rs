//! The `SCHED_HPC` scheduling class (paper §IV), as a thin driver over a
//! pluggable [`Balancer`].
//!
//! Inserted between the real-time and CFS classes, so HPC processes always
//! run in preference to normal tasks (and, crucially, wake with near-zero
//! scheduler latency) while real-time semantics are preserved.
//!
//! The class owns what every balancing policy shares — the per-CPU
//! round-robin run queues (FIFO or RR, paper §IV-A), slice accounting,
//! migration plumbing and the priority-change counter — and delegates every
//! *decision* to the balancer: sample classification, priority assignment,
//! the do-no-harm fault path, and migration planning. With
//! [`crate::policies::Table1Balancer`] plugged in, this driver is
//! trace-for-trace identical to the monolithic class it replaced
//! (`TRACE_baseline.txt` pins that equivalence in CI).

use crate::balance::BalanceView;
use crate::balancer::{Balancer, IterSample, PrioAssignment, SampleOutcome};
use crate::class::{ClassCtx, EnqueueKind, Migration, SchedClass};
use crate::policy::SchedPolicy;
use crate::task::TaskId;
use power5::CpuId;
use simcore::SimDuration;
use std::collections::VecDeque;

/// Intra-class scheduling policy for HPC tasks.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum HpcPolicyKind {
    /// Selected task runs until it blocks or yields.
    Fifo,
    /// Predefined time slice, rotation on expiry.
    Rr,
}

/// The HPC scheduling class: queue mechanics here, decisions in the
/// [`Balancer`].
pub struct BalancedClass {
    policy: HpcPolicyKind,
    slice: SimDuration,
    rqs: Vec<VecDeque<TaskId>>,
    balancer: Box<dyn Balancer>,
    /// Priority changes applied so far (diagnostics / Figure annotations).
    prio_changes: u64,
}

impl BalancedClass {
    pub fn new(policy: HpcPolicyKind, slice: SimDuration, balancer: Box<dyn Balancer>) -> Self {
        BalancedClass { policy, slice, rqs: Vec::new(), balancer, prio_changes: 0 }
    }

    /// Register the balancer's decision counters in `registry`.
    pub fn attach_telemetry(&mut self, registry: &telemetry::MetricsRegistry) {
        self.balancer.attach_telemetry(registry);
    }

    /// The balancing policy driving this class.
    pub fn balancer(&self) -> &dyn Balancer {
        &*self.balancer
    }

    pub fn priority_changes(&self) -> u64 {
        self.prio_changes
    }

    /// HPC tasks per CPU: queued plus the running one, needed by the
    /// domain balancer.
    fn hpc_counts(&self, ctx: &ClassCtx<'_>) -> Vec<usize> {
        (0..self.rqs.len())
            .map(|cpu| {
                let running_hpc = ctx.running[cpu]
                    .map(|t| ctx.tasks[t.0].policy == SchedPolicy::Hpc)
                    .unwrap_or(false);
                self.rqs[cpu].len() + usize::from(running_hpc)
            })
            .collect()
    }

    /// Apply the balancer's assignments, counting actual changes.
    fn apply(&mut self, ctx: &mut ClassCtx<'_>, assignments: Vec<PrioAssignment>) {
        for a in assignments {
            if ctx.task(a.task).hw_prio != a.prio {
                ctx.task_mut(a.task).hw_prio = a.prio;
                self.prio_changes += 1;
            }
        }
    }
}

impl SchedClass for BalancedClass {
    fn name(&self) -> &'static str {
        "hpc"
    }

    fn handles(&self, policy: SchedPolicy) -> bool {
        policy == SchedPolicy::Hpc
    }

    fn init_cpus(&mut self, num_cpus: usize) {
        self.rqs = (0..num_cpus).map(|_| VecDeque::new()).collect();
        self.balancer.init(num_cpus);
    }

    fn enqueue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, _kind: EnqueueKind) {
        if self.policy == HpcPolicyKind::Rr {
            let t = ctx.task_mut(task);
            if t.slice_left.is_zero() {
                t.slice_left = self.slice;
            }
        }
        self.rqs[cpu.0].push_back(task);
    }

    fn dequeue(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        if let Some(pos) = self.rqs[cpu.0].iter().position(|&t| t == task) {
            self.rqs[cpu.0].remove(pos);
        } else {
            debug_assert!(false, "dequeue of unqueued HPC task");
        }
    }

    fn pick_next(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].pop_front()
    }

    fn put_prev(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        match self.policy {
            HpcPolicyKind::Fifo => self.rqs[cpu.0].push_front(task),
            HpcPolicyKind::Rr => {
                let t = ctx.task_mut(task);
                if t.slice_left.is_zero() {
                    t.slice_left = self.slice;
                    self.rqs[cpu.0].push_back(task);
                } else {
                    self.rqs[cpu.0].push_front(task);
                }
            }
        }
    }

    fn on_yield(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        self.rqs[cpu.0].push_back(task);
    }

    fn charge(&mut self, ctx: &mut ClassCtx<'_>, _cpu: CpuId, task: TaskId, delta: SimDuration) {
        if self.policy == HpcPolicyKind::Rr {
            let t = ctx.task_mut(task);
            t.slice_left = t.slice_left.saturating_sub(delta);
        }
    }

    fn task_tick(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) -> bool {
        if self.policy != HpcPolicyKind::Rr {
            return false;
        }
        ctx.task(task).slice_left.is_zero() && !self.rqs[cpu.0].is_empty()
    }

    fn wakeup_preempt(&self, _ctx: &ClassCtx<'_>, _curr: TaskId, _woken: TaskId) -> bool {
        // Within the class, woken tasks queue round-robin; no preemption.
        false
    }

    fn task_woken(
        &mut self,
        ctx: &mut ClassCtx<'_>,
        task: TaskId,
        iter_run: SimDuration,
        iter_wall: SimDuration,
    ) {
        let sample = IterSample { task, run: iter_run, wall: iter_wall };
        let assignments = match self.balancer.on_sample(ctx, sample) {
            SampleOutcome::Recorded => self.balancer.assign_priorities(ctx, task),
            SampleOutcome::Unusable => self.balancer.on_fault(ctx, task),
        };
        self.apply(ctx, assignments);
    }

    fn task_exited(&mut self, _ctx: &mut ClassCtx<'_>, task: TaskId) {
        self.balancer.task_exited(task);
    }

    fn load_balance(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, idle: bool) -> Vec<Migration> {
        let counts = self.hpc_counts(ctx);
        let view = BalanceView { topology: ctx.topology, counts: &counts, queued: &self.rqs };
        let plan =
            self.balancer.plan_migrations(&view, cpu, idle, &|t, c| ctx.tasks[t.0].allowed_on(c));
        plan.into_iter().collect()
    }

    fn nr_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policies::{HpcTunables, Power5Mechanism, Table1Balancer, UniformHeuristic};
    use crate::program::ScriptedProgram;
    use crate::task::Task;
    use power5::{HwPriority, Topology};
    use simcore::SimTime;
    use std::sync::{Arc, Mutex};

    fn mk_class(policy: HpcPolicyKind) -> BalancedClass {
        let balancer = Table1Balancer::new(
            Box::new(UniformHeuristic),
            Box::new(Power5Mechanism),
            Arc::new(Mutex::new(HpcTunables::default())),
        );
        let mut c =
            BalancedClass::new(policy, SimDuration::from_millis(100), Box::new(balancer));
        c.init_cpus(4);
        c
    }

    fn mk_tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("rank{i}"),
                    SchedPolicy::Hpc,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                )
            })
            .collect()
    }

    fn ctx<'a>(tasks: &'a mut Vec<Task>, topo: &'a Topology) -> ClassCtx<'a> {
        ClassCtx { now: SimTime::ZERO, tasks, topology: topo, running: vec![None; 4] }
    }

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn round_robin_queue_order() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::New);
        }
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(0)));
        assert_eq!(c.nr_runnable(CpuId(0)), 2);
    }

    #[test]
    fn rr_slice_rotation() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        c.charge(&mut cx, CpuId(0), first, ms(100));
        assert!(c.task_tick(&mut cx, CpuId(0), first));
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)), "rotated to tail");
    }

    #[test]
    fn fifo_keeps_head_even_after_long_run() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Fifo);
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        c.charge(&mut cx, CpuId(0), first, ms(500));
        assert!(!c.task_tick(&mut cx, CpuId(0), first), "FIFO never expires");
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(first));
    }

    #[test]
    fn imbalanced_iterations_raise_priority_of_busy_task() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Task 0: 25% utilization; task 1: 100%.
        c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM, "low-util stays at min");
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM_HIGH, "+1 step");
        // Second identical round: the busy task reaches MAX_PRIO.
        c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::HIGH);
        assert_eq!(c.priority_changes(), 2);
    }

    #[test]
    fn balanced_application_freezes_priorities() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Both ~95%: spread below threshold → no changes even though both
        // are above HIGH_UTIL.
        c.task_woken(&mut cx, TaskId(0), ms(95), ms(100));
        c.task_woken(&mut cx, TaskId(1), ms(98), ms(100));
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(c.priority_changes(), 0);
    }

    #[test]
    fn telemetry_counts_decisions_and_verdicts() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let registry = telemetry::MetricsRegistry::new();
        c.attach_telemetry(&registry);
        let mut cx = ctx(&mut tasks, &topo);
        // Two imbalanced rounds (same shape as
        // imbalanced_iterations_raise_priority_of_busy_task).
        for _ in 0..2 {
            c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
            c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        }
        let snap = registry.snapshot();
        assert_eq!(
            snap.counter("hpc.decisions.uniform.accepted"),
            c.priority_changes(),
            "every applied change is counted against the heuristic"
        );
        assert_eq!(snap.counter("hpc.decisions.uniform.rejected"), 0);
        assert_eq!(
            snap.counter("hpc.detector.balanced") + snap.counter("hpc.detector.imbalanced"),
            4,
            "one verdict per completed iteration"
        );
    }

    #[test]
    fn unusable_sample_degrades_to_uniform_priority() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let registry = telemetry::MetricsRegistry::new();
        c.attach_telemetry(&registry);
        let mut cx = ctx(&mut tasks, &topo);
        // Drive task 1 to HIGH with two imbalanced rounds.
        for _ in 0..2 {
            c.task_woken(&mut cx, TaskId(0), ms(25), ms(100));
            c.task_woken(&mut cx, TaskId(1), ms(100), ms(100));
        }
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::HIGH);
        // A zero-wall (unusable) sample: fall back to the uniform floor
        // instead of keeping a priority decided on stale data.
        c.task_woken(&mut cx, TaskId(1), SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(cx.task(TaskId(1)).hw_prio, HwPriority::MEDIUM, "do-no-harm floor");
        let snap = registry.snapshot();
        assert_eq!(snap.counter("hpc.detector.degraded"), 1);
    }

    #[test]
    fn degraded_task_at_floor_stays_put() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(1);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        c.task_woken(&mut cx, TaskId(0), SimDuration::ZERO, SimDuration::ZERO);
        assert_eq!(cx.task(TaskId(0)).hw_prio, HwPriority::MEDIUM);
        assert_eq!(c.priority_changes(), 0, "no change when already at the floor");
    }

    #[test]
    fn balancer_pulls_across_cores() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        let mut cx = ctx(&mut tasks, &topo);
        // Three HPC tasks queued on CPU 2 (core 1); CPU 0 (core 0) is empty.
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(2), TaskId(i), EnqueueKind::New);
        }
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].from, CpuId(2));
        assert_eq!(migs[0].to, CpuId(0));
    }

    #[test]
    fn running_tasks_count_toward_domain_balance() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = mk_class(HpcPolicyKind::Rr);
        // CPU 2 runs an HPC task and has one queued; CPU 0 idle.
        let mut cx = ctx(&mut tasks, &topo);
        cx.running[2] = Some(TaskId(0));
        c.enqueue(&mut cx, CpuId(2), TaskId(1), EnqueueKind::New);
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1, "2 tasks on core1 vs 0 on core0");
        assert_eq!(migs[0].task, TaskId(1), "only the queued task can move");
    }

    #[test]
    fn handles_only_hpc_policy() {
        let c = mk_class(HpcPolicyKind::Rr);
        assert!(c.handles(SchedPolicy::Hpc));
        assert!(!c.handles(SchedPolicy::Normal));
        assert!(!c.handles(SchedPolicy::Fifo));
        assert_eq!(c.name(), "hpc");
        assert_eq!(c.balancer().name(), "table1");
    }
}
