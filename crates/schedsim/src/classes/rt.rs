//! The real-time scheduling class: `SCHED_FIFO` and `SCHED_RR`.
//!
//! Per paper §III this is "essentially the old O(1) scheduler algorithm":
//! one round-robin queue per real-time priority (0–99), pick the first task
//! of the highest non-empty queue. FIFO tasks keep the head until they
//! yield or block; RR tasks rotate to the tail when their slice expires.

use crate::class::{ClassCtx, EnqueueKind, Migration, SchedClass};
use crate::policy::SchedPolicy;
use crate::task::TaskId;
use power5::CpuId;
use simcore::SimDuration;
use std::collections::VecDeque;

/// Number of real-time priority levels (matching Linux).
pub const RT_PRIO_LEVELS: usize = 100;

struct RtRq {
    /// `queues[p]` holds tasks with `rt_priority == p`; higher p wins.
    queues: Vec<VecDeque<TaskId>>,
    /// Bitmap of non-empty priority levels for O(1)-style lookup.
    bitmap: u128,
    nr: usize,
}

impl RtRq {
    fn new() -> Self {
        RtRq { queues: (0..RT_PRIO_LEVELS).map(|_| VecDeque::new()).collect(), bitmap: 0, nr: 0 }
    }

    fn push_back(&mut self, prio: u8, t: TaskId) {
        self.queues[prio as usize].push_back(t);
        self.bitmap |= 1 << prio;
        self.nr += 1;
    }

    fn push_front(&mut self, prio: u8, t: TaskId) {
        self.queues[prio as usize].push_front(t);
        self.bitmap |= 1 << prio;
        self.nr += 1;
    }

    fn remove(&mut self, prio: u8, t: TaskId) -> bool {
        let q = &mut self.queues[prio as usize];
        if let Some(pos) = q.iter().position(|&x| x == t) {
            q.remove(pos);
            if q.is_empty() {
                self.bitmap &= !(1 << prio);
            }
            self.nr -= 1;
            true
        } else {
            false
        }
    }

    fn highest(&self) -> Option<u8> {
        if self.bitmap == 0 {
            None
        } else {
            Some(127 - self.bitmap.leading_zeros() as u8)
        }
    }

    fn pop_highest(&mut self) -> Option<TaskId> {
        let p = self.highest()?;
        // INVARIANT: bit p set ⇔ queues[p] non-empty — enqueue sets the
        // bit on push, dequeue and this pop clear it on the last remove.
        let t = self.queues[p as usize].pop_front().expect("bitmap said non-empty");
        if self.queues[p as usize].is_empty() {
            self.bitmap &= !(1 << p);
        }
        self.nr -= 1;
        Some(t)
    }
}

/// The real-time class.
pub struct RtClass {
    rqs: Vec<RtRq>,
    rr_slice: SimDuration,
}

impl RtClass {
    pub fn new(rr_slice: SimDuration) -> Self {
        RtClass { rqs: Vec::new(), rr_slice }
    }
}

impl SchedClass for RtClass {
    fn name(&self) -> &'static str {
        "rt"
    }

    fn handles(&self, policy: SchedPolicy) -> bool {
        policy.is_realtime()
    }

    fn init_cpus(&mut self, num_cpus: usize) {
        self.rqs = (0..num_cpus).map(|_| RtRq::new()).collect();
    }

    fn enqueue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, _kind: EnqueueKind) {
        let t = ctx.task_mut(task);
        if t.policy == SchedPolicy::Rr && t.slice_left.is_zero() {
            t.slice_left = self.rr_slice;
        }
        let prio = t.rt_priority;
        self.rqs[cpu.0].push_back(prio, task);
    }

    fn dequeue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        let prio = ctx.task(task).rt_priority;
        let removed = self.rqs[cpu.0].remove(prio, task);
        debug_assert!(removed, "dequeue of unqueued RT task");
    }

    fn pick_next(&mut self, _ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId> {
        self.rqs[cpu.0].pop_highest()
    }

    fn put_prev(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        let t = ctx.task_mut(task);
        let prio = t.rt_priority;
        if t.policy == SchedPolicy::Rr && t.slice_left.is_zero() {
            // Slice expired: rotate to the tail with a fresh slice.
            t.slice_left = self.rr_slice;
            self.rqs[cpu.0].push_back(prio, task);
        } else {
            // Preempted by a higher class/priority: keep the head position.
            self.rqs[cpu.0].push_front(prio, task);
        }
    }

    fn on_yield(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        // POSIX: yield moves the task to the tail of its priority list.
        let prio = ctx.task(task).rt_priority;
        self.rqs[cpu.0].push_back(prio, task);
    }

    fn charge(&mut self, ctx: &mut ClassCtx<'_>, _cpu: CpuId, task: TaskId, delta: SimDuration) {
        let t = ctx.task_mut(task);
        if t.policy == SchedPolicy::Rr {
            t.slice_left = t.slice_left.saturating_sub(delta);
        }
    }

    fn task_tick(&mut self, ctx: &mut ClassCtx<'_>, _cpu: CpuId, task: TaskId) -> bool {
        let t = ctx.task(task);
        t.policy == SchedPolicy::Rr && t.slice_left.is_zero()
    }

    fn wakeup_preempt(&self, ctx: &ClassCtx<'_>, curr: TaskId, woken: TaskId) -> bool {
        ctx.task(woken).rt_priority > ctx.task(curr).rt_priority
    }

    fn load_balance(
        &mut self,
        ctx: &mut ClassCtx<'_>,
        cpu: CpuId,
        idle: bool,
    ) -> Vec<Migration> {
        if !idle || self.rqs[cpu.0].nr > 0 {
            return Vec::new();
        }
        // Idle pull: take one task from the busiest RT runqueue.
        let busiest = (0..self.rqs.len())
            .filter(|&c| c != cpu.0 && self.rqs[c].nr > 1)
            .max_by_key(|&c| self.rqs[c].nr);
        let Some(src) = busiest else { return Vec::new() };
        // Pull the lowest-priority queued task that may run here (steal the
        // least important work, like the kernel's pull_rt_task).
        for p in 0..RT_PRIO_LEVELS {
            if let Some(&cand) =
                self.rqs[src].queues[p].iter().find(|&&t| ctx.task(t).allowed_on(cpu))
            {
                return vec![Migration { task: cand, from: CpuId(src), to: cpu }];
            }
        }
        Vec::new()
    }

    fn nr_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].nr
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptedProgram;
    use crate::task::Task;
    use power5::Topology;
    use simcore::SimTime;

    fn mk_tasks(n: usize, policy: SchedPolicy) -> Vec<Task> {
        (0..n)
            .map(|i| {
                let mut t = Task::new(
                    TaskId(i),
                    format!("t{i}"),
                    policy,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                );
                t.rt_priority = 10;
                t
            })
            .collect()
    }

    fn ctx<'a>(tasks: &'a mut Vec<Task>, topo: &'a Topology) -> ClassCtx<'a> {
        ClassCtx { now: SimTime::ZERO, tasks, topology: topo, running: vec![None; 4] }
    }

    fn rt() -> RtClass {
        let mut c = RtClass::new(SimDuration::from_millis(100));
        c.init_cpus(4);
        c
    }

    #[test]
    fn fifo_order_within_priority() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3, SchedPolicy::Fifo);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::New);
        }
        assert_eq!(c.nr_runnable(CpuId(0)), 3);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(0)));
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)));
    }

    #[test]
    fn higher_priority_picked_first() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Fifo);
        tasks[1].rt_priority = 50;
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)));
    }

    #[test]
    fn rr_slice_expiry_rotates_to_tail() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Rr);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        assert_eq!(first, TaskId(0));
        // Burn the whole slice.
        c.charge(&mut cx, CpuId(0), first, SimDuration::from_millis(100));
        assert!(c.task_tick(&mut cx, CpuId(0), first), "slice expired → resched");
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)), "rotated");
    }

    #[test]
    fn preempted_task_keeps_head() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Rr);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        // Only part of the slice used → put_prev keeps it at the head.
        c.charge(&mut cx, CpuId(0), first, SimDuration::from_millis(10));
        c.put_prev(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(first));
    }

    #[test]
    fn yield_moves_to_tail() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Fifo);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let first = c.pick_next(&mut cx, CpuId(0)).unwrap();
        c.on_yield(&mut cx, CpuId(0), first);
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)));
    }

    #[test]
    fn wakeup_preempt_by_priority_only() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Fifo);
        tasks[1].rt_priority = 20;
        let c = rt();
        let cx = ctx(&mut tasks, &topo);
        assert!(c.wakeup_preempt(&cx, TaskId(0), TaskId(1)));
        assert!(!c.wakeup_preempt(&cx, TaskId(1), TaskId(0)));
    }

    #[test]
    fn idle_pull_from_busiest() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3, SchedPolicy::Fifo);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(1), TaskId(i), EnqueueKind::New);
        }
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].from, CpuId(1));
        assert_eq!(migs[0].to, CpuId(0));
    }

    #[test]
    fn no_pull_when_not_idle() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2, SchedPolicy::Fifo);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(1), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(1), TaskId(1), EnqueueKind::New);
        assert!(c.load_balance(&mut cx, CpuId(0), false).is_empty());
    }

    #[test]
    fn dequeue_removes_specific_task() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3, SchedPolicy::Fifo);
        let mut c = rt();
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::New);
        }
        c.dequeue(&mut cx, CpuId(0), TaskId(1));
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(0)));
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(2)));
    }
}
