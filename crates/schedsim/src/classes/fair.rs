//! The Completely Fair Scheduler class (paper §III).
//!
//! Runnable tasks live in a red-black tree ordered by *virtual runtime*;
//! the leftmost task — the one that has received the least weighted CPU
//! time — runs next. There is no fixed quantum: each task's slice is its
//! weight's share of the target latency period. A task's vruntime advances
//! while it runs, moving it rightward until somebody else becomes leftmost.

use crate::class::{ClassCtx, EnqueueKind, Migration, SchedClass};
use crate::config::CfsTunables;
use crate::policy::SchedPolicy;
use crate::rbtree::RbTree;
use crate::task::TaskId;
use power5::CpuId;
use simcore::SimDuration;

/// The load weight of a nice-0 task.
pub const NICE_0_WEIGHT: u64 = 1024;

/// Linux's `sched_prio_to_weight`: nice −20 (index 0) … nice 19 (index 39).
/// Each step is ~1.25×, so one nice level ≈ 10% CPU when competing.
pub const NICE_TO_WEIGHT: [u64; 40] = [
    88761, 71755, 56483, 46273, 36291, 29154, 23254, 18705, 14949, 11916, 9548, 7620, 6100, 4904,
    3906, 3121, 2501, 1991, 1586, 1277, 1024, 820, 655, 526, 423, 335, 272, 215, 172, 137, 110,
    87, 70, 56, 45, 36, 29, 23, 18, 15,
];

/// Weight for a nice value, clamped to the valid range.
pub fn weight_of_nice(nice: i32) -> u64 {
    NICE_TO_WEIGHT[(nice.clamp(-20, 19) + 20) as usize]
}

/// Tree key: vruntime first, task id as the unique tie-breaker.
type Key = (u64, usize);

struct CfsRq {
    tree: RbTree<Key>,
    /// Monotonic floor of vruntime on this queue.
    min_vruntime: u64,
    /// Sum of queued tasks' weights (excludes the running task).
    load: u64,
    /// CPU time the currently running CFS task has accrued since picked.
    curr_runtime: SimDuration,
}

impl CfsRq {
    fn new() -> Self {
        CfsRq { tree: RbTree::new(), min_vruntime: 0, load: 0, curr_runtime: SimDuration::ZERO }
    }
}

/// The CFS class.
pub struct FairClass {
    rqs: Vec<CfsRq>,
    tun: CfsTunables,
    /// Virtual-runtime credit granted to waking sleepers ("gentle fair
    /// sleepers": half the latency period). Larger credit = snappier
    /// wakeups; zero = sleepers queue strictly behind current work.
    sleeper_credit: SimDuration,
}

impl FairClass {
    pub fn new(tun: CfsTunables) -> Self {
        let sleeper_credit = tun.sched_latency / 2;
        FairClass { rqs: Vec::new(), tun, sleeper_credit }
    }

    /// Override the sleeper credit (ablation knob).
    pub fn with_sleeper_credit(mut self, credit: SimDuration) -> Self {
        self.sleeper_credit = credit;
        self
    }

    fn delta_vruntime(delta: SimDuration, weight: u64) -> u64 {
        (delta.as_nanos() as u128 * NICE_0_WEIGHT as u128 / weight as u128) as u64
    }

    /// This task's slice of the latency period, by weight share.
    fn slice_for(&self, weight: u64, total_weight: u64) -> SimDuration {
        if total_weight == 0 {
            return self.tun.sched_latency;
        }
        let share = self.tun.sched_latency.as_nanos() as u128 * weight as u128
            / total_weight as u128;
        SimDuration::from_nanos(share as u64).max(self.tun.min_granularity)
    }

    fn update_min_vruntime(&mut self, cpu: usize, curr_vr: Option<u64>) {
        let rq = &mut self.rqs[cpu];
        let mut min = curr_vr;
        if let Some((left, _)) = rq.tree.min() {
            min = Some(match min {
                Some(c) => c.min(left),
                None => left,
            });
        }
        if let Some(m) = min {
            rq.min_vruntime = rq.min_vruntime.max(m);
        }
    }
}

impl SchedClass for FairClass {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn handles(&self, policy: SchedPolicy) -> bool {
        policy.is_fair()
    }

    fn init_cpus(&mut self, num_cpus: usize) {
        self.rqs = (0..num_cpus).map(|_| CfsRq::new()).collect();
    }

    fn enqueue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, kind: EnqueueKind) {
        let min_vr = self.rqs[cpu.0].min_vruntime;
        let t = ctx.task_mut(task);
        match kind {
            EnqueueKind::New => {
                // Start at the queue's floor: no credit, no penalty.
                t.vruntime = t.vruntime.max(min_vr);
            }
            EnqueueKind::Wakeup => {
                // Sleeper placement: credit capped so long sleeps don't
                // translate into unbounded CPU bursts.
                let credit = FairClass::delta_vruntime(
                    self.sleeper_credit,
                    weight_of_nice(t.nice),
                );
                t.vruntime = t.vruntime.max(min_vr.saturating_sub(credit));
            }
            EnqueueKind::Migration => {
                // Re-normalize against the destination queue.
                t.vruntime = t.vruntime.max(min_vr);
            }
        }
        let key = (t.vruntime, task.0);
        let weight = weight_of_nice(t.nice);
        let inserted = self.rqs[cpu.0].tree.insert(key);
        debug_assert!(inserted, "task already in CFS tree");
        self.rqs[cpu.0].load += weight;
    }

    fn dequeue(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        let t = ctx.task(task);
        let key = (t.vruntime, task.0);
        let weight = weight_of_nice(t.nice);
        let removed = self.rqs[cpu.0].tree.remove(&key);
        debug_assert!(removed, "dequeue of unqueued CFS task");
        self.rqs[cpu.0].load -= weight;
    }

    fn pick_next(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId) -> Option<TaskId> {
        let (_, id) = self.rqs[cpu.0].tree.pop_min()?;
        let weight = weight_of_nice(ctx.task(TaskId(id)).nice);
        let rq = &mut self.rqs[cpu.0];
        rq.load -= weight;
        rq.curr_runtime = SimDuration::ZERO;
        Some(TaskId(id))
    }

    fn put_prev(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) {
        let t = ctx.task(task);
        let key = (t.vruntime, task.0);
        let weight = weight_of_nice(t.nice);
        let inserted = self.rqs[cpu.0].tree.insert(key);
        debug_assert!(inserted, "put_prev of task already queued");
        self.rqs[cpu.0].load += weight;
        let vr = t.vruntime;
        self.update_min_vruntime(cpu.0, Some(vr));
    }

    fn charge(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId, delta: SimDuration) {
        let t = ctx.task_mut(task);
        let w = weight_of_nice(t.nice);
        t.vruntime += FairClass::delta_vruntime(delta, w);
        let vr = t.vruntime;
        self.rqs[cpu.0].curr_runtime += delta;
        self.update_min_vruntime(cpu.0, Some(vr));
    }

    fn task_tick(&mut self, ctx: &mut ClassCtx<'_>, cpu: CpuId, task: TaskId) -> bool {
        let rq = &self.rqs[cpu.0];
        if rq.tree.is_empty() {
            return false;
        }
        let t = ctx.task(task);
        let weight = weight_of_nice(t.nice);
        let slice = self.slice_for(weight, rq.load + weight);
        if rq.curr_runtime >= slice {
            return true;
        }
        // Also preempt when someone is owed substantially more CPU.
        if let Some((left_vr, _)) = rq.tree.min() {
            let gran = FairClass::delta_vruntime(self.tun.wakeup_granularity, weight);
            if t.vruntime > left_vr.saturating_add(gran) {
                return true;
            }
        }
        false
    }

    fn wakeup_preempt(&self, ctx: &ClassCtx<'_>, curr: TaskId, woken: TaskId) -> bool {
        // SCHED_BATCH tasks never preempt on wakeup.
        let w = ctx.task(woken);
        if w.policy == SchedPolicy::Batch {
            return false;
        }
        let c = ctx.task(curr);
        let gran = FairClass::delta_vruntime(self.tun.wakeup_granularity, weight_of_nice(w.nice));
        c.vruntime > w.vruntime.saturating_add(gran)
    }

    fn load_balance(
        &mut self,
        ctx: &mut ClassCtx<'_>,
        cpu: CpuId,
        idle: bool,
    ) -> Vec<Migration> {
        let here = self.rqs[cpu.0].tree.len();
        // Pull when idle, or when periodic balancing sees a 2+ imbalance.
        let threshold = if idle { 1 } else { 2 };
        let busiest = (0..self.rqs.len())
            .filter(|&c| c != cpu.0)
            .max_by_key(|&c| self.rqs[c].tree.len());
        let Some(src) = busiest else { return Vec::new() };
        if self.rqs[src].tree.len() < here + threshold {
            return Vec::new();
        }
        // Steal the task that has run the most (rightmost): it is the least
        // cache-hot choice in kernel terms and keeps the leftmost (neediest)
        // local.
        let cand = self.rqs[src]
            .tree
            .iter()
            .map(|(_, id)| TaskId(id))
            .filter(|&t| ctx.task(t).allowed_on(cpu))
            .last();
        match cand {
            Some(t) => vec![Migration { task: t, from: CpuId(src), to: cpu }],
            None => Vec::new(),
        }
    }

    fn nr_runnable(&self, cpu: CpuId) -> usize {
        self.rqs[cpu.0].tree.len()
    }
}

impl FairClass {
    /// Diagnostic: the min_vruntime of a CPU's queue.
    pub fn min_vruntime(&self, cpu: CpuId) -> u64 {
        self.rqs[cpu.0].min_vruntime
    }

    /// Diagnostic: validate the tree's red-black invariants.
    pub fn assert_tree_invariants(&self, cpu: CpuId) {
        self.rqs[cpu.0].tree.assert_invariants();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ScriptedProgram;
    use crate::task::Task;
    use power5::Topology;
    use simcore::SimTime;

    fn mk_tasks(n: usize) -> Vec<Task> {
        (0..n)
            .map(|i| {
                Task::new(
                    TaskId(i),
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(1.0)),
                    SimTime::ZERO,
                )
            })
            .collect()
    }

    fn ctx<'a>(tasks: &'a mut Vec<Task>, topo: &'a Topology) -> ClassCtx<'a> {
        ClassCtx { now: SimTime::ZERO, tasks, topology: topo, running: vec![None; 4] }
    }

    fn fair() -> FairClass {
        let mut c = FairClass::new(CfsTunables::default());
        c.init_cpus(4);
        c
    }

    #[test]
    fn weight_table_sanity() {
        assert_eq!(weight_of_nice(0), 1024);
        assert_eq!(weight_of_nice(-20), 88761);
        assert_eq!(weight_of_nice(19), 15);
        assert_eq!(weight_of_nice(100), 15, "clamped");
        assert_eq!(weight_of_nice(-100), 88761, "clamped");
    }

    #[test]
    fn leftmost_vruntime_runs_first() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        tasks[0].vruntime = 300;
        tasks[1].vruntime = 100;
        tasks[2].vruntime = 200;
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        // Use Migration placement to preserve the preset vruntimes
        // (min_vruntime is 0, so max() keeps them).
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::Migration);
        }
        assert_eq!(c.pick_next(&mut cx, CpuId(0)), Some(TaskId(1)));
    }

    #[test]
    fn charge_advances_vruntime_by_weight() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        tasks[1].nice = -5; // heavier → slower vruntime
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        c.charge(&mut cx, CpuId(0), TaskId(0), SimDuration::from_millis(10));
        c.charge(&mut cx, CpuId(1), TaskId(1), SimDuration::from_millis(10));
        assert_eq!(cx.task(TaskId(0)).vruntime, 10_000_000);
        assert!(cx.task(TaskId(1)).vruntime < 10_000_000);
    }

    #[test]
    fn tick_requests_resched_after_slice() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::New);
        let running = TaskId(0);
        // With two nice-0 tasks the slice is latency/2 = 10ms.
        c.charge(&mut cx, CpuId(0), running, SimDuration::from_millis(9));
        assert!(!c.task_tick(&mut cx, CpuId(0), running));
        c.charge(&mut cx, CpuId(0), running, SimDuration::from_millis(2));
        assert!(c.task_tick(&mut cx, CpuId(0), running));
    }

    #[test]
    fn tick_without_waiters_never_reschedules() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(1);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        c.charge(&mut cx, CpuId(0), TaskId(0), SimDuration::from_secs(10));
        assert!(!c.task_tick(&mut cx, CpuId(0), TaskId(0)));
    }

    #[test]
    fn sleeper_gets_bounded_credit() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        // Push min_vruntime forward by running task 0 a long time.
        c.charge(&mut cx, CpuId(0), TaskId(0), SimDuration::from_secs(1));
        c.put_prev(&mut cx, CpuId(0), TaskId(0));
        let min_vr = c.min_vruntime(CpuId(0));
        assert!(min_vr > 0);
        // Task 1 wakes with ancient vruntime 0: placed at floor - credit,
        // not at 0.
        c.enqueue(&mut cx, CpuId(0), TaskId(1), EnqueueKind::Wakeup);
        let vr1 = cx.task(TaskId(1)).vruntime;
        let credit = FairClass::delta_vruntime(SimDuration::from_millis(10), 1024);
        assert_eq!(vr1, min_vr - credit);
    }

    #[test]
    fn wakeup_preempt_requires_granularity_gap() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        // Equal vruntimes: no preemption (gap 0 < granularity).
        let c = fair();
        let cx = ctx(&mut tasks, &topo);
        assert!(!c.wakeup_preempt(&cx, TaskId(0), TaskId(1)));
        drop(cx);
        // Current far ahead: preempt.
        tasks[0].vruntime = 50_000_000; // 50ms
        let cx = ctx(&mut tasks, &topo);
        assert!(c.wakeup_preempt(&cx, TaskId(0), TaskId(1)));
    }

    #[test]
    fn batch_tasks_do_not_wakeup_preempt() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        tasks[1].policy = SchedPolicy::Batch;
        tasks[0].vruntime = 1_000_000_000;
        let c = fair();
        let cx = ctx(&mut tasks, &topo);
        assert!(!c.wakeup_preempt(&cx, TaskId(0), TaskId(1)));
    }

    #[test]
    fn idle_pull_balances() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(3);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..3 {
            c.enqueue(&mut cx, CpuId(1), TaskId(i), EnqueueKind::New);
        }
        let migs = c.load_balance(&mut cx, CpuId(0), true);
        assert_eq!(migs.len(), 1);
        assert_eq!(migs[0].from, CpuId(1));
        // Migration applies: kernel would dequeue+enqueue; here verify the
        // class accepted the affinity filter.
        assert!(cx.task(migs[0].task).allowed_on(CpuId(0)));
    }

    #[test]
    fn affinity_respected_in_balance() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(2);
        tasks[0].affinity = Some(vec![CpuId(1)]);
        tasks[1].affinity = Some(vec![CpuId(1)]);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        c.enqueue(&mut cx, CpuId(1), TaskId(0), EnqueueKind::New);
        c.enqueue(&mut cx, CpuId(1), TaskId(1), EnqueueKind::New);
        assert!(c.load_balance(&mut cx, CpuId(0), true).is_empty());
    }

    #[test]
    fn min_vruntime_is_monotonic() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(1);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        let mut last = 0;
        for _ in 0..10 {
            c.charge(&mut cx, CpuId(0), TaskId(0), SimDuration::from_millis(5));
            let m = c.min_vruntime(CpuId(0));
            assert!(m >= last);
            last = m;
        }
    }

    #[test]
    fn tree_invariants_hold_through_churn() {
        let topo = Topology::openpower_710();
        let mut tasks = mk_tasks(16);
        let mut c = fair();
        let mut cx = ctx(&mut tasks, &topo);
        for i in 0..16 {
            cx.task_mut(TaskId(i)).vruntime = (i as u64 * 37) % 11;
            c.enqueue(&mut cx, CpuId(0), TaskId(i), EnqueueKind::Migration);
            c.assert_tree_invariants(CpuId(0));
        }
        for _ in 0..8 {
            let t = c.pick_next(&mut cx, CpuId(0)).unwrap();
            c.charge(&mut cx, CpuId(0), t, SimDuration::from_millis(3));
            c.put_prev(&mut cx, CpuId(0), t);
            c.assert_tree_invariants(CpuId(0));
        }
        assert_eq!(c.nr_runnable(CpuId(0)), 16);
    }
}
