//! The scheduling classes of the Linux 2.6.2x framework (paper Figure 1):
//! real-time, CFS (fair), idle — and the paper's own HPC class, a thin
//! driver over a pluggable balancing policy.

pub mod balanced;
pub mod fair;
pub mod idle;
pub mod rt;

pub use balanced::{BalancedClass, HpcPolicyKind};
pub use fair::FairClass;
pub use idle::IdleClass;
pub use rt::RtClass;
