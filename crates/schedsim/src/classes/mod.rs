//! The three standard scheduling classes of the Linux 2.6.2x framework
//! (paper Figure 1(a)): real-time, CFS (fair), and idle.

pub mod fair;
pub mod idle;
pub mod rt;

pub use fair::FairClass;
pub use idle::IdleClass;
pub use rt::RtClass;
