//! Cross-policy property suite: contracts every registered balancing
//! policy must satisfy, checked directly at the [`Balancer`] trait level
//! (DESIGN.md §12). The `verify` binary re-checks the same properties end
//! to end through full kernel runs; this suite pins them at the trait
//! boundary so a broken policy fails fast with a precise message.
//!
//! Per registry entry:
//!
//! * a zero-wall sample is classified [`SampleOutcome::Unusable`] — the
//!   driver's fault path depends on every policy applying the paper's
//!   usability filter;
//! * `on_fault` only ever moves a task *to* the do-no-harm floor
//!   (`MEDIUM`), never above it, and never churns a task already there;
//! * every priority a policy assigns stays inside the tunables'
//!   `[min_prio, max_prio]` band (conformance rule C001) across an
//!   imbalanced sample stream;
//! * decisions are a pure function of the sample history: two balancers
//!   fed the same stream produce the same assignments.

use std::sync::{Arc, Mutex};

use power5::{HwPriority, Topology};
use schedsim::policies::{registry, HeuristicKind, HpcTunables, PolicyCtx};
use schedsim::program::ScriptedProgram;
use schedsim::{Balancer, ClassCtx, IterSample, PrioAssignment, SampleOutcome, SchedPolicy, Task, TaskId};
use simcore::{SimDuration, SimTime};

const NUM_TASKS: usize = 4;

fn fresh_ctx() -> PolicyCtx {
    PolicyCtx {
        tunables: Arc::new(Mutex::new(HpcTunables::default())),
        heuristic: HeuristicKind::Uniform,
        power5_mechanism: true,
        policy_only: false,
    }
}

fn make_tasks() -> Vec<Task> {
    (0..NUM_TASKS)
        .map(|i| {
            Task::new(
                TaskId(i),
                format!("rank{i}"),
                SchedPolicy::Hpc,
                Box::new(ScriptedProgram::compute_once(1.0)),
                SimTime::ZERO,
            )
        })
        .collect()
}

/// Drive one balancer exactly like the driver does: classify the sample,
/// route to `assign_priorities` or `on_fault`, apply the assignments to
/// task state, and hand every assignment to `check`.
fn feed(
    balancer: &mut Box<dyn Balancer>,
    tasks: &mut Vec<Task>,
    topology: &Topology,
    now: SimTime,
    sample: IterSample,
    check: &mut dyn FnMut(SampleOutcome, &PrioAssignment, HwPriority),
) {
    let ctx = ClassCtx { now, tasks, topology, running: vec![None; 4] };
    let outcome = balancer.on_sample(&ctx, sample);
    let assignments = match outcome {
        SampleOutcome::Recorded => balancer.assign_priorities(&ctx, sample.task),
        SampleOutcome::Unusable => balancer.on_fault(&ctx, sample.task),
    };
    for a in &assignments {
        let before = tasks[a.task.0].hw_prio;
        check(outcome, a, before);
        tasks[a.task.0].hw_prio = a.prio;
    }
}

/// One barrier-style imbalanced iteration: rank 0 computes the whole wall
/// interval, the rest idle most of it — the MetBench shape that must pull
/// priorities apart under any dynamic policy.
fn imbalanced_samples(iter: u32) -> Vec<IterSample> {
    let wall = SimDuration::from_millis(100);
    (0..NUM_TASKS)
        .map(|t| IterSample {
            task: TaskId(t),
            run: if t == 0 { wall } else { SimDuration::from_millis(15) },
            wall: wall + SimDuration::from_micros(u64::from(iter)),
        })
        .collect()
}

#[test]
fn zero_wall_sample_is_unusable_for_every_policy() {
    let topo = Topology::openpower_710();
    for spec in registry() {
        let mut b = (spec.make)(&fresh_ctx());
        b.init(4);
        let mut tasks = make_tasks();
        let ctx = ClassCtx { now: SimTime::ZERO, tasks: &mut tasks, topology: &topo, running: vec![None; 4] };
        let sample =
            IterSample { task: TaskId(0), run: SimDuration::ZERO, wall: SimDuration::ZERO };
        assert_eq!(
            b.on_sample(&ctx, sample),
            SampleOutcome::Unusable,
            "policy `{}` must reject a zero-wall sample",
            spec.name
        );
    }
}

#[test]
fn on_fault_only_degrades_to_the_floor() {
    let topo = Topology::openpower_710();
    for spec in registry() {
        let mut b = (spec.make)(&fresh_ctx());
        b.init(4);
        let mut tasks = make_tasks();
        // A task the policy previously boosted...
        tasks[0].hw_prio = HwPriority::HIGH;
        let garbage = IterSample { task: TaskId(0), run: SimDuration::ZERO, wall: SimDuration::ZERO };
        feed(&mut b, &mut tasks, &topo, SimTime::ZERO, garbage, &mut |_, a, _| {
            assert_eq!(
                a.prio,
                HwPriority::MEDIUM,
                "policy `{}` fault path assigned {:?}, not the floor",
                spec.name,
                a.prio
            );
        });
        // ...and one already at the floor: no assignment may churn it.
        let garbage1 = IterSample { task: TaskId(1), run: SimDuration::ZERO, wall: SimDuration::ZERO };
        feed(&mut b, &mut tasks, &topo, SimTime::ZERO, garbage1, &mut |_, a, _| {
            panic!("policy `{}` churned a floored task: {a:?}", spec.name);
        });
    }
}

#[test]
fn assigned_priorities_stay_inside_tunable_bounds() {
    let topo = Topology::openpower_710();
    let bounds = {
        let t = HpcTunables::default();
        (t.min_prio, t.max_prio)
    };
    for spec in registry() {
        let mut b = (spec.make)(&fresh_ctx());
        b.init(4);
        let mut tasks = make_tasks();
        let mut assigned = 0u32;
        for iter in 0..12 {
            for sample in imbalanced_samples(iter) {
                let now = SimTime::ZERO + SimDuration::from_millis(100 * u64::from(iter) + 1);
                feed(&mut b, &mut tasks, &topo, now, sample, &mut |_, a, _| {
                    assigned += 1;
                    assert!(a.task.0 < NUM_TASKS, "policy `{}` assigned to a ghost task", spec.name);
                    assert!(
                        (bounds.0..=bounds.1).contains(&a.prio),
                        "policy `{}` assigned {:?} outside [{:?}, {:?}] (C001)",
                        spec.name,
                        a.prio,
                        bounds.0,
                        bounds.1
                    );
                });
            }
        }
        // The paper-family and LB4OMP policies must actually steer under a
        // 6.7x imbalance; the placement-only entries must never touch
        // priorities at all.
        let dynamic = !matches!(spec.name, "static" | "hpc-static" | "worksteal");
        if dynamic {
            assert!(assigned > 0, "policy `{}` never assigned a priority", spec.name);
            assert_eq!(
                tasks[0].hw_prio,
                bounds.1,
                "policy `{}` left the heavy rank at {:?}",
                spec.name,
                tasks[0].hw_prio
            );
        } else {
            assert_eq!(assigned, 0, "placement-only policy `{}` assigned priorities", spec.name);
        }
    }
}

#[test]
fn decisions_are_a_pure_function_of_the_sample_stream() {
    let topo = Topology::openpower_710();
    for spec in registry() {
        let run = || {
            let mut b = (spec.make)(&fresh_ctx());
            b.init(4);
            let mut tasks = make_tasks();
            let mut log: Vec<(usize, u8)> = Vec::new();
            for iter in 0..8 {
                for sample in imbalanced_samples(iter) {
                    let now = SimTime::ZERO + SimDuration::from_millis(100 * u64::from(iter) + 1);
                    feed(&mut b, &mut tasks, &topo, now, sample, &mut |_, a, _| {
                        log.push((a.task.0, a.prio.value()));
                    });
                }
            }
            log
        };
        assert_eq!(run(), run(), "policy `{}` is not deterministic", spec.name);
    }
}

#[test]
fn registry_names_are_unique_and_canonical() {
    let mut seen = std::collections::BTreeSet::new();
    for spec in registry() {
        assert!(seen.insert(spec.name), "duplicate registry name `{}`", spec.name);
        assert_eq!(schedsim::policies::canonical(spec.name), Some(spec.name));
        assert!(!spec.summary.is_empty(), "`{}` needs a summary for --policy help", spec.name);
    }
    assert!(seen.len() >= 6, "the zoo advertises at least six policies");
    assert_eq!(schedsim::policies::canonical("no-such-policy"), None);
}
