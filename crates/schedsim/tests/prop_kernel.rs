//! Whole-kernel property tests: conservation and sanity invariants that
//! must hold for any workload shape the scheduler can face.

use power5::{Chip, CpuId, HwPriority, Topology};
use proptest::prelude::*;
use schedsim::program::{Action, FnProgram, ScriptedProgram};
use schedsim::{Kernel, KernelApi, KernelConfig, SchedPolicy, SpawnOptions, TaskState};
use simcore::{SimDuration, SimTime};

fn kernel() -> Kernel {
    Kernel::new(Chip::new(Topology::openpower_710()), KernelConfig::default())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// CPU time is conserved: the sum of all tasks' exec time never
    /// exceeds (number of CPUs × elapsed time), and each task's own
    /// exec + sleep + queue-wait never exceeds its lifetime.
    #[test]
    fn cpu_time_conservation(
        works in proptest::collection::vec(0.001f64..0.3, 1..10),
    ) {
        let mut k = kernel();
        let ids: Vec<_> = works
            .iter()
            .enumerate()
            .map(|(i, &w)| {
                k.spawn(
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(w)),
                    SpawnOptions::default(),
                )
            })
            .collect();
        let end = k.run_until_exited(&ids, SimDuration::from_secs(60)).expect("finishes");
        let elapsed = end.saturating_since(SimTime::ZERO);
        let total_exec: SimDuration = ids.iter().map(|&t| k.task(t).exec_total).sum();
        prop_assert!(total_exec <= elapsed * 4 + SimDuration::from_millis(1),
            "total exec {total_exec} vs capacity {}", elapsed * 4);
        for &t in &ids {
            let task = k.task(t);
            let accounted = task.exec_total + task.sleep_total + task.wait_rq_total;
            let life = task.lifetime(end);
            prop_assert!(accounted <= life + SimDuration::from_millis(1),
                "{}: accounted {accounted} vs lifetime {life}", task.name);
        }
    }

    /// Every spawned task eventually exits, regardless of how many tasks
    /// contend, and utilization is always within [0, 1].
    #[test]
    fn all_tasks_finish_and_utilization_bounded(
        n in 1usize..12,
        work in 0.001f64..0.1,
    ) {
        let mut k = kernel();
        let ids: Vec<_> = (0..n)
            .map(|i| {
                k.spawn(
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(work)),
                    SpawnOptions::default(),
                )
            })
            .collect();
        let end = k.run_until_exited(&ids, SimDuration::from_secs(60)).expect("finishes");
        for &t in &ids {
            prop_assert_eq!(k.task(t).state, TaskState::Exited);
            let u = k.task(t).cpu_utilization(end);
            prop_assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
    }

    /// Hardware priorities on the chip always mirror some live task's
    /// request (dispatch integrity): after any run, every context's
    /// priority register holds a value in the architected range and the
    /// kernel never issued an or-nop outside supervisor reach.
    #[test]
    fn chip_priorities_stay_architected(
        prios in proptest::collection::vec(4u8..=6, 4),
    ) {
        let mut k = kernel();
        let ids: Vec<_> = prios
            .iter()
            .enumerate()
            .map(|(i, &p)| {
                k.spawn(
                    format!("t{i}"),
                    SchedPolicy::Normal,
                    Box::new(ScriptedProgram::compute_once(0.05)),
                    SpawnOptions {
                        hw_prio: Some(HwPriority::new(p).unwrap()),
                        affinity: Some(vec![CpuId(i % 4)]),
                        ..Default::default()
                    },
                )
            })
            .collect();
        k.run_until_exited(&ids, SimDuration::from_secs(30)).expect("finishes");
        for cpu in k.topology().cpus() {
            let v = k.chip().priority_of(cpu).value();
            prop_assert!(v <= 7, "context priority {v}");
        }
    }

    /// Sleep accounting: a task that sleeps a fixed timer duration accrues
    /// at least that much sleep time, within event-granularity slack.
    #[test]
    fn sleep_accounting_exact(delay_ms in 1u64..200) {
        let mut k = kernel();
        let mut armed = false;
        let t = k.spawn(
            "sleeper",
            SchedPolicy::Normal,
            Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
                if !armed {
                    armed = true;
                    let tok = api.new_token();
                    api.signal_after(SimDuration::from_millis(delay_ms), tok);
                    Action::Block(tok)
                } else {
                    Action::Exit
                }
            })),
            SpawnOptions::default(),
        );
        k.run_until_exited(&[t], SimDuration::from_secs(10)).expect("finishes");
        let slept = k.task(t).sleep_total;
        let expect = SimDuration::from_millis(delay_ms);
        prop_assert!(slept >= expect.saturating_sub(SimDuration::from_micros(10)));
        prop_assert!(slept <= expect + SimDuration::from_millis(2), "slept {slept}");
    }

    /// Determinism across identical runs at kernel level.
    #[test]
    fn kernel_runs_are_deterministic(
        works in proptest::collection::vec(0.001f64..0.05, 2..8),
        seed in 0u64..1000,
    ) {
        let run = |works: &[f64]| {
            let cfg = KernelConfig { seed, noise: schedsim::NoiseConfig::light(), ..Default::default() };
            let mut k = Kernel::new(Chip::new(Topology::openpower_710()), cfg);
            let ids: Vec<_> = works
                .iter()
                .enumerate()
                .map(|(i, &w)| {
                    k.spawn(
                        format!("t{i}"),
                        SchedPolicy::Normal,
                        Box::new(ScriptedProgram::compute_once(w)),
                        SpawnOptions::default(),
                    )
                })
                .collect();
            let end = k.run_until_exited(&ids, SimDuration::from_secs(60)).expect("finishes");
            (end, k.metrics().context_switches)
        };
        prop_assert_eq!(run(&works), run(&works));
    }
}

#[test]
fn starvation_free_under_rr_on_one_cpu() {
    // Eight CPU hogs on a single-core machine: CFS must interleave them
    // so all exit, none monopolizes.
    let mut k = Kernel::new(Chip::new(Topology::single_core_st()), KernelConfig::default());
    let ids: Vec<_> = (0..8)
        .map(|i| {
            k.spawn(
                format!("hog{i}"),
                SchedPolicy::Normal,
                Box::new(ScriptedProgram::compute_once(0.05)),
                SpawnOptions::default(),
            )
        })
        .collect();
    let end = k.run_until_exited(&ids, SimDuration::from_secs(30)).expect("finishes");
    // Fair sharing: last exit ≈ 8 × 50ms; every hog's exec ≈ 50ms.
    assert!((0.38..0.45).contains(&end.as_secs_f64()), "end {end}");
    for &t in &ids {
        let exec = k.task(t).exec_total.as_secs_f64();
        assert!((0.045..0.055).contains(&exec), "hog exec {exec}");
    }
}
