//! Model-based property tests for the CFS red-black tree: every operation
//! sequence must behave like an ordered set, and every intermediate state
//! must satisfy the red-black invariants.

use proptest::prelude::*;
use schedsim::rbtree::RbTree;
use std::collections::BTreeSet;

#[derive(Clone, Debug)]
enum Op {
    Insert(u16),
    Remove(u16),
    PopMin,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..200).prop_map(Op::Insert),
        (0u16..200).prop_map(Op::Remove),
        Just(Op::PopMin),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn behaves_like_an_ordered_set(ops in proptest::collection::vec(op_strategy(), 1..200)) {
        let mut tree = RbTree::new();
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                Op::Insert(k) => {
                    prop_assert_eq!(tree.insert(k), model.insert(k));
                }
                Op::Remove(k) => {
                    prop_assert_eq!(tree.remove(&k), model.remove(&k));
                }
                Op::PopMin => {
                    prop_assert_eq!(tree.pop_min(), model.pop_first());
                }
            }
            tree.assert_invariants();
            prop_assert_eq!(tree.len(), model.len());
            prop_assert_eq!(tree.min(), model.first().copied());
        }
        // Full in-order drain agrees with the model.
        let drained: Vec<u16> = tree.iter().collect();
        let expected: Vec<u16> = model.iter().copied().collect();
        prop_assert_eq!(drained, expected);
    }

    #[test]
    fn contains_agrees_with_model(keys in proptest::collection::vec(0u16..100, 0..60)) {
        let mut tree = RbTree::new();
        let mut model = BTreeSet::new();
        for k in &keys {
            tree.insert(*k);
            model.insert(*k);
        }
        for probe in 0..100u16 {
            prop_assert_eq!(tree.contains(&probe), model.contains(&probe));
        }
    }

    #[test]
    fn cfs_shaped_churn(seq in proptest::collection::vec((0u64..1_000_000, 0usize..32), 1..300)) {
        // Keys shaped like CFS usage: (vruntime, task id).
        let mut tree = RbTree::new();
        let mut live: BTreeSet<(u64, usize)> = BTreeSet::new();
        for (vr, id) in seq {
            let key = (vr, id);
            if live.contains(&key) {
                prop_assert!(tree.remove(&key));
                live.remove(&key);
            } else {
                prop_assert!(tree.insert(key));
                live.insert(key);
            }
            tree.assert_invariants();
            prop_assert_eq!(tree.min(), live.first().copied());
        }
    }
}
