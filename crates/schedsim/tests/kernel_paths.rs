//! End-to-end coverage of kernel paths the unit tests don't reach:
//! policy changes, SCHED_IDLE tasks, SCHED_BATCH, RR slices under
//! contention, multi-chip topologies, and CFS load balancing.

use power5::{Chip, CpuId, Topology};
use schedsim::program::{Action, FnProgram, ScriptedProgram};
use schedsim::{
    Kernel, KernelApi, KernelConfig, SchedPolicy, SpawnOptions, TaskState,
};
use simcore::SimDuration;

fn kernel_1cpu() -> Kernel {
    Kernel::new(Chip::new(Topology::single_core_st()), KernelConfig::default())
}

#[test]
fn sched_idle_task_runs_only_when_cpu_is_free() {
    let mut k = kernel_1cpu();
    let normal = k.spawn(
        "normal",
        SchedPolicy::Normal,
        Box::new(ScriptedProgram::compute_once(0.2)),
        SpawnOptions::default(),
    );
    let idle = k.spawn(
        "idler",
        SchedPolicy::Idle,
        Box::new(ScriptedProgram::compute_once(0.05)),
        SpawnOptions::default(),
    );
    k.run_until_exited(&[normal, idle], SimDuration::from_secs(10)).expect("finishes");
    let n_end = k.task(normal).exited_at.unwrap();
    let i_end = k.task(idle).exited_at.unwrap();
    assert!(n_end < i_end, "idle task starved until normal exits");
    // The idle task got essentially zero CPU before the normal task ended.
    assert!(k.task(idle).exec_total <= SimDuration::from_millis(51));
}

#[test]
fn two_idle_tasks_round_robin() {
    let mut k = kernel_1cpu();
    let a = k.spawn(
        "ia",
        SchedPolicy::Idle,
        Box::new(ScriptedProgram::compute_once(0.05)),
        SpawnOptions::default(),
    );
    let b = k.spawn(
        "ib",
        SchedPolicy::Idle,
        Box::new(ScriptedProgram::compute_once(0.05)),
        SpawnOptions::default(),
    );
    let end = k.run_until_exited(&[a, b], SimDuration::from_secs(10)).expect("finishes");
    assert!((0.09..0.12).contains(&end.as_secs_f64()), "end {end}");
}

#[test]
fn batch_tasks_complete_but_defer_to_interactive() {
    let mut k = kernel_1cpu();
    let batch = k.spawn(
        "batch",
        SchedPolicy::Batch,
        Box::new(ScriptedProgram::compute_once(0.1)),
        SpawnOptions::default(),
    );
    // An interactive task that sleeps and wakes repeatedly.
    let mut n = 0u32;
    let inter = k.spawn(
        "inter",
        SchedPolicy::Normal,
        Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
            n += 1;
            if n > 20 {
                return Action::Exit;
            }
            if n % 2 == 1 {
                Action::Compute(0.001)
            } else {
                let tok = api.new_token();
                api.signal_after(SimDuration::from_millis(5), tok);
                Action::Block(tok)
            }
        })),
        SpawnOptions::default(),
    );
    k.run_until_exited(&[batch, inter], SimDuration::from_secs(10)).expect("finishes");
    assert_eq!(k.task(batch).state, TaskState::Exited);
    assert_eq!(k.task(inter).state, TaskState::Exited);
}

#[test]
fn rt_rr_slices_share_cpu_between_equal_priority_hogs() {
    let mut k = kernel_1cpu();
    let ids: Vec<_> = (0..2)
        .map(|i| {
            k.spawn(
                format!("rr{i}"),
                SchedPolicy::Rr,
                Box::new(ScriptedProgram::compute_once(0.3)),
                SpawnOptions { rt_priority: 10, ..Default::default() },
            )
        })
        .collect();
    let end = k.run_until_exited(&ids, SimDuration::from_secs(10)).expect("finishes");
    // Serialized via 100ms slices: both finish ~0.6s, neither much earlier.
    assert!((0.58..0.64).contains(&end.as_secs_f64()), "end {end}");
    let d0 = k.task(ids[0]).exited_at.unwrap().as_secs_f64();
    let d1 = k.task(ids[1]).exited_at.unwrap().as_secs_f64();
    assert!((d1 - d0).abs() < 0.15, "interleaved exits: {d0} vs {d1}");
    // Slice-driven switches: at least 4 rotations.
    assert!(k.metrics().context_switches >= 4);
}

#[test]
fn fifo_beats_rr_and_runs_to_completion() {
    let mut k = kernel_1cpu();
    let rr = k.spawn(
        "rr",
        SchedPolicy::Rr,
        Box::new(ScriptedProgram::compute_once(0.1)),
        SpawnOptions { rt_priority: 10, ..Default::default() },
    );
    let fifo = k.spawn(
        "fifo",
        SchedPolicy::Fifo,
        Box::new(ScriptedProgram::compute_once(0.1)),
        SpawnOptions { rt_priority: 20, ..Default::default() },
    );
    k.run_until_exited(&[rr, fifo], SimDuration::from_secs(10)).expect("finishes");
    assert!(
        k.task(fifo).exited_at.unwrap() < k.task(rr).exited_at.unwrap(),
        "higher RT priority finishes first"
    );
}

#[test]
fn policy_change_at_runtime_reclasses_the_task() {
    // A task starts SCHED_NORMAL, promotes itself to SCHED_FIFO mid-run,
    // and then outcompetes a CPU hog it previously shared with.
    let chip = Chip::new(Topology::single_core_st());
    let mut k = Kernel::new(chip, KernelConfig::default());
    let hog = k.spawn(
        "hog",
        SchedPolicy::Normal,
        Box::new(ScriptedProgram::compute_once(0.5)),
        SpawnOptions::default(),
    );
    let mut phase = 0;
    let climber = k.spawn(
        "climber",
        SchedPolicy::Normal,
        Box::new(FnProgram(move |api: &mut KernelApi<'_>| {
            phase += 1;
            match phase {
                1 => Action::Compute(0.05),
                2 => {
                    api.set_scheduler(SchedPolicy::Fifo);
                    Action::Compute(0.2)
                }
                _ => Action::Exit,
            }
        })),
        SpawnOptions { rt_priority: 5, ..Default::default() },
    );
    k.run_until_exited(&[hog, climber], SimDuration::from_secs(10)).expect("finishes");
    assert_eq!(k.task(climber).policy, SchedPolicy::Fifo);
    // After promotion the climber runs uninterrupted, so it exits first
    // even though the hog has equal remaining work.
    assert!(k.task(climber).exited_at.unwrap() < k.task(hog).exited_at.unwrap());
}

#[test]
fn multi_chip_topology_runs_and_spreads() {
    // 2 chips × 2 cores × 2 SMT = 8 CPUs.
    let chip = Chip::new(Topology::new(2, 2, 2));
    let mut k = Kernel::new(chip, KernelConfig::default());
    let ids: Vec<_> = (0..8)
        .map(|i| {
            k.spawn(
                format!("t{i}"),
                SchedPolicy::Normal,
                Box::new(ScriptedProgram::compute_once(0.1)),
                SpawnOptions::default(),
            )
        })
        .collect();
    let end = k.run_until_exited(&ids, SimDuration::from_secs(10)).expect("finishes");
    // All eight in parallel at SMT speed 0.8 → 0.125s.
    assert!((0.12..0.14).contains(&end.as_secs_f64()), "end {end}");
    let cpus: std::collections::BTreeSet<_> =
        ids.iter().map(|&t| k.task(t).cpu.unwrap()).collect();
    assert_eq!(cpus.len(), 8, "one task per CPU");
}

#[test]
fn cfs_idle_pull_balances_queued_work() {
    // Six tasks pinned-free on a 4-CPU machine: the two extra tasks queue,
    // and as CPUs free up they must be pulled so total time is near the
    // work-conserving optimum.
    let chip = Chip::new(Topology::openpower_710());
    let mut k = Kernel::new(chip, KernelConfig::default());
    let ids: Vec<_> = (0..6)
        .map(|i| {
            k.spawn(
                format!("t{i}"),
                SchedPolicy::Normal,
                Box::new(ScriptedProgram::compute_once(0.08)),
                SpawnOptions::default(),
            )
        })
        .collect();
    let end = k.run_until_exited(&ids, SimDuration::from_secs(10)).expect("finishes");
    // Work-conserving bound: 6 × 0.08 / (4 × 0.8) = 0.15s; allow slack for
    // SMT effects and switch costs but catch a serialization bug (≥0.3s).
    assert!(end.as_secs_f64() < 0.30, "end {end}");
}

#[test]
fn affinity_is_never_violated() {
    let chip = Chip::new(Topology::openpower_710());
    let mut k = Kernel::new(chip, KernelConfig::default());
    let pinned = k.spawn(
        "pinned",
        SchedPolicy::Normal,
        Box::new(ScriptedProgram::compute_once(0.2)),
        SpawnOptions { affinity: Some(vec![CpuId(3)]), ..Default::default() },
    );
    // Competition on cpu3 to tempt the balancer.
    for i in 0..3 {
        k.spawn(
            format!("c{i}"),
            SchedPolicy::Normal,
            Box::new(ScriptedProgram::compute_once(0.2)),
            SpawnOptions { affinity: Some(vec![CpuId(3)]), ..Default::default() },
        );
    }
    k.run_until_exited(&[pinned], SimDuration::from_secs(30)).expect("finishes");
    assert_eq!(k.task(pinned).cpu, Some(CpuId(3)));
}

#[test]
fn zero_work_compute_makes_progress() {
    let mut k = kernel_1cpu();
    let t = k.spawn(
        "zero",
        SchedPolicy::Normal,
        Box::new(ScriptedProgram::new(vec![
            Action::Compute(0.0),
            Action::Compute(0.0),
            Action::Compute(0.01),
            Action::Exit,
        ])),
        SpawnOptions::default(),
    );
    let end = k.run_until_exited(&[t], SimDuration::from_secs(5)).expect("finishes");
    assert!(end.as_secs_f64() < 0.02, "zero-work segments are instant: {end}");
}
