//! Self-contained SplitMix64 generator for fault schedules.
//!
//! faultsim deliberately does not reuse `simcore::SimRng`: a fault schedule
//! must be derivable from the plan seed alone, without consuming (and thereby
//! perturbing) any simulator RNG stream. SplitMix64 is tiny, needs no state
//! beyond one `u64`, and uses the same finalizer constants as
//! `SimRng::fork`, so streams mix equally well. No wall clock anywhere:
//! seeding is always explicit (SV001).

/// A SplitMix64 pseudo-random stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Start a stream at `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Derive an independent child stream, so each fault clause gets its own
    /// sequence and adding one clause never perturbs the others.
    ///
    /// Forking *consumes* one draw from the parent, so the fork sequence is
    /// part of the determinism contract: callers that fan work out (e.g.
    /// `batchsim`'s per-node seed derivation) must fork all children
    /// serially, in a fixed order, *before* handing work to any thread
    /// pool — fork order, including which salts are skipped, decides every
    /// child stream.
    pub fn fork(&mut self, salt: u64) -> SplitMix64 {
        let base = self.next_u64();
        let mut z = base ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SplitMix64::new(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(2008);
        let mut b = SplitMix64::new(2008);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_in_half_open_interval() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.unit();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn fork_order_decides_child_streams() {
        // fork() consumes a parent draw: forking the same salts in a
        // different order must give different children, while the same
        // order always reproduces them. This is the contract parallel
        // callers rely on when they pre-derive seeds serially.
        let mut fwd = SplitMix64::new(11);
        let a1 = fwd.fork(1).next_u64();
        let a2 = fwd.fork(2).next_u64();
        let mut rev = SplitMix64::new(11);
        let b2 = rev.fork(2).next_u64();
        let b1 = rev.fork(1).next_u64();
        assert_ne!((a1, a2), (b1, b2), "fork order must matter");
        let mut again = SplitMix64::new(11);
        assert_eq!(again.fork(1).next_u64(), a1);
        assert_eq!(again.fork(2).next_u64(), a2);
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut r1 = SplitMix64::new(9);
        let mut r2 = SplitMix64::new(9);
        let mut c1 = r1.fork(0xABCD);
        let mut c2 = r2.fork(0xABCD);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut other = SplitMix64::new(9).fork(0xABCE);
        assert_ne!(c1.next_u64(), other.next_u64());
    }
}
