//! Declarative fault plans and their compilation into per-layer hooks.
//!
//! A [`FaultPlan`] is built either programmatically or from the textual
//! `--faults` spec accepted by every experiment binary. The spec is a
//! semicolon-separated list of clauses:
//!
//! ```text
//! seed=7
//! steal:cpu=0,period=250ms,duration=20ms,count=40[,jitter]
//! slow:rank=1,at=2s,factor=0.5
//! mpidelay:prob=0.1,extra=500us
//! crash:rank=2,iter=3,policy=failstop
//! crash:rank=2,iter=3,policy=restart,delay=100ms
//! nodefail:node=1,iter=5,retries=2[,restart=1s]
//! taskabort:job=3,node=0,aborts=2[,hang]
//! ckptcorrupt:at=2
//! ```
//!
//! Durations accept `s`, `ms`, `us` and `ns` suffixes; a bare number means
//! seconds. Compilation is deterministic: randomized schedules (`jitter`)
//! draw only from the plan's own [`SplitMix64`] stream, and an empty plan
//! compiles to nothing at all.

use crate::rng::SplitMix64;
use mpisim::fault::{MpiFaultConfig, RankCrash, RankFailurePolicy};
use power5::CpuId;
use schedsim::fault::FaultEvent;
use schedsim::TaskId;
use simcore::{SimDuration, SimTime};
use std::fmt;

/// A malformed `--faults` spec. Carries a human-readable explanation of the
/// first offending clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpecError(pub String);

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad fault spec: {}", self.0)
    }
}

impl std::error::Error for SpecError {}

/// Class 1 — OS noise / daemon interference: CPU steal bursts on one
/// hardware context. With `jitter` the inter-burst gaps are randomized
/// around `period` using the plan's own RNG stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StealSpec {
    /// Hardware context the daemon steals.
    pub cpu: usize,
    /// Nominal gap between burst starts, seconds.
    pub period: f64,
    /// Length of each burst, seconds.
    pub duration: f64,
    /// Number of bursts to inject.
    pub count: u32,
    /// Randomize gaps in `[0.5, 1.5) × period` instead of a fixed cadence.
    pub jitter: bool,
}

/// Class 2 — compute slowdown / straggler drift: one timed change of a
/// rank's speed multiplier (1.0 = nominal, 0.5 = half speed).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowSpec {
    /// Application rank (index into the spawned rank list).
    pub rank: usize,
    /// Simulated time of the change, seconds.
    pub at: f64,
    /// New speed multiplier; must be finite and non-negative.
    pub factor: f64,
}

/// Class 3a — MPI message delay spikes: each message independently suffers
/// `extra` additional latency with probability `prob`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DelaySpec {
    /// Per-message spike probability in `[0, 1]`.
    pub prob: f64,
    /// Additional latency per spiked message, seconds.
    pub extra: f64,
}

/// What happens when a rank crashes (class 3b).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CrashPolicy {
    /// The whole job aborts cleanly; the runner returns partial results plus
    /// a typed [`crate::FaultError::RankFailStop`].
    FailStop,
    /// Checkpoint/restart: the rank re-enters at the last completed barrier
    /// after `delay` seconds of simulated recovery time.
    Restart { delay: f64 },
}

/// Class 3b — rank stall/crash at an iteration boundary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CrashSpec {
    /// Application rank that crashes.
    pub rank: usize,
    /// Completed-iteration count at which the crash fires.
    pub iteration: u32,
    pub policy: CrashPolicy,
}

/// Class 4 — node failure at cluster level. Consumed by `cluster::sim`,
/// which marks the node down and re-places its gang on the survivors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NodeFailSpec {
    /// Node that dies.
    pub node: usize,
    /// Gang iteration after which it dies.
    pub iteration: u32,
    /// Re-placement attempts before giving up with a degraded result.
    pub retries: u32,
    /// Simulated checkpoint-restore overhead when the job resumes, seconds.
    pub restart_secs: f64,
}

/// Class 5 — transient task abort: a worker task in the batch fleet panics
/// (or, with `hang`, wedges) while simulating one job's segment on one
/// node. Consumed by `batchsim`'s supervised oracle: the first `aborts`
/// attempts fail, so the outcome depends only on the supervisor's retry
/// budget, never on wall-clock scheduling.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskAbortSpec {
    /// Batch job id whose measurement aborts.
    pub job: u64,
    /// Node index (within the job's placement) whose segment aborts.
    pub node: usize,
    /// Number of leading attempts that fail before one succeeds.
    pub aborts: u32,
    /// Wedge instead of panicking, so the supervisor's watchdog — not the
    /// unwind path — has to convert the attempt into a typed failure.
    pub hang: bool,
}

/// Class 6 — checkpoint corruption: the `at`-th checkpoint file written
/// (1-based) is corrupted in place after the save, so a later resume must
/// detect the bad checksum and fall back to the previous good checkpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CkptCorruptSpec {
    /// Which save gets corrupted, counting from 1.
    pub nth: u32,
}

/// A complete, seeded fault schedule for one run.
///
/// `FaultPlan::default()` is the empty plan: it injects nothing, draws no
/// random values, and leaves a run byte-identical to one without faultsim.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    /// Seed for every randomized choice the plan makes.
    pub seed: u64,
    pub steal: Vec<StealSpec>,
    pub slow: Vec<SlowSpec>,
    pub mpi_delay: Option<DelaySpec>,
    pub crash: Option<CrashSpec>,
    pub node_failure: Option<NodeFailSpec>,
    pub task_abort: Option<TaskAbortSpec>,
    pub ckpt_corrupt: Option<CkptCorruptSpec>,
}

impl FaultPlan {
    /// True when the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.steal.is_empty()
            && self.slow.is_empty()
            && self.mpi_delay.is_none()
            && self.crash.is_none()
            && self.node_failure.is_none()
            && self.task_abort.is_none()
            && self.ckpt_corrupt.is_none()
    }

    /// Parse a `--faults` spec string (see module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, SpecError> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(v) = clause.strip_prefix("seed=") {
                plan.seed = v
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| SpecError(format!("seed `{v}` is not a u64")))?;
                continue;
            }
            let (kind, params) = clause
                .split_once(':')
                .ok_or_else(|| SpecError(format!("clause `{clause}` has no `kind:` prefix")))?;
            let params = Params::parse(kind, params)?;
            match kind {
                "steal" => plan.steal.push(StealSpec {
                    cpu: params.get_usize("cpu")?,
                    period: params.get_secs("period")?,
                    duration: params.get_secs("duration")?,
                    count: params.get_u32("count")?,
                    jitter: params.has_flag("jitter"),
                }),
                "slow" => plan.slow.push(SlowSpec {
                    rank: params.get_usize("rank")?,
                    at: params.get_secs("at")?,
                    factor: params.get_f64("factor")?,
                }),
                "mpidelay" => {
                    plan.mpi_delay = Some(DelaySpec {
                        prob: params.get_f64("prob")?,
                        extra: params.get_secs("extra")?,
                    })
                }
                "crash" => {
                    let policy = match params.get_str("policy")? {
                        "failstop" => CrashPolicy::FailStop,
                        "restart" => CrashPolicy::Restart { delay: params.get_secs("delay")? },
                        other => {
                            return Err(SpecError(format!(
                                "crash policy `{other}` (want failstop|restart)"
                            )))
                        }
                    };
                    plan.crash = Some(CrashSpec {
                        rank: params.get_usize("rank")?,
                        iteration: params.get_u32("iter")?,
                        policy,
                    });
                }
                "nodefail" => {
                    plan.node_failure = Some(NodeFailSpec {
                        node: params.get_usize("node")?,
                        iteration: params.get_u32("iter")?,
                        retries: params.get_u32("retries")?,
                        restart_secs: params.get_secs_or("restart", 1.0)?,
                    })
                }
                "taskabort" => {
                    plan.task_abort = Some(TaskAbortSpec {
                        job: params.get_u64("job")?,
                        node: params.get_usize("node")?,
                        aborts: params.get_u32("aborts")?,
                        hang: params.has_flag("hang"),
                    })
                }
                "ckptcorrupt" => {
                    plan.ckpt_corrupt =
                        Some(CkptCorruptSpec { nth: params.get_u32_or("at", 1)? })
                }
                other => {
                    return Err(SpecError(format!(
                        "unknown fault kind `{other}` \
                         (want steal|slow|mpidelay|crash|nodefail|taskabort|ckptcorrupt)"
                    )))
                }
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    fn validate(&self) -> Result<(), SpecError> {
        for s in &self.steal {
            if s.period <= 0.0 || s.duration <= 0.0 {
                return Err(SpecError("steal period/duration must be positive".into()));
            }
        }
        for s in &self.slow {
            if !s.factor.is_finite() || s.factor < 0.0 {
                return Err(SpecError("slow factor must be finite and >= 0".into()));
            }
        }
        if let Some(d) = &self.mpi_delay {
            if !(0.0..=1.0).contains(&d.prob) || d.extra < 0.0 {
                return Err(SpecError("mpidelay prob must be in [0,1], extra >= 0".into()));
            }
        }
        if let Some(t) = &self.task_abort {
            if t.aborts == 0 {
                return Err(SpecError("taskabort aborts must be >= 1".into()));
            }
        }
        if let Some(c) = &self.ckpt_corrupt {
            if c.nth == 0 {
                return Err(SpecError("ckptcorrupt at counts from 1".into()));
            }
        }
        Ok(())
    }

    /// Render the plan back into its canonical `--faults` spelling, such
    /// that `parse(render(p)) == p` for every valid plan. Durations come
    /// out as bare seconds (`f64` `Display` round-trips exactly), flags as
    /// trailing `,jitter`/`,hang`, clauses joined by `"; "`. Checkpoint
    /// metadata uses this to record the fault context a run was taken
    /// under without inventing a second encoding.
    pub fn render(&self) -> String {
        let mut clauses: Vec<String> = Vec::new();
        if self.seed != 0 {
            clauses.push(format!("seed={}", self.seed));
        }
        for s in &self.steal {
            let jitter = if s.jitter { ",jitter" } else { "" };
            clauses.push(format!(
                "steal:cpu={},period={},duration={},count={}{jitter}",
                s.cpu, s.period, s.duration, s.count
            ));
        }
        for s in &self.slow {
            clauses.push(format!("slow:rank={},at={},factor={}", s.rank, s.at, s.factor));
        }
        if let Some(d) = &self.mpi_delay {
            clauses.push(format!("mpidelay:prob={},extra={}", d.prob, d.extra));
        }
        if let Some(c) = &self.crash {
            let policy = match c.policy {
                CrashPolicy::FailStop => "policy=failstop".to_string(),
                CrashPolicy::Restart { delay } => format!("policy=restart,delay={delay}"),
            };
            clauses.push(format!("crash:rank={},iter={},{policy}", c.rank, c.iteration));
        }
        if let Some(n) = &self.node_failure {
            clauses.push(format!(
                "nodefail:node={},iter={},retries={},restart={}",
                n.node, n.iteration, n.retries, n.restart_secs
            ));
        }
        if let Some(t) = &self.task_abort {
            let hang = if t.hang { ",hang" } else { "" };
            clauses.push(format!(
                "taskabort:job={},node={},aborts={}{hang}",
                t.job, t.node, t.aborts
            ));
        }
        if let Some(c) = &self.ckpt_corrupt {
            clauses.push(format!("ckptcorrupt:at={}", c.nth));
        }
        clauses.join("; ")
    }

    /// Compile the kernel-level fault classes (steal bursts, slowdown drift)
    /// into a time-sorted event schedule. `ranks` maps application rank
    /// index to the spawned task; slow clauses naming an out-of-range rank
    /// are dropped (graceful, never a panic).
    pub fn kernel_events(&self, ranks: &[TaskId]) -> Vec<(SimTime, FaultEvent)> {
        let mut events: Vec<(SimTime, FaultEvent)> = Vec::new();
        let mut root = SplitMix64::new(self.seed);
        for (i, s) in self.steal.iter().enumerate() {
            // Each clause forks its own stream so adding one clause never
            // reshuffles another clause's schedule.
            let mut rng = root.fork(i as u64 + 1);
            let mut t = 0.0;
            for _ in 0..s.count {
                let gap = if s.jitter { s.period * (0.5 + rng.unit()) } else { s.period };
                t += gap;
                events.push((
                    SimTime::ZERO + SimDuration::from_secs_f64(t),
                    FaultEvent::StealBurst {
                        cpu: CpuId(s.cpu),
                        duration: SimDuration::from_secs_f64(s.duration),
                    },
                ));
            }
        }
        for s in &self.slow {
            if let Some(&task) = ranks.get(s.rank) {
                events.push((
                    SimTime::ZERO + SimDuration::from_secs_f64(s.at),
                    FaultEvent::SlowTask { task, factor: s.factor },
                ));
            }
        }
        // Stable sort: ties keep clause order, so compilation is a pure
        // function of the plan.
        events.sort_by_key(|(t, _)| *t);
        events
    }

    /// Compile the MPI-level fault classes (delay spikes, rank crash) into
    /// the config `mpisim` installs into a world. `None` when neither is
    /// present, so an un-faulted world carries no fault state at all.
    pub fn mpi_faults(&self) -> Option<MpiFaultConfig> {
        if self.mpi_delay.is_none() && self.crash.is_none() {
            return None;
        }
        let delay = self.mpi_delay.unwrap_or(DelaySpec { prob: 0.0, extra: 0.0 });
        Some(MpiFaultConfig {
            delay_prob: delay.prob,
            delay_extra: SimDuration::from_secs_f64(delay.extra),
            // Salted so the MPI stream is independent of the kernel-event
            // streams forked from the same plan seed.
            seed: self.seed ^ 0x6D70_6953_696D_u64,
            crash: self.crash.map(|c| RankCrash {
                rank: c.rank,
                at_iteration: c.iteration,
                policy: match c.policy {
                    CrashPolicy::FailStop => RankFailurePolicy::FailStop,
                    CrashPolicy::Restart { delay } => RankFailurePolicy::RestartFromIteration {
                        delay: SimDuration::from_secs_f64(delay),
                    },
                },
            }),
        })
    }
}

/// Parsed `k=v` parameter list of one clause.
struct Params<'a> {
    kind: &'a str,
    pairs: Vec<(&'a str, &'a str)>,
    flags: Vec<&'a str>,
}

impl<'a> Params<'a> {
    fn parse(kind: &'a str, raw: &'a str) -> Result<Params<'a>, SpecError> {
        let mut pairs = Vec::new();
        let mut flags = Vec::new();
        for part in raw.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                Some((k, v)) => pairs.push((k.trim(), v.trim())),
                None => flags.push(part),
            }
        }
        Ok(Params { kind, pairs, flags })
    }

    fn get_str(&self, key: &str) -> Result<&'a str, SpecError> {
        self.pairs
            .iter()
            .find(|(k, _)| *k == key)
            .map(|(_, v)| *v)
            .ok_or_else(|| SpecError(format!("{}: missing `{key}=`", self.kind)))
    }

    fn has_flag(&self, flag: &str) -> bool {
        self.flags.contains(&flag)
    }

    fn get_usize(&self, key: &str) -> Result<usize, SpecError> {
        let v = self.get_str(key)?;
        v.parse().map_err(|_| SpecError(format!("{}: `{key}={v}` is not an integer", self.kind)))
    }

    fn get_u32(&self, key: &str) -> Result<u32, SpecError> {
        let v = self.get_str(key)?;
        v.parse().map_err(|_| SpecError(format!("{}: `{key}={v}` is not an integer", self.kind)))
    }

    fn get_u32_or(&self, key: &str, default: u32) -> Result<u32, SpecError> {
        match self.pairs.iter().find(|(k, _)| *k == key) {
            Some(_) => self.get_u32(key),
            None => Ok(default),
        }
    }

    fn get_u64(&self, key: &str) -> Result<u64, SpecError> {
        let v = self.get_str(key)?;
        v.parse().map_err(|_| SpecError(format!("{}: `{key}={v}` is not an integer", self.kind)))
    }

    fn get_f64(&self, key: &str) -> Result<f64, SpecError> {
        let v = self.get_str(key)?;
        v.parse().map_err(|_| SpecError(format!("{}: `{key}={v}` is not a number", self.kind)))
    }

    fn get_secs(&self, key: &str) -> Result<f64, SpecError> {
        parse_secs(self.kind, key, self.get_str(key)?)
    }

    fn get_secs_or(&self, key: &str, default: f64) -> Result<f64, SpecError> {
        match self.pairs.iter().find(|(k, _)| *k == key) {
            Some((_, v)) => parse_secs(self.kind, key, v),
            None => Ok(default),
        }
    }
}

/// Parse a duration with an optional `s`/`ms`/`us`/`ns` suffix (bare number
/// = seconds).
fn parse_secs(kind: &str, key: &str, v: &str) -> Result<f64, SpecError> {
    let (num, scale) = if let Some(n) = v.strip_suffix("ms") {
        (n, 1e-3)
    } else if let Some(n) = v.strip_suffix("us") {
        (n, 1e-6)
    } else if let Some(n) = v.strip_suffix("ns") {
        (n, 1e-9)
    } else if let Some(n) = v.strip_suffix('s') {
        (n, 1.0)
    } else {
        (v, 1.0)
    };
    let x: f64 = num
        .parse()
        .map_err(|_| SpecError(format!("{kind}: `{key}={v}` is not a duration")))?;
    if !x.is_finite() || x < 0.0 {
        return Err(SpecError(format!("{kind}: `{key}={v}` must be finite and >= 0")));
    }
    Ok(x * scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_is_empty_and_compiles_to_nothing() {
        let plan = FaultPlan::default();
        assert!(plan.is_empty());
        assert!(plan.kernel_events(&[TaskId(0)]).is_empty());
        assert!(plan.mpi_faults().is_none());
    }

    #[test]
    fn parse_all_clause_kinds() {
        let plan = FaultPlan::parse(
            "seed=7; steal:cpu=0,period=250ms,duration=20ms,count=3,jitter; \
             slow:rank=1,at=2s,factor=0.5; mpidelay:prob=0.1,extra=500us; \
             crash:rank=2,iter=3,policy=restart,delay=100ms; \
             nodefail:node=1,iter=5,retries=2",
        )
        .expect("spec parses");
        assert_eq!(plan.seed, 7);
        assert_eq!(plan.steal.len(), 1);
        assert!(plan.steal[0].jitter);
        assert_eq!(plan.slow, vec![SlowSpec { rank: 1, at: 2.0, factor: 0.5 }]);
        assert_eq!(plan.mpi_delay, Some(DelaySpec { prob: 0.1, extra: 500e-6 }));
        assert_eq!(
            plan.crash,
            Some(CrashSpec { rank: 2, iteration: 3, policy: CrashPolicy::Restart { delay: 0.1 } })
        );
        let nf = plan.node_failure.expect("nodefail parsed");
        assert_eq!((nf.node, nf.iteration, nf.retries), (1, 5, 2));
        assert!(!plan.is_empty());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus:x=1").is_err());
        assert!(FaultPlan::parse("steal:cpu=0").is_err()); // missing keys
        assert!(FaultPlan::parse("crash:rank=0,iter=1,policy=maybe").is_err());
        assert!(FaultPlan::parse("mpidelay:prob=2.0,extra=1ms").is_err());
        assert!(FaultPlan::parse("slow:rank=0,at=1,factor=nan").is_err());
        assert!(FaultPlan::parse("seed=banana").is_err());
        assert!(FaultPlan::parse("noprefix").is_err());
    }

    #[test]
    fn kernel_events_are_sorted_and_deterministic() {
        let plan = FaultPlan::parse(
            "seed=42; steal:cpu=1,period=100ms,duration=5ms,count=8,jitter; \
             slow:rank=0,at=150ms,factor=0.25",
        )
        .expect("spec parses");
        let ranks = [TaskId(3), TaskId(4)];
        let a = plan.kernel_events(&ranks);
        let b = plan.kernel_events(&ranks);
        assert_eq!(a, b, "compilation must be pure");
        assert_eq!(a.len(), 9);
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0), "events sorted by time");
        assert!(a
            .iter()
            .any(|(_, e)| matches!(e, FaultEvent::SlowTask { task, .. } if *task == TaskId(3))));
    }

    #[test]
    fn out_of_range_slow_rank_is_dropped() {
        let plan =
            FaultPlan::parse("slow:rank=9,at=1,factor=0.5").expect("spec parses");
        assert!(plan.kernel_events(&[TaskId(0)]).is_empty());
    }

    #[test]
    fn parse_taskabort_and_ckptcorrupt() {
        let plan = FaultPlan::parse("taskabort:job=3,node=0,aborts=2,hang; ckptcorrupt:at=2")
            .expect("spec parses");
        assert_eq!(
            plan.task_abort,
            Some(TaskAbortSpec { job: 3, node: 0, aborts: 2, hang: true })
        );
        assert_eq!(plan.ckpt_corrupt, Some(CkptCorruptSpec { nth: 2 }));
        assert!(!plan.is_empty());

        // `at` defaults to the first save; `hang` is opt-in.
        let plan = FaultPlan::parse("taskabort:job=1,node=2,aborts=1; ckptcorrupt:")
            .expect("defaults parse");
        assert_eq!(
            plan.task_abort,
            Some(TaskAbortSpec { job: 1, node: 2, aborts: 1, hang: false })
        );
        assert_eq!(plan.ckpt_corrupt, Some(CkptCorruptSpec { nth: 1 }));

        assert!(FaultPlan::parse("taskabort:job=1,node=0,aborts=0").is_err());
        assert!(FaultPlan::parse("ckptcorrupt:at=0").is_err());
        assert!(FaultPlan::parse("taskabort:node=0,aborts=1").is_err()); // missing job
    }

    #[test]
    fn render_round_trips_every_clause_kind() {
        let specs = [
            "",
            "seed=7",
            "seed=7; steal:cpu=0,period=250ms,duration=20ms,count=3,jitter",
            "slow:rank=1,at=2s,factor=0.5; mpidelay:prob=0.1,extra=500us",
            "crash:rank=2,iter=3,policy=failstop",
            "crash:rank=2,iter=3,policy=restart,delay=100ms",
            "nodefail:node=1,iter=5,retries=2,restart=1500ms",
            "taskabort:job=3,node=0,aborts=2,hang",
            "taskabort:job=9,node=1,aborts=1; ckptcorrupt:at=2",
            "seed=42; steal:cpu=1,period=100ms,duration=5ms,count=8; \
             nodefail:node=0,iter=1,retries=3; ckptcorrupt:",
        ];
        for spec in specs {
            let plan = FaultPlan::parse(spec).expect("spec parses");
            let rendered = plan.render();
            let reparsed = FaultPlan::parse(&rendered)
                .unwrap_or_else(|e| panic!("render of `{spec}` unparseable: {e}"));
            assert_eq!(reparsed, plan, "parse(render(p)) != p for `{spec}` -> `{rendered}`");
        }
    }

    #[test]
    fn render_of_default_plan_is_empty() {
        assert_eq!(FaultPlan::default().render(), "");
        assert_eq!(FaultPlan::parse("").expect("empty parses"), FaultPlan::default());
    }

    #[test]
    fn mpi_faults_compile() {
        let plan =
            FaultPlan::parse("seed=3; crash:rank=1,iter=2,policy=failstop").expect("parses");
        let cfg = plan.mpi_faults().expect("crash implies mpi fault config");
        assert_eq!(cfg.delay_prob, 0.0);
        let crash = cfg.crash.expect("crash present");
        assert_eq!(crash.rank, 1);
        assert_eq!(crash.at_iteration, 2);
        assert_eq!(crash.policy, RankFailurePolicy::FailStop);
    }
}
