//! Per-run fault accounting: what was injected, what the stack absorbed,
//! and what aborted. Rendered in the experiment report's fault summary
//! section and persisted in `BENCH_faults.json`.

use crate::error::FaultError;
use std::fmt;

/// Injected / absorbed / aborted counts per fault class for one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, serde::Serialize)]
pub struct FaultSummary {
    /// Class 1: CPU steal bursts delivered to the kernel.
    pub steal_bursts_injected: u64,
    /// Class 2: per-task speed-multiplier changes delivered.
    pub slowdowns_injected: u64,
    /// Class 3a: MPI messages that suffered a delay spike.
    pub mpi_delays_injected: u64,
    /// Class 3b: checkpoint/restart re-entries the job absorbed.
    pub restarts_absorbed: u64,
    /// Scheduler degradations absorbed: detector samples discarded as
    /// unusable, with priorities reset to the uniform floor.
    pub degraded_samples: u64,
    /// Terminal fault, if the run aborted instead of completing.
    pub aborted: Option<FaultError>,
}

impl FaultSummary {
    /// Total faults injected across all classes.
    pub fn injected(&self) -> u64 {
        self.steal_bursts_injected + self.slowdowns_injected + self.mpi_delays_injected
    }

    /// Total faults the stack absorbed without aborting.
    pub fn absorbed(&self) -> u64 {
        self.restarts_absorbed + self.degraded_samples
    }
}

impl fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "injected: steal={} slow={} mpi_delay={} | absorbed: restarts={} degraded={} | ",
            self.steal_bursts_injected,
            self.slowdowns_injected,
            self.mpi_delays_injected,
            self.restarts_absorbed,
            self.degraded_samples,
        )?;
        match &self.aborted {
            Some(e) => write!(f, "aborted: {e}"),
            None => write!(f, "completed"),
        }
    }
}
