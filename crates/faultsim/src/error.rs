//! Typed fault outcomes.
//!
//! Injected faults that end a job early must surface as *values*, never as
//! panics: the runner still returns partial results and the trace collected
//! up to the fault, tagged with one of these errors.

use std::fmt;

/// Why a fault-injected run terminated without completing normally.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize)]
pub enum FaultError {
    /// A rank hit a `FailStop` crash directive and the job aborted cleanly
    /// after `iteration` completed iterations on that rank.
    RankFailStop { rank: usize, iteration: u32 },
    /// The faulted run did not reach completion before the runner's
    /// simulated-time deadline.
    Deadline { secs: u64 },
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::RankFailStop { rank, iteration } => {
                write!(f, "rank {rank} fail-stopped after iteration {iteration}; job aborted")
            }
            FaultError::Deadline { secs } => {
                write!(f, "faulted run exceeded the {secs}s simulated deadline")
            }
        }
    }
}

impl std::error::Error for FaultError {}
