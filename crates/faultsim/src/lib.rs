//! Deterministic fault injection for the HPCSched simulation stack.
//!
//! The paper's transparency claim (§IV, §V) is that the HPC scheduling class
//! "does no harm": it must converge under noisy, shifting load and never
//! perform worse than the default scheduler. Exercising that claim requires
//! *injecting* perturbations, the way simulator-validation work does
//! (Mohammed et al., arXiv:1910.06844; the two-level load-balancing
//! robustness study, arXiv:1911.06714). This crate is the injection layer.
//!
//! A [`FaultPlan`] is a declarative, seeded description of every fault a run
//! should experience. Plans compile into per-layer hook inputs:
//!
//! * **OS noise / daemon interference** — timed CPU steal bursts, injected
//!   into `schedsim` as [`schedsim::fault::FaultEvent::StealBurst`];
//! * **compute slowdown / straggler drift** — per-task speed multipliers
//!   that change mid-run ([`schedsim::fault::FaultEvent::SlowTask`]), which
//!   the detector + heuristics must re-balance around;
//! * **MPI delay spikes and rank crashes** — an [`mpisim::fault::MpiFaultConfig`]
//!   installed into the MPI world, with [`CrashPolicy::FailStop`] (job aborts
//!   cleanly with a typed [`FaultError`]) or [`CrashPolicy::Restart`]
//!   (checkpoint/restart: the rank re-enters at the last completed barrier);
//! * **node failure** — a spec the cluster simulator uses to mark a node
//!   down and re-place its gang on the survivors (`cluster::sim`).
//!
//! # Determinism
//!
//! A plan is a pure function of its textual spec: compilation draws only
//! from the plan's own [`SplitMix64`] stream seeded by [`FaultPlan::seed`],
//! never from a wall clock or from any simulator RNG. The same
//! `(config, seed, plan)` triple therefore always produces the same trace,
//! and an empty plan compiles to *nothing* — no events, no RNG draws — so a
//! run with [`FaultPlan::default`] is byte-identical to a run without
//! faultsim wired in at all.

pub mod error;
pub mod plan;
pub mod rng;
pub mod summary;

pub use error::FaultError;
pub use plan::{
    CkptCorruptSpec, CrashPolicy, CrashSpec, DelaySpec, FaultPlan, NodeFailSpec, SlowSpec,
    SpecError, StealSpec, TaskAbortSpec,
};
pub use rng::SplitMix64;
pub use summary::FaultSummary;
