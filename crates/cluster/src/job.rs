//! Gang-scheduled job descriptions.

use serde::{Deserialize, Serialize};
use simcore::SimRng;

/// An SPMD job: one load estimate per rank (work units per iteration, the
/// same normalization as the `workloads` crate) and an iteration count.
/// Ranks synchronize with a global barrier each iteration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct JobSpec {
    pub name: String,
    /// Per-rank compute work per iteration.
    pub rank_loads: Vec<f64>,
    pub iterations: u32,
}

impl simcore::snapshot::Snapshot for JobSpec {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_str(&self.name);
        w.put(&self.rank_loads);
        w.put_u32(self.iterations);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        // Bypass `new`'s panicking validation: a decoded spec is either a
        // faithful image of a validated one, or the checksum already failed.
        Ok(JobSpec { name: r.get_str()?, rank_loads: r.get()?, iterations: r.get_u32()? })
    }
}

impl JobSpec {
    /// # Panics
    /// If any load is non-positive or the job is empty.
    pub fn new(name: impl Into<String>, rank_loads: Vec<f64>, iterations: u32) -> Self {
        assert!(!rank_loads.is_empty(), "empty job");
        assert!(rank_loads.iter().all(|&l| l > 0.0), "loads must be positive");
        JobSpec { name: name.into(), rank_loads, iterations }
    }

    pub fn ranks(&self) -> usize {
        self.rank_loads.len()
    }

    pub fn total_work(&self) -> f64 {
        self.rank_loads.iter().sum::<f64>() * self.iterations as f64
    }

    /// A synthetic job with lognormal-ish load spread — the irregular mesh
    /// partitions cluster schedulers actually face.
    pub fn random(name: impl Into<String>, ranks: usize, iterations: u32, rng: &mut SimRng) -> Self {
        assert!(ranks > 0);
        let loads = (0..ranks)
            .map(|_| {
                let base = 0.05;
                base * rng.normal_clamped(1.0, 0.6, 0.25, 4.0)
            })
            .collect();
        JobSpec::new(name, loads, iterations)
    }

    /// Imbalance ratio: max load / min load.
    pub fn imbalance(&self) -> f64 {
        let max = self.rank_loads.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let min = self.rank_loads.iter().cloned().fold(f64::INFINITY, f64::min);
        max / min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_metrics() {
        let j = JobSpec::new("j", vec![1.0, 2.0, 4.0], 10);
        assert_eq!(j.ranks(), 3);
        assert!((j.total_work() - 70.0).abs() < 1e-12);
        assert!((j.imbalance() - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "loads must be positive")]
    fn rejects_zero_loads() {
        JobSpec::new("bad", vec![1.0, 0.0], 1);
    }

    #[test]
    fn random_jobs_are_bounded_and_deterministic() {
        let mut r1 = SimRng::seed_from_u64(5);
        let mut r2 = SimRng::seed_from_u64(5);
        let a = JobSpec::random("a", 16, 5, &mut r1);
        let b = JobSpec::random("b", 16, 5, &mut r2);
        assert_eq!(a.rank_loads, b.rank_loads, "seeded generation is deterministic");
        assert!(a.imbalance() <= 16.0 + 1e-9);
        assert!(a.rank_loads.iter().all(|&l| l > 0.0));
    }
}
