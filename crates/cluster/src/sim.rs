//! Cluster-level simulation: placement × local scheduler → job makespan.
//!
//! For a barrier-synchronized SPMD job with constant per-rank loads the
//! global barrier decomposes: every iteration the job waits for the
//! slowest node, and the same node is slowest every iteration. The job
//! time is therefore `max over nodes of (node execution) + iterations ×
//! inter-node allreduce latency` — each node execution measured by a real
//! `schedsim` kernel run (node-local barriers included).

use crate::job::JobSpec;
use crate::node::run_node;
use crate::placement::{place, Placement, PlacementStrategy};
use serde::{Deserialize, Serialize};

/// Cluster parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub num_nodes: usize,
    /// Local scheduler: HPCSched (true) or stock CFS (false).
    pub hpcsched_nodes: bool,
    /// Inter-node allreduce latency per iteration (seconds) — the network
    /// component of the global barrier.
    pub internode_latency: f64,
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 4,
            hpcsched_nodes: true,
            internode_latency: 20e-6,
            seed: 42,
        }
    }
}

/// Outcome of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    pub placement: Placement,
    /// Per-node execution seconds.
    pub node_secs: Vec<f64>,
    /// Job makespan (slowest node + network barriers).
    pub makespan: f64,
}

/// Place and run `job` on the cluster.
pub fn run_cluster(
    job: &JobSpec,
    strategy: PlacementStrategy,
    cfg: &ClusterConfig,
) -> ClusterResult {
    let placement = place(job, cfg.num_nodes, strategy);
    let node_secs: Vec<f64> = placement
        .nodes
        .iter()
        .enumerate()
        .map(|(n, slots)| {
            if slots.is_empty() {
                return 0.0;
            }
            let loads: Vec<f64> = slots.iter().map(|&r| job.rank_loads[r]).collect();
            run_node(&loads, job.iterations, cfg.hpcsched_nodes, cfg.seed ^ n as u64).exec_secs
        })
        .collect();
    let slowest = node_secs.iter().cloned().fold(0.0, f64::max);
    let makespan = slowest + cfg.internode_latency * job.iterations as f64;
    ClusterResult { placement, node_secs, makespan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn heavy_light_job() -> JobSpec {
        // 2 heavy + 6 light ranks on a 2-node cluster.
        JobSpec::new("hl", vec![0.32, 0.32, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08], 5)
    }

    fn cfg(nodes: usize, hpc: bool) -> ClusterConfig {
        ClusterConfig { num_nodes: nodes, hpcsched_nodes: hpc, ..Default::default() }
    }

    #[test]
    fn smt_aware_beats_round_robin_on_skewed_jobs() {
        let job = heavy_light_job();
        let rr = run_cluster(&job, PlacementStrategy::RoundRobin, &cfg(2, true));
        let smt = run_cluster(&job, PlacementStrategy::SmtAware, &cfg(2, true));
        assert!(
            smt.makespan <= rr.makespan * 1.001,
            "smt {} vs rr {}",
            smt.makespan,
            rr.makespan
        );
    }

    #[test]
    fn hpcsched_nodes_beat_cfs_nodes_for_any_placement() {
        let job = heavy_light_job();
        for s in [PlacementStrategy::RoundRobin, PlacementStrategy::GreedyLpt, PlacementStrategy::SmtAware] {
            let cfs = run_cluster(&job, s, &cfg(2, false));
            let hpc = run_cluster(&job, s, &cfg(2, true));
            assert!(
                hpc.makespan <= cfs.makespan * 1.001,
                "{s:?}: hpc {} vs cfs {}",
                hpc.makespan,
                cfs.makespan
            );
        }
    }

    #[test]
    fn makespan_includes_network_component() {
        let job = JobSpec::new("tiny", vec![0.05; 4], 10);
        let mut c = cfg(1, true);
        c.internode_latency = 0.01;
        let r = run_cluster(&job, PlacementStrategy::GreedyLpt, &c);
        assert!(r.makespan >= r.node_secs[0] + 0.1 - 1e-9, "10 barriers × 10ms");
    }

    #[test]
    fn random_jobs_run_end_to_end() {
        let mut rng = SimRng::seed_from_u64(9);
        let job = JobSpec::random("rand", 12, 3, &mut rng);
        let r = run_cluster(&job, PlacementStrategy::SmtAware, &cfg(3, true));
        assert!(r.placement.is_valid(&job));
        assert_eq!(r.node_secs.len(), 3);
        assert!(r.makespan > 0.0);
    }
}
