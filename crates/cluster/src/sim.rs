//! Cluster-level simulation: placement × local scheduler → job makespan.
//!
//! For a barrier-synchronized SPMD job with constant per-rank loads the
//! global barrier decomposes: every iteration the job waits for the
//! slowest node, and the same node is slowest every iteration. The job
//! time is therefore `max over nodes of (node execution) + iterations ×
//! inter-node allreduce latency` — each node execution measured by a real
//! `schedsim` kernel run (node-local barriers included).

use crate::job::JobSpec;
use crate::node::run_node;
use crate::placement::{place, Placement, PlacementError, PlacementStrategy};
use serde::{Deserialize, Serialize};
use simcore::Pool;

/// Cluster parameters.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct ClusterConfig {
    pub num_nodes: usize,
    /// Local scheduler: HPCSched (true) or stock CFS (false).
    pub hpcsched_nodes: bool,
    /// Inter-node allreduce latency per iteration (seconds) — the network
    /// component of the global barrier.
    pub internode_latency: f64,
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            num_nodes: 4,
            hpcsched_nodes: true,
            internode_latency: 20e-6,
            seed: 42,
        }
    }
}

/// Outcome of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterResult {
    pub placement: Placement,
    /// Per-node execution seconds.
    pub node_secs: Vec<f64>,
    /// Job makespan (slowest node + network barriers).
    pub makespan: f64,
}

impl simcore::snapshot::Snapshot for ClusterResult {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put(&self.placement);
        w.put(&self.node_secs);
        w.put_f64(self.makespan);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(ClusterResult { placement: r.get()?, node_secs: r.get()?, makespan: r.get_f64()? })
    }
}

/// A node-level fault to inject into a cluster run (fault class 4).
///
/// `node` dies after the job's `at_iteration`-th iteration; the scheduler
/// re-places the gang onto the survivors (same strategy) and re-runs the
/// remaining iterations, paying `restart_secs` per attempt, up to
/// `max_retries` attempts.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NodeFailure {
    pub node: usize,
    pub at_iteration: u32,
    pub max_retries: u32,
    /// Restart overhead per recovery attempt (checkpoint reload, requeue).
    pub restart_secs: f64,
}

/// What actually happened to an injected [`NodeFailure`].
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct NodeFailureRecord {
    pub node: usize,
    pub at_iteration: u32,
    /// Recovery attempts consumed (0 if the failure never fired).
    pub retries_used: u32,
    /// Whether the cluster absorbed the failure and finished the job.
    pub absorbed: bool,
}

/// A cluster run that may have degraded rather than completed.
#[derive(Clone, Debug)]
pub struct ClusterOutcome {
    /// The (possibly partial) result. When `degraded` is true this covers
    /// only the iterations completed before the failure.
    pub result: ClusterResult,
    pub failure: Option<NodeFailureRecord>,
    /// True when the job could not finish on the surviving nodes; the
    /// result then holds partial pre-failure work, never a panic.
    pub degraded: bool,
}

impl simcore::snapshot::Snapshot for NodeFailureRecord {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_len(self.node);
        w.put_u32(self.at_iteration);
        w.put_u32(self.retries_used);
        w.put_bool(self.absorbed);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(NodeFailureRecord {
            node: r.get_len()?,
            at_iteration: r.get_u32()?,
            retries_used: r.get_u32()?,
            absorbed: r.get_bool()?,
        })
    }
}

impl simcore::snapshot::Snapshot for ClusterOutcome {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put(&self.result);
        w.put(&self.failure);
        w.put_bool(self.degraded);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(ClusterOutcome { result: r.get()?, failure: r.get()?, degraded: r.get_bool()? })
    }
}

/// Place and run `job` on the cluster, serially.
pub fn run_cluster(
    job: &JobSpec,
    strategy: PlacementStrategy,
    cfg: &ClusterConfig,
) -> Result<ClusterResult, PlacementError> {
    run_cluster_with(job, strategy, cfg, &Pool::serial())
}

/// [`run_cluster`] with the per-node kernel runs submitted to `pool`.
///
/// Each node run is a pure function of `(loads, iterations, sched, seed)` —
/// see [`crate::node`] — and the per-node seed is `cfg.seed ^ node`, fixed
/// before any run starts, so node runs are independent. The pool returns
/// results in node order, which keeps the `node_secs` vector and the
/// makespan reduction byte-identical to the serial loop at any thread count.
pub fn run_cluster_with(
    job: &JobSpec,
    strategy: PlacementStrategy,
    cfg: &ClusterConfig,
    pool: &Pool,
) -> Result<ClusterResult, PlacementError> {
    let placement = place(job, cfg.num_nodes, strategy)?;
    let tasks: Vec<_> = placement
        .nodes
        .iter()
        .enumerate()
        .map(|(n, slots)| {
            let loads: Vec<f64> = slots.iter().map(|&r| job.rank_loads[r]).collect();
            let iterations = job.iterations;
            let hpc = cfg.hpcsched_nodes;
            let seed = cfg.seed ^ n as u64;
            move || {
                if loads.is_empty() {
                    0.0
                } else {
                    run_node(&loads, iterations, hpc, seed).exec_secs
                }
            }
        })
        .collect();
    let node_secs = pool.run(tasks);
    let slowest = node_secs.iter().cloned().fold(0.0, f64::max);
    let makespan = slowest + cfg.internode_latency * job.iterations as f64;
    Ok(ClusterResult { placement, node_secs, makespan })
}

/// [`run_cluster`] with an optional node failure injected.
///
/// Graceful degradation contract: whatever the failure does, this returns a
/// [`ClusterOutcome`] — absorbed (job finished on survivors, makespan pays
/// the recovery cost) or degraded (survivors cannot host the gang; partial
/// pre-failure result). It never panics on the fault path. `Err` only
/// signals that the *initial* placement was impossible.
pub fn run_cluster_faulted(
    job: &JobSpec,
    strategy: PlacementStrategy,
    cfg: &ClusterConfig,
    failure: Option<&NodeFailure>,
) -> Result<ClusterOutcome, PlacementError> {
    run_cluster_faulted_with(job, strategy, cfg, failure, &Pool::serial())
}

/// [`run_cluster_faulted`] with node runs submitted to `pool`. The recovery
/// phases stay sequential (phase 2 depends on phase 1's placement), but the
/// node runs inside each phase parallelize; determinism follows from
/// [`run_cluster_with`]'s ordered merge.
pub fn run_cluster_faulted_with(
    job: &JobSpec,
    strategy: PlacementStrategy,
    cfg: &ClusterConfig,
    failure: Option<&NodeFailure>,
    pool: &Pool,
) -> Result<ClusterOutcome, PlacementError> {
    let fires = failure
        .filter(|f| f.node < cfg.num_nodes && f.at_iteration < job.iterations);
    let Some(f) = fires else {
        // No failure (or it targets a node / iteration outside the run):
        // identical to the plain path.
        return Ok(ClusterOutcome {
            result: run_cluster_with(job, strategy, cfg, pool)?,
            failure: None,
            degraded: false,
        });
    };

    // Phase 1: the iterations completed before the node died.
    let pre = if f.at_iteration == 0 {
        let placement = place(job, cfg.num_nodes, strategy)?;
        let node_secs = vec![0.0; placement.nodes.len()];
        ClusterResult { placement, node_secs, makespan: 0.0 }
    } else {
        let done = JobSpec::new(job.name.clone(), job.rank_loads.clone(), f.at_iteration);
        run_cluster_with(&done, strategy, cfg, pool)?
    };

    // Phase 2: requeue the remaining iterations on the survivors, bounded
    // retries, each attempt paying the restart overhead.
    let remaining =
        JobSpec::new(job.name.clone(), job.rank_loads.clone(), job.iterations - f.at_iteration);
    let survivors = ClusterConfig { num_nodes: cfg.num_nodes - 1, ..*cfg };
    let mut retries_used = 0;
    while retries_used < f.max_retries {
        retries_used += 1;
        match run_cluster_with(&remaining, strategy, &survivors, pool) {
            Ok(rest) => {
                let makespan =
                    pre.makespan + retries_used as f64 * f.restart_secs + rest.makespan;
                return Ok(ClusterOutcome {
                    result: ClusterResult { makespan, ..rest },
                    failure: Some(NodeFailureRecord {
                        node: f.node,
                        at_iteration: f.at_iteration,
                        retries_used,
                        absorbed: true,
                    }),
                    degraded: false,
                });
            }
            // The survivors cannot host the gang (too few slots, or no
            // nodes left at all). Retrying cannot help a placement error,
            // but honour the bounded-retry contract before giving up.
            Err(_) => continue,
        }
    }
    Ok(ClusterOutcome {
        result: pre,
        failure: Some(NodeFailureRecord {
            node: f.node,
            at_iteration: f.at_iteration,
            retries_used,
            absorbed: false,
        }),
        degraded: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use simcore::SimRng;

    fn heavy_light_job() -> JobSpec {
        // 2 heavy + 6 light ranks on a 2-node cluster.
        JobSpec::new("hl", vec![0.32, 0.32, 0.08, 0.08, 0.08, 0.08, 0.08, 0.08], 5)
    }

    fn cfg(nodes: usize, hpc: bool) -> ClusterConfig {
        ClusterConfig { num_nodes: nodes, hpcsched_nodes: hpc, ..Default::default() }
    }

    #[test]
    fn smt_aware_beats_round_robin_on_skewed_jobs() {
        let job = heavy_light_job();
        let rr = run_cluster(&job, PlacementStrategy::RoundRobin, &cfg(2, true)).expect("fits");
        let smt = run_cluster(&job, PlacementStrategy::SmtAware, &cfg(2, true)).expect("fits");
        assert!(
            smt.makespan <= rr.makespan * 1.001,
            "smt {} vs rr {}",
            smt.makespan,
            rr.makespan
        );
    }

    #[test]
    fn hpcsched_nodes_beat_cfs_nodes_for_any_placement() {
        let job = heavy_light_job();
        for s in [PlacementStrategy::RoundRobin, PlacementStrategy::GreedyLpt, PlacementStrategy::SmtAware] {
            let cfs = run_cluster(&job, s, &cfg(2, false)).expect("fits");
            let hpc = run_cluster(&job, s, &cfg(2, true)).expect("fits");
            assert!(
                hpc.makespan <= cfs.makespan * 1.001,
                "{s:?}: hpc {} vs cfs {}",
                hpc.makespan,
                cfs.makespan
            );
        }
    }

    #[test]
    fn makespan_includes_network_component() {
        let job = JobSpec::new("tiny", vec![0.05; 4], 10);
        let mut c = cfg(1, true);
        c.internode_latency = 0.01;
        let r = run_cluster(&job, PlacementStrategy::GreedyLpt, &c).expect("fits");
        assert!(r.makespan >= r.node_secs[0] + 0.1 - 1e-9, "10 barriers × 10ms");
    }

    #[test]
    fn random_jobs_run_end_to_end() {
        let mut rng = SimRng::seed_from_u64(9);
        let job = JobSpec::random("rand", 12, 3, &mut rng);
        let r = run_cluster(&job, PlacementStrategy::SmtAware, &cfg(3, true)).expect("fits");
        assert!(r.placement.is_valid(&job));
        assert_eq!(r.node_secs.len(), 3);
        assert!(r.makespan > 0.0);
    }

    #[test]
    fn oversubscribed_cluster_is_an_error() {
        let job = JobSpec::new("big", vec![0.05; 12], 2);
        assert_eq!(
            run_cluster(&job, PlacementStrategy::GreedyLpt, &cfg(2, true)).unwrap_err(),
            PlacementError::DoesNotFit { ranks: 12, slots: 8 },
        );
    }

    #[test]
    fn node_failure_absorbed_when_survivors_fit() {
        // 6 ranks on 3 nodes; losing one still leaves 8 slots.
        let job = JobSpec::new("j", vec![0.05; 6], 6);
        let f = NodeFailure { node: 1, at_iteration: 3, max_retries: 2, restart_secs: 0.5 };
        let out = run_cluster_faulted(&job, PlacementStrategy::GreedyLpt, &cfg(3, true), Some(&f))
            .expect("fits");
        assert!(!out.degraded);
        let rec = out.failure.expect("failure fired");
        assert!(rec.absorbed);
        assert_eq!(rec.retries_used, 1);
        let clean = run_cluster(&job, PlacementStrategy::GreedyLpt, &cfg(3, true)).unwrap();
        assert!(
            out.result.makespan > clean.makespan + f.restart_secs - 1e-9,
            "recovery pays at least the restart overhead: {} vs {}",
            out.result.makespan,
            clean.makespan
        );
    }

    #[test]
    fn node_failure_degrades_when_survivors_cannot_fit() {
        // 8 ranks exactly fill 2 nodes; the survivor alone has 4 slots.
        let job = JobSpec::new("j", vec![0.05; 8], 6);
        let f = NodeFailure { node: 0, at_iteration: 2, max_retries: 3, restart_secs: 0.5 };
        let out = run_cluster_faulted(&job, PlacementStrategy::GreedyLpt, &cfg(2, true), Some(&f))
            .expect("initial placement fits");
        assert!(out.degraded);
        let rec = out.failure.expect("failure fired");
        assert!(!rec.absorbed);
        assert_eq!(rec.retries_used, 3, "bounded retries exhausted");
        // Partial result covers the 2 pre-failure iterations.
        assert!(out.result.makespan > 0.0);
    }

    #[test]
    fn single_node_cluster_failure_never_panics() {
        let job = JobSpec::new("j", vec![0.05; 4], 4);
        let f = NodeFailure { node: 0, at_iteration: 1, max_retries: 2, restart_secs: 0.1 };
        let out = run_cluster_faulted(&job, PlacementStrategy::RoundRobin, &cfg(1, true), Some(&f))
            .expect("initial placement fits");
        assert!(out.degraded, "zero survivors can never absorb");
    }

    #[test]
    fn parallel_cluster_run_is_bit_identical_to_serial() {
        let job = heavy_light_job();
        let c = cfg(2, true);
        let serial = run_cluster(&job, PlacementStrategy::SmtAware, &c).expect("fits");
        for threads in [2, 4, 8] {
            let par = run_cluster_with(&job, PlacementStrategy::SmtAware, &c, &Pool::new(threads))
                .expect("fits");
            assert_eq!(par.node_secs, serial.node_secs, "threads={threads}");
            assert_eq!(par.makespan, serial.makespan, "threads={threads}");
        }
    }

    #[test]
    fn parallel_faulted_run_is_bit_identical_to_serial() {
        let job = JobSpec::new("j", vec![0.05; 6], 6);
        let f = NodeFailure { node: 1, at_iteration: 3, max_retries: 2, restart_secs: 0.5 };
        let c = cfg(3, true);
        let serial =
            run_cluster_faulted(&job, PlacementStrategy::GreedyLpt, &c, Some(&f)).expect("fits");
        let par = run_cluster_faulted_with(
            &job,
            PlacementStrategy::GreedyLpt,
            &c,
            Some(&f),
            &Pool::new(4),
        )
        .expect("fits");
        assert_eq!(par.result.makespan, serial.result.makespan);
        assert_eq!(par.result.node_secs, serial.result.node_secs);
        assert_eq!(par.degraded, serial.degraded);
    }

    #[test]
    fn out_of_range_failure_matches_plain_run() {
        let job = heavy_light_job();
        let f = NodeFailure { node: 7, at_iteration: 1, max_retries: 1, restart_secs: 0.1 };
        let out = run_cluster_faulted(&job, PlacementStrategy::SmtAware, &cfg(2, true), Some(&f))
            .expect("fits");
        let plain = run_cluster(&job, PlacementStrategy::SmtAware, &cfg(2, true)).unwrap();
        assert!(out.failure.is_none());
        assert_eq!(out.result.makespan, plain.makespan, "bit-identical to plain run");
    }
}
