//! Cluster-level scheduling over HPCSched nodes.
//!
//! The paper's future work (§VI): *"we plan to expand our solution at
//! cluster level … there is another level of load balancing which consists
//! of assigning the correct group of tasks to each node (gang scheduling)
//! considering that the local scheduler (in our case HPCSched) is able to
//! dynamically assign more or less hardware resource to each task."*
//!
//! This crate builds that layer:
//!
//! * [`job`] — a gang-scheduled MPI job: per-rank load estimates;
//! * [`placement`] — gang placement strategies: naive round-robin, classic
//!   greedy LPT bin-packing, and **SMT-aware** placement that knows the
//!   local HPCSched can absorb intra-core imbalance up to the capacity of
//!   the ±2 hardware-priority range;
//! * [`node`] — per-node execution: each node runs a *real* `schedsim`
//!   kernel (with or without the HPC class) over its assigned ranks;
//! * [`sim`] — the cluster run: for barrier-synchronized SPMD jobs, nodes
//!   execute independently and the job completes when the slowest node
//!   does (plus an allreduce latency per iteration) — the standard
//!   bulk-synchronous approximation.

pub mod job;
pub mod node;
pub mod placement;
pub mod sim;

pub use job::JobSpec;
pub use node::{
    run_node, run_node_sched, run_node_traced, static_prios, LocalSched, NodeRun, TracedNodeRun,
};
pub use placement::{place, Placement, PlacementError, PlacementStrategy};
pub use sim::{
    run_cluster, run_cluster_faulted, run_cluster_faulted_with, run_cluster_with, ClusterConfig,
    ClusterOutcome, ClusterResult, NodeFailure, NodeFailureRecord,
};
