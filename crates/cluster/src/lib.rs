//! Cluster-level scheduling over HPCSched nodes.
//!
//! The paper's future work (§VI): *"we plan to expand our solution at
//! cluster level … there is another level of load balancing which consists
//! of assigning the correct group of tasks to each node (gang scheduling)
//! considering that the local scheduler (in our case HPCSched) is able to
//! dynamically assign more or less hardware resource to each task."*
//!
//! This crate builds that layer:
//!
//! * [`job`] — a gang-scheduled MPI job: per-rank load estimates;
//! * [`placement`] — gang placement strategies: naive round-robin, classic
//!   greedy LPT bin-packing, **SMT-aware** placement that knows the
//!   local HPCSched can absorb intra-core imbalance up to the capacity of
//!   the ±2 hardware-priority range, and **NUMA-aware** placement that
//!   additionally packs gangs inside one NUMA node of a heterogeneous
//!   catalog ([`place_on`]);
//! * [`shape`] — heterogeneous node catalogs: per-node scheduling-domain
//!   trees ([`power5::Topology`]) and relative speed factors;
//! * [`node`] — per-node execution: each node runs a *real* `schedsim`
//!   kernel (with or without the HPC class) over its assigned ranks, on
//!   its own topology when the catalog is heterogeneous;
//! * [`sim`] — the cluster run: for barrier-synchronized SPMD jobs, nodes
//!   execute independently and the job completes when the slowest node
//!   does (plus an allreduce latency per iteration) — the standard
//!   bulk-synchronous approximation.

pub mod job;
pub mod node;
pub mod placement;
pub mod shape;
pub mod sim;

pub use job::JobSpec;
pub use node::{
    run_node, run_node_on, run_node_sched, run_node_traced, run_node_traced_on, static_prios,
    try_run_node_on, try_run_node_traced_on, LocalSched, NodeRun, TracedNodeRun,
};
pub use placement::{place, place_on, Placement, PlacementError, PlacementStrategy};
pub use shape::{NodeShape, TopoPreset};
pub use sim::{
    run_cluster, run_cluster_faulted, run_cluster_faulted_with, run_cluster_with, ClusterConfig,
    ClusterOutcome, ClusterResult, NodeFailure, NodeFailureRecord,
};
