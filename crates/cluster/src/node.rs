//! Per-node execution: run one node's assigned ranks on a real simulated
//! kernel and measure the node's completion time.
//!
//! # Purity contract
//!
//! Every entry point here ([`run_node`], [`run_node_sched`],
//! [`run_node_traced`], and their shape-aware `_on` twins) is a *pure
//! function* of `(loads, iterations, sched, seed, shape)`: the kernel, MPI
//! fabric, and barrier gang are constructed fresh
//! inside the call, nothing escapes, and no global mutable state is read or
//! written. That is what lets `cluster::sim` and `batchsim` submit node runs
//! to [`simcore::Pool`] from any thread — the result depends only on the
//! arguments, never on which thread ran it or when.

use crate::shape::NodeShape;
use mpisim::{Mpi, MpiConfig};
use power5::{CpuId, HwPriority};
use schedsim::{
    Kernel, KernelBuilder, SchedError, SchedPolicy, SharedSink, SpawnOptions, TaskId, TraceRecord,
};
use simcore::SimDuration;
use telemetry::MetricsSnapshot;
use workloads::synthetic::BarrierGang;

/// The node-local scheduler a job's ranks run under — the three regimes the
/// paper compares, at per-node granularity.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum LocalSched {
    /// Plain CFS without the HPC class: the "Linux-like" baseline.
    Cfs,
    /// Fixed hardware priorities derived from the load estimate at spawn
    /// (heavy ranks HIGH, the rest MEDIUM) — the paper's earlier static
    /// prioritization, with no dynamic rebalancing.
    Static,
    /// The full HPC scheduling class with dynamic priority balancing.
    Hpc,
    /// The HPC scheduling class driven by a named
    /// [`schedsim::policies::registry`] balancing policy (the `--policy`
    /// CLI axis, reaching the whole zoo).
    Policy(&'static str),
}

impl LocalSched {
    pub const ALL: [LocalSched; 3] = [LocalSched::Cfs, LocalSched::Static, LocalSched::Hpc];

    pub fn label(self) -> &'static str {
        match self {
            LocalSched::Cfs => "cfs",
            LocalSched::Static => "static",
            LocalSched::Hpc => "hpc",
            LocalSched::Policy(p) => p,
        }
    }

    /// Parse a CLI label; accepts the `linux` alias for [`LocalSched::Cfs`].
    /// Labels that are not one of the three builtin regimes resolve through
    /// the policy registry (builtin names win: `static` is the pinned-prio
    /// CFS regime here, not the zoo's placement-only policy).
    pub fn parse(s: &str) -> Option<LocalSched> {
        match s {
            "cfs" | "linux" => Some(LocalSched::Cfs),
            "static" => Some(LocalSched::Static),
            "hpc" => Some(LocalSched::Hpc),
            other => schedsim::policies::canonical(other).map(LocalSched::Policy),
        }
    }
}

impl simcore::snapshot::Snapshot for LocalSched {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        // The canonical label is the wire form: `parse` re-interns policy
        // names through the registry, so `Policy(&'static str)` survives
        // serialization without a second name table.
        w.put_str(self.label());
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        let label = r.get_str()?;
        LocalSched::parse(&label)
            .ok_or(simcore::snapshot::SnapshotError::Malformed("unknown LocalSched label"))
    }
}

/// Static hardware priorities for a slot-load vector: ranks within 1% of
/// the heaviest get HIGH, everyone else MEDIUM (mirrors the static mode of
/// the MetBench experiments).
pub fn static_prios(loads: &[f64]) -> Vec<HwPriority> {
    let max = loads.iter().cloned().fold(0.0_f64, f64::max);
    loads
        .iter()
        .map(|&l| if l >= 0.99 * max { HwPriority::HIGH } else { HwPriority::MEDIUM })
        .collect()
}

/// Result of one node's run.
#[derive(Clone, Debug)]
pub struct NodeRun {
    pub exec_secs: f64,
    /// Final hardware priority per slot.
    pub final_prios: Vec<u8>,
}

/// A node run with its full kernel trace and telemetry snapshot attached,
/// for conformance checking of batch-scheduled jobs.
#[derive(Clone, Debug)]
pub struct TracedNodeRun {
    pub run: NodeRun,
    pub records: Vec<TraceRecord>,
    pub metrics: MetricsSnapshot,
}

/// Run `loads` (one per CPU slot, in slot order) for `iterations`
/// barrier-synchronized iterations on a fresh node.
// PURITY-ROOT: pool task closures call this; result must be a pure
// function of (loads, iterations, hpc, seed).
pub fn run_node(loads: &[f64], iterations: u32, hpc: bool, seed: u64) -> NodeRun {
    let sched = if hpc { LocalSched::Hpc } else { LocalSched::Cfs };
    run_node_sched(loads, iterations, sched, seed)
}

/// [`run_node`] generalized over the node-local scheduler modes.
// PURITY-ROOT: the parallel-fleet entry point (DESIGN.md §11).
pub fn run_node_sched(loads: &[f64], iterations: u32, sched: LocalSched, seed: u64) -> NodeRun {
    // INVARIANT: panicking wrapper by documented contract — the batch and
    // cluster drivers construct slot vectors ≤ 4 and builtin scheds by
    // construction; fallible callers (CLI-fed configs) use try_run_node_sched.
    try_run_node_sched(loads, iterations, sched, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_node_sched`]: rejects a slot vector that does not fit the
/// node and an unregistered [`LocalSched::Policy`] name as typed
/// [`SchedError`]s instead of panicking.
pub fn try_run_node_sched(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
) -> Result<NodeRun, SchedError> {
    Ok(try_run_node_impl(loads, iterations, sched, seed, None, &NodeShape::default())?.0)
}

/// [`run_node_sched`] generalized over a [`NodeShape`]: the kernel runs the
/// shape's scheduling-domain tree (slot capacity comes from the tree, so a
/// 2-socket node takes 8 ranks and a wide-SMT core 4), and every load is
/// divided by the node's relative speed. The default shape reproduces
/// [`run_node_sched`] exactly — dividing by speed 1.0 is the identity.
// PURITY-ROOT: shape-aware parallel-fleet entry point; result must be a
// pure function of (loads, iterations, sched, seed, shape).
pub fn run_node_on(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
    shape: &NodeShape,
) -> NodeRun {
    // INVARIANT: panicking wrapper by documented contract; see
    // `run_node_sched`. Fallible callers use `try_run_node_on`.
    try_run_node_on(loads, iterations, sched, seed, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_node_on`].
pub fn try_run_node_on(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
    shape: &NodeShape,
) -> Result<NodeRun, SchedError> {
    Ok(try_run_node_impl(loads, iterations, sched, seed, None, shape)?.0)
}

/// Traced [`run_node_on`] — the shape-aware twin of [`run_node_traced`].
// PURITY-ROOT: traced shape-aware parallel-fleet entry point.
pub fn run_node_traced_on(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
    shape: &NodeShape,
) -> TracedNodeRun {
    // INVARIANT: panicking wrapper by documented contract; see
    // `run_node_sched`. Fallible callers use `try_run_node_traced_on`.
    try_run_node_traced_on(loads, iterations, sched, seed, shape).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_node_traced_on`].
pub fn try_run_node_traced_on(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
    shape: &NodeShape,
) -> Result<TracedNodeRun, SchedError> {
    let sink = SharedSink::new();
    let (run, metrics) =
        try_run_node_impl(loads, iterations, sched, seed, Some(sink.clone()), shape)?;
    Ok(TracedNodeRun { run, records: sink.snapshot(), metrics })
}

/// Like [`run_node_sched`], but with a trace sink attached and the
/// kernel's telemetry snapshotted, so the caller can conformance-check the
/// node-local schedule (C001–C005).
// PURITY-ROOT: traced variant of the parallel-fleet entry point.
pub fn run_node_traced(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
) -> TracedNodeRun {
    // INVARIANT: panicking wrapper by documented contract; see
    // `run_node_sched`. Fallible callers use `try_run_node_traced`.
    try_run_node_traced(loads, iterations, sched, seed).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`run_node_traced`].
pub fn try_run_node_traced(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
) -> Result<TracedNodeRun, SchedError> {
    let sink = SharedSink::new();
    let (run, metrics) =
        try_run_node_impl(loads, iterations, sched, seed, Some(sink.clone()), &NodeShape::default())?;
    Ok(TracedNodeRun { run, records: sink.snapshot(), metrics })
}

// Compile-time guard for the purity contract's `Send` half: node-run
// results must cross pool-thread boundaries.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<NodeRun>();
    assert_send::<TracedNodeRun>();
};

fn try_run_node_impl(
    loads: &[f64],
    iterations: u32,
    sched: LocalSched,
    seed: u64,
    sink: Option<SharedSink>,
    shape: &NodeShape,
) -> Result<(NodeRun, MetricsSnapshot), SchedError> {
    let slots = shape.topology.num_cpus();
    if loads.is_empty() || loads.len() > slots {
        return Err(SchedError::InvalidTopology(format!(
            "a node has {slots} CPU slots, got a {}-slot load vector",
            loads.len()
        )));
    }
    let builder = KernelBuilder::new().topology(shape.topology.clone()).seed(seed);
    let mut kernel: Kernel = match sched {
        LocalSched::Hpc => builder.try_build()?,
        LocalSched::Policy(p) => builder.policy(p).try_build()?,
        LocalSched::Cfs | LocalSched::Static => builder.without_hpc_class().try_build()?,
    };
    if let Some(sink) = sink {
        kernel.observe(Box::new(sink));
    }
    let policy = match sched {
        LocalSched::Hpc | LocalSched::Policy(_) => SchedPolicy::Hpc,
        LocalSched::Cfs | LocalSched::Static => SchedPolicy::Normal,
    };
    let prios = match sched {
        LocalSched::Static => Some(static_prios(loads)),
        _ => None,
    };
    let mpi = Mpi::new(loads.len(), MpiConfig::default());
    let mut ids: Vec<TaskId> = Vec::with_capacity(loads.len());
    for (slot, &load) in loads.iter().enumerate() {
        // A faster node finishes the same work sooner: scale the per-slot
        // compute down by the relative speed (identity at speed 1.0).
        let load = load / shape.speed;
        ids.push(kernel.try_spawn(
            format!("slot{slot}"),
            policy,
            Box::new(BarrierGang::new(mpi.clone(), slot, load, iterations)),
            SpawnOptions {
                affinity: Some(vec![CpuId(slot)]),
                hw_prio: prios.as_ref().map(|p| p[slot]),
                ..Default::default()
            },
        )?);
    }
    let end = kernel
        .run_until_exited(&ids, SimDuration::from_secs(36_000))
        // INVARIANT: the 10-simulated-hour deadline is three orders of
        // magnitude above any real node run; hitting it is a simulator bug,
        // not a caller error, so it stays a panic even on the try_ path.
        .expect("node run finishes");
    let run = NodeRun {
        exec_secs: end.as_secs_f64(),
        final_prios: ids.iter().map(|&t| kernel.task(t).hw_prio.value()).collect(),
    };
    let metrics = kernel.metrics_registry().snapshot();
    Ok((run, metrics))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_node_runs_at_smt_speed() {
        let r = run_node(&[0.08, 0.08, 0.08, 0.08], 5, true, 1);
        // 0.08 / 0.8 per iteration × 5.
        assert!((0.48..0.55).contains(&r.exec_secs), "exec {}", r.exec_secs);
        assert!(r.final_prios.iter().all(|&p| p == 4), "no boost needed");
    }

    #[test]
    fn imbalanced_node_gets_boosted_under_hpc() {
        let imb = [0.32, 0.08, 0.32, 0.08];
        let base = run_node(&imb, 5, false, 1);
        let hpc = run_node(&imb, 5, true, 1);
        assert!(hpc.exec_secs < base.exec_secs * 0.95, "{} vs {}", hpc.exec_secs, base.exec_secs);
        assert_eq!(hpc.final_prios[0], 6, "heavy slot boosted: {:?}", hpc.final_prios);
    }

    #[test]
    fn partial_node_runs() {
        let r = run_node(&[0.1, 0.1], 3, true, 1);
        assert!(r.exec_secs > 0.0);
        assert_eq!(r.final_prios.len(), 2);
    }

    #[test]
    fn static_mode_pins_heavy_ranks_high() {
        let prios = static_prios(&[0.32, 0.08, 0.32, 0.08]);
        assert_eq!(
            prios,
            vec![HwPriority::HIGH, HwPriority::MEDIUM, HwPriority::HIGH, HwPriority::MEDIUM]
        );
        let r = run_node_sched(&[0.32, 0.08, 0.32, 0.08], 3, LocalSched::Static, 1);
        assert_eq!(r.final_prios, vec![6, 4, 6, 4], "static prios never move");
    }

    #[test]
    fn oversized_slot_vector_is_a_typed_error() {
        let err = try_run_node_sched(&[0.1; 5], 2, LocalSched::Hpc, 1);
        assert!(matches!(err, Err(SchedError::InvalidTopology(_))), "got {err:?}");
        let err = try_run_node_sched(&[], 2, LocalSched::Cfs, 1);
        assert!(matches!(err, Err(SchedError::InvalidTopology(_))), "got {err:?}");
    }

    #[test]
    fn policy_sched_runs_and_parses() {
        assert_eq!(LocalSched::parse("worksteal"), Some(LocalSched::Policy("worksteal")));
        assert_eq!(LocalSched::parse("static"), Some(LocalSched::Static), "builtin name wins");
        assert_eq!(LocalSched::parse("nope"), None);
        let r = run_node_sched(&[0.32, 0.08], 3, LocalSched::Policy("ss"), 1);
        assert!(r.exec_secs > 0.0);
        assert_eq!(r.final_prios.len(), 2);
    }

    #[test]
    fn unknown_policy_name_is_a_typed_error() {
        let err = try_run_node_sched(&[0.1], 2, LocalSched::Policy("lottery"), 1);
        assert!(matches!(err, Err(SchedError::UnknownPolicy(_))), "got {err:?}");
    }

    #[test]
    fn default_shape_delegation_is_exact() {
        let loads = [0.32, 0.08, 0.16, 0.08];
        let legacy = run_node_sched(&loads, 4, LocalSched::Hpc, 7);
        let on = run_node_on(&loads, 4, LocalSched::Hpc, 7, &NodeShape::default());
        assert_eq!(legacy.exec_secs, on.exec_secs, "speed 1.0 must be the identity");
        assert_eq!(legacy.final_prios, on.final_prios);
    }

    #[test]
    fn wide_node_takes_more_ranks_than_the_reference() {
        // A 2-socket shape offers 8 slots; the same vector overflows the
        // reference node.
        let shape = crate::shape::TopoPreset::TwoSocket.shape(1.0);
        let loads = [0.08; 8];
        let r = run_node_on(&loads, 3, LocalSched::Hpc, 1, &shape);
        assert_eq!(r.final_prios.len(), 8);
        let err = try_run_node_sched(&loads, 3, LocalSched::Hpc, 1);
        assert!(matches!(err, Err(SchedError::InvalidTopology(_))), "got {err:?}");
        let err = try_run_node_on(&loads, 3, LocalSched::Hpc, 1, &NodeShape::default());
        assert!(matches!(err, Err(SchedError::InvalidTopology(ref m)) if m.contains("4 CPU slots")),
            "got {err:?}");
    }

    #[test]
    fn faster_node_finishes_sooner() {
        let loads = [0.2, 0.2, 0.2, 0.2];
        let base = run_node_on(&loads, 4, LocalSched::Hpc, 1, &NodeShape::default());
        let fast = run_node_on(
            &loads,
            4,
            LocalSched::Hpc,
            1,
            &NodeShape::new(power5::Topology::openpower_710(), 2.0),
        );
        assert!(
            fast.exec_secs < base.exec_secs * 0.6,
            "2x node: {} vs {}",
            fast.exec_secs,
            base.exec_secs
        );
    }

    #[test]
    fn wide_smt_shape_runs_under_the_analytic_model() {
        let shape = crate::shape::TopoPreset::WideSmt.shape(1.0);
        let r = run_node_on(&[0.1, 0.1, 0.1, 0.1], 3, LocalSched::Hpc, 1, &shape);
        assert!(r.exec_secs > 0.0);
        assert_eq!(r.final_prios.len(), 4);
    }

    #[test]
    fn traced_run_matches_untraced_and_carries_records() {
        let plain = run_node_sched(&[0.1, 0.05], 3, LocalSched::Hpc, 9);
        let traced = run_node_traced(&[0.1, 0.05], 3, LocalSched::Hpc, 9);
        assert_eq!(plain.exec_secs, traced.run.exec_secs, "observer must not perturb");
        assert!(!traced.records.is_empty());
        assert_eq!(traced.metrics.counter("kernel.task_exits"), 2);
    }
}
