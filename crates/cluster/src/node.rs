//! Per-node execution: run one node's assigned ranks on a real simulated
//! kernel and measure the node's completion time.

use hpcsched::HpcKernelBuilder;
use mpisim::{Mpi, MpiConfig};
use power5::CpuId;
use schedsim::{Kernel, SchedPolicy, SpawnOptions, TaskId};
use simcore::SimDuration;
use workloads::synthetic::BarrierGang;

/// Result of one node's run.
#[derive(Clone, Debug)]
pub struct NodeRun {
    pub exec_secs: f64,
    /// Final hardware priority per slot.
    pub final_prios: Vec<u8>,
}

/// Run `loads` (one per CPU slot, in slot order) for `iterations`
/// barrier-synchronized iterations on a fresh node.
pub fn run_node(loads: &[f64], iterations: u32, hpc: bool, seed: u64) -> NodeRun {
    assert!(!loads.is_empty() && loads.len() <= 4, "a node has 4 slots");
    let builder = HpcKernelBuilder::new().seed(seed);
    let mut kernel: Kernel =
        if hpc { builder.build() } else { builder.without_hpc_class().build() };
    let policy = if hpc { SchedPolicy::Hpc } else { SchedPolicy::Normal };
    let mpi = Mpi::new(loads.len(), MpiConfig::default());
    let ids: Vec<TaskId> = loads
        .iter()
        .enumerate()
        .map(|(slot, &load)| {
            kernel.spawn(
                format!("slot{slot}"),
                policy,
                Box::new(BarrierGang::new(mpi.clone(), slot, load, iterations)),
                SpawnOptions { affinity: Some(vec![CpuId(slot)]), ..Default::default() },
            )
        })
        .collect();
    let end = kernel
        .run_until_exited(&ids, SimDuration::from_secs(36_000))
        .expect("node run finishes");
    NodeRun {
        exec_secs: end.as_secs_f64(),
        final_prios: ids.iter().map(|&t| kernel.task(t).hw_prio.value()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_node_runs_at_smt_speed() {
        let r = run_node(&[0.08, 0.08, 0.08, 0.08], 5, true, 1);
        // 0.08 / 0.8 per iteration × 5.
        assert!((0.48..0.55).contains(&r.exec_secs), "exec {}", r.exec_secs);
        assert!(r.final_prios.iter().all(|&p| p == 4), "no boost needed");
    }

    #[test]
    fn imbalanced_node_gets_boosted_under_hpc() {
        let imb = [0.32, 0.08, 0.32, 0.08];
        let base = run_node(&imb, 5, false, 1);
        let hpc = run_node(&imb, 5, true, 1);
        assert!(hpc.exec_secs < base.exec_secs * 0.95, "{} vs {}", hpc.exec_secs, base.exec_secs);
        assert_eq!(hpc.final_prios[0], 6, "heavy slot boosted: {:?}", hpc.final_prios);
    }

    #[test]
    fn partial_node_runs() {
        let r = run_node(&[0.1, 0.1], 3, true, 1);
        assert!(r.exec_secs > 0.0);
        assert_eq!(r.final_prios.len(), 2);
    }
}
