//! Gang placement strategies.
//!
//! A placement assigns each rank of a job to a node slot; within a node,
//! slot order is CPU order (slots 0,1 share core 0; slots 2,3 share
//! core 1 on the POWER5 node). The interesting strategy is the SMT-aware
//! one: it models what the *local* HPCSched can recover, so it deliberately
//! co-locates a heavy rank with a light one on the same core — the
//! combination the hardware-priority boost exploits best.

use crate::job::JobSpec;
use crate::shape::NodeShape;
use power5::CpuId;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Ranks per node (one per logical CPU of the paper's POWER5 node).
pub const NODE_SLOTS: usize = 4;

/// Why a placement could not be computed. Cluster-level callers hit this
/// at runtime (a job queued against a shrunken, partially-failed cluster),
/// so it is an error value, not a panic.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlacementError {
    /// No nodes to place on (zero configured, or every node failed).
    NoNodes,
    /// The job needs more slots than the available nodes offer.
    DoesNotFit { ranks: usize, slots: usize },
}

impl fmt::Display for PlacementError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PlacementError::NoNodes => write!(f, "no nodes available"),
            PlacementError::DoesNotFit { ranks, slots } => {
                write!(f, "job does not fit: {ranks} ranks on {slots} slots")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// How to spread a job's ranks over the nodes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PlacementStrategy {
    /// Rank i on node i mod n — what `mpirun` does by default.
    RoundRobin,
    /// Greedy longest-processing-time bin packing on total node load
    /// (classic makespan heuristic, SMT-oblivious).
    GreedyLpt,
    /// Greedy placement minimizing *estimated node completion time under
    /// the local HPCSched*, with heavy/light core pairing inside the node.
    SmtAware,
    /// [`PlacementStrategy::SmtAware`] plus a NUMA-distance penalty: a
    /// candidate node whose occupied slots would span NUMA nodes has its
    /// estimated time scaled by the worst pairwise distance (relative to
    /// local), so gangs pack inside one NUMA node when the catalog allows.
    NumaAware,
}

/// A computed placement: `nodes[n]` lists rank indices in CPU-slot order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    pub strategy: PlacementStrategy,
    pub nodes: Vec<Vec<usize>>,
}

impl simcore::snapshot::Snapshot for PlacementStrategy {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put_u8(match self {
            PlacementStrategy::RoundRobin => 0,
            PlacementStrategy::GreedyLpt => 1,
            PlacementStrategy::SmtAware => 2,
            PlacementStrategy::NumaAware => 3,
        });
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        match r.get_u8()? {
            0 => Ok(PlacementStrategy::RoundRobin),
            1 => Ok(PlacementStrategy::GreedyLpt),
            2 => Ok(PlacementStrategy::SmtAware),
            3 => Ok(PlacementStrategy::NumaAware),
            _ => Err(simcore::snapshot::SnapshotError::Malformed("bad PlacementStrategy tag")),
        }
    }
}

impl simcore::snapshot::Snapshot for Placement {
    fn snapshot(&self, w: &mut simcore::snapshot::SnapshotWriter) {
        w.put(&self.strategy);
        w.put(&self.nodes);
    }
    fn restore(
        r: &mut simcore::snapshot::SnapshotReader<'_>,
    ) -> Result<Self, simcore::snapshot::SnapshotError> {
        Ok(Placement { strategy: r.get()?, nodes: r.get()? })
    }
}

impl Placement {
    /// Total load assigned to a node.
    pub fn node_load(&self, job: &JobSpec, node: usize) -> f64 {
        self.nodes[node].iter().map(|&r| job.rank_loads[r]).sum()
    }

    /// Every rank appears exactly once (validity check).
    pub fn is_valid(&self, job: &JobSpec) -> bool {
        let mut seen = vec![false; job.ranks()];
        for node in &self.nodes {
            if node.len() > NODE_SLOTS {
                return false;
            }
            for &r in node {
                if r >= seen.len() || seen[r] {
                    return false;
                }
                seen[r] = true;
            }
        }
        seen.into_iter().all(|s| s)
    }
}

/// Estimated per-iteration completion time of one core running loads
/// `a` and `b` (either may be absent) under the local scheduler.
///
/// Speeds mirror the chip calibration for compute-bound code: equal
/// priority 0.8 each; boosted pair (diff 2) 0.92 / 0.248. The local
/// scheduler converges to whichever configuration is faster.
pub fn core_time(a: Option<f64>, b: Option<f64>, hpc: bool) -> f64 {
    match (a, b) {
        (None, None) => 0.0,
        (Some(x), None) | (None, Some(x)) => x / 0.8, // sibling idle-spins
        (Some(x), Some(y)) => {
            let (hi, lo) = if x >= y { (x, y) } else { (y, x) };
            let balanced = hi / 0.8;
            if !hpc {
                return balanced;
            }
            let boosted = (hi / 0.92).max(lo / 0.248);
            balanced.min(boosted)
        }
    }
}

/// Estimated per-iteration completion of a node given its slot assignment
/// (slots 0,1 = core 0; slots 2,3 = core 1).
pub fn node_time(job: &JobSpec, slots: &[usize], hpc: bool) -> f64 {
    let load = |i: usize| slots.get(i).map(|&r| job.rank_loads[r]);
    core_time(load(0), load(1), hpc).max(core_time(load(2), load(3), hpc))
}

/// Equal-share analytic estimate for a core wider than 2-way: `n` busy
/// contexts each get the k=3 decode-sharing throughput `3/(n+2)` (the
/// Table-I curve at share `1/n`), so the core finishes with its heaviest
/// load at that speed. Idle contexts snooze (no decode pressure).
pub fn wide_core_time(loads: &[f64]) -> f64 {
    if loads.is_empty() {
        return 0.0;
    }
    let heaviest = loads.iter().cloned().fold(0.0_f64, f64::max);
    heaviest * (loads.len() as f64 + 2.0) / 3.0
}

/// [`node_time`] generalized over a [`NodeShape`]: cores come from the
/// shape's scheduling-domain tree (pairwise decode calibration for ≤2-way
/// cores, the equal-share analytic curve for wider SMT), and the result is
/// divided by the node's relative speed.
pub fn node_time_on(job: &JobSpec, slots: &[usize], hpc: bool, shape: &NodeShape) -> f64 {
    let topo = &shape.topology;
    let load = |i: usize| slots.get(i).map(|&r| job.rank_loads[r]);
    let width = topo.max_smt_width().max(1);
    let mut worst = 0.0_f64;
    let mut base = 0;
    while base < topo.num_cpus() {
        let t = match width {
            1 => core_time(load(base), None, hpc),
            2 => core_time(load(base), load(base + 1), hpc),
            _ => {
                let busy: Vec<f64> = (0..width).filter_map(|i| load(base + i)).collect();
                wide_core_time(&busy)
            }
        };
        worst = worst.max(t);
        base += width;
    }
    worst / shape.speed
}

/// Compute a placement of `job` over `num_nodes` nodes, or say why it
/// cannot be done.
pub fn place(
    job: &JobSpec,
    num_nodes: usize,
    strategy: PlacementStrategy,
) -> Result<Placement, PlacementError> {
    if strategy == PlacementStrategy::NumaAware {
        // NUMA awareness needs the node shapes; on the uniform legacy path
        // every node is the reference single-NUMA box.
        return place_on(job, &vec![NodeShape::default(); num_nodes], strategy);
    }
    if num_nodes == 0 {
        return Err(PlacementError::NoNodes);
    }
    if job.ranks() > num_nodes * NODE_SLOTS {
        return Err(PlacementError::DoesNotFit {
            ranks: job.ranks(),
            slots: num_nodes * NODE_SLOTS,
        });
    }
    let nodes = match strategy {
        PlacementStrategy::RoundRobin => {
            let mut nodes = vec![Vec::new(); num_nodes];
            for r in 0..job.ranks() {
                nodes[r % num_nodes].push(r);
            }
            nodes
        }
        PlacementStrategy::GreedyLpt => {
            let mut order: Vec<usize> = (0..job.ranks()).collect();
            order.sort_by(|&a, &b| {
                job.rank_loads[b].total_cmp(&job.rank_loads[a]).then(a.cmp(&b))
            });
            let mut nodes = vec![Vec::new(); num_nodes];
            let mut loads = vec![0.0f64; num_nodes];
            for r in order {
                // Least-loaded node with a free slot; ties to lowest index.
                // INVARIANT: the fit check above guarantees ranks ≤ total
                // slots, so a free slot always exists at this point.
                let n = (0..num_nodes)
                    .filter(|&n| nodes[n].len() < NODE_SLOTS)
                    .min_by(|&a, &b| loads[a].total_cmp(&loads[b]).then(a.cmp(&b)))
                    .expect("job fits");
                nodes[n].push(r);
                loads[n] += job.rank_loads[r];
            }
            nodes
        }
        PlacementStrategy::SmtAware => {
            let mut order: Vec<usize> = (0..job.ranks()).collect();
            order.sort_by(|&a, &b| {
                job.rank_loads[b].total_cmp(&job.rank_loads[a]).then(a.cmp(&b))
            });
            let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
            for r in order {
                // Try the rank in every free slot of every node; keep the
                // assignment with the smallest resulting node time
                // (estimated under the local HPCSched), breaking ties
                // toward the emptier node to keep slots available.
                let mut best: Option<(f64, usize, usize)> = None; // (time, node, len)
                for (n, slots) in nodes.iter().enumerate() {
                    if slots.len() >= NODE_SLOTS {
                        continue;
                    }
                    let mut candidate = slots.clone();
                    candidate.push(r);
                    // Within a node, order heavy/light alternately so core
                    // pairs combine a heavy and a light rank.
                    candidate.sort_by(|&a, &b| job.rank_loads[b].total_cmp(&job.rank_loads[a]));
                    let paired = pair_heavy_light(&candidate);
                    let t = node_time(job, &paired, true);
                    let key = (t, slots.len());
                    if best.map(|(bt, _, bl)| key < (bt, bl)).unwrap_or(true) {
                        best = Some((t, n, slots.len()));
                    }
                }
                // INVARIANT: the fit check above guarantees ranks ≤ total
                // slots, so some node still had a free slot.
                let (_, n, _) = best.expect("job fits");
                nodes[n].push(r);
            }
            // Final intra-node ordering: heavy/light pairs per core.
            for slots in &mut nodes {
                slots.sort_by(|&a, &b| job.rank_loads[b].total_cmp(&job.rank_loads[a]));
                *slots = pair_heavy_light(slots);
            }
            nodes
        }
        // INVARIANT: delegated to `place_on` at the top of the function.
        PlacementStrategy::NumaAware => unreachable!("NumaAware delegates to place_on"),
    };
    Ok(Placement { strategy, nodes })
}

/// [`place`] generalized over a heterogeneous node catalog: each node
/// offers `shapes[n].slots()` CPU slots, effective loads are scaled by the
/// node's speed, and the SMT/NUMA-aware strategies estimate completion on
/// each node's actual scheduling-domain tree. On a uniform catalog of
/// default shapes every strategy reproduces [`place`] exactly.
pub fn place_on(
    job: &JobSpec,
    shapes: &[NodeShape],
    strategy: PlacementStrategy,
) -> Result<Placement, PlacementError> {
    if shapes.is_empty() {
        return Err(PlacementError::NoNodes);
    }
    let slots_of: Vec<usize> = shapes.iter().map(NodeShape::slots).collect();
    let total: usize = slots_of.iter().sum();
    if job.ranks() > total {
        return Err(PlacementError::DoesNotFit { ranks: job.ranks(), slots: total });
    }
    let num_nodes = shapes.len();
    let nodes = match strategy {
        PlacementStrategy::RoundRobin => {
            let mut nodes = vec![Vec::new(); num_nodes];
            for r in 0..job.ranks() {
                // Rank r goes to node r mod n, skipping nodes already full
                // (narrow nodes in a heterogeneous catalog fill early).
                // INVARIANT: the fit check above guarantees a free slot
                // exists, so the cyclic scan terminates.
                let mut n = r % num_nodes;
                while nodes[n].len() >= slots_of[n] {
                    n = (n + 1) % num_nodes;
                }
                nodes[n].push(r);
            }
            nodes
        }
        PlacementStrategy::GreedyLpt => {
            let mut order: Vec<usize> = (0..job.ranks()).collect();
            order.sort_by(|&a, &b| {
                job.rank_loads[b].total_cmp(&job.rank_loads[a]).then(a.cmp(&b))
            });
            let mut nodes = vec![Vec::new(); num_nodes];
            let mut loads = vec![0.0f64; num_nodes];
            for r in order {
                // Least *effective* load (total / speed) with a free slot;
                // ties to lowest index. Speed 1.0 divides out exactly, so
                // the uniform catalog reproduces `place`.
                let n = (0..num_nodes)
                    .filter(|&n| nodes[n].len() < slots_of[n])
                    .min_by(|&a, &b| {
                        (loads[a] / shapes[a].speed)
                            .total_cmp(&(loads[b] / shapes[b].speed))
                            .then(a.cmp(&b))
                    })
                    .expect("job fits");
                nodes[n].push(r);
                loads[n] += job.rank_loads[r];
            }
            nodes
        }
        PlacementStrategy::SmtAware | PlacementStrategy::NumaAware => {
            let numa = strategy == PlacementStrategy::NumaAware;
            let mut order: Vec<usize> = (0..job.ranks()).collect();
            order.sort_by(|&a, &b| {
                job.rank_loads[b].total_cmp(&job.rank_loads[a]).then(a.cmp(&b))
            });
            let mut nodes: Vec<Vec<usize>> = vec![Vec::new(); num_nodes];
            for r in order {
                let mut best: Option<(f64, usize, usize)> = None; // (time, node, len)
                for (n, slots) in nodes.iter().enumerate() {
                    if slots.len() >= slots_of[n] {
                        continue;
                    }
                    let mut candidate = slots.clone();
                    candidate.push(r);
                    candidate.sort_by(|&a, &b| job.rank_loads[b].total_cmp(&job.rank_loads[a]));
                    let paired = slot_order(&candidate, &shapes[n]);
                    let mut t = node_time_on(job, &paired, true, &shapes[n]);
                    if numa {
                        t *= numa_spread_penalty(paired.len(), &shapes[n]);
                    }
                    let key = (t, slots.len());
                    if best.map(|(bt, _, bl)| key < (bt, bl)).unwrap_or(true) {
                        best = Some((t, n, slots.len()));
                    }
                }
                // INVARIANT: the fit check above guarantees ranks ≤ total
                // slots, so some node still had a free slot.
                let (_, n, _) = best.expect("job fits");
                nodes[n].push(r);
            }
            for (n, slots) in nodes.iter_mut().enumerate() {
                slots.sort_by(|&a, &b| job.rank_loads[b].total_cmp(&job.rank_loads[a]));
                *slots = slot_order(slots, &shapes[n]);
            }
            nodes
        }
    };
    Ok(Placement { strategy, nodes })
}

/// Intra-node slot ordering for ranks sorted heaviest-first: heavy/light
/// pairing on 2-way cores (where decode arbitration rewards the mix);
/// heaviest-first otherwise (the equal-share wide-core model and 1-way
/// cores are order-insensitive).
fn slot_order(sorted: &[usize], shape: &NodeShape) -> Vec<usize> {
    if shape.topology.max_smt_width() == 2 {
        pair_heavy_light(sorted)
    } else {
        sorted.to_vec()
    }
}

/// Worst pairwise NUMA distance among a node's first `occupied` CPU slots,
/// relative to the local distance — 1.0 while a gang fits inside one NUMA
/// node, larger once it spans the boundary.
fn numa_spread_penalty(occupied: usize, shape: &NodeShape) -> f64 {
    let topo = &shape.topology;
    if occupied == 0 {
        return 1.0;
    }
    let node_of = |slot: usize| topo.numa_node_of(CpuId(slot));
    let local = topo.numa_distance(node_of(0), node_of(0));
    let mut worst = local;
    for a in 0..occupied {
        for b in (a + 1)..occupied {
            worst = worst.max(topo.numa_distance(node_of(a), node_of(b)));
        }
    }
    worst as f64 / local as f64
}

/// Given ranks sorted heaviest-first, order them into CPU slots so each
/// core gets (heaviest remaining, lightest remaining):
/// `[h0, l0, h1, l1]` — core 0 gets h0+l0, core 1 gets h1+l1.
fn pair_heavy_light(sorted: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(sorted.len());
    let mut lo = 0usize;
    let mut hi = sorted.len();
    while lo < hi {
        out.push(sorted[lo]);
        lo += 1;
        if lo < hi {
            hi -= 1;
            out.push(sorted[hi]);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::TopoPreset;
    use power5::Topology;

    fn job4x2() -> JobSpec {
        // Two heavy, six light ranks over two nodes.
        JobSpec::new("j", vec![0.4, 0.1, 0.4, 0.1, 0.1, 0.1, 0.1, 0.1], 10)
    }

    #[test]
    fn all_strategies_produce_valid_placements() {
        let job = job4x2();
        for s in [
            PlacementStrategy::RoundRobin,
            PlacementStrategy::GreedyLpt,
            PlacementStrategy::SmtAware,
            PlacementStrategy::NumaAware,
        ] {
            let p = place(&job, 2, s).expect("fits");
            assert!(p.is_valid(&job), "{s:?}: {p:?}");
        }
    }

    #[test]
    fn place_on_uniform_default_catalog_equals_place() {
        let job = job4x2();
        let shapes = vec![NodeShape::default(); 2];
        for s in [
            PlacementStrategy::RoundRobin,
            PlacementStrategy::GreedyLpt,
            PlacementStrategy::SmtAware,
        ] {
            assert_eq!(place_on(&job, &shapes, s).unwrap(), place(&job, 2, s).unwrap(), "{s:?}");
        }
    }

    #[test]
    fn round_robin_skips_full_narrow_nodes() {
        let job = JobSpec::new("j", vec![0.1; 5], 1);
        let shapes =
            vec![NodeShape::default(), NodeShape::new(Topology::single_core_st(), 1.0)];
        let p = place_on(&job, &shapes, PlacementStrategy::RoundRobin).expect("fits");
        assert!(p.is_valid(&job));
        assert_eq!(p.nodes[0], vec![0, 2, 3, 4], "single-slot node fills after one rank");
        assert_eq!(p.nodes[1], vec![1]);
    }

    #[test]
    fn lpt_prefers_the_faster_node() {
        // Equal total loads: the 2× node has half the effective load, so
        // LPT keeps feeding it until effective loads even out.
        let job = JobSpec::new("j", vec![0.2; 6], 1);
        let shapes = vec![
            NodeShape::default(),
            NodeShape::new(TopoPreset::TwoSocket.topology(), 2.0),
        ];
        let p = place_on(&job, &shapes, PlacementStrategy::GreedyLpt).expect("fits");
        assert!(p.is_valid(&job));
        assert!(
            p.nodes[1].len() == 2 * p.nodes[0].len(),
            "fast node carries twice the ranks: {:?}",
            p.nodes
        );
    }

    #[test]
    fn numa_aware_avoids_spanning_the_numa_boundary() {
        // One 2-NUMA 8-slot node plus one half-speed reference node, five
        // equal ranks. SmtAware packs all five into the big node (its
        // per-core estimate never moves); NumaAware spills the fifth to
        // the slow node rather than cross the NUMA boundary.
        let job = JobSpec::new("j", vec![0.1; 5], 10);
        let shapes = vec![TopoPreset::Numa.shape(1.0), TopoPreset::Openpower710.shape(0.5)];
        let smt = place_on(&job, &shapes, PlacementStrategy::SmtAware).expect("fits");
        assert!(smt.nodes[1].is_empty(), "{:?}", smt.nodes);
        let numa = place_on(&job, &shapes, PlacementStrategy::NumaAware).expect("fits");
        assert!(numa.is_valid(&job));
        assert_eq!(numa.nodes[0].len(), 4, "{:?}", numa.nodes);
        assert_eq!(numa.nodes[1].len(), 1, "{:?}", numa.nodes);
    }

    #[test]
    fn wide_core_equal_share_model() {
        assert_eq!(wide_core_time(&[]), 0.0);
        // Solo context on a snoozing wide core runs at full speed.
        assert!((wide_core_time(&[0.3]) - 0.3).abs() < 1e-12);
        // 4 busy contexts at 3/(4+2) = 0.5 each: heaviest 0.4 takes 0.8.
        assert!((wide_core_time(&[0.4, 0.1, 0.1, 0.1]) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn node_time_on_matches_legacy_for_the_default_shape() {
        let job = job4x2();
        let shape = NodeShape::default();
        for slots in [vec![0usize, 1, 2, 3], vec![0, 4], vec![2]] {
            for hpc in [true, false] {
                assert_eq!(
                    node_time_on(&job, &slots, hpc, &shape),
                    node_time(&job, &slots, hpc),
                    "{slots:?} hpc={hpc}"
                );
            }
        }
        let fast = NodeShape::new(Topology::openpower_710(), 1.25);
        let t = node_time_on(&job, &[0, 1, 2, 3], true, &fast);
        assert!((t - node_time(&job, &[0, 1, 2, 3], true) / 1.25).abs() < 1e-12);
    }

    #[test]
    fn round_robin_interleaves() {
        let job = job4x2();
        let p = place(&job, 2, PlacementStrategy::RoundRobin).expect("fits");
        assert_eq!(p.nodes[0], vec![0, 2, 4, 6]);
        assert_eq!(p.nodes[1], vec![1, 3, 5, 7]);
    }

    #[test]
    fn lpt_balances_total_load() {
        let job = job4x2();
        let p = place(&job, 2, PlacementStrategy::GreedyLpt).expect("fits");
        let l0 = p.node_load(&job, 0);
        let l1 = p.node_load(&job, 1);
        assert!((l0 - l1).abs() < 0.11, "node loads {l0} vs {l1}");
    }

    #[test]
    fn smt_aware_pairs_heavy_with_light() {
        let job = job4x2();
        let p = place(&job, 2, PlacementStrategy::SmtAware).expect("fits");
        for slots in &p.nodes {
            // Slot 0 (heavy) and slot 1 (its core sibling) must differ in
            // load when the node holds both classes.
            if slots.len() == 4 {
                let c0 = (job.rank_loads[slots[0]], job.rank_loads[slots[1]]);
                assert!(c0.0 >= c0.1, "heavy first on core 0: {c0:?}");
            }
        }
        // The two heavy ranks must not share a core.
        for slots in &p.nodes {
            for pair in [[0usize, 1], [2, 3]] {
                if let (Some(&a), Some(&b)) = (slots.get(pair[0]), slots.get(pair[1])) {
                    assert!(
                        !(job.rank_loads[a] > 0.3 && job.rank_loads[b] > 0.3),
                        "two heavy ranks on one core: {slots:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn core_time_model() {
        // Sibling idle.
        assert!((core_time(Some(0.4), None, true) - 0.5).abs() < 1e-12);
        // Balanced pair is better when loads are equal.
        let equal = core_time(Some(0.4), Some(0.4), true);
        assert!((equal - 0.5).abs() < 1e-12);
        // Boost wins for a 4:1 pair.
        let imb = core_time(Some(0.4), Some(0.1), true);
        assert!(imb < 0.5, "boosted {imb}");
        // Without HPCSched there is no boost option.
        assert!((core_time(Some(0.4), Some(0.1), false) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn overfull_job_is_a_typed_error_not_a_panic() {
        let job = JobSpec::new("big", vec![0.1; 9], 1);
        for s in [
            PlacementStrategy::RoundRobin,
            PlacementStrategy::GreedyLpt,
            PlacementStrategy::SmtAware,
        ] {
            assert_eq!(
                place(&job, 2, s),
                Err(PlacementError::DoesNotFit { ranks: 9, slots: 8 }),
                "{s:?}"
            );
        }
        assert_eq!(place(&job, 0, PlacementStrategy::GreedyLpt), Err(PlacementError::NoNodes));
        let msg = PlacementError::DoesNotFit { ranks: 9, slots: 8 }.to_string();
        assert!(msg.contains("9 ranks on 8 slots"), "{msg}");
    }

    #[test]
    fn pair_heavy_light_orders() {
        assert_eq!(pair_heavy_light(&[10, 20, 30, 40]), vec![10, 40, 20, 30]);
        assert_eq!(pair_heavy_light(&[1, 2, 3]), vec![1, 3, 2]);
        assert_eq!(pair_heavy_light(&[7]), vec![7]);
    }
}
