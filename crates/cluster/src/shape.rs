//! Heterogeneous node catalogs: the hardware shape of each cluster node.
//!
//! The paper's cluster-level future work assumes identical POWER5 nodes;
//! real fleets mix generations. A [`NodeShape`] pairs a node's
//! scheduling-domain tree ([`power5::Topology`]) with a relative speed
//! factor, and [`TopoPreset`] names the shapes the experiments mix
//! (reference OpenPower 710, a 2-socket box, a 2-NUMA-node box, and a
//! wide-SMT single core).

use power5::Topology;
use simcore::snapshot::{Snapshot, SnapshotError, SnapshotReader, SnapshotWriter};

/// The hardware shape of one cluster node: its scheduling-domain tree plus
/// a relative speed factor (1.0 = the paper's reference OpenPower 710;
/// loads are divided by the speed before they reach the node kernel).
#[derive(Clone, Debug, PartialEq)]
pub struct NodeShape {
    pub topology: Topology,
    pub speed: f64,
}

impl Default for NodeShape {
    fn default() -> Self {
        NodeShape { topology: Topology::openpower_710(), speed: 1.0 }
    }
}

impl NodeShape {
    pub fn new(topology: Topology, speed: f64) -> Self {
        NodeShape { topology, speed }
    }

    /// CPU slots this node offers (one rank per logical CPU).
    pub fn slots(&self) -> usize {
        self.topology.num_cpus()
    }
}

impl Snapshot for NodeShape {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put(&self.topology);
        w.put_f64(self.speed);
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        Ok(NodeShape { topology: r.get()?, speed: r.get_f64()? })
    }
}

/// Named node shapes for heterogeneous catalogs — the topology presets the
/// experiment binaries mix into fleets.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TopoPreset {
    /// The paper's reference node: 1 chip × 2 cores × 2 threads.
    Openpower710,
    /// A 2-socket box: 2 sockets × 2 dual-thread cores (8 CPUs).
    TwoSocket,
    /// A 2-NUMA-node box: 2 NUMA nodes × 2 dual-thread cores (8 CPUs).
    Numa,
    /// A single 4-way SMT core (the n-way analytic decode model).
    WideSmt,
}

impl TopoPreset {
    pub const ALL: [TopoPreset; 4] =
        [TopoPreset::Openpower710, TopoPreset::TwoSocket, TopoPreset::Numa, TopoPreset::WideSmt];

    pub fn label(self) -> &'static str {
        match self {
            TopoPreset::Openpower710 => "openpower-710",
            TopoPreset::TwoSocket => "2-socket",
            TopoPreset::Numa => "numa",
            TopoPreset::WideSmt => "wide-smt",
        }
    }

    pub fn parse(s: &str) -> Option<TopoPreset> {
        TopoPreset::ALL.into_iter().find(|p| p.label() == s)
    }

    /// The preset's scheduling-domain tree.
    pub fn topology(self) -> Topology {
        // INVARIANT: every label above is registered in `Topology::preset`;
        // the round-trip is covered by `presets_resolve` below.
        Topology::preset(self.label()).expect("preset names are registered")
    }

    /// A [`NodeShape`] of this preset at the given relative speed.
    pub fn shape(self, speed: f64) -> NodeShape {
        NodeShape::new(self.topology(), speed)
    }
}

impl Snapshot for TopoPreset {
    fn snapshot(&self, w: &mut SnapshotWriter) {
        w.put_u8(match self {
            TopoPreset::Openpower710 => 0,
            TopoPreset::TwoSocket => 1,
            TopoPreset::Numa => 2,
            TopoPreset::WideSmt => 3,
        });
    }
    fn restore(r: &mut SnapshotReader<'_>) -> Result<Self, SnapshotError> {
        match r.get_u8()? {
            0 => Ok(TopoPreset::Openpower710),
            1 => Ok(TopoPreset::TwoSocket),
            2 => Ok(TopoPreset::Numa),
            3 => Ok(TopoPreset::WideSmt),
            _ => Err(SnapshotError::Malformed("bad TopoPreset tag")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_shape_is_the_reference_node() {
        let s = NodeShape::default();
        assert_eq!(s.topology, Topology::openpower_710());
        assert_eq!(s.speed, 1.0);
        assert_eq!(s.slots(), 4);
    }

    #[test]
    fn presets_resolve() {
        for p in TopoPreset::ALL {
            let t = p.topology();
            assert!(t.num_cpus() > 0, "{}", p.label());
            assert_eq!(TopoPreset::parse(p.label()), Some(p));
        }
        assert_eq!(TopoPreset::TwoSocket.topology().num_cpus(), 8);
        assert_eq!(TopoPreset::Numa.topology().numa_count(), 2);
        assert_eq!(TopoPreset::WideSmt.topology().max_smt_width(), 4);
        assert_eq!(TopoPreset::parse("power6"), None);
    }

    #[test]
    fn shapes_snapshot_round_trip() {
        for p in TopoPreset::ALL {
            let shape = p.shape(1.25);
            let mut w = SnapshotWriter::new();
            w.put(&shape);
            w.put(&p);
            let bytes = w.finish();
            let mut r = SnapshotReader::new(&bytes).unwrap();
            assert_eq!(NodeShape::restore(&mut r).unwrap(), shape);
            assert_eq!(TopoPreset::restore(&mut r).unwrap(), p);
        }
    }
}
