//! The runner's built-in verification: every experiment cell carries a
//! conformance verdict, and seeded runs are trace-deterministic.

use experiments::runner::{run, ExperimentMode, WorkloadKind};
use simverify::determinism;
use workloads::metbench::MetBenchConfig;

fn tiny_metbench() -> WorkloadKind {
    WorkloadKind::MetBench(MetBenchConfig {
        loads: vec![0.05, 0.2, 0.05, 0.2],
        iterations: 4,
        ..Default::default()
    })
}

#[test]
fn every_mode_passes_conformance_on_seeded_metbench() {
    for mode in ExperimentMode::ALL {
        let r = run(&tiny_metbench(), mode, 2008);
        assert!(
            r.conformance.is_clean(),
            "{} violates invariants:\n{}",
            mode.label(),
            r.conformance.render()
        );
        assert!(!r.records.is_empty(), "trace captured for {}", mode.label());
        assert_eq!(r.conformance.records_checked, r.records.len());
    }
}

#[test]
fn seeded_runs_are_trace_deterministic() {
    let wl = tiny_metbench();
    let n = determinism::check(|| run(&wl, ExperimentMode::Adaptive, 7).records)
        .unwrap_or_else(|d| panic!("adaptive run diverged:\n{d}"));
    assert!(n > 0, "trace must not be empty");
}

#[test]
fn different_seeds_do_diverge() {
    // Sanity for the harness itself: with noise active, distinct seeds
    // must not produce the same trace (otherwise the comparison proves
    // nothing). SIESTA runs on a "live" node with noise daemons.
    let wl = WorkloadKind::Siesta(Default::default());
    let a = run(&wl, ExperimentMode::Uniform, 1).records;
    let b = run(&wl, ExperimentMode::Uniform, 2).records;
    assert!(
        determinism::first_divergence(&a, &b).is_some(),
        "noise-bearing runs with different seeds produced identical traces"
    );
}
