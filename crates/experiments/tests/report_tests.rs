//! Tests for the experiment reporting/export pipeline.

use experiments::paper::{paper_improvement, METBENCH, SIESTA};
use experiments::report::{report, save_outputs};
use experiments::runner::run_modes;
use experiments::{ExperimentMode, WorkloadKind};
use workloads::metbench::MetBenchConfig;

fn tiny() -> WorkloadKind {
    WorkloadKind::MetBench(MetBenchConfig {
        loads: vec![0.02, 0.08, 0.02, 0.08],
        iterations: 3,
        ..Default::default()
    })
}

#[test]
fn report_contains_every_mode_and_paper_columns() {
    let results =
        run_modes(&tiny(), &[ExperimentMode::Baseline, ExperimentMode::Uniform], 1);
    let text = report("T", METBENCH, &results, false);
    assert!(text.contains("Baseline"));
    assert!(text.contains("Uniform"));
    assert!(text.contains("paper exec(s)"));
    assert!(text.contains("81.78"), "paper baseline number surfaced");
}

#[test]
fn report_with_figures_renders_traces() {
    let results = run_modes(&tiny(), &[ExperimentMode::Uniform], 1);
    let text = report("T", METBENCH, &results, true);
    assert!(text.contains("trace"), "figure section present");
    assert!(text.contains('#'), "compute cells rendered");
}

#[test]
fn hybrid_mode_reports_without_paper_row() {
    let results = run_modes(&tiny(), &[ExperimentMode::Hybrid], 1);
    let text = report("T", METBENCH, &results, false);
    assert!(text.contains("Hybrid"));
    // No paper row for Hybrid → dash in the paper column.
    assert!(text.lines().any(|l| l.starts_with("Hybrid") && l.contains('-')));
}

#[test]
fn save_outputs_writes_all_formats() {
    let dir = std::env::temp_dir().join(format!("hpcsched_test_{}", std::process::id()));
    let results = run_modes(&tiny(), &[ExperimentMode::Uniform], 1);
    save_outputs(&dir, "tiny", &results).expect("writes");
    for ext in ["stats.csv", "trace.csv", "prv", "pcf"] {
        let p = dir.join(format!("tiny_uniform.{ext}"));
        assert!(p.exists(), "{p:?} missing");
        assert!(std::fs::metadata(&p).unwrap().len() > 0, "{p:?} empty");
    }
    // The .prv parses back at least structurally: a header plus records.
    let prv = std::fs::read_to_string(dir.join("tiny_uniform.prv")).unwrap();
    assert!(prv.starts_with("#Paraver"));
    assert!(prv.lines().count() > 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn paper_improvements_are_internally_consistent() {
    // The baseline's improvement over itself is zero for every table.
    for table in [METBENCH, SIESTA] {
        assert_eq!(paper_improvement(table, "Baseline"), Some(0.0));
    }
    assert!(paper_improvement(METBENCH, "Nonexistent").is_none());
}

#[test]
fn mean_latency_is_populated_for_noisy_runs() {
    let wl = WorkloadKind::Siesta(workloads::siesta::SiestaConfig {
        rank_work: vec![0.06, 0.03, 0.02, 0.012],
        iterations: 2,
        rounds: 8,
        ..Default::default()
    });
    let r = experiments::run(&wl, ExperimentMode::Baseline, 1);
    // Latency samples exist (ranks woke at least once) and are sane.
    assert!(r.mean_latency_us >= 0.0);
    assert!(r.mean_latency_us < 50_000.0, "latency {}us", r.mean_latency_us);
}
