//! The experiment runner: workload × scheduler-mode → paper-style results.

use faultsim::{FaultError, FaultPlan, FaultSummary};
use schedsim::{
    Kernel, KernelBuilder, NoiseConfig, SchedError, SharedSink, TaskId, TraceEvent, TraceRecord,
};
use simverify::conformance;
use simcore::SimDuration;
use telemetry::{MetricsSnapshot, TimeSeries};
use tracefmt::{AppStats, Timeline};
use workloads::btmz::BtMzConfig;
use workloads::metbench::MetBenchConfig;
use workloads::metbenchvar::MetBenchVarConfig;
use workloads::siesta::SiestaConfig;
use workloads::SchedulerSetup;

/// Which application to run.
#[derive(Clone, Debug)]
pub enum WorkloadKind {
    MetBench(MetBenchConfig),
    MetBenchVar(MetBenchVarConfig),
    BtMz(BtMzConfig),
    Siesta(SiestaConfig),
}

impl WorkloadKind {
    pub fn name(&self) -> &'static str {
        match self {
            WorkloadKind::MetBench(_) => "MetBench",
            WorkloadKind::MetBenchVar(_) => "MetBenchVar",
            WorkloadKind::BtMz(_) => "BT-MZ",
            WorkloadKind::Siesta(_) => "SIESTA",
        }
    }

    /// OS noise active during the run. SIESTA is evaluated on a "live"
    /// node (its result depends on competing daemons, §V-D); the
    /// microbenchmarks run on a quiet one.
    pub fn noise(&self) -> NoiseConfig {
        match self {
            WorkloadKind::Siesta(_) => NoiseConfig::light(),
            _ => NoiseConfig::off(),
        }
    }

    fn static_priorities(&self) -> Vec<power5::HwPriority> {
        match self {
            WorkloadKind::MetBench(c) => c.static_priorities(),
            WorkloadKind::MetBenchVar(c) => c.base.static_priorities(),
            WorkloadKind::BtMz(c) => c.static_priorities(),
            // The paper has no static run for SIESTA (its §V-D tables list
            // baseline/Uniform/Adaptive only); default priorities.
            WorkloadKind::Siesta(c) => vec![power5::HwPriority::MEDIUM; c.ranks()],
        }
    }
}

/// The paper's experiment axes: the scheduler under test.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExperimentMode {
    /// Stock kernel + CFS (the "Baseline 2.6.24" rows).
    Baseline,
    /// Stock kernel + hand-tuned fixed hardware priorities.
    Static,
    /// HPCSched with the Uniform heuristic.
    Uniform,
    /// HPCSched with the Adaptive heuristic.
    Adaptive,
    /// HPCSched with this reproduction's Hybrid heuristic (the paper's
    /// future-work item; not part of the paper's own evaluation).
    Hybrid,
    /// HPCSched driven by a named [`schedsim::policies::registry`] policy
    /// (the `--policy <name>` CLI axis). The named modes above are
    /// shorthands for the paper's own cells; this variant reaches the rest
    /// of the zoo.
    Policy(&'static str),
}

impl ExperimentMode {
    pub fn label(&self) -> &'static str {
        match self {
            ExperimentMode::Baseline => "Baseline",
            ExperimentMode::Static => "Static",
            ExperimentMode::Uniform => "Uniform",
            ExperimentMode::Adaptive => "Adaptive",
            ExperimentMode::Hybrid => "Hybrid",
            ExperimentMode::Policy(p) => p,
        }
    }

    /// The registry policy backing this mode, or `None` for modes that run
    /// without the HPC class (Baseline, Static).
    pub fn policy_name(&self) -> Option<&'static str> {
        match self {
            ExperimentMode::Baseline | ExperimentMode::Static => None,
            ExperimentMode::Uniform => Some("hpc"),
            ExperimentMode::Adaptive => Some("hpc-adaptive"),
            ExperimentMode::Hybrid => Some("hpc-hybrid"),
            ExperimentMode::Policy(p) => Some(p),
        }
    }

    pub const ALL: [ExperimentMode; 4] = [
        ExperimentMode::Baseline,
        ExperimentMode::Static,
        ExperimentMode::Uniform,
        ExperimentMode::Adaptive,
    ];
}

/// Everything a table or figure needs from one run.
pub struct RunResult {
    pub workload: &'static str,
    pub mode: ExperimentMode,
    /// Application execution time (seconds).
    pub exec_secs: f64,
    /// Per-rank statistics (paper's %Comp / Priority columns).
    pub stats: AppStats,
    /// Trace for figure rendering (application tasks only).
    pub timeline: Timeline,
    /// Application task ids, P1..Pn (without the MetBench master).
    pub ranks: Vec<TaskId>,
    /// Mean scheduler wakeup latency across ranks (microseconds).
    pub mean_latency_us: f64,
    /// Hardware-priority writes issued during the run.
    pub priority_writes: u64,
    /// End-of-run snapshot of every kernel metric (counters, histograms).
    pub metrics: MetricsSnapshot,
    /// Per-rank iteration utilization over simulated time (percent),
    /// derived from the trace for CSV export.
    pub utilization_series: TimeSeries,
    /// The full trace of the run (all tasks), for conformance checking and
    /// determinism comparisons.
    pub records: Vec<TraceRecord>,
    /// Invariant-conformance verdict over `records` + `metrics`
    /// (`simverify`, DESIGN.md §8); computed on every run, printed only
    /// under `--verify`.
    pub conformance: conformance::Report,
    /// Fault accounting, present only for fault-injected runs
    /// ([`try_run_with_faults`]). `summary.aborted` carries the typed
    /// terminal fault when the run did not complete normally.
    pub fault: Option<FaultSummary>,
}

fn build_kernel(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    topo: Option<&power5::Topology>,
) -> Result<Kernel, SchedError> {
    // Registry-driven: every mode is either "no HPC class" or a named
    // policy; no per-mode configuration blocks. `topo` is the `--topology`
    // axis: `None` leaves the builder on the default OpenPower 710 tree.
    let mut b = KernelBuilder::new().noise(wl.noise()).seed(seed);
    if let Some(t) = topo {
        b = b.topology(t.clone());
    }
    match mode.policy_name() {
        None => b.without_hpc_class().try_build(),
        Some(name) => b.policy(name).try_build(),
    }
}

fn setup_for(wl: &WorkloadKind, mode: ExperimentMode) -> SchedulerSetup {
    match mode {
        ExperimentMode::Baseline => SchedulerSetup::Baseline,
        ExperimentMode::Static => SchedulerSetup::Static(wl.static_priorities()),
        _ => SchedulerSetup::Hpc,
    }
}

/// Run one experiment cell. `deadline` bounds the simulation (generous; a
/// run hitting it is a bug and panics).
///
/// # Errors
/// [`SchedError`] when the kernel configuration for this cell is invalid
/// (see [`KernelBuilder::try_build`]), including an unregistered
/// [`ExperimentMode::Policy`] name.
pub fn try_run(wl: &WorkloadKind, mode: ExperimentMode, seed: u64) -> Result<RunResult, SchedError> {
    try_run_on(wl, mode, seed, None)
}

/// [`try_run`] on an explicit scheduling-domain tree (the `--topology`
/// axis). `None` is the default OpenPower 710 — byte-identical to
/// [`try_run`].
pub fn try_run_on(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    topo: Option<&power5::Topology>,
) -> Result<RunResult, SchedError> {
    let mut kernel = build_kernel(wl, mode, seed, topo)?;
    let sink = SharedSink::new();
    kernel.observe(Box::new(sink.clone()));
    let setup = setup_for(wl, mode);

    let (ranks, all): (Vec<TaskId>, Vec<TaskId>) = match wl {
        WorkloadKind::MetBench(cfg) => {
            let (workers, master) = workloads::metbench::spawn(&mut kernel, cfg, &setup);
            let mut all = workers.clone();
            all.push(master);
            (workers, all)
        }
        WorkloadKind::MetBenchVar(cfg) => {
            let (workers, master) = workloads::metbenchvar::spawn(&mut kernel, cfg, &setup);
            let mut all = workers.clone();
            all.push(master);
            (workers, all)
        }
        WorkloadKind::BtMz(cfg) => {
            let ranks = workloads::btmz::spawn(&mut kernel, cfg, &setup);
            (ranks.clone(), ranks)
        }
        WorkloadKind::Siesta(cfg) => {
            let ranks = workloads::siesta::spawn(&mut kernel, cfg, &setup);
            (ranks.clone(), ranks)
        }
    };

    let deadline = SimDuration::from_secs(3_600);
    let end = kernel
        .run_until_exited(&all, deadline)
        .unwrap_or_else(|| panic!("{} {:?} did not finish", wl.name(), mode));

    Ok(finish_run(wl, mode, &kernel, &sink, ranks, end.as_secs_f64()))
}

/// Assemble a [`RunResult`] from a finished kernel; shared by the plain and
/// fault-injected paths.
fn finish_run(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    kernel: &Kernel,
    sink: &SharedSink,
    ranks: Vec<TaskId>,
    exec_secs: f64,
) -> RunResult {
    let records = sink.snapshot();
    let timeline = Timeline::from_records(&records).filter_tasks(&ranks);
    let stats = AppStats::for_tasks(&timeline, &ranks);

    // Per-rank utilization over time, one CSV row per completed iteration.
    let mut utilization_series = TimeSeries::default();
    for rec in &records {
        if let TraceEvent::IterationEnd { utilization, .. } = rec.event {
            if let Some(rank) = ranks.iter().position(|&r| r == rec.task) {
                utilization_series.push(
                    rec.time.as_nanos(),
                    vec![(format!("P{}.util_pct", rank + 1), utilization * 100.0)],
                );
            }
        }
    }

    let mean_latency_us = {
        let (sum, n) = ranks.iter().fold((0.0, 0u64), |(s, n), &r| {
            let t = kernel.task(r);
            (s + t.latency_total.as_nanos() as f64 / 1e3, n + t.latency_samples)
        });
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    };

    let metrics = kernel.metrics_registry().snapshot();
    let conformance =
        conformance::check_with_metrics(&records, &metrics, &conformance::CheckConfig::default());

    RunResult {
        workload: wl.name(),
        mode,
        exec_secs,
        stats,
        timeline,
        ranks,
        mean_latency_us,
        priority_writes: kernel.metrics().priority_writes,
        metrics,
        utilization_series,
        records,
        conformance,
        fault: None,
    }
}

/// Run one experiment cell under a [`FaultPlan`].
///
/// Faults never panic the runner: a `FailStop` crash or a blown deadline
/// yields a *partial* [`RunResult`] — the trace and statistics collected up
/// to the fault — with the typed [`FaultError`] recorded in
/// `fault.summary.aborted`. An empty plan injects nothing and leaves the
/// run byte-identical to [`try_run`].
///
/// # Errors
/// [`SchedError`] when the kernel configuration for this cell is invalid.
pub fn try_run_with_faults(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    plan: &FaultPlan,
) -> Result<RunResult, SchedError> {
    try_run_with_faults_on(wl, mode, seed, plan, None)
}

/// [`try_run_with_faults`] on an explicit scheduling-domain tree. `None`
/// is the default OpenPower 710 — byte-identical to
/// [`try_run_with_faults`].
pub fn try_run_with_faults_on(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    plan: &FaultPlan,
    topo: Option<&power5::Topology>,
) -> Result<RunResult, SchedError> {
    let mut kernel = build_kernel(wl, mode, seed, topo)?;
    let sink = SharedSink::new();
    kernel.observe(Box::new(sink.clone()));
    let setup = setup_for(wl, mode);
    let mpi_faults = plan.mpi_faults();
    let faults = mpi_faults.as_ref();

    let (ranks, all, mpi) = match wl {
        WorkloadKind::MetBench(cfg) => {
            let (workers, master, mpi) =
                workloads::metbench::spawn_faulted(&mut kernel, cfg, &setup, faults);
            let mut all = workers.clone();
            all.push(master);
            (workers, all, mpi)
        }
        WorkloadKind::MetBenchVar(cfg) => {
            let (workers, master, mpi) =
                workloads::metbenchvar::spawn_faulted(&mut kernel, cfg, &setup, faults);
            let mut all = workers.clone();
            all.push(master);
            (workers, all, mpi)
        }
        WorkloadKind::BtMz(cfg) => {
            let (ranks, mpi) = workloads::btmz::spawn_faulted(&mut kernel, cfg, &setup, faults);
            (ranks.clone(), ranks, mpi)
        }
        WorkloadKind::Siesta(cfg) => {
            let (ranks, mpi) = workloads::siesta::spawn_faulted(&mut kernel, cfg, &setup, faults);
            (ranks.clone(), ranks, mpi)
        }
    };

    for (at, event) in plan.kernel_events(&ranks) {
        kernel.inject_fault(at, event);
    }

    let deadline = SimDuration::from_secs(3_600);
    let end = kernel.run_until_exited(&all, deadline);

    let mpi_stats = mpi.fault_stats();
    let mut result =
        finish_run(
            wl,
            mode,
            &kernel,
            &sink,
            ranks,
            end.unwrap_or(simcore::SimTime::ZERO + deadline).as_secs_f64(),
        );
    result.fault = Some(FaultSummary {
        steal_bursts_injected: result.metrics.counter("kernel.faults.steal_bursts"),
        slowdowns_injected: result.metrics.counter("kernel.faults.slowdowns"),
        mpi_delays_injected: mpi_stats.delays_injected,
        restarts_absorbed: mpi_stats.restarts,
        degraded_samples: result.metrics.counter("hpc.detector.degraded"),
        aborted: match (end, mpi_stats.aborted_by) {
            // A fail-stop abort also ends the run early; report the abort,
            // not the (consequent) missed deadline.
            (_, Some((rank, iteration))) => Some(FaultError::RankFailStop { rank, iteration }),
            (None, None) => Some(FaultError::Deadline { secs: deadline.as_secs_f64() as u64 }),
            (Some(_), None) => None,
        },
    });
    Ok(result)
}

/// Like [`try_run_with_faults`], but panics on an invalid kernel
/// configuration (fault outcomes still surface as values, never panics).
pub fn run_with_faults(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    plan: &FaultPlan,
) -> RunResult {
    try_run_with_faults(wl, mode, seed, plan)
        .unwrap_or_else(|e| panic!("{} {mode:?}: {e}", wl.name()))
}

/// Like [`try_run`], but panics on an invalid configuration. The stock
/// experiment cells are all valid by construction, so the binaries use this.
pub fn run(wl: &WorkloadKind, mode: ExperimentMode, seed: u64) -> RunResult {
    try_run(wl, mode, seed).unwrap_or_else(|e| panic!("{} {mode:?}: {e}", wl.name()))
}

/// [`run`] on an explicit scheduling-domain tree (`None` = default 710).
pub fn run_on(
    wl: &WorkloadKind,
    mode: ExperimentMode,
    seed: u64,
    topo: Option<&power5::Topology>,
) -> RunResult {
    try_run_on(wl, mode, seed, topo).unwrap_or_else(|e| panic!("{} {mode:?}: {e}", wl.name()))
}

/// Run several modes concurrently (each run is independent and
/// deterministic); results return in input order.
pub fn run_modes(wl: &WorkloadKind, modes: &[ExperimentMode], seed: u64) -> Vec<RunResult> {
    run_modes_on(wl, modes, seed, None)
}

/// [`run_modes`] on an explicit scheduling-domain tree (`None` = default
/// 710, byte-identical to [`run_modes`]).
pub fn run_modes_on(
    wl: &WorkloadKind,
    modes: &[ExperimentMode],
    seed: u64,
    topo: Option<&power5::Topology>,
) -> Vec<RunResult> {
    std::thread::scope(|s| {
        let handles: Vec<_> =
            modes.iter().map(|&m| s.spawn(move || run_on(wl, m, seed, topo))).collect();
        handles.into_iter().map(|h| h.join().expect("experiment thread")).collect()
    })
}

/// Like [`run_modes`], with an optional fault plan applied to every mode.
pub fn run_modes_faulted(
    wl: &WorkloadKind,
    modes: &[ExperimentMode],
    seed: u64,
    plan: Option<&FaultPlan>,
) -> Vec<RunResult> {
    run_modes_faulted_on(wl, modes, seed, plan, None)
}

/// [`run_modes_faulted`] on an explicit scheduling-domain tree — the full
/// CLI cross product `--topology` × `--faults`. `None` topology is the
/// default 710; `None` plan injects nothing.
pub fn run_modes_faulted_on(
    wl: &WorkloadKind,
    modes: &[ExperimentMode],
    seed: u64,
    plan: Option<&FaultPlan>,
    topo: Option<&power5::Topology>,
) -> Vec<RunResult> {
    let Some(plan) = plan else {
        return run_modes_on(wl, modes, seed, topo);
    };
    std::thread::scope(|s| {
        let handles: Vec<_> = modes
            .iter()
            .map(|&m| {
                s.spawn(move || {
                    try_run_with_faults_on(wl, m, seed, plan, topo)
                        .unwrap_or_else(|e| panic!("{} {m:?}: {e}", wl.name()))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("experiment thread")).collect()
    })
}

/// Render a paper-style comparison table across modes.
pub fn comparison_table(results: &[RunResult]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let baseline = results
        .iter()
        .find(|r| r.mode == ExperimentMode::Baseline)
        .map(|r| r.exec_secs);
    let _ = writeln!(out, "Test       Proc   %Comp    Prio   Exec. Time   Improvement");
    for r in results {
        for (i, row) in r.stats.tasks.iter().enumerate() {
            let prio = row.final_prio.map(|p| p.to_string()).unwrap_or_else(|| "-".into());
            let (exec, imp) = if i == 0 {
                let imp = baseline
                    .map(|b| format!("{:+.1}%", 100.0 * (b - r.exec_secs) / b))
                    .unwrap_or_default();
                (format!("{:.2}s", r.exec_secs), imp)
            } else {
                (String::new(), String::new())
            };
            let _ = writeln!(
                out,
                "{:<10} {:<6} {:>6.2}  {:>5}   {:>10}   {:>10}",
                if i == 0 { r.mode.label() } else { "" },
                format!("P{}", i + 1),
                row.comp_percent,
                prio,
                exec,
                imp
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_metbench() -> WorkloadKind {
        WorkloadKind::MetBench(MetBenchConfig {
            loads: vec![0.02, 0.08, 0.02, 0.08],
            iterations: 4,
            ..Default::default()
        })
    }

    #[test]
    fn runner_produces_consistent_result() {
        let r = run(&tiny_metbench(), ExperimentMode::Uniform, 1);
        assert_eq!(r.workload, "MetBench");
        assert_eq!(r.ranks.len(), 4);
        assert_eq!(r.stats.tasks.len(), 4);
        assert!(r.exec_secs > 0.0);
        assert!(r.priority_writes > 0);
    }

    #[test]
    fn run_carries_telemetry_snapshot() {
        let r = run(&tiny_metbench(), ExperimentMode::Uniform, 1);
        assert!(r.metrics.counter("kernel.context_switches") > 0);
        assert!(r.metrics.counter("kernel.hw_prio_transitions") > 0);
        assert!(r.metrics.counter("hpc.decisions.uniform.accepted") > 0);
        assert!(!r.utilization_series.rows.is_empty(), "iteration utilization captured");
    }

    #[test]
    fn deterministic_across_repeats() {
        let a = run(&tiny_metbench(), ExperimentMode::Adaptive, 7);
        let b = run(&tiny_metbench(), ExperimentMode::Adaptive, 7);
        assert_eq!(a.exec_secs, b.exec_secs);
        for (x, y) in a.stats.tasks.iter().zip(&b.stats.tasks) {
            assert_eq!(x.comp_percent, y.comp_percent);
        }
    }

    #[test]
    fn every_registered_policy_is_deterministic_end_to_end() {
        let wl = tiny_metbench();
        for spec in schedsim::policies::registry() {
            let mode = ExperimentMode::Policy(spec.name);
            let a = run(&wl, mode, 7);
            let b = run(&wl, mode, 7);
            assert_eq!(
                format!("{:?}", a.records),
                format!("{:?}", b.records),
                "policy `{}` traces diverge across identical runs",
                spec.name
            );
            assert!(
                a.conformance.is_clean(),
                "policy `{}` violates conformance:\n{}",
                spec.name,
                a.conformance.render()
            );
        }
    }

    #[test]
    fn modes_order_preserved_in_parallel_run() {
        let rs = run_modes(
            &tiny_metbench(),
            &[ExperimentMode::Baseline, ExperimentMode::Uniform],
            3,
        );
        assert_eq!(rs[0].mode, ExperimentMode::Baseline);
        assert_eq!(rs[1].mode, ExperimentMode::Uniform);
    }

    #[test]
    fn policy_mode_runs_and_labels() {
        let r = run(&tiny_metbench(), ExperimentMode::Policy("gss"), 1);
        assert_eq!(r.mode.label(), "gss");
        assert_eq!(r.ranks.len(), 4);
        assert!(r.exec_secs > 0.0);
    }

    #[test]
    fn unknown_policy_mode_is_an_error() {
        match try_run(&tiny_metbench(), ExperimentMode::Policy("lottery"), 1) {
            Err(SchedError::UnknownPolicy(name)) => assert_eq!(name, "lottery"),
            Err(e) => panic!("wrong error: {e}"),
            Ok(_) => panic!("unknown policy accepted"),
        }
    }

    #[test]
    fn explicit_default_topology_is_byte_identical_to_none() {
        let wl = tiny_metbench();
        let a = run(&wl, ExperimentMode::Uniform, 7);
        let t = power5::Topology::openpower_710();
        let b = run_on(&wl, ExperimentMode::Uniform, 7, Some(&t));
        assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
        assert_eq!(a.exec_secs, b.exec_secs);
    }

    #[test]
    fn numa_topology_runs_deterministically() {
        let wl = tiny_metbench();
        let t = power5::Topology::parse("2n2c2t").unwrap();
        let a = run_on(&wl, ExperimentMode::Uniform, 7, Some(&t));
        let b = run_on(&wl, ExperimentMode::Uniform, 7, Some(&t));
        assert_eq!(format!("{:?}", a.records), format!("{:?}", b.records));
        assert!(a.conformance.is_clean(), "{}", a.conformance.render());
    }

    #[test]
    fn comparison_table_contains_improvement() {
        let rs = run_modes(
            &tiny_metbench(),
            &[ExperimentMode::Baseline, ExperimentMode::Uniform],
            3,
        );
        let t = comparison_table(&rs);
        assert!(t.contains("Baseline"));
        assert!(t.contains("Uniform"));
        assert!(t.contains('%'));
    }
}
