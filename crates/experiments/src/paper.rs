//! The paper's published numbers (Tables I and III–VI), embedded so every
//! experiment binary can print a paper-vs-measured comparison.

/// One row of a paper evaluation table.
#[derive(Clone, Copy, Debug)]
pub struct PaperRow {
    pub mode: &'static str,
    /// `%Comp` per process P1..P4 (NaN = not reported).
    pub comp: [f64; 4],
    pub exec_secs: f64,
}

/// Paper Table III — MetBench.
pub const METBENCH: &[PaperRow] = &[
    PaperRow { mode: "Baseline", comp: [25.34, 99.98, 25.32, 99.97], exec_secs: 81.78 },
    PaperRow { mode: "Static", comp: [99.97, 99.64, 99.95, 99.64], exec_secs: 70.90 },
    PaperRow { mode: "Uniform", comp: [96.17, 98.57, 90.94, 99.57], exec_secs: 71.74 },
    PaperRow { mode: "Adaptive", comp: [80.64, 99.52, 87.52, 99.20], exec_secs: 71.65 },
];

/// Paper Table IV — MetBenchVar.
pub const METBENCHVAR: &[PaperRow] = &[
    PaperRow { mode: "Baseline", comp: [50.24, 75.09, 50.22, 75.08], exec_secs: 368.17 },
    PaperRow { mode: "Static", comp: [99.97, 68.06, 99.94, 68.04], exec_secs: 338.40 },
    PaperRow { mode: "Uniform", comp: [91.47, 95.55, 91.44, 95.33], exec_secs: 327.17 },
    PaperRow { mode: "Adaptive", comp: [89.61, 93.08, 89.99, 95.15], exec_secs: 326.41 },
];

/// Paper Table V — BT-MZ.
pub const BTMZ: &[PaperRow] = &[
    PaperRow { mode: "Baseline", comp: [17.63, 29.85, 66.09, 99.85], exec_secs: 94.97 },
    PaperRow { mode: "Static", comp: [70.64, 42.22, 60.96, 99.85], exec_secs: 79.63 },
    PaperRow { mode: "Uniform", comp: [70.31, 37.18, 65.29, 99.85], exec_secs: 79.81 },
    PaperRow { mode: "Adaptive", comp: [70.31, 37.30, 65.30, 99.83], exec_secs: 79.92 },
];

/// Paper Table VI — SIESTA (no static run in the paper).
pub const SIESTA: &[PaperRow] = &[
    PaperRow { mode: "Baseline", comp: [98.90, 52.79, 28.45, 19.99], exec_secs: 81.49 },
    PaperRow { mode: "Uniform", comp: [98.81, 53.38, 31.41, 21.68], exec_secs: 76.82 },
    PaperRow { mode: "Adaptive", comp: [98.81, 53.40, 31.47, 21.71], exec_secs: 76.91 },
];

/// Paper Table I — decode cycles per priority difference.
pub const TABLE1: &[(u8, u32, u32, u32)] = &[
    // (difference, R, decode cycles high, decode cycles low)
    (0, 2, 1, 1),
    (1, 4, 3, 1),
    (2, 8, 7, 1),
    (3, 16, 15, 1),
    (4, 32, 31, 1),
    (5, 64, 63, 1),
];

/// Look up the paper row for a mode label.
pub fn paper_row(table: &'static [PaperRow], mode: &str) -> Option<&'static PaperRow> {
    table.iter().find(|r| r.mode == mode)
}

/// Improvement of a row over its table's baseline, in percent.
pub fn paper_improvement(table: &'static [PaperRow], mode: &str) -> Option<f64> {
    let base = paper_row(table, "Baseline")?.exec_secs;
    let row = paper_row(table, mode)?;
    Some(100.0 * (base - row.exec_secs) / base)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookups_work() {
        assert_eq!(paper_row(METBENCH, "Static").unwrap().exec_secs, 70.90);
        assert!(paper_row(SIESTA, "Static").is_none());
    }

    #[test]
    fn improvements_match_the_text() {
        // §V-A: static ≈13%, dynamic ≈12%.
        assert!((paper_improvement(METBENCH, "Static").unwrap() - 13.3).abs() < 0.5);
        assert!((paper_improvement(METBENCH, "Uniform").unwrap() - 12.3).abs() < 0.5);
        // §V-B: ≈11%.
        assert!((paper_improvement(METBENCHVAR, "Uniform").unwrap() - 11.1).abs() < 0.5);
        // §V-C: ≈16%.
        assert!((paper_improvement(BTMZ, "Uniform").unwrap() - 16.0).abs() < 0.5);
        // §V-D: ≈6%.
        assert!((paper_improvement(SIESTA, "Uniform").unwrap() - 5.7).abs() < 0.5);
    }

    #[test]
    fn table1_is_the_arbitration_law() {
        for &(d, r, high, low) in TABLE1 {
            assert_eq!(r, 2u32 << d, "R = 2^(d+1)");
            assert_eq!(high + low, r);
            assert_eq!(low, 1);
        }
    }
}
